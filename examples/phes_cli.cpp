// phes_cli — command-line driver for the full macromodeling workflow.
//
//   phes_cli fit <samples.txt> <poles-per-column> [iterations]
//       Vector-fit tabulated samples, report fit error and stability.
//   phes_cli check <samples.txt> <poles-per-column> [threads]
//       Fit, then run the parallel Hamiltonian passivity test.
//   phes_cli enforce <samples.txt> <poles-per-column> [threads]
//       Fit, characterize, enforce passivity, verify, and report the
//       Hankel bound on the model perturbation.
//   phes_cli demo <path>
//       Write a demo samples file (synthetic 4-port interconnect) to
//       <path> so the other subcommands have something to chew on.
//
// Sample files may be phes-samples v1 text (samples_io.hpp) or
// Touchstone .sNp (io/touchstone.hpp); the format is picked by
// extension via pipeline::load_input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "phes/core/solver.hpp"
#include "phes/engine/session.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/gramians.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/macromodel/samples_io.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/passivity/characterization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "phes/vf/vector_fitting.hpp"

namespace {

using namespace phes;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  phes_cli demo <path>\n"
               "  phes_cli fit <samples.txt> <poles-per-column> [iters]\n"
               "  phes_cli check <samples.txt> <poles-per-column> [threads]\n"
               "  phes_cli enforce <samples.txt> <poles-per-column> "
               "[threads]\n");
  return 2;
}

vf::VectorFittingResult fit_file(const std::string& path,
                                 std::size_t poles, std::size_t iters,
                                 std::size_t threads = 1) {
  const auto samples = pipeline::load_input(path);
  std::printf("loaded %zu samples, %zu ports\n", samples.count(),
              samples.ports());
  vf::VectorFittingOptions opt;
  opt.num_poles = poles;
  opt.iterations = iters;
  opt.threads = threads;  // independent column fits ride the pool
  auto fit = vf::vector_fit(samples, opt);
  std::printf("fit: rms error %.3e, stable: %s, order %zu\n", fit.rms_error,
              fit.model.is_stable() ? "yes" : "no", fit.model.order());
  return fit;
}

int cmd_demo(const std::string& path) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 4;
  spec.states = 48;
  spec.omega_min = 1.0;
  spec.omega_max = 40.0;
  spec.target_peak_gain = 1.05;
  spec.seed = 2011;
  const auto model = macromodel::make_synthetic_model(spec);
  const auto samples = macromodel::sample_model(model, 0.2, 120.0, 300);
  macromodel::save_samples_file(samples, path);
  std::printf("wrote %zu samples of a %zu-port response to %s\n",
              samples.count(), samples.ports(), path.c_str());
  return 0;
}

int cmd_check(const std::string& path, std::size_t poles,
              std::size_t threads) {
  const auto fit = fit_file(path, poles, 12, threads);
  const macromodel::SimoRealization realization(fit.model);
  core::SolverOptions opt;
  opt.threads = threads;
  const auto report = passivity::characterize_passivity(realization, opt);
  std::printf("passivity: %s (%.3f s, %zu shifts)\n",
              report.passive ? "PASSIVE" : "NOT PASSIVE",
              report.solver.seconds, report.solver.shifts_processed);
  for (const auto& band : report.bands) {
    std::printf("  violation [%.6g, %.6g] peak sigma %.6f at w=%.6g\n",
                band.omega_lo, band.omega_hi, band.sigma_peak,
                band.omega_peak);
  }
  return report.passive ? 0 : 1;
}

int cmd_enforce(const std::string& path, std::size_t poles,
                std::size_t threads) {
  const auto fit = fit_file(path, poles, 12, threads);
  engine::SolverSession session(fit.model);
  const la::RealMatrix c_before = session.realization().c();

  passivity::EnforcementOptions eopt;
  eopt.solver.threads = threads;
  const auto result = passivity::enforce_passivity(session, eopt);
  std::printf("enforcement: %s in %zu iterations "
              "(%zu characterizations, %zu matvecs, %zu cache hits)\n",
              result.success ? "SUCCESS" : "FAILED", result.iterations,
              result.characterizations, result.total_matvecs,
              result.cache_hits);
  std::printf("relative residue change: %.3e\n",
              result.relative_model_change);
  std::printf("Hankel bound on ||H_new - H_old||_inf: %.3e\n",
              macromodel::perturbation_hinf_bound(session.realization(),
                                                  c_before));
  return result.success ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "demo") return cmd_demo(argv[2]);
    if (argc < 4) return usage();
    const std::size_t poles = std::strtoul(argv[3], nullptr, 10);
    const std::size_t extra =
        argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 0;
    if (cmd == "fit") {
      (void)fit_file(argv[2], poles, extra > 0 ? extra : 12);
      return 0;
    }
    if (cmd == "check") return cmd_check(argv[2], poles, extra ? extra : 4);
    if (cmd == "enforce") {
      return cmd_enforce(argv[2], poles, extra ? extra : 4);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
