// Quickstart: build a synthetic interconnect macromodel, run the
// parallel Hamiltonian eigensolver, and print the passivity verdict.
//
//   ./examples/quickstart [states] [ports] [threads]
//
// This is the minimal end-to-end use of the library's public API:
//   PoleResidueModel -> SimoRealization -> ParallelHamiltonianEigensolver.

#include <cstdio>
#include <cstdlib>

#include "phes/core/solver.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"

int main(int argc, char** argv) {
  using namespace phes;

  const std::size_t states = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 600;
  const std::size_t ports = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::size_t threads = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  // 1. A synthetic scattering macromodel (stand-in for a vector-fitted
  //    interconnect model).  target_peak_gain > 1 makes it non-passive.
  macromodel::SyntheticModelSpec spec;
  spec.states = states;
  spec.ports = ports;
  spec.omega_min = 1.0;
  spec.omega_max = 50.0;
  spec.target_peak_gain = 1.05;
  spec.seed = 2011;
  const macromodel::PoleResidueModel model =
      macromodel::make_synthetic_model(spec);

  // 2. The structured (block-diagonal SIMO) realization of paper Eq. 2.
  const macromodel::SimoRealization realization(model);
  std::printf("model: n = %zu states, p = %zu ports\n", realization.order(),
              realization.ports());

  // 3. Find all purely imaginary Hamiltonian eigenvalues.
  core::ParallelHamiltonianEigensolver solver(realization);
  core::SolverOptions options;
  options.threads = threads;
  const core::SolverResult result = solver.solve(options);

  std::printf("search band: [%.4g, %.4g] rad/s\n", result.omega_min,
              result.omega_max);
  std::printf("shifts processed: %zu (eliminated before processing: %zu)\n",
              result.shifts_processed, result.shifts_eliminated);
  std::printf("wall time: %.3f s on %zu threads\n", result.seconds, threads);

  if (result.passive) {
    std::printf("\nPASSIVE: no unit singular-value crossings found.\n");
  } else {
    std::printf("\nNOT passive: %zu crossing frequencies (Omega):\n",
                result.crossings.size());
    for (double w : result.crossings) std::printf("  w = %.8f rad/s\n", w);
  }
  return 0;
}
