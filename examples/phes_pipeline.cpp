// phes_pipeline — end-to-end batch passivity pipeline driver.
//
//   phes_pipeline run <file> [flags]
//       Run one file (Touchstone .sNp or phes-samples text) through
//       load -> fit -> realize -> characterize -> enforce -> verify.
//   phes_pipeline batch <dir> [flags]
//       Run every .sNp / .snp / .txt samples file in <dir> as a batch
//       with two-level (jobs x solver-threads) parallelism and print a
//       summary table.
//   phes_pipeline gen <dir> [count]
//       Write `count` (default 4) synthetic Touchstone files (a mix of
//       passive and non-passive models, varying ports/order/format)
//       into <dir> so `batch` has something to chew on.
//   phes_pipeline serve <socket> [flags]
//       Long-lived job server: bounded queue with backpressure,
//       persistent workers, cross-job session pool keyed by model hash,
//       result store.  Listens on the AF_UNIX socket, plus a TCP
//       endpoint with `--tcp HOST:PORT --auth-token-file FILE` (remote
//       clients authenticate with the shared token).  All connections
//       are served by one epoll event loop; request handling runs on a
//       small dispatch pool so status polls stay live while submits
//       block on backpressure.  With `--data-dir DIR`, finished results
//       spill to disk and are served again after a restart (jobs that
//       were in flight at a crash come back as failed/lost).  Runs
//       until a client sends the shutdown op (or SIGINT/SIGTERM, which
//       drains gracefully).
//   phes_pipeline client <endpoint> <op> [args]
//       Scripting client; prints the server's JSON response line.
//       <endpoint> is a socket path or tcp:HOST:PORT (the latter with
//       --auth-token-file FILE).
//         submit <file> [--inline] [job flags]
//         status [id]     result <id>     cancel <id>
//         stats           ping            trace <id>
//         metrics [--prom]
//         wait <id> [--timeout s]       shutdown [--no-drain]
//         replay <id> | replay --all [--state S --model H
//                                     --from N --to N]
//         resubmit <id>
//         campaign <id> [--csv | --table]
//       `submit --inline` sends the file's contents in the request
//       payload (submit_inline op) — the server needs no access to the
//       client's filesystem.  `metrics --prom` converts the server's
//       JSON metrics dump to Prometheus text exposition locally (feed
//       it to a node_exporter textfile collector).  `wait` reports its
//       total waited time and poll count on stderr when it returns.
//       `replay` turns stored records (one id, or --all narrowed by the
//       optional filters) back into fresh jobs and starts a tracked
//       campaign; `campaign <id>` reports its progress with a per-job
//       delta against the stored baseline (bit-identical /
//       numerically-changed / state-changed), renderable as CSV or an
//       ASCII table locally.  `resubmit` re-admits one stored record
//       with no tracking.
//
// Flags:
//   --poles <n>          VF poles per column            (default 12)
//   --vf-iters <n>       VF pole-relocation sweeps      (default 12)
//   --kernel <backend>   tuned|reference compute kernels (default tuned)
//   --threads <n>        total hardware budget          (default auto)
//   --jobs <n>           concurrent jobs override       (default auto)
//   --solver-threads <n> per-job solver threads override(default auto)
//   --stop-after <stage> load|fit|realize|characterize|enforce|verify
//   --summary-json <path> write the machine-readable JSON summary
//   --summary-csv <path>  write the one-row-per-job CSV summary
//   --no-warm-start      disable session warm starts (cold re-solves)
//   --verbose            per-stage timing breakdown per job
// serve/batch flags (the batch runner shares sessions the same way):
//   --queue <n>          queue capacity / backpressure bound (default 64)
//   --no-share-sessions  one private session per job (no cross-job pool)
//   --pool-sessions <n>  idle sessions kept per the pool (default 16)
//   --pool-mb <n>        idle session memory budget in MiB (default 256)
//   --tcp <host:port>    additional TCP listener (serve only)
//   --auth-token-file <f> shared token for the TCP auth handshake
//   --data-dir <dir>     durable result storage + crash recovery
//   --retain-records <n> in-memory finished-record cap (default 4096)
//   --retain-mb <n>      disk retention byte budget (0 = unbounded)
//   --retain-ttl <s>     disk retention TTL in seconds (0 = forever)
//   --dispatch-workers <n> off-loop protocol handlers (0 = inline)
//   --trace-file <path>  append one NDJSON trace event per finished job
//   --slow-job-ms <n>    log a stderr stage breakdown for jobs slower
//                        than this (0 = off)
//   --poll-ms <n>        fixed `client wait` poll interval (default:
//                        exponential backoff 10 ms -> 500 ms)
//
// Exit status: 0 when every job succeeded, 1 when any failed, 2 usage.
// `client wait` distinguishes outcomes: 0 done, 1 failed, 3 cancelled,
// 4 timeout.

#include <csignal>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "phes/io/touchstone.hpp"
#include "phes/la/kernels.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/pipeline/batch.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/pipeline/report.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/transport.hpp"
#include "phes/util/metrics.hpp"
#include "phes/util/table.hpp"

namespace {

using namespace phes;
namespace fs = std::filesystem;

struct CliOptions {
  pipeline::JobOptions job{};
  pipeline::BatchOptions batch{};
  std::string summary_json;  ///< empty => no JSON summary file
  std::string summary_csv;   ///< empty => no CSV summary file
  bool verbose = false;
  // serve-only
  std::size_t queue_capacity = 64;
  bool share_sessions = true;
  std::size_t pool_sessions = 16;
  std::size_t pool_mb = 256;
  std::string tcp_endpoint;      ///< "HOST:PORT"; empty => no TCP listener
  std::string auth_token_file;   ///< shared token for the TCP handshake
  std::string data_dir;          ///< empty => in-memory result store
  std::size_t retain_records = 4096;
  std::size_t retain_mb = 0;     ///< disk byte budget (0 = unbounded)
  double retain_ttl = 0.0;       ///< disk TTL seconds (0 = forever)
  std::size_t dispatch_workers = 2;
  std::string trace_file;    ///< NDJSON job-trace sink (serve only)
  double slow_job_ms = 0.0;  ///< stderr stage breakdown threshold
  // client-only
  double timeout_seconds = 0.0;
  std::size_t poll_ms = 0;  ///< fixed wait poll interval; 0 = backoff
  bool drain = true;
  bool inline_submit = false;  ///< submit the file's contents, not path
  bool prom = false;  ///< metrics: Prometheus exposition, not JSON
  // replay / campaign
  bool replay_all = false;      ///< replay: whole store, not one id
  std::string state_filter;     ///< replay --state (done|failed|cancelled)
  std::string model_filter;     ///< replay --model (input content hash)
  std::uint64_t from_id = 0;    ///< replay --from (0 = unbounded)
  std::uint64_t to_id = 0;      ///< replay --to (0 = unbounded)
  bool campaign_csv = false;    ///< campaign: render the report as CSV
  bool campaign_table = false;  ///< campaign: render as an ASCII table
  // Which job flags were explicitly passed: a client submit sends only
  // those, so the rest fall back to the serve-side job defaults.
  bool poles_set = false;
  bool vf_iters_set = false;
  bool warm_start_set = false;
  bool stop_after_set = false;
  bool kernel_set = false;
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  phes_pipeline run <file> [flags]\n"
               "  phes_pipeline batch <dir> [flags]\n"
               "  phes_pipeline gen <dir> [count]\n"
               "  phes_pipeline serve <socket> [--tcp HOST:PORT "
               "--auth-token-file FILE] [flags]\n"
               "  phes_pipeline client <endpoint> submit <file> "
               "[--inline] [flags]\n"
               "  phes_pipeline client <endpoint> "
               "status|result|cancel|wait|trace [id]\n"
               "  phes_pipeline client <endpoint> stats|ping|shutdown\n"
               "  phes_pipeline client <endpoint> metrics [--prom]\n"
               "  phes_pipeline client <endpoint> replay <id>\n"
               "  phes_pipeline client <endpoint> replay --all "
               "[--state S --model H --from N --to N]\n"
               "  phes_pipeline client <endpoint> resubmit <id>\n"
               "  phes_pipeline client <endpoint> campaign <id> "
               "[--csv|--table]\n"
               "  (<endpoint> = socket path | tcp:HOST:PORT)\n"
               "flags: --poles N --vf-iters N --threads N --jobs N\n"
               "       --solver-threads N --stop-after STAGE\n"
               "       --kernel tuned|reference\n"
               "       --summary-json PATH --summary-csv PATH\n"
               "       --no-warm-start --verbose\n"
               "serve/batch: --queue N --no-share-sessions "
               "--pool-sessions N\n"
               "       --pool-mb N --tcp HOST:PORT --auth-token-file "
               "FILE\n"
               "serve: --data-dir DIR --retain-records N --retain-mb N\n"
               "       --retain-ttl SECONDS --dispatch-workers N\n"
               "       --trace-file PATH --slow-job-ms N\n"
               "client: --timeout SECONDS --poll-ms N (wait), "
               "--no-drain (shutdown),\n"
               "        --inline (submit), --auth-token-file FILE (tcp)\n"
               "        --all --state S --model H --from N --to N "
               "(replay),\n"
               "        --csv --table (campaign)\n"
               "wait exit codes: 0 done, 1 failed, 3 cancelled, "
               "4 timeout\n");
  return 2;
}

/// First line of `path`, trailing whitespace stripped — the shared
/// auth token.  Throws when the file cannot be read or is empty.
std::string read_token_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read token file '" + path + "'");
  }
  std::string token;
  std::getline(in, token);
  while (!token.empty() &&
         (token.back() == '\r' || token.back() == ' ' ||
          token.back() == '\t')) {
    token.pop_back();
  }
  if (token.empty()) {
    throw std::runtime_error("token file '" + path + "' is empty");
  }
  return token;
}

std::size_t parse_count(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') {
    throw std::invalid_argument(std::string(flag) + ": expected a number, "
                                "got '" + text + "'");
  }
  return value;
}

CliOptions parse_flags(int argc, char** argv, int first) {
  CliOptions cli;
  cli.job.fit.num_poles = 12;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + ": missing value");
      }
      return argv[++i];
    };
    if (flag == "--poles") {
      cli.job.fit.num_poles = parse_count(value(), "--poles");
      cli.poles_set = true;
    } else if (flag == "--vf-iters") {
      cli.job.fit.iterations = parse_count(value(), "--vf-iters");
      cli.vf_iters_set = true;
    } else if (flag == "--threads") {
      cli.batch.total_threads = parse_count(value(), "--threads");
    } else if (flag == "--jobs") {
      cli.batch.job_workers = parse_count(value(), "--jobs");
    } else if (flag == "--solver-threads") {
      cli.batch.solver_threads = parse_count(value(), "--solver-threads");
    } else if (flag == "--stop-after") {
      cli.job.stop_after = pipeline::parse_stage(value());
      cli.stop_after_set = true;
    } else if (flag == "--kernel") {
      cli.job.solver.kernel = la::parse_kernel_backend(value());
      cli.kernel_set = true;
    } else if (flag == "--summary-json") {
      cli.summary_json = value();
    } else if (flag == "--summary-csv") {
      cli.summary_csv = value();
    } else if (flag == "--no-warm-start") {
      cli.job.session.warm_start = false;
      cli.warm_start_set = true;
    } else if (flag == "--verbose") {
      cli.verbose = true;
    } else if (flag == "--queue") {
      cli.queue_capacity = parse_count(value(), "--queue");
    } else if (flag == "--no-share-sessions") {
      cli.share_sessions = false;
    } else if (flag == "--pool-sessions") {
      cli.pool_sessions = parse_count(value(), "--pool-sessions");
    } else if (flag == "--pool-mb") {
      cli.pool_mb = parse_count(value(), "--pool-mb");
    } else if (flag == "--tcp") {
      cli.tcp_endpoint = value();
    } else if (flag == "--auth-token-file") {
      cli.auth_token_file = value();
    } else if (flag == "--data-dir") {
      cli.data_dir = value();
    } else if (flag == "--retain-records") {
      cli.retain_records = parse_count(value(), "--retain-records");
    } else if (flag == "--retain-mb") {
      cli.retain_mb = parse_count(value(), "--retain-mb");
    } else if (flag == "--retain-ttl") {
      const char* text = value();
      char* end = nullptr;
      cli.retain_ttl = std::strtod(text, &end);
      if (end == text || *end != '\0' || cli.retain_ttl < 0.0) {
        throw std::invalid_argument(
            std::string("--retain-ttl: expected seconds, got '") + text +
            "'");
      }
    } else if (flag == "--dispatch-workers") {
      cli.dispatch_workers = parse_count(value(), "--dispatch-workers");
    } else if (flag == "--trace-file") {
      cli.trace_file = value();
    } else if (flag == "--slow-job-ms") {
      const char* text = value();
      char* end = nullptr;
      cli.slow_job_ms = std::strtod(text, &end);
      if (end == text || *end != '\0' || cli.slow_job_ms < 0.0) {
        throw std::invalid_argument(
            std::string("--slow-job-ms: expected milliseconds, got '") +
            text + "'");
      }
    } else if (flag == "--prom") {
      cli.prom = true;
    } else if (flag == "--poll-ms") {
      cli.poll_ms = parse_count(value(), "--poll-ms");
    } else if (flag == "--inline") {
      cli.inline_submit = true;
    } else if (flag == "--all") {
      cli.replay_all = true;
    } else if (flag == "--state") {
      cli.state_filter = value();
    } else if (flag == "--model") {
      cli.model_filter = value();
    } else if (flag == "--from") {
      cli.from_id = parse_count(value(), "--from");
    } else if (flag == "--to") {
      cli.to_id = parse_count(value(), "--to");
    } else if (flag == "--csv") {
      cli.campaign_csv = true;
    } else if (flag == "--table") {
      cli.campaign_table = true;
    } else if (flag == "--timeout") {
      const char* text = value();
      char* end = nullptr;
      cli.timeout_seconds = std::strtod(text, &end);
      if (end == text || *end != '\0' || cli.timeout_seconds < 0.0) {
        throw std::invalid_argument(
            std::string("--timeout: expected seconds, got '") + text + "'");
      }
    } else if (flag == "--no-drain") {
      cli.drain = false;
    } else {
      throw std::invalid_argument("unknown flag '" + flag + "'");
    }
  }
  return cli;
}

void print_job_detail(const pipeline::PipelineResult& r, bool verbose) {
  std::printf("[%s] %s", r.status().c_str(), r.name.c_str());
  if (r.order > 0) {
    std::printf("  (p=%zu, n=%zu, fit rms %.2e)", r.ports, r.order,
                r.fit_rms);
  }
  std::printf("  %.3f s\n", r.total_seconds);
  if (!r.ok) {
    std::printf("    error: %s\n", r.error.c_str());
    return;
  }
  if (verbose) {
    for (const auto& t : r.stage_timings) {
      std::printf("    %-12s %8.3f s\n", pipeline::stage_name(t.stage),
                  t.seconds);
    }
  }
  for (const auto& band : r.initial_report.bands) {
    std::printf("    violation [%.6g, %.6g] peak sigma %.6f at w=%.6g\n",
                band.omega_lo, band.omega_hi, band.sigma_peak,
                band.omega_peak);
  }
  if (r.enforcement_run) {
    std::printf("    enforced in %zu iterations, residue change %.2e\n",
                r.enforcement.iterations,
                r.enforcement.relative_model_change);
  }
  if (r.session.solves > 0) {
    std::printf("    session: %zu solve(s) (%zu warm-started), cache "
                "%zu hit / %zu miss, %zu factorization(s) built\n",
                r.session.solves, r.session.warm_solves,
                r.session.cache.hits, r.session.cache.misses,
                r.session.factorizations);
  }
}

int run_batch(std::vector<pipeline::PipelineJob> jobs,
              const CliOptions& cli) {
  for (auto& job : jobs) job.options = cli.job;

  pipeline::BatchOptions batch = cli.batch;
  // --no-warm-start jobs bypass the pool (a pooled session could hand
  // them another job's hot cache), so report the batch as unpooled
  // rather than printing an all-zero pool footer.
  batch.share_sessions =
      cli.share_sessions && cli.job.session.warm_start;
  batch.pool.max_idle_sessions = cli.pool_sessions;
  batch.pool.memory_budget_bytes = cli.pool_mb << 20;
  // Pooled sessions are configured at pool level: session flags must
  // reach them through the pool's session options.
  batch.pool.session = cli.job.session;

  const pipeline::BatchRunner runner(batch);
  const auto plan = runner.plan_for(jobs.size());
  std::printf("running %zu job(s): %zu concurrent x %zu solver thread(s), "
              "sessions %s\n",
              jobs.size(), plan.job_workers, plan.solver_threads,
              batch.share_sessions ? "pooled" : "private");

  const auto outcome = runner.run_all(std::move(jobs));
  const auto& results = outcome.results;
  for (const auto& r : results) print_job_detail(r, cli.verbose);

  std::printf("\n");
  pipeline::summary_table(results,
                          batch.share_sessions ? &outcome.pool : nullptr)
      .print(std::cout);
  if (!cli.summary_json.empty()) {
    pipeline::write_summary_json_file(results, cli.summary_json);
    std::printf("wrote JSON summary to %s\n", cli.summary_json.c_str());
  }
  if (!cli.summary_csv.empty()) {
    pipeline::write_summary_csv_file(results, cli.summary_csv);
    std::printf("wrote CSV summary to %s\n", cli.summary_csv.c_str());
  }
  const std::size_t ok = pipeline::count_succeeded(results);
  std::printf("\n%zu/%zu job(s) succeeded\n", ok, results.size());
  return ok == results.size() ? 0 : 1;
}

int cmd_run(const std::string& path, const CliOptions& cli) {
  pipeline::PipelineJob job;
  job.input_path = path;
  return run_batch({std::move(job)}, cli);
}

bool is_samples_file(const fs::path& path) {
  std::string ext = path.extension().string();
  std::transform(ext.begin(), ext.end(), ext.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return ext == ".txt" || io::is_touchstone_path(path.string());
}

int cmd_batch(const std::string& dir, const CliOptions& cli) {
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "error: '%s' is not a directory\n", dir.c_str());
    return 2;
  }
  std::vector<pipeline::PipelineJob> jobs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || !is_samples_file(entry.path())) continue;
    pipeline::PipelineJob job;
    job.input_path = entry.path().string();
    job.name = entry.path().filename().string();
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "error: no .sNp or .txt samples files in %s\n",
                 dir.c_str());
    return 2;
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return run_batch(std::move(jobs), cli);
}

// ---- server mode -----------------------------------------------------

volatile std::sig_atomic_t g_interrupted = 0;

void handle_signal(int) { g_interrupted = 1; }

int cmd_serve(const std::string& socket_path, const CliOptions& cli) {
  server::ServerOptions options;
  options.queue_capacity = cli.queue_capacity;
  options.workers = cli.batch.job_workers;
  options.solver_threads = cli.batch.solver_threads;
  options.share_sessions = cli.share_sessions;
  options.pool.max_idle_sessions = cli.pool_sessions;
  options.pool.memory_budget_bytes = cli.pool_mb << 20;
  // Pooled sessions are configured at pool level: --no-warm-start etc.
  // must reach them through the pool's session options.
  options.pool.session = cli.job.session;
  options.job_defaults = cli.job;
  options.max_finished_records = cli.retain_records;
  options.data_dir = cli.data_dir;
  options.retain_bytes = cli.retain_mb << 20;
  options.retain_ttl_seconds = cli.retain_ttl;
  options.trace_file = cli.trace_file;
  options.slow_job_ms = cli.slow_job_ms;

  server::JobServer server(options);
  if (!cli.data_dir.empty()) {
    const auto storage = server.stats().storage;
    std::printf("durable store %s: %zu record(s) recovered",
                cli.data_dir.c_str(), storage.recovered);
    if (storage.lost > 0) {
      std::printf(", %zu marked lost (were in flight at the crash)",
                  storage.lost);
    }
    std::printf("\n");
  }

  std::vector<std::unique_ptr<server::Transport>> transports;
  transports.push_back(
      std::make_unique<server::UnixTransport>(socket_path));
  if (!cli.tcp_endpoint.empty()) {
    const server::Endpoint tcp =
        server::parse_endpoint("tcp:" + cli.tcp_endpoint);
    if (cli.auth_token_file.empty()) {
      std::fprintf(stderr,
                   "error: --tcp requires --auth-token-file (refusing an "
                   "unauthenticated remote listener)\n");
      return 2;
    }
    transports.push_back(std::make_unique<server::TcpTransport>(
        tcp.host, tcp.port, read_token_file(cli.auth_token_file)));
  }
  server::TransportLimits limits;
  limits.dispatch_workers = cli.dispatch_workers;
  server::TransportServer transport(server, std::move(transports), limits);
  transport.start();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const auto stats = server.stats();
  std::string endpoints;
  for (const auto& t : transport.transports()) {
    endpoints += endpoints.empty() ? "" : ", ";
    endpoints += t->endpoint();
  }
  std::printf("phes_pipeline serving on %s (%zu worker(s) x %zu solver "
              "thread(s), queue %zu, sessions %s)\n",
              endpoints.c_str(), stats.workers, stats.solver_threads,
              cli.queue_capacity, cli.share_sessions ? "pooled" : "private");
  std::fflush(stdout);

  // Block until a client sends the shutdown op, or a signal arrives
  // (poll the flag: POSIX signals cannot wake a condition_variable).
  bool drain = true;
  while (!transport.shutdown_requested()) {
    if (g_interrupted != 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (transport.shutdown_requested()) drain = transport.wait_shutdown();

  std::printf("shutting down (%s)...\n", drain ? "drain" : "abort");
  std::fflush(stdout);
  server.shutdown(drain);
  transport.stop();

  const auto final_stats = server.stats();
  std::printf("served %zu job(s); queue peak %zu; session pool: %zu "
              "checkout(s), %zu reuse(s), %zu restore(s)\n",
              final_stats.submitted, final_stats.queue.peak_size,
              final_stats.pool.checkouts, final_stats.pool.pool_hits,
              final_stats.pool.restores);
  return 0;
}

/// Distinct `client wait` exit codes so scripts can branch on the job
/// outcome (2 stays the usage error).
constexpr int kWaitDone = 0;
constexpr int kWaitFailed = 1;
constexpr int kWaitCancelled = 3;
constexpr int kWaitTimeout = 4;

/// Only flags the user passed go on the wire; everything else falls
/// back to the serve-side job defaults.
std::string options_json_from(const CliOptions& cli) {
  std::string options_json;
  const auto add = [&options_json](const std::string& field) {
    options_json += options_json.empty() ? "" : ", ";
    options_json += field;
  };
  if (cli.poles_set) {
    add("\"poles\": " + std::to_string(cli.job.fit.num_poles));
  }
  if (cli.vf_iters_set) {
    add("\"vf_iters\": " + std::to_string(cli.job.fit.iterations));
  }
  if (cli.warm_start_set) {
    add(std::string("\"warm_start\": ") +
        (cli.job.session.warm_start ? "true" : "false"));
  }
  if (cli.stop_after_set) {
    add("\"stop_after\": \"" +
        std::string(pipeline::stage_name(cli.job.stop_after)) + "\"");
  }
  if (cli.kernel_set) {
    add("\"kernel\": \"" +
        std::string(la::kernel_backend_name(cli.job.solver.kernel)) + "\"");
  }
  return options_json;
}

int cmd_client(const std::string& endpoint_spec, const std::string& op,
               const char* id_or_file, const CliOptions& cli) {
  server::Endpoint endpoint = server::parse_endpoint(endpoint_spec);
  if (!cli.auth_token_file.empty()) {
    endpoint.token = read_token_file(cli.auth_token_file);
  }

  std::string request;
  if (op == "submit") {
    if (id_or_file == nullptr) return usage();
    const std::string options_json = options_json_from(cli);
    if (cli.inline_submit) {
      // Ship the file's bytes: the server needs no shared filesystem.
      std::ifstream in(id_or_file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read '%s'\n", id_or_file);
        return 2;
      }
      std::ostringstream contents;
      contents << in.rdbuf();
      const std::string filename =
          fs::path(id_or_file).filename().string();
      request = "{\"op\": \"submit_inline\", \"filename\": " +
                server::json_quote(filename) +
                ", \"payload\": " + server::json_quote(contents.str());
    } else {
      const std::string path = fs::absolute(fs::path(id_or_file)).string();
      request =
          "{\"op\": \"submit\", \"path\": " + server::json_quote(path);
    }
    if (!options_json.empty()) {
      request += ", \"options\": {" + options_json + "}";
    }
    request += "}";
  } else if (op == "status" || op == "result" || op == "cancel" ||
             op == "wait" || op == "trace") {
    const std::string wire_op = op == "wait" ? "status" : op;
    request = "{\"op\": \"" + wire_op + "\"";
    if (id_or_file != nullptr) {
      request += ", \"id\": " + std::to_string(
                                    parse_count(id_or_file, op.c_str()));
    } else if (op != "status") {
      std::fprintf(stderr, "error: %s needs a job id\n", op.c_str());
      return 2;
    }
    request += "}";
  } else if (op == "replay") {
    if (id_or_file != nullptr) {
      request = "{\"op\": \"replay\", \"id\": " +
                std::to_string(parse_count(id_or_file, "replay"));
    } else if (cli.replay_all) {
      request = "{\"op\": \"replay\", \"all\": true";
    } else {
      std::fprintf(stderr, "error: replay needs a job id or --all\n");
      return 2;
    }
    if (!cli.state_filter.empty()) {
      request += ", \"state\": " + server::json_quote(cli.state_filter);
    }
    if (!cli.model_filter.empty()) {
      request += ", \"model\": " + server::json_quote(cli.model_filter);
    }
    if (cli.from_id != 0) {
      request += ", \"from\": " + std::to_string(cli.from_id);
    }
    if (cli.to_id != 0) {
      request += ", \"to\": " + std::to_string(cli.to_id);
    }
    request += "}";
  } else if (op == "resubmit" || op == "campaign") {
    if (id_or_file == nullptr) {
      std::fprintf(stderr, "error: %s needs an id\n", op.c_str());
      return 2;
    }
    request = "{\"op\": \"" + op + "\", \"id\": " +
              std::to_string(parse_count(id_or_file, op.c_str())) + "}";
  } else if (op == "metrics") {
    request = "{\"op\": \"metrics\"}";
  } else if (op == "stats" || op == "ping") {
    request = "{\"op\": \"" + op + "\"}";
  } else if (op == "shutdown") {
    request = std::string("{\"op\": \"shutdown\", \"drain\": ") +
              (cli.drain ? "true" : "false") + "}";
  } else {
    return usage();
  }

  if (op == "wait") {
    // Poll status until the job is terminal (or the timeout runs out).
    // Polls back off exponentially (10 ms doubling to a 500 ms cap) so
    // a long job is not busy-polled at a fixed rate; --poll-ms pins a
    // constant interval instead.
    constexpr std::size_t kPollStartMs = 10;
    constexpr std::size_t kPollCapMs = 500;
    std::size_t poll_ms = cli.poll_ms > 0 ? cli.poll_ms : kPollStartMs;
    server::Client client(endpoint);
    const auto start = std::chrono::steady_clock::now();
    std::size_t polls = 0;
    // How long the wait actually took, on every exit path — scripts
    // timing a pipeline read it off stderr without bracketing the call.
    const auto report_wait = [&] {
      const double waited_ms =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count() *
          1e3;
      std::fprintf(stderr, "waited %.0f ms (%zu poll(s))\n", waited_ms,
                   polls);
    };
    for (;;) {
      const std::string response = client.request(request);
      ++polls;
      const auto json = server::JsonValue::parse(response);
      const server::JsonValue* job = json.find("job");
      if (job == nullptr) {  // error response (unknown id)
        std::printf("%s\n", response.c_str());
        report_wait();
        return kWaitFailed;
      }
      const std::string state = job->string_or("state", "");
      if (state == "done" || state == "failed" || state == "cancelled") {
        std::printf("%s\n", response.c_str());
        report_wait();
        if (state == "done") return kWaitDone;
        return state == "cancelled" ? kWaitCancelled : kWaitFailed;
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (cli.timeout_seconds > 0.0 && elapsed > cli.timeout_seconds) {
        std::fprintf(stderr, "error: timed out after %.0f s (state %s)\n",
                     cli.timeout_seconds, state.c_str());
        report_wait();
        return kWaitTimeout;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      if (cli.poll_ms == 0) poll_ms = std::min(poll_ms * 2, kPollCapMs);
    }
  }

  if (op == "campaign" && (cli.campaign_csv || cli.campaign_table)) {
    // Render the campaign report locally — same philosophy as `metrics
    // --prom`: the server speaks one format (NDJSON), the client
    // reshapes it.
    const std::string response = server::round_trip(endpoint, request);
    const auto json = server::JsonValue::parse(response);
    const server::JsonValue* jobs = json.find("jobs");
    if (!json.bool_or("ok", false) || jobs == nullptr) {
      std::printf("%s\n", response.c_str());
      return 1;
    }
    // "after"/"delta" are null until the replayed job finishes.
    const auto cell = [](const server::JsonValue& job, const char* key) {
      const server::JsonValue* v = job.find(key);
      return v != nullptr && !v->is_null() ? v->as_string()
                                           : std::string("pending");
    };
    if (cli.campaign_csv) {
      std::printf("source,replay,name,delta,before,after\n");
      for (const auto& job : jobs->items()) {
        // Commas/quotes in job names (file paths) get RFC-4180 quoting.
        std::string name = job.string_or("name", "");
        if (name.find_first_of(",\"\n") != std::string::npos) {
          std::string quoted = "\"";
          for (const char c : name) {
            if (c == '"') quoted += '"';
            quoted += c;
          }
          quoted += '"';
          name = quoted;
        }
        std::printf("%llu,%llu,%s,%s,%s,%s\n",
                    static_cast<unsigned long long>(job.uint_or("source", 0)),
                    static_cast<unsigned long long>(job.uint_or("id", 0)),
                    name.c_str(), cell(job, "delta").c_str(),
                    job.string_or("before", "").c_str(),
                    cell(job, "after").c_str());
      }
    } else {
      util::Table table(
          {"source", "replay", "name", "delta", "before", "after"});
      for (const auto& job : jobs->items()) {
        table.add_row({std::to_string(job.uint_or("source", 0)),
                       std::to_string(job.uint_or("id", 0)),
                       job.string_or("name", ""), cell(job, "delta"),
                       job.string_or("before", ""), cell(job, "after")});
      }
      table.print(std::cout);
      const server::JsonValue* deltas = json.find("deltas");
      std::printf("\ncampaign %llu: %llu/%llu classified (%s), deltas: "
                  "%llu identical, %llu numeric, %llu state, "
                  "%llu skipped\n",
                  static_cast<unsigned long long>(json.uint_or("campaign", 0)),
                  static_cast<unsigned long long>(json.uint_or("completed", 0)),
                  static_cast<unsigned long long>(json.uint_or("total", 0)),
                  json.bool_or("done", false) ? "done" : "running",
                  static_cast<unsigned long long>(
                      deltas ? deltas->uint_or("identical", 0) : 0),
                  static_cast<unsigned long long>(
                      deltas ? deltas->uint_or("numeric", 0) : 0),
                  static_cast<unsigned long long>(
                      deltas ? deltas->uint_or("state", 0) : 0),
                  static_cast<unsigned long long>(json.uint_or("skipped", 0)));
    }
    return 0;
  }

  if (op == "metrics" && cli.prom) {
    // Convert the JSON snapshot to Prometheus text exposition locally:
    // the server stays a one-format NDJSON protocol, and anything that
    // can run the client can feed a textfile collector.
    const std::string response = server::round_trip(endpoint, request);
    const auto json = server::JsonValue::parse(response);
    const server::JsonValue* metrics = json.find("metrics");
    if (metrics == nullptr) {
      std::printf("%s\n", response.c_str());
      return 1;
    }
    std::fputs(obs::MetricsSnapshot::from_json(*metrics)
                   .to_prometheus()
                   .c_str(),
               stdout);
    return 0;
  }

  const std::string response = server::round_trip(endpoint, request);
  std::printf("%s\n", response.c_str());
  // Scripting-friendly exit status: "ok": false => 1.
  return response.find("\"ok\": true") != std::string::npos ? 0 : 1;
}

int cmd_gen(const std::string& dir, std::size_t count) {
  fs::create_directories(dir);
  const io::TouchstoneFormat formats[] = {io::TouchstoneFormat::kRI,
                                          io::TouchstoneFormat::kMA,
                                          io::TouchstoneFormat::kDB};
  for (std::size_t i = 0; i < count; ++i) {
    macromodel::SyntheticModelSpec spec;
    spec.ports = 2 + i % 3;
    spec.states = 24 + 12 * (i % 4);
    spec.omega_min = 1.0;
    spec.omega_max = 30.0;
    // Alternate passive / mildly non-passive models.
    spec.target_peak_gain = i % 2 == 0 ? 1.04 : 0.95;
    spec.seed = 2011 + i;
    const auto model = macromodel::make_synthetic_model(spec);
    const auto samples = macromodel::sample_model(model, 0.3, 90.0, 200);

    io::TouchstoneMetadata meta;
    meta.format = formats[i % 3];
    const std::string name = "case" + std::to_string(i + 1) + ".s" +
                             std::to_string(spec.ports) + "p";
    const std::string path = (fs::path(dir) / name).string();
    io::save_touchstone_file(samples, path, meta);
    std::printf("wrote %s (%zu ports, order %zu, peak gain %.2f, %s)\n",
                path.c_str(), spec.ports, spec.states,
                spec.target_peak_gain, io::format_name(meta.format));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") {
      const std::size_t count =
          argc > 3 ? parse_count(argv[3], "count") : 4;
      return cmd_gen(argv[2], count == 0 ? 4 : count);
    }
    if (cmd == "client") {
      // client <socket> <op> [id|file] [flags]
      if (argc < 4) return usage();
      const std::string op = argv[3];
      const bool has_operand =
          argc > 4 && std::strncmp(argv[4], "--", 2) != 0;
      const CliOptions cli =
          parse_flags(argc, argv, has_operand ? 5 : 4);
      return cmd_client(argv[2], op, has_operand ? argv[4] : nullptr, cli);
    }
    const CliOptions cli = parse_flags(argc, argv, 3);
    if (cmd == "run") return cmd_run(argv[2], cli);
    if (cmd == "batch") return cmd_batch(argv[2], cli);
    if (cmd == "serve") return cmd_serve(argv[2], cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
