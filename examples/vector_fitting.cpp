// Vector Fitting workflow: fit a rational macromodel to tabulated
// frequency samples (the paper's Sec. II pipeline), inspect the fit
// quality, and screen the result for passivity.
//
//   ./examples/vector_fitting [ports] [states] [samples]

#include <cstdio>
#include <cstdlib>

#include "phes/core/solver.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/vf/vector_fitting.hpp"

int main(int argc, char** argv) {
  using namespace phes;

  const std::size_t ports = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  const std::size_t states = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 48;
  const std::size_t n_samples =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 400;

  // Stand-in for full-wave solver output: sample a reference rational
  // model on a log grid.  (With measured Touchstone data, fill a
  // FrequencySamples directly.)
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = states;
  spec.omega_min = 1.0;
  spec.omega_max = 40.0;
  spec.target_peak_gain = 1.04;  // slightly non-passive "measurement"
  spec.seed = 7;
  const auto reference = macromodel::make_synthetic_model(spec);
  const auto samples = macromodel::sample_model(reference, 0.2, 120.0,
                                                n_samples);
  std::printf("data: %zu samples of a %zux%zu scattering matrix\n",
              samples.count(), samples.ports(), samples.ports());

  // Fit: one pole set per column (multi-SIMO), matching paper Eq. 2.
  vf::VectorFittingOptions options;
  options.num_poles = states / ports;
  options.iterations = 12;
  const auto fit = vf::vector_fit(samples, options);
  std::printf("vector fitting: %zu poles/column, %zu relocation sweeps\n",
              options.num_poles, fit.iterations_used);
  std::printf("overall relative RMS fit error: %.3e\n", fit.rms_error);
  for (std::size_t k = 0; k < fit.column_rms.size(); ++k) {
    std::printf("  column %zu: rms %.3e, order %zu\n", k, fit.column_rms[k],
                fit.model.columns()[k].order());
  }
  std::printf("fitted model stable: %s\n",
              fit.model.is_stable() ? "yes" : "no");

  // Passivity screen on the fitted model.
  const macromodel::SimoRealization realization(fit.model);
  core::ParallelHamiltonianEigensolver solver(realization);
  core::SolverOptions sopt;
  sopt.threads = 4;
  const auto result = solver.solve(sopt);
  std::printf("\npassivity: %s (%zu crossings, %.3f s)\n",
              result.passive ? "PASSIVE" : "NOT passive",
              result.crossings.size(), result.seconds);
  for (double w : result.crossings) std::printf("  crossing at %.6f\n", w);
  return 0;
}
