// Passivity enforcement workflow on a solver session: characterize a
// non-passive macromodel with the Hamiltonian eigensolver, perturb its
// residues until passive, and verify — with one engine::SolverSession
// carrying the shift-factorization cache and warm-start seeds through
// every stage, so the re-characterizations are cheaper than the first.
//
//   ./examples/passivity_enforcement [states] [ports]

#include <cstdio>
#include <cstdlib>

#include "phes/engine/session.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/passivity/characterization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "phes/passivity/sweep.hpp"

int main(int argc, char** argv) {
  using namespace phes;

  const std::size_t states = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const std::size_t ports = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;

  macromodel::SyntheticModelSpec spec;
  spec.states = states;
  spec.ports = ports;
  spec.omega_min = 1.0;
  spec.omega_max = 30.0;
  spec.target_peak_gain = 1.08;  // clearly non-passive
  spec.seed = 42;
  const auto model = macromodel::make_synthetic_model(spec);

  core::SolverOptions solver_options;
  solver_options.threads = 4;

  // One session for the whole job: the characterize -> enforce ->
  // verify chain shares its factorization cache and warm-start record.
  engine::SolverSession session(model);

  // --- before ---------------------------------------------------------
  const auto before =
      passivity::characterize_passivity(session, solver_options);
  std::printf("before enforcement: %s, %zu crossings, %zu violation bands "
              "(%zu matvecs, cold)\n",
              before.passive ? "PASSIVE" : "NOT passive",
              before.crossings.size(), before.bands.size(),
              before.solver.total_matvecs);
  for (const auto& band : before.bands) {
    std::printf("  band [%.4f, %.4f]: peak sigma %.6f at w = %.4f\n",
                band.omega_lo, band.omega_hi, band.sigma_peak,
                band.omega_peak);
  }

  // --- enforce --------------------------------------------------------
  passivity::EnforcementOptions eopt;
  eopt.solver = solver_options;
  const auto result = passivity::enforce_passivity(session, eopt);
  std::printf("\nenforcement: %s after %zu iterations\n",
              result.success ? "SUCCESS" : "FAILED", result.iterations);
  std::printf("relative model perturbation ||dC||/||C|| = %.3e\n",
              result.relative_model_change);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& it = result.history[i];
    std::printf("  iter %zu: %zu bands, worst sigma %.6f, |dC| %.3e, "
                "%zu matvecs%s, %zu cache hit(s)\n",
                i, it.violation_bands, it.worst_sigma, it.delta_c_norm,
                it.solver_matvecs, it.warm_started ? " (warm)" : "",
                it.cache_hits);
  }

  // --- verify ---------------------------------------------------------
  const auto after =
      passivity::characterize_passivity(session, solver_options);
  std::printf("\nafter enforcement (algebraic): %s "
              "(%zu matvecs, %zu cache hits, %zu rebuilt)\n",
              after.passive ? "PASSIVE" : "NOT passive",
              after.solver.total_matvecs, after.solver.cache_hits,
              after.solver.factorizations);

  passivity::SweepOptions sw;
  sw.omega_min = 1e-2;
  sw.omega_max = 1.5 * model.max_pole_magnitude();
  sw.initial_grid = 1024;
  const auto sweep =
      passivity::sampling_passivity_check(session.realization(), sw);
  std::printf("after enforcement (sweep):     %s, worst sigma %.6f\n",
              sweep.passive ? "PASSIVE" : "NOT passive", sweep.worst_sigma);

  const auto stats = session.stats();
  std::printf("\nsession totals: %zu solves (%zu warm), cache %zu hit / "
              "%zu miss, %zu factorizations built\n",
              stats.solves, stats.warm_solves, stats.cache.hits,
              stats.cache.misses, stats.factorizations);
  return after.passive && sweep.passive ? 0 : 1;
}
