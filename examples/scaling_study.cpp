// Thread-scaling study on one macromodel: a miniature of the paper's
// Fig. 6 protocol, printable in under a minute.
//
//   ./examples/scaling_study [states] [ports] [max_threads]

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "phes/core/solver.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/stats.hpp"
#include "phes/util/table.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace phes;

  const std::size_t states = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;
  const std::size_t ports = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
  const std::size_t max_threads =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10)
               : std::min<std::size_t>(std::thread::hardware_concurrency(), 16);

  macromodel::SyntheticModelSpec spec;
  spec.states = states;
  spec.ports = ports;
  spec.omega_min = 1.0;
  spec.omega_max = 60.0;
  spec.target_peak_gain = 1.08;
  spec.seed = 5;
  spec.gain_tuning_grid = 96;
  const auto model = macromodel::make_synthetic_model(spec);
  const macromodel::SimoRealization realization(model);
  core::ParallelHamiltonianEigensolver solver(realization);

  std::printf("model: n = %zu, p = %zu; sweeping 1..%zu threads\n\n",
              realization.order(), realization.ports(), max_threads);

  // Serial reference.
  core::SolverOptions opt;
  opt.threads = 1;
  opt.seed = 17;
  const auto serial = solver.solve(opt);
  const double tau1 = serial.seconds;

  util::Table table({"threads", "time [s]", "speedup", "shifts", "Omega"});
  table.add_row({"1", util::format_double(tau1, 3), "1.000",
                 std::to_string(serial.shifts_processed),
                 std::to_string(serial.crossings.size())});
  for (std::size_t t = 2; t <= max_threads; t *= 2) {
    opt.threads = t;
    const auto res = solver.solve(opt);
    table.add_row({std::to_string(t), util::format_double(res.seconds, 3),
                   util::format_double(tau1 / res.seconds, 3),
                   std::to_string(res.shifts_processed),
                   std::to_string(res.crossings.size())});
  }
  table.print(std::cout);
  return 0;
}
