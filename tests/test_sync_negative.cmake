# Negative-compile harness for the annotated sync layer (run with
# `cmake -P` as a ctest entry; see CMakeLists.txt).
#
# Proves the thread-safety contracts are *load-bearing*: each snippet
# in tests/sync_negative/ that violates lock discipline must FAIL to
# compile under -Wthread-safety -Werror, and the positive control must
# compile cleanly.  Without this test, a typo that turns the macros
# into no-ops (or a build flag that drops the warning) would silently
# disarm the entire analysis.
#
# Thread Safety Analysis is a Clang extension.  When the configured
# compiler does not support -Wthread-safety (GCC), the script prints
# "[SKIP]" and returns — ctest's SKIP_REGULAR_EXPRESSION reports the
# test as skipped, not passed (cmake 3.25 has no cmake_language(EXIT)
# to produce a skip return code from a -P script).  CI runs a Clang
# job where the skip cannot happen.
#
# Expected -D inputs:
#   PHES_CXX_COMPILER  the compiler driver to test with
#   PHES_SOURCE_DIR    repository root (for include/ and the snippets)
#   PHES_WORK_DIR      scratch directory for objects

if(NOT PHES_CXX_COMPILER OR NOT PHES_SOURCE_DIR OR NOT PHES_WORK_DIR)
  message(FATAL_ERROR "test_sync_negative: PHES_CXX_COMPILER, "
                      "PHES_SOURCE_DIR and PHES_WORK_DIR are required")
endif()

file(MAKE_DIRECTORY "${PHES_WORK_DIR}")

set(snippet_dir "${PHES_SOURCE_DIR}/tests/sync_negative")
set(flags
    -std=c++20 -c
    -I "${PHES_SOURCE_DIR}/include"
    -Wthread-safety -Werror)

function(phes_compile snippet out_result out_log)
  execute_process(
    COMMAND "${PHES_CXX_COMPILER}" ${flags}
            "${snippet_dir}/${snippet}.cpp"
            -o "${PHES_WORK_DIR}/${snippet}.o"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE log
    ERROR_VARIABLE log)
  set(${out_result} "${result}" PARENT_SCOPE)
  set(${out_log} "${log}" PARENT_SCOPE)
endfunction()

# ---- Support probe + positive control ---------------------------------
# One compile answers both questions: an unsupported -Wthread-safety
# (GCC: "unrecognized command-line option") means skip; any other
# failure means the harness itself is broken.

phes_compile(positive_control result log)
if(NOT result EQUAL 0)
  if(log MATCHES "unrecognized command[- ]line option|unknown warning option|unknown argument")
    message(STATUS "[SKIP] compiler has no -Wthread-safety")
    return()
  endif()
  message(FATAL_ERROR
          "positive control failed to compile under -Wthread-safety — "
          "the harness flags or sync.hpp are broken:\n${log}")
endif()

# ---- Negative cases ---------------------------------------------------
# Each must be rejected, and rejected BY THE ANALYSIS (the diagnostic
# must come from -Wthread-safety*), not by an unrelated error.

set(negative_cases unguarded_access unreleased_lock excludes_violation)
set(failures "")

foreach(case IN LISTS negative_cases)
  phes_compile("${case}" result log)
  if(result EQUAL 0)
    list(APPEND failures
         "${case}: compiled cleanly — the analysis did not fire")
  elseif(NOT log MATCHES "-Wthread-safety")
    list(APPEND failures
         "${case}: rejected, but not by the thread-safety analysis:\n${log}")
  else()
    message(STATUS "${case}: rejected by the analysis, as required")
  endif()
endforeach()

if(failures)
  list(JOIN failures "\n" failure_text)
  message(FATAL_ERROR "negative-compile failures:\n${failure_text}")
endif()

message(STATUS "test_sync_negative: all contracts enforced")
