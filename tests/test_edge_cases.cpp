// Edge cases and stress scenarios across the pipeline: degenerate model
// structures, repeated poles, near-threshold spectra, tiny systems, and
// solver behaviour at band boundaries.

#include <gtest/gtest.h>

#include <cmath>

#include "phes/core/solver.hpp"
#include "phes/hamiltonian/analysis.hpp"
#include "phes/hamiltonian/dense.hpp"
#include "phes/la/schur.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/pole_residue.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::Complex;
using macromodel::PoleResidueColumn;
using macromodel::PoleResidueModel;
using macromodel::SimoRealization;

la::RealVector dense_truth(const SimoRealization& simo, double scale) {
  const auto m = hamiltonian::build_scattering_hamiltonian(simo.to_dense());
  return hamiltonian::extract_imaginary_frequencies(
      la::real_eigenvalues(m), 1e-8, scale);
}

core::SolverResult solve(const SimoRealization& simo,
                         std::size_t threads = 2) {
  core::ParallelHamiltonianEigensolver solver(simo);
  core::SolverOptions opt;
  opt.threads = threads;
  return solver.solve(opt);
}

TEST(EdgeCases, SisoModelWorksEndToEnd) {
  // Single-port model: p = 1, SIMO degenerates to SISO.
  macromodel::RealMatrix d{{0.2}};
  std::vector<PoleResidueColumn> cols(1);
  cols[0].complex_terms.push_back(
      {Complex(-0.05, 2.0), {Complex(0.8, 0.3)}});
  cols[0].complex_terms.push_back(
      {Complex(-0.2, 5.0), {Complex(-0.5, 0.6)}});
  cols[0].real_terms.push_back({-1.0, {0.4}});
  const PoleResidueModel model(d, cols);
  const SimoRealization simo(model);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  const auto res = solve(simo);
  EXPECT_TRUE(test::frequencies_match(res.crossings, truth,
                                      1e-5 * model.max_pole_magnitude()));
}

TEST(EdgeCases, RealPolesOnlyModel) {
  // No complex pairs at all: A is purely diagonal.
  macromodel::RealMatrix d(2, 2);
  d(0, 0) = 0.1;
  d(1, 1) = -0.1;
  std::vector<PoleResidueColumn> cols(2);
  util::Rng rng(8);
  for (std::size_t k = 0; k < 2; ++k) {
    for (int i = 0; i < 6; ++i) {
      cols[k].real_terms.push_back(
          {-0.5 * (i + 1), {2.0 * rng.normal(), 2.0 * rng.normal()}});
    }
  }
  const PoleResidueModel model(d, cols);
  const SimoRealization simo(model);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  const auto res = solve(simo);
  EXPECT_TRUE(test::frequencies_match(res.crossings, truth,
                                      1e-5 * model.max_pole_magnitude()));
}

TEST(EdgeCases, RepeatedPolesAcrossColumns) {
  // Identical pole sets in every column: the Hamiltonian spectrum has
  // clustered eigenvalues, stressing the dedup/cluster logic.
  macromodel::RealMatrix d(3, 3);
  for (int i = 0; i < 3; ++i) d(i, i) = 0.15;
  std::vector<PoleResidueColumn> cols(3);
  util::Rng rng(9);
  for (std::size_t k = 0; k < 3; ++k) {
    for (int i = 0; i < 3; ++i) {
      macromodel::ComplexPoleTerm t;
      t.pole = Complex(-0.1 * (i + 1), 1.0 + i);  // same poles per column
      t.residue.resize(3);
      for (auto& r : t.residue) r = Complex(rng.normal(), rng.normal());
      cols[k].complex_terms.push_back(std::move(t));
    }
  }
  const PoleResidueModel model(d, cols);
  const SimoRealization simo(model);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  const auto res = solve(simo);
  EXPECT_TRUE(test::frequencies_match(res.crossings, truth,
                                      1e-4 * model.max_pole_magnitude()));
}

TEST(EdgeCases, StronglyUnevenColumnOrders) {
  // One column holds almost all the dynamics.
  macromodel::RealMatrix d(2, 2);
  d(0, 0) = 0.1;
  d(1, 1) = 0.1;
  std::vector<PoleResidueColumn> cols(2);
  util::Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    macromodel::ComplexPoleTerm t;
    t.pole = Complex(-0.05 * (i + 1), 0.8 + 0.5 * i);
    t.residue = {Complex(rng.normal(), rng.normal()),
                 Complex(rng.normal(), rng.normal())};
    cols[0].complex_terms.push_back(std::move(t));
  }
  cols[1].real_terms.push_back({-2.0, {0.3, 0.7}});
  const PoleResidueModel model(d, cols);
  const SimoRealization simo(model);
  EXPECT_EQ(simo.order(), 21u);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  const auto res = solve(simo);
  EXPECT_TRUE(test::frequencies_match(res.crossings, truth,
                                      1e-5 * model.max_pole_magnitude()));
}

TEST(EdgeCases, TinySystem) {
  // Smallest meaningful system: one pair, one port (2 states, 4x4
  // Hamiltonian).
  macromodel::RealMatrix d{{0.1}};
  std::vector<PoleResidueColumn> cols(1);
  cols[0].complex_terms.push_back({Complex(-0.02, 1.0), {Complex(1.2, 0.0)}});
  const PoleResidueModel model(d, cols);
  const SimoRealization simo(model);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  const auto res = solve(simo, 1);
  EXPECT_TRUE(test::frequencies_match(res.crossings, truth,
                                      1e-6 * model.max_pole_magnitude()));
}

TEST(EdgeCases, GrazingSpectrumJustBelowThreshold) {
  // Peak gain 0.999: eigenvalues hover near the axis without touching.
  macromodel::SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 30;
  spec.target_peak_gain = 0.999;
  spec.seed = 77;
  const auto model = macromodel::make_synthetic_model(spec);
  const SimoRealization simo(model);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  const auto res = solve(simo);
  EXPECT_EQ(res.crossings.size(), truth.size());
}

TEST(EdgeCases, NarrowExplicitBandAroundOneCrossing) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 36;
  spec.target_peak_gain = 1.08;
  spec.seed = 31;
  const auto model = macromodel::make_synthetic_model(spec);
  const SimoRealization simo(model);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  ASSERT_GE(truth.size(), 2u);
  const double target = truth[truth.size() / 2];

  core::ParallelHamiltonianEigensolver solver(simo);
  core::SolverOptions opt;
  opt.threads = 2;
  opt.omega_min = target * 0.98;
  opt.omega_max = target * 1.02;
  const auto res = solver.solve(opt);
  // The targeted crossing must be found.
  double best = 1e300;
  for (double w : res.crossings) best = std::min(best, std::abs(w - target));
  EXPECT_LT(best, 1e-5 * model.max_pole_magnitude());
}

TEST(EdgeCases, SeedChangesNotResult) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 30;
  spec.target_peak_gain = 1.07;
  spec.seed = 55;
  const auto model = macromodel::make_synthetic_model(spec);
  const SimoRealization simo(model);
  core::ParallelHamiltonianEigensolver solver(simo);
  la::RealVector reference;
  for (std::uint64_t seed : {1u, 2u, 99u}) {
    core::SolverOptions opt;
    opt.threads = 2;
    opt.seed = seed;
    const auto res = solver.solve(opt);
    if (reference.empty()) {
      reference = res.crossings;
    } else {
      EXPECT_TRUE(test::frequencies_match(
          res.crossings, reference, 1e-5 * model.max_pole_magnitude()))
          << "solver result depends on the RNG seed";
    }
  }
}

TEST(EdgeCases, ZeroDTermModel) {
  // D = 0 keeps R = -I, S = -I well conditioned; pipeline must work.
  macromodel::SyntheticModelSpec spec;
  spec.ports = 2;
  spec.states = 20;
  spec.target_peak_gain = 1.05;
  spec.d_norm = 0.0;
  spec.seed = 66;
  const auto model = macromodel::make_synthetic_model(spec);
  const SimoRealization simo(model);
  const auto truth = dense_truth(simo, model.max_pole_magnitude());
  const auto res = solve(simo);
  EXPECT_TRUE(test::frequencies_match(res.crossings, truth,
                                      1e-5 * model.max_pole_magnitude()));
}

}  // namespace
}  // namespace phes
