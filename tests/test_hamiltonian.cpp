// Tests for the Hamiltonian machinery: dense builder (Eq. 5), implicit
// operator, SMW shift-and-invert (Eq. 6), and spectrum analysis.
//
// The two highest-value checks live here:
//  1. SMW apply == dense complex LU solve of (M - theta I) x;
//  2. imaginary Hamiltonian eigenvalues == unit singular-value
//     crossing frequencies of H(jw).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "phes/hamiltonian/analysis.hpp"
#include "phes/hamiltonian/dense.hpp"
#include "phes/hamiltonian/implicit_op.hpp"
#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/schur.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using hamiltonian::build_scattering_hamiltonian;
using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;
using la::RealMatrix;
using macromodel::make_synthetic_model;
using macromodel::SimoRealization;
using macromodel::SyntheticModelSpec;

macromodel::PoleResidueModel small_model(double peak, std::uint64_t seed) {
  SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 24;
  spec.target_peak_gain = peak;
  spec.seed = seed;
  return make_synthetic_model(spec);
}

TEST(DenseHamiltonian, HasHamiltonianBlockStructure) {
  // J M must be symmetric, J = [[0, I], [-I, 0]].
  const auto model = small_model(1.05, 1);
  const SimoRealization simo(model);
  const RealMatrix m = build_scattering_hamiltonian(simo.to_dense());
  const std::size_t n = simo.order();
  ASSERT_EQ(m.rows(), 2 * n);
  RealMatrix jm(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 2 * n; ++j) {
      jm(i, j) = m(n + i, j);
      jm(n + i, j) = -m(i, j);
    }
  }
  EXPECT_LT(test::max_abs_diff(jm, la::transpose(jm)), 1e-10);
}

TEST(DenseHamiltonian, SpectrumHasQuadrupleSymmetry) {
  const auto model = small_model(1.05, 2);
  const SimoRealization simo(model);
  const RealMatrix m = build_scattering_hamiltonian(simo.to_dense());
  const auto spectrum = la::real_eigenvalues(m);
  EXPECT_TRUE(hamiltonian::has_hamiltonian_symmetry(spectrum, 1e-6));
}

TEST(DenseHamiltonian, RejectsNonAsymptoticallyPassiveD) {
  auto model = small_model(1.05, 3);
  auto& d = model.d();
  for (std::size_t i = 0; i < d.rows(); ++i) d(i, i) = 1.5;  // sigma > 1
  const SimoRealization simo(model);
  EXPECT_THROW(build_scattering_hamiltonian(simo.to_dense()),
               std::invalid_argument);
}

TEST(DenseHamiltonian, ImaginaryEigenvaluesAreSingularValueCrossings) {
  // Ground truth for the entire method: at each extracted crossing
  // frequency, some singular value of H(jw) must equal 1.
  const auto model = small_model(1.06, 4);
  const SimoRealization simo(model);
  const RealMatrix m = build_scattering_hamiltonian(simo.to_dense());
  const auto spectrum = la::real_eigenvalues(m);
  const double scale = model.max_pole_magnitude();
  const auto freqs =
      hamiltonian::extract_imaginary_frequencies(spectrum, 1e-8, scale);
  ASSERT_FALSE(freqs.empty()) << "peak gain 1.06 must produce crossings";
  for (double w : freqs) {
    const auto sigma = la::complex_singular_values(model.eval(w));
    double closest = 1e300;
    for (double s : sigma) closest = std::min(closest, std::abs(s - 1.0));
    EXPECT_LT(closest, 1e-6) << "no unit singular value at w=" << w;
  }
}

TEST(DenseHamiltonian, PassiveModelHasNoImaginaryEigenvalues) {
  const auto model = small_model(0.75, 5);
  const SimoRealization simo(model);
  const RealMatrix m = build_scattering_hamiltonian(simo.to_dense());
  const auto spectrum = la::real_eigenvalues(m);
  const auto freqs = hamiltonian::extract_imaginary_frequencies(
      spectrum, 1e-8, model.max_pole_magnitude());
  EXPECT_TRUE(freqs.empty());
}

TEST(DenseHamiltonian, ImmittanceBuilderIsHamiltonian) {
  const auto model = small_model(0.9, 6);
  const SimoRealization simo(model);
  auto dense = simo.to_dense();
  // Make D + D^T safely nonsingular.
  for (std::size_t i = 0; i < dense.d.rows(); ++i) dense.d(i, i) += 2.0;
  const RealMatrix m = hamiltonian::build_immittance_hamiltonian(dense);
  const std::size_t n = dense.order();
  RealMatrix jm(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 2 * n; ++j) {
      jm(i, j) = m(n + i, j);
      jm(n + i, j) = -m(i, j);
    }
  }
  EXPECT_LT(test::max_abs_diff(jm, la::transpose(jm)), 1e-10);
}

TEST(DenseHamiltonian, ImmittanceImaginaryEigenvaluesAreHermitianPartZeros) {
  // For an immittance representation Y(s), passivity is positive
  // realness: lambda_min of the Hermitian part He(Y(jw)) >= 0.  The
  // immittance Hamiltonian's imaginary eigenvalues mark the zero
  // crossings of those eigenvalues.
  const auto model = small_model(0.9, 8);
  const SimoRealization simo(model);
  auto dense = simo.to_dense();
  // Shift D so Q = D + D^T is safely nonsingular but He(Y) still dips
  // negative somewhere (non-passive immittance model).
  for (std::size_t i = 0; i < dense.d.rows(); ++i) dense.d(i, i) += 0.4;

  const RealMatrix m = hamiltonian::build_immittance_hamiltonian(dense);
  const auto spectrum = la::real_eigenvalues(m);
  const auto freqs = hamiltonian::extract_imaginary_frequencies(
      spectrum, 1e-8, model.max_pole_magnitude());

  std::size_t checked = 0;
  for (double w : freqs) {
    const ComplexMatrix y = dense.eval(w);
    ComplexMatrix herm(y.rows(), y.cols());
    for (std::size_t i = 0; i < y.rows(); ++i) {
      for (std::size_t j = 0; j < y.cols(); ++j) {
        herm(i, j) = 0.5 * (y(i, j) + std::conj(y(j, i)));
      }
    }
    const auto eig = la::hermitian_eig(herm, false);
    double closest = 1e300;
    for (double lambda : eig.values) {
      closest = std::min(closest, std::abs(lambda));
    }
    EXPECT_LT(closest, 1e-6)
        << "no Hermitian-part eigenvalue crossing zero at w=" << w;
    ++checked;
  }
  // The shifted model should actually produce crossings; if not, the
  // test validates nothing.
  EXPECT_GT(checked, 0u);
}

TEST(ImplicitOp, MatchesDenseHamiltonian) {
  const auto model = small_model(1.05, 7);
  const SimoRealization simo(model);
  const RealMatrix m = build_scattering_hamiltonian(simo.to_dense());
  const hamiltonian::ImplicitHamiltonianOp op(simo);
  ASSERT_EQ(op.dim(), m.rows());

  util::Rng rng(11);
  ComplexVector x(op.dim()), y(op.dim());
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  op.apply(x, y);
  const auto y_ref =
      la::gemv_real_complex(m, std::span<const Complex>(x));
  double worst = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    worst = std::max(worst, std::abs(y[i] - y_ref[i]));
  }
  EXPECT_LT(worst, 1e-9 * (1.0 + la::nrm2<Complex>(y_ref)));
}

class SmwProperty : public ::testing::TestWithParam<int> {};

TEST_P(SmwProperty, MatchesDenseLuSolve) {
  const auto model = small_model(1.05, 20 + GetParam());
  const SimoRealization simo(model);
  const RealMatrix m = build_scattering_hamiltonian(simo.to_dense());
  const std::size_t dim = m.rows();

  util::Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  // Shifts on and near the imaginary axis, as the solver uses them.
  const double wmax = model.max_pole_magnitude();
  const Complex theta(0.1 * rng.normal(), rng.uniform(0.1, 1.2) * wmax);

  const hamiltonian::SmwShiftInvertOp op(simo, theta);
  ComplexVector x(dim), y(dim);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  op.apply(x, y);

  // Dense reference: (M - theta I) y_ref = x.
  ComplexMatrix shifted = la::to_complex(m);
  for (std::size_t i = 0; i < dim; ++i) shifted(i, i) -= theta;
  const auto y_ref = la::lu_solve(shifted, x);

  double worst = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    worst = std::max(worst, std::abs(y[i] - y_ref[i]));
  }
  EXPECT_LT(worst, 1e-8 * (1.0 + la::nrm2<Complex>(y_ref)))
      << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Shifts, SmwProperty, ::testing::Range(0, 8));

TEST(SmwOp, ApplyInvertsShiftedHamiltonian) {
  // Forward check without any dense factorization: M (SMW x) - theta
  // (SMW x) == x using the implicit M operator.
  const auto model = small_model(1.05, 31);
  const SimoRealization simo(model);
  const hamiltonian::ImplicitHamiltonianOp m_op(simo);
  const Complex theta(0.0, 0.6 * model.max_pole_magnitude());
  const hamiltonian::SmwShiftInvertOp inv_op(simo, theta);

  util::Rng rng(17);
  ComplexVector x(m_op.dim()), y(m_op.dim()), my(m_op.dim());
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  inv_op.apply(x, y);
  m_op.apply(y, my);
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(my[i] - theta * y[i] - x[i]));
  }
  EXPECT_LT(worst, 1e-8 * (1.0 + la::nrm2<Complex>(x)));
}

TEST(Analysis, ExtractImaginaryFrequencies) {
  const ComplexVector spectrum{
      Complex(0.0, 2.0),  Complex(0.0, -2.0), Complex(-1.0, 3.0),
      Complex(1.0, 3.0),  Complex(1e-12, 5.0), Complex(-1e-12, -5.0),
      Complex(-0.5, 0.0)};
  const auto freqs =
      hamiltonian::extract_imaginary_frequencies(spectrum, 1e-8, 1.0);
  ASSERT_EQ(freqs.size(), 2u);
  EXPECT_NEAR(freqs[0], 2.0, 1e-12);
  EXPECT_NEAR(freqs[1], 5.0, 1e-12);
}

TEST(Analysis, SymmetryDetector) {
  EXPECT_TRUE(hamiltonian::has_hamiltonian_symmetry(
      {Complex(1.0, 2.0), Complex(-1.0, 2.0)}, 1e-12));
  EXPECT_FALSE(hamiltonian::has_hamiltonian_symmetry(
      {Complex(1.0, 2.0), Complex(1.0, -2.0)}, 1e-12));
}

}  // namespace
}  // namespace phes
