// util::JsonValue edge cases: escape handling, nesting-depth bound,
// number parsing at the edges (exponents, -0, overflow, partial
// consumption), document-order member enumeration, and the trailing-
// content guard.  The parser feeds every protocol request and every
// stored job record, so its failure mode must be a clean exception.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "phes/util/json.hpp"

namespace phes {
namespace {

using util::JsonValue;

std::string parse_error(const std::string& text) {
  try {
    (void)JsonValue::parse(text);
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(Json, StringEscapesDecode) {
  const auto v = JsonValue::parse(
      R"({"s": "a\"b\\c\/d\b\f\n\r\t"})");
  EXPECT_EQ(v.string_or("s", ""), "a\"b\\c/d\b\f\n\r\t");
}

TEST(Json, UnicodeEscapesEncodeMinimalUtf8) {
  EXPECT_EQ(JsonValue::parse(R"("\u0041")").as_string(), "A");
  // 2-byte and 3-byte code points.
  EXPECT_EQ(JsonValue::parse(R"("\u00e9")").as_string(), "\xC3\xA9");
  EXPECT_EQ(JsonValue::parse(R"("\u20AC")").as_string(), "\xE2\x82\xAC");
  // Control characters are what the writer actually emits \u for.
  EXPECT_EQ(JsonValue::parse(R"("\u0001")").as_string(), "\x01");
}

TEST(Json, MalformedEscapesThrow) {
  EXPECT_NE(parse_error(R"("\q")").find("unknown escape"),
            std::string::npos);
  EXPECT_NE(parse_error(R"("\u12)").find("truncated \\u escape"),
            std::string::npos);
  EXPECT_NE(parse_error(R"("\uzzzz")").find("bad \\u escape digit"),
            std::string::npos);
  EXPECT_NE(parse_error("\"unterminated").find("unterminated string"),
            std::string::npos);
}

TEST(Json, NestingDepthIsBoundedAt64) {
  std::string ok, too_deep;
  for (int i = 0; i < 64; ++i) ok += '[';
  for (int i = 0; i < 64; ++i) ok += ']';
  EXPECT_NO_THROW((void)JsonValue::parse(ok));
  for (int i = 0; i < 65; ++i) too_deep += '[';
  for (int i = 0; i < 65; ++i) too_deep += ']';
  EXPECT_NE(parse_error(too_deep).find("nesting too deep"),
            std::string::npos);
  // Mixed object/array nesting counts against the same bound.
  std::string mixed;
  for (int i = 0; i < 33; ++i) mixed += "{\"k\": [";
  EXPECT_NE(parse_error(mixed + "1").find("nesting too deep"),
            std::string::npos);
}

TEST(Json, NumberEdgeCases) {
  EXPECT_DOUBLE_EQ(JsonValue::parse("1.5e3").as_number(), 1500.0);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2E-2").as_number(), 0.02);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-0").as_number(), 0.0);
  EXPECT_EQ(JsonValue::parse("-0").as_uint(), 0u);
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.25").as_number(), -12.25);
  // Overflowing the double range is a parse error, not infinity.
  EXPECT_NE(parse_error("1e400").find("bad number"), std::string::npos);
  // Partially-consumable garbage is rejected, not truncated.
  EXPECT_NE(parse_error("1.2.3").find("bad number"), std::string::npos);
  EXPECT_NE(parse_error("1e"), "");
  EXPECT_NE(parse_error("-"), "");
}

TEST(Json, AsUintRejectsNegativesAndFractions) {
  EXPECT_EQ(JsonValue::parse("7").as_uint(), 7u);
  EXPECT_THROW((void)JsonValue::parse("-3").as_uint(),
               std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("1.5").as_uint(),
               std::runtime_error);
}

TEST(Json, MembersPreserveDocumentOrderIncludingDuplicates) {
  const auto v = JsonValue::parse(
      R"({"z": 1, "a": 2, "m": 3, "z": 4})");
  const auto& members = v.members();
  ASSERT_EQ(members.size(), 4u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
  EXPECT_EQ(members[3].first, "z");
  // find() resolves duplicates to the first occurrence.
  EXPECT_DOUBLE_EQ(v.find("z")->as_number(), 1.0);
}

TEST(Json, TrailingContentAndBareGarbageThrow) {
  EXPECT_NE(parse_error("{} extra").find("trailing content"),
            std::string::npos);
  EXPECT_NE(parse_error("0x10").find("trailing content"),
            std::string::npos);
  EXPECT_NE(parse_error("").find("unexpected end of input"),
            std::string::npos);
  EXPECT_NE(parse_error("tru").find("bad literal"), std::string::npos);
  EXPECT_NE(parse_error("@").find("unexpected character"),
            std::string::npos);
}

TEST(Json, TypeMismatchesThrowCleanly) {
  const auto v = JsonValue::parse(R"({"n": 1, "s": "x", "a": []})");
  EXPECT_THROW((void)v.find("n")->as_string(), std::runtime_error);
  EXPECT_THROW((void)v.find("s")->as_number(), std::runtime_error);
  EXPECT_THROW((void)v.find("a")->members(), std::runtime_error);
  EXPECT_THROW((void)v.items(), std::runtime_error);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(JsonValue::parse("null").type(), JsonValue::Type::kNull);
  EXPECT_EQ(JsonValue::parse("[1]").find("k"), nullptr)
      << "find on a non-object is nullptr, not a throw";
}

}  // namespace
}  // namespace phes
