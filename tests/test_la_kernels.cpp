// Kernel-layer tests: the tuned/reference backend contract.
//
//  - the always-on blocked BLAS paths (gemv, gemv_transposed,
//    solve_many, the mixed real/complex products) are BIT-identical to
//    the naive loops they replaced;
//  - nrm2 survives entries near DBL_MAX / DBL_MIN (scaled rescue pass);
//  - gemv_transposed on Complex applies the plain (dotu-style)
//    transpose, without conjugation — regression for the old doc bug;
//  - the tuned operator paths (ImplicitHamiltonianOp, SmwShiftInvertOp,
//    arnoldi CGS2) agree with the reference backend to rounding on the
//    solver's real shapes, and are deterministic: bit-identical across
//    repeated and concurrent applies for a fixed backend.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "phes/core/arnoldi.hpp"
#include "phes/hamiltonian/implicit_op.hpp"
#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/blas.hpp"
#include "phes/la/kernels.hpp"
#include "phes/la/lu.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/rng.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;
using la::KernelBackend;
using la::RealMatrix;
using la::RealVector;

ComplexVector random_complex_vector(std::size_t n, util::Rng& rng) {
  ComplexVector v(n);
  for (auto& x : v) x = Complex(rng.normal(), rng.normal());
  return v;
}

RealVector random_real_vector(std::size_t n, util::Rng& rng) {
  RealVector v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

// ---- backend parsing ---------------------------------------------------

TEST(KernelBackendTest, ParseAndName) {
  EXPECT_EQ(la::parse_kernel_backend("tuned"), KernelBackend::kTuned);
  EXPECT_EQ(la::parse_kernel_backend("reference"),
            KernelBackend::kReference);
  EXPECT_STREQ(la::kernel_backend_name(KernelBackend::kTuned), "tuned");
  EXPECT_STREQ(la::kernel_backend_name(KernelBackend::kReference),
               "reference");
  EXPECT_THROW((void)la::parse_kernel_backend("fast"),
               std::invalid_argument);
  EXPECT_THROW((void)la::parse_kernel_backend(""), std::invalid_argument);
}

// ---- nrm2 extreme ranges ----------------------------------------------

TEST(Nrm2Test, OverflowSafe) {
  // Naive sum of squares overflows (3e200^2 = 9e400 > DBL_MAX); the
  // scaled pass must recover the 3-4-5 triangle exactly.
  const RealVector v{3e200, 4e200};
  EXPECT_DOUBLE_EQ(la::nrm2<double>(v), 5e200);
  const ComplexVector c{Complex(3e200, 0.0), Complex(0.0, 4e200)};
  EXPECT_DOUBLE_EQ(la::nrm2<Complex>(c), 5e200);
}

TEST(Nrm2Test, UnderflowSafe) {
  // Each square underflows to 0 exactly; naive nrm2 would report 0 for
  // a manifestly nonzero vector.
  const RealVector v{3e-200, 4e-200};
  EXPECT_DOUBLE_EQ(la::nrm2<double>(v), 5e-200);
  const RealVector tiny(7, 1e-300);
  EXPECT_NEAR(la::nrm2<double>(tiny), std::sqrt(7.0) * 1e-300,
              1e-315);
}

TEST(Nrm2Test, ZeroAndNormalRange) {
  const RealVector zero(5, 0.0);
  EXPECT_EQ(la::nrm2<double>(zero), 0.0);
  EXPECT_EQ(la::nrm2<double>(RealVector{}), 0.0);
  // Normal range keeps the historical bit pattern (plain sqrt of the
  // naive accumulation).
  util::Rng rng(11);
  const RealVector v = random_real_vector(33, rng);
  double acc = 0.0;
  for (double x : v) acc += x * x;
  EXPECT_EQ(la::nrm2<double>(v), std::sqrt(acc));
}

TEST(Nrm2Test, NanPropagates) {
  const RealVector v{1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_TRUE(std::isnan(la::nrm2<double>(v)));
}

// ---- blocked BLAS = naive loops, bit for bit --------------------------

TEST(BlockedBlasTest, GemvBitIdenticalToNaive) {
  util::Rng rng(21);
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{5, 7},
                            {6, 7},
                            {1, 9},
                            {17, 3}}) {
    RealMatrix a = test::random_real_matrix(m, n, rng);
    const RealVector x = random_real_vector(n, rng);
    const RealVector y = la::gemv(a, std::span<const double>(x));
    ASSERT_EQ(y.size(), m);
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += a(i, j) * x[j];
      EXPECT_EQ(y[i], acc) << "row " << i << " of " << m << "x" << n;
    }
  }
}

TEST(BlockedBlasTest, GemvTransposedBitIdenticalToNaive) {
  util::Rng rng(22);
  for (const auto& [m, n] : {std::pair<std::size_t, std::size_t>{5, 7},
                            {6, 7},
                            {1, 9},
                            {16, 4}}) {
    ComplexMatrix a = test::random_complex_matrix(m, n, rng);
    const ComplexVector x = random_complex_vector(m, rng);
    const ComplexVector y =
        la::gemv_transposed(a, std::span<const Complex>(x));
    ASSERT_EQ(y.size(), n);
    // Naive loop in the SAME i-ascending order the kernel guarantees.
    ComplexVector expect(n, Complex{});
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) expect[j] += a(i, j) * x[i];
    }
    for (std::size_t j = 0; j < n; ++j) EXPECT_EQ(y[j], expect[j]);
  }
}

TEST(BlockedBlasTest, GemvTransposedComplexDoesNotConjugate) {
  // Regression: the doc used to call this "(real)"; the kernel is the
  // plain dotu-style transpose for Complex — no conjugation of A.
  ComplexMatrix a(2, 1);
  a(0, 0) = Complex(0.0, 1.0);
  a(1, 0) = Complex(2.0, -3.0);
  const ComplexVector x{Complex(1.0, 0.0), Complex(0.0, 1.0)};
  const ComplexVector y =
      la::gemv_transposed(a, std::span<const Complex>(x));
  // y[0] = i*1 + (2-3i)*i = i + 2i + 3 = 3 + 3i.  Conjugating A would
  // give -i*1 + (2+3i)*i = -i + 2i - 3 = -3 + i instead.
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(y[0], Complex(3.0, 3.0));
}

TEST(BlockedBlasTest, MixedRealComplexProductsBitIdentical) {
  util::Rng rng(23);
  for (std::size_t m : {4u, 5u}) {
    const RealMatrix a = test::random_real_matrix(m, 7, rng);
    const ComplexVector x = random_complex_vector(7, rng);
    const ComplexVector xt = random_complex_vector(m, rng);
    const ComplexVector y = la::gemv_real_complex(a, x);
    const ComplexVector yt = la::gemv_transposed_real_complex(a, xt);
    for (std::size_t i = 0; i < m; ++i) {
      Complex acc{};
      for (std::size_t j = 0; j < 7; ++j) acc += a(i, j) * x[j];
      EXPECT_EQ(y[i], acc);
    }
    ComplexVector expect(7, Complex{});
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < 7; ++j) expect[j] += a(i, j) * xt[i];
    }
    for (std::size_t j = 0; j < 7; ++j) EXPECT_EQ(yt[j], expect[j]);
  }
}

TEST(SolveManyTest, BitIdenticalToColumnwiseSolve) {
  util::Rng rng(31);
  // Real R/S-shaped systems and the complex 2p x 2p SMW kernel shape.
  for (const std::size_t n : {4u, 9u, 16u}) {
    RealMatrix a = test::random_real_matrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0;  // well-posed
    const la::LuFactorization<double> lu(a);
    RealMatrix b(n, 4);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < 4; ++c) b(i, c) = rng.normal();
    }
    const RealMatrix x = lu.solve_many(b);
    for (std::size_t c = 0; c < 4; ++c) {
      RealVector col(n);
      for (std::size_t i = 0; i < n; ++i) col[i] = b(i, c);
      const RealVector ref = lu.solve(col);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(x(i, c), ref[i]) << "n=" << n << " col=" << c;
      }
    }
  }
  for (const std::size_t p : {3u, 8u}) {
    ComplexMatrix k = test::random_complex_matrix(2 * p, 2 * p, rng);
    for (std::size_t i = 0; i < 2 * p; ++i) k(i, i) += Complex(5.0, 0.0);
    const la::LuFactorization<Complex> lu(k);
    ComplexMatrix b(2 * p, 3);
    for (std::size_t i = 0; i < 2 * p; ++i) {
      for (std::size_t c = 0; c < 3; ++c) {
        b(i, c) = Complex(rng.normal(), rng.normal());
      }
    }
    const ComplexMatrix x = lu.solve_many(b);
    for (std::size_t c = 0; c < 3; ++c) {
      ComplexVector col(2 * p);
      for (std::size_t i = 0; i < 2 * p; ++i) col[i] = b(i, c);
      const ComplexVector ref = lu.solve(col);
      for (std::size_t i = 0; i < 2 * p; ++i) EXPECT_EQ(x(i, c), ref[i]);
    }
  }
}

// ---- tuned kernels vs. naive reductions -------------------------------

TEST(TunedKernelsTest, DotcAndAxpyMatchNaive) {
  util::Rng rng(41);
  const std::size_t dim = 37;
  for (const std::size_t count : {1u, 2u, 5u, 8u}) {
    ComplexMatrix rows = test::random_complex_matrix(count, dim, rng);
    ComplexVector w = random_complex_vector(dim, rng);
    std::vector<Complex> proj(count);
    la::kernels::dotc_rows(rows.row_ptr(0), dim, count, w.data(), dim,
                           proj.data());
    for (std::size_t j = 0; j < count; ++j) {
      Complex expect{};
      for (std::size_t i = 0; i < dim; ++i) {
        expect += std::conj(rows(j, i)) * w[i];
      }
      EXPECT_NEAR(std::abs(proj[j] - expect), 0.0, 1e-12 * dim);
    }
    ComplexVector w2 = w;
    la::kernels::axpy_rows(rows.row_ptr(0), dim, count, proj.data(),
                           w2.data(), dim);
    for (std::size_t i = 0; i < dim; ++i) {
      Complex expect = w[i];
      for (std::size_t j = 0; j < count; ++j) {
        expect -= proj[j] * rows(j, i);
      }
      EXPECT_NEAR(std::abs(w2[i] - expect), 0.0, 1e-12 * count);
    }
    // The *_ptrs variants see the same rows through pointers.
    std::vector<const Complex*> ptrs(count);
    for (std::size_t j = 0; j < count; ++j) ptrs[j] = rows.row_ptr(j);
    std::vector<Complex> proj2(count);
    la::kernels::dotc_ptrs(ptrs.data(), count, w.data(), dim,
                           proj2.data());
    for (std::size_t j = 0; j < count; ++j) EXPECT_EQ(proj2[j], proj[j]);
    ComplexVector w3 = w;
    la::kernels::axpy_ptrs(ptrs.data(), count, proj.data(), w3.data(),
                           dim);
    for (std::size_t i = 0; i < dim; ++i) EXPECT_EQ(w3[i], w2[i]);
  }
}

TEST(TunedKernelsTest, PlaneKernelsMatchInterleaved) {
  util::Rng rng(42);
  const std::size_t m = 5, n = 23;
  const RealMatrix a = test::random_real_matrix(m, n, rng);
  const ComplexVector x = random_complex_vector(n, rng);
  const ComplexVector xt = random_complex_vector(m, rng);

  std::vector<double> xre(n), xim(n), yre(m), yim(m);
  la::kernels::split_planes(x.data(), n, xre.data(), xim.data());
  la::kernels::gemv_planes(a.row_ptr(0), m, n, xre.data(), xim.data(),
                           yre.data(), yim.data());
  const ComplexVector y_ref = la::gemv_real_complex(a, x);
  for (std::size_t i = 0; i < m; ++i) {
    EXPECT_NEAR(std::abs(Complex(yre[i], yim[i]) - y_ref[i]), 0.0,
                1e-12 * n);
  }

  std::vector<double> tre(m), tim(m), zre(n), zim(n);
  la::kernels::split_planes(xt.data(), m, tre.data(), tim.data());
  la::kernels::gemv_t_planes(a.row_ptr(0), m, n, tre.data(), tim.data(),
                             zre.data(), zim.data());
  const ComplexVector z_ref = la::gemv_transposed_real_complex(a, xt);
  ComplexVector z(n);
  la::kernels::merge_planes(zre.data(), zim.data(), n, z.data());
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(std::abs(z[j] - z_ref[j]), 0.0, 1e-12 * m);
  }
}

// ---- tuned vs. reference operators on solver shapes -------------------

double rel_diff(const ComplexVector& a, const ComplexVector& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num = std::max(num, std::abs(a[i] - b[i]));
    den = std::max(den, std::abs(b[i]));
  }
  return den > 0.0 ? num / den : num;
}

TEST(BackendEquivalenceTest, ImplicitOpTunedMatchesReference) {
  for (const std::uint64_t seed : {2011u, 7u}) {
    const auto model = test::synthetic_model(0.9, seed, 64, 4);
    const macromodel::SimoRealization realization(model);
    const hamiltonian::ImplicitHamiltonianOp tuned(
        realization, KernelBackend::kTuned);
    const hamiltonian::ImplicitHamiltonianOp ref(
        realization, KernelBackend::kReference);
    EXPECT_EQ(tuned.backend(), KernelBackend::kTuned);
    EXPECT_EQ(ref.backend(), KernelBackend::kReference);
    util::Rng rng(seed);
    for (int rep = 0; rep < 3; ++rep) {
      const ComplexVector x = random_complex_vector(tuned.dim(), rng);
      ComplexVector yt(tuned.dim()), yr(tuned.dim());
      tuned.apply(x, yt);
      ref.apply(x, yr);
      EXPECT_LT(rel_diff(yt, yr), 1e-10);
    }
  }
}

TEST(BackendEquivalenceTest, SmwOpTunedMatchesReference) {
  const auto model = test::synthetic_model(1.08, 2011, 64, 4);
  const macromodel::SimoRealization realization(model);
  util::Rng rng(5);
  for (const double omega : {0.8, 3.1, 9.7}) {
    const Complex theta(0.0, omega);
    const hamiltonian::SmwShiftInvertOp tuned(realization, theta,
                                              KernelBackend::kTuned);
    const hamiltonian::SmwShiftInvertOp ref(realization, theta,
                                            KernelBackend::kReference);
    const ComplexVector x = random_complex_vector(tuned.dim(), rng);
    ComplexVector yt(tuned.dim()), yr(tuned.dim());
    tuned.apply(x, yt);
    ref.apply(x, yr);
    EXPECT_LT(rel_diff(yt, yr), 1e-9) << "omega=" << omega;
  }
}

// The reference backend must reproduce the historical numerics — the
// operator built without an explicit backend used to BE these loops,
// so the two ImplicitHamiltonianOp paths bracket any refactor drift.
TEST(BackendEquivalenceTest, ArnoldiInvariantsHoldPerBackend) {
  const auto model = test::synthetic_model(0.9, 2011, 64, 4);
  const macromodel::SimoRealization realization(model);
  for (const KernelBackend backend :
       {KernelBackend::kTuned, KernelBackend::kReference}) {
    const hamiltonian::ImplicitHamiltonianOp op(realization, backend);
    const std::size_t dim = op.dim();
    util::Rng rng(3);
    const ComplexVector v0 = core::random_start_vector(dim, rng);
    for (const std::size_t d : {30u, 60u, 90u}) {
      const auto ar = core::arnoldi(op, v0, d, {}, backend);
      ASSERT_GE(ar.steps, 1u);
      // Orthonormality of the basis rows.
      for (std::size_t i = 0; i <= ar.steps; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          Complex g{};
          const Complex* vi = ar.v_rows.row_ptr(i);
          const Complex* vj = ar.v_rows.row_ptr(j);
          for (std::size_t k = 0; k < dim; ++k) {
            g += std::conj(vi[k]) * vj[k];
          }
          EXPECT_NEAR(std::abs(g - (i == j ? Complex(1.0) : Complex{})),
                      0.0, 1e-9)
              << "backend=" << la::kernel_backend_name(backend)
              << " d=" << d << " (" << i << "," << j << ")";
        }
      }
      // Arnoldi relation: Op v_k = sum_i h(i,k) v_i.
      ComplexVector w(dim);
      for (std::size_t k = 0; k < ar.steps; ++k) {
        op.apply(
            std::span<const Complex>(ar.v_rows.row_ptr(k), dim), w);
        for (std::size_t i = 0; i <= k + 1; ++i) {
          const Complex h = ar.h(i, k);
          const Complex* vi = ar.v_rows.row_ptr(i);
          for (std::size_t q = 0; q < dim; ++q) w[q] -= h * vi[q];
        }
        EXPECT_LT(la::nrm2<Complex>(w), 1e-8)
            << "backend=" << la::kernel_backend_name(backend)
            << " d=" << d << " k=" << k;
      }
    }
  }
}

TEST(BackendEquivalenceTest, ArnoldiDeflationWorksOnTunedBackend) {
  const auto model = test::synthetic_model(0.9, 9, 48, 3);
  const macromodel::SimoRealization realization(model);
  const hamiltonian::ImplicitHamiltonianOp op(realization);
  const std::size_t dim = op.dim();
  util::Rng rng(4);
  // Lock two orthonormal random directions; the tuned basis must stay
  // orthogonal to them.
  std::vector<ComplexVector> locked;
  for (int i = 0; i < 2; ++i) {
    ComplexVector v = core::random_start_vector(dim, rng);
    for (const auto& q : locked) {
      Complex proj{};
      for (std::size_t k = 0; k < dim; ++k) proj += std::conj(q[k]) * v[k];
      for (std::size_t k = 0; k < dim; ++k) v[k] -= proj * q[k];
    }
    const double norm = la::nrm2<Complex>(v);
    for (auto& x : v) x /= norm;
    locked.push_back(std::move(v));
  }
  const ComplexVector v0 = core::random_start_vector(dim, rng);
  const auto ar =
      core::arnoldi(op, v0, 20, locked, KernelBackend::kTuned);
  ASSERT_GE(ar.steps, 1u);
  for (std::size_t i = 0; i <= ar.steps; ++i) {
    for (const auto& q : locked) {
      Complex g{};
      const Complex* vi = ar.v_rows.row_ptr(i);
      for (std::size_t k = 0; k < dim; ++k) g += std::conj(q[k]) * vi[k];
      EXPECT_NEAR(std::abs(g), 0.0, 1e-9);
    }
  }
}

// ---- determinism: fixed backend => bit-identical ----------------------

TEST(BackendDeterminismTest, TunedAppliesAreBitIdenticalAcrossThreads) {
  const auto model = test::synthetic_model(1.08, 2011, 64, 4);
  const macromodel::SimoRealization realization(model);
  const hamiltonian::SmwShiftInvertOp smw(realization, Complex(0.0, 2.5));
  const hamiltonian::ImplicitHamiltonianOp imp(realization);
  util::Rng rng(6);
  const ComplexVector x = random_complex_vector(smw.dim(), rng);

  ComplexVector smw_serial(smw.dim()), imp_serial(imp.dim());
  smw.apply(x, smw_serial);
  imp.apply(x, imp_serial);

  // Re-apply serially: same bits.
  ComplexVector again(smw.dim());
  smw.apply(x, again);
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i], smw_serial[i]);
  }

  // Concurrent applies on the shared const operators: every thread
  // reproduces the serial bits (thread_local scratch, no data races).
  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      ComplexVector ys(smw.dim()), yi(imp.dim());
      for (int rep = 0; rep < 8; ++rep) {
        smw.apply(x, ys);
        imp.apply(x, yi);
        for (std::size_t i = 0; i < ys.size(); ++i) {
          if (ys[i] != smw_serial[i] || yi[i] != imp_serial[i]) {
            ++mismatches[static_cast<std::size_t>(t)];
          }
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
}

TEST(BackendDeterminismTest, ArnoldiRunsAreBitIdenticalPerBackend) {
  const auto model = test::synthetic_model(0.9, 13, 48, 3);
  const macromodel::SimoRealization realization(model);
  const hamiltonian::ImplicitHamiltonianOp op(realization);
  util::Rng rng(8);
  const ComplexVector v0 = core::random_start_vector(op.dim(), rng);
  for (const KernelBackend backend :
       {KernelBackend::kTuned, KernelBackend::kReference}) {
    const auto a = core::arnoldi(op, v0, 25, {}, backend);
    const auto b = core::arnoldi(op, v0, 25, {}, backend);
    ASSERT_EQ(a.steps, b.steps);
    for (std::size_t i = 0; i <= a.steps; ++i) {
      const Complex* ra = a.v_rows.row_ptr(i);
      const Complex* rb = b.v_rows.row_ptr(i);
      for (std::size_t k = 0; k < op.dim(); ++k) EXPECT_EQ(ra[k], rb[k]);
    }
  }
}

}  // namespace
}  // namespace phes
