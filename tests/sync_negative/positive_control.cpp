// Positive control for the negative-compile harness: correct lock
// discipline over the annotated sync layer.  This file MUST compile
// cleanly under -Wthread-safety -Werror — if it does not, the harness
// is broken (wrong flags, wrong include path), and the "expected
// failures" below would be meaningless.

#include "phes/util/sync.hpp"

#include <cstddef>
#include <deque>

namespace {

class Counter {
 public:
  void increment() PHES_EXCLUDES(mutex_) {
    phes::util::MutexLock lock(mutex_);
    ++value_;
  }

  std::size_t value() PHES_EXCLUDES(mutex_) {
    phes::util::MutexLock lock(mutex_);
    return value_;
  }

  void wait_nonzero() PHES_EXCLUDES(mutex_) {
    phes::util::MutexLock lock(mutex_);
    while (value_ == 0) changed_.wait(mutex_);
  }

 private:
  phes::util::Mutex mutex_;
  phes::util::CondVar changed_;
  std::size_t value_ PHES_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
