// MUST NOT COMPILE under -Wthread-safety -Werror: reads and writes a
// PHES_GUARDED_BY field without holding its mutex.  The harness asserts
// the compiler rejects this file (expected diagnostic:
// -Wthread-safety-analysis "requires holding mutex").

#include "phes/util/sync.hpp"

#include <cstddef>

namespace {

class Counter {
 public:
  void increment() {
    ++value_;  // guarded write, no lock held
  }

  std::size_t value() const {
    return value_;  // guarded read, no lock held
  }

 private:
  mutable phes::util::Mutex mutex_;
  std::size_t value_ PHES_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
