// MUST NOT COMPILE under -Wthread-safety -Werror: calls a
// PHES_EXCLUDES method while already holding the excluded mutex — the
// self-deadlock shape the annotations exist to catch (mirrors the
// JobQueue/DispatchPool public-API contract).  Expected diagnostic:
// -Wthread-safety-analysis "cannot call function ... while mutex is
// held".

#include "phes/util/sync.hpp"

#include <cstddef>
#include <deque>

namespace {

class BoundedQueue {
 public:
  void push(int v) PHES_EXCLUDES(mutex_) {
    phes::util::MutexLock lock(mutex_);
    items_.push_back(v);
  }

  std::size_t flush() PHES_EXCLUDES(mutex_) {
    phes::util::MutexLock lock(mutex_);
    push(0);  // re-entrant acquire: deadlock on a non-recursive mutex
    const std::size_t n = items_.size();
    items_.clear();
    return n;
  }

 private:
  phes::util::Mutex mutex_;
  std::deque<int> items_ PHES_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
  BoundedQueue queue;
  queue.push(1);
  return queue.flush() == 2 ? 0 : 1;
}
