// MUST NOT COMPILE under -Wthread-safety -Werror: acquires a mutex and
// leaves it held on an exit path.  The harness asserts the compiler
// rejects this file (expected diagnostic: -Wthread-safety-analysis
// "mutex is still held at the end of function").

#include "phes/util/sync.hpp"

#include <cstddef>

namespace {

phes::util::Mutex g_mutex;
std::size_t g_value PHES_GUARDED_BY(g_mutex) = 0;

std::size_t take_and_forget() {
  g_mutex.lock();
  return g_value++;  // early return with g_mutex still held
}

}  // namespace

int main() { return take_and_forget() == 0 ? 0 : 1; }
