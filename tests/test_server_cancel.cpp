// Cancellation and shutdown paths of the job server: cancelling a
// queued job (it never runs), cancelling an in-flight job at a stage
// boundary, graceful drain vs aborting shutdown, and result-store
// consistency afterwards.  Determinism comes from the server's stage
// observer: tests gate a job inside a stage and cancel while it is
// provably in flight.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "phes/pipeline/job.hpp"
#include "phes/server/result_store.hpp"
#include "phes/server/server.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using pipeline::PipelineJob;
using pipeline::Stage;
using server::JobServer;
using server::JobState;
using server::ServerOptions;

ServerOptions one_worker_options() {
  ServerOptions options;
  options.workers = 1;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  options.job_defaults.fit.num_poles = 12;
  return options;
}

PipelineJob quick_job(const char* name, std::uint64_t seed) {
  PipelineJob job;
  job.name = name;
  job.samples = test::non_passive_samples(seed);
  job.options.fit.num_poles = 12;
  job.options.stop_after = Stage::kCharacterize;
  return job;
}

// The deterministic "in flight" hook, shared with the dispatch suite
// and the dispatch-latency bench.
using test::StageGate;

TEST(ServerCancel, QueuedJobIsCancelledAndNeverRuns) {
  JobServer jobs(one_worker_options());
  StageGate gate;
  jobs.set_stage_observer(std::ref(gate));

  // Job 1 blocks at fit, keeping the single worker busy while jobs 2
  // and 3 sit in the queue.
  const std::uint64_t blocker = 1;
  gate.arm(blocker, Stage::kFit);
  ASSERT_EQ(jobs.submit(quick_job("blocker", 7)), blocker);
  gate.wait_blocked();
  const std::uint64_t victim = jobs.submit(quick_job("victim", 5));
  const std::uint64_t survivor = jobs.submit(quick_job("survivor", 3));
  EXPECT_EQ(jobs.status(victim)->state, JobState::kQueued);

  EXPECT_TRUE(jobs.cancel(victim));
  EXPECT_FALSE(jobs.cancel(victim));  // already terminal

  const auto record = jobs.status(victim);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_TRUE(record->result.cancelled);
  EXPECT_TRUE(record->result.stage_timings.empty()) << "must never run";

  gate.release();
  ASSERT_TRUE(jobs.wait(blocker, 120.0));
  ASSERT_TRUE(jobs.wait(survivor, 120.0));
  EXPECT_EQ(jobs.status(blocker)->state, JobState::kDone);
  EXPECT_EQ(jobs.status(survivor)->state, JobState::kDone);
  // The cancelled job stayed cancelled (no resurrection by the worker).
  EXPECT_EQ(jobs.status(victim)->state, JobState::kCancelled);
  jobs.shutdown(true);
}

TEST(ServerCancel, InFlightJobStopsAtNextStageBoundary) {
  JobServer jobs(one_worker_options());
  StageGate gate;
  jobs.set_stage_observer(std::ref(gate));

  PipelineJob job = quick_job("inflight", 7);
  job.options.stop_after = Stage::kVerify;
  gate.arm(1, Stage::kFit);
  const std::uint64_t id = jobs.submit(job);
  gate.wait_blocked();  // provably mid-fit now
  EXPECT_EQ(jobs.status(id)->state, JobState::kRunning);

  EXPECT_TRUE(jobs.cancel(id));
  gate.release();
  ASSERT_TRUE(jobs.wait(id, 120.0));

  const auto record = jobs.status(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kCancelled);
  const auto& result = record->result;
  EXPECT_TRUE(result.cancelled);
  // Fit completed; the next boundary (realize) refused to start.
  EXPECT_EQ(result.failed_stage, Stage::kRealize);
  EXPECT_EQ(result.status(), "cancelled@realize");
  ASSERT_EQ(result.stage_timings.size(), 2u);
  EXPECT_EQ(result.stage_timings[0].stage, Stage::kLoad);
  EXPECT_EQ(result.stage_timings[1].stage, Stage::kFit);
  jobs.shutdown(true);
}

TEST(ServerCancel, CancelUnknownOrFinishedJobReturnsFalse) {
  JobServer jobs(one_worker_options());
  EXPECT_FALSE(jobs.cancel(999));
  const std::uint64_t id = jobs.submit(quick_job("done", 7));
  ASSERT_TRUE(jobs.wait(id, 120.0));
  EXPECT_FALSE(jobs.cancel(id));
  jobs.shutdown(true);
}

TEST(ServerShutdown, GracefulDrainFinishesQueuedWork) {
  JobServer jobs(one_worker_options());
  StageGate gate;
  jobs.set_stage_observer(std::ref(gate));
  gate.arm(1, Stage::kFit);

  ASSERT_EQ(jobs.submit(quick_job("a", 7)), 1u);
  gate.wait_blocked();
  const std::uint64_t b = jobs.submit(quick_job("b", 5));
  const std::uint64_t c = jobs.submit(quick_job("c", 3));

  // Drain on a helper thread (shutdown blocks until workers finish);
  // release the gate once the queue is closed to admissions.
  std::thread closer([&] { jobs.shutdown(true); });
  while (jobs.accepting()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.release();
  closer.join();

  // Everything already queued ran to completion.
  for (const std::uint64_t id : {std::uint64_t{1}, b, c}) {
    const auto record = jobs.status(id);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->state, JobState::kDone) << "job " << id;
  }
  EXPECT_THROW((void)jobs.submit(quick_job("late", 9)),
               std::runtime_error);
}

TEST(ServerShutdown, AbortCancelsBacklogAndFlagsInFlightWork) {
  JobServer jobs(one_worker_options());
  StageGate gate;
  jobs.set_stage_observer(std::ref(gate));
  gate.arm(1, Stage::kFit);

  ASSERT_EQ(jobs.submit(quick_job("inflight", 7)), 1u);
  gate.wait_blocked();
  const std::uint64_t q1 = jobs.submit(quick_job("queued1", 5));
  const std::uint64_t q2 = jobs.submit(quick_job("queued2", 3));

  std::thread aborter([&] { jobs.shutdown(false); });
  // The abort drains the backlog and sets every cancel flag before
  // closing the queue; once the queue reports closed, both happened.
  while (!jobs.stats().queue.closed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.release();
  aborter.join();

  // Backlog: cancelled while queued, never ran.
  for (const std::uint64_t id : {q1, q2}) {
    const auto record = jobs.status(id);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->state, JobState::kCancelled) << "job " << id;
    EXPECT_TRUE(record->result.stage_timings.empty());
  }
  // In-flight: stopped at the boundary after fit.
  const auto inflight = jobs.status(1);
  ASSERT_TRUE(inflight.has_value());
  EXPECT_EQ(inflight->state, JobState::kCancelled);
  EXPECT_EQ(inflight->result.status(), "cancelled@realize");

  // Store consistency: every record terminal, none lost.
  const auto counts = jobs.stats().states;
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kQueued)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kRunning)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kCancelled)], 3u);
}

}  // namespace
}  // namespace phes
