// Concurrency/stress coverage for the server building blocks and the
// assembled JobServer: bounded-queue backpressure under producer
// pressure, concurrent SessionPool checkout over multiple models with
// revision guards and eviction budgets, and an N-client x M-job hammer
// over two models asserting cross-job cache hits and loss-free
// accounting.  This suite is the ThreadSanitizer CI target: keep every
// scenario free of sleeps-as-synchronization.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "phes/engine/session_pool.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/server/job_queue.hpp"
#include "phes/server/server.hpp"
#include "phes/util/sync.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using engine::SessionPool;
using engine::SessionPoolOptions;
using macromodel::SimoRealization;
using pipeline::PipelineJob;
using pipeline::Stage;
using server::JobQueue;
using server::JobServer;
using server::JobState;
using server::QueuedJob;

// ---- JobQueue under pressure ------------------------------------------

TEST(JobQueueStress, BackpressureBoundsTheQueueWithoutLosingJobs) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 16;
  constexpr std::size_t kTotal = kProducers * kPerProducer;
  JobQueue queue(3);

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kProducers; ++t) {
    producers.emplace_back([&queue, t] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        QueuedJob item;
        item.id = t * kPerProducer + i + 1;
        ASSERT_TRUE(queue.push(std::move(item)));
      }
    });
  }

  // One deliberately slow consumer so producers hit the bound.
  std::vector<bool> seen(kTotal + 1, false);
  std::size_t popped = 0;
  while (popped < kTotal) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_LE(item->id, kTotal);
    ASSERT_FALSE(seen[item->id]) << "duplicate id " << item->id;
    seen[item->id] = true;
    ++popped;
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();

  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, kTotal);
  EXPECT_EQ(stats.popped, kTotal);
  EXPECT_LE(stats.peak_size, 3u) << "capacity bound violated";
  EXPECT_GT(stats.push_waits, 0u) << "backpressure never engaged";
}

TEST(JobQueueStress, CloseReleasesBlockedProducersAndConsumers) {
  JobQueue queue(1);
  ASSERT_TRUE(queue.push({1, PipelineJob{}}));  // queue now full

  std::atomic<int> rejected{0};
  std::vector<std::thread> blocked;
  for (int t = 0; t < 3; ++t) {
    blocked.emplace_back([&] {
      if (!queue.push({99, PipelineJob{}})) rejected.fetch_add(1);
    });
  }
  std::thread consumer_after_drain([&] {
    // Drains the backlog, then blocks until close releases it.
    while (queue.pop().has_value()) {
    }
  });

  // No synchronization with the blocked threads is needed: close() must
  // release them regardless of whether they blocked yet.
  queue.close();
  for (auto& t : blocked) t.join();
  consumer_after_drain.join();
  // Between 0 and 3 producers may have slipped in before close; the
  // rest must have been rejected, and none may still be blocked.
  EXPECT_GE(rejected.load(), 0);
}

// ---- SessionPool concurrency ------------------------------------------

TEST(SessionPoolStress, ConcurrentCheckoutsOverTwoModelsStayExclusive) {
  const auto model_a = test::synthetic_model(1.05, 101, 20, 2);
  const auto model_b = test::synthetic_model(0.95, 202, 24, 2);
  const SimoRealization simo_a(model_a);
  const SimoRealization simo_b(model_b);

  SessionPoolOptions options;
  options.max_idle_sessions = 4;
  SessionPool pool(options);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 50;
  // Exclusivity check: no SolverSession object may ever be held by two
  // leases at once.
  phes::util::Mutex active_mutex;
  std::set<const engine::SolverSession*> active;
  std::atomic<bool> exclusive_violated{false};

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        auto lease =
            pool.checkout(SimoRealization(use_a ? simo_a : simo_b));
        ASSERT_TRUE(static_cast<bool>(lease));
        // The lease must hand out the right model...
        ASSERT_EQ(lease.session().realization().order(),
                  use_a ? simo_a.order() : simo_b.order());
        ASSERT_TRUE(engine::same_realization(
            lease.session().realization(), use_a ? simo_a : simo_b));
        // ...exclusively.
        {
          phes::util::MutexLock lock(active_mutex);
          if (!active.insert(&lease.session()).second) {
            exclusive_violated.store(true);
          }
        }
        std::this_thread::yield();
        {
          phes::util::MutexLock lock(active_mutex);
          active.erase(&lease.session());
        }
        lease.release();
      }
    });
  }
  for (auto& t : workers) t.join();

  EXPECT_FALSE(exclusive_violated.load());
  const auto stats = pool.stats();
  EXPECT_EQ(stats.checkouts, kThreads * kIters);
  EXPECT_EQ(stats.creations + stats.pool_hits, stats.checkouts);
  EXPECT_GT(stats.pool_hits, 0u) << "pool never reused a session";
  EXPECT_EQ(stats.leased_sessions, 0u);
  EXPECT_LE(stats.idle_sessions, options.max_idle_sessions);
  EXPECT_EQ(stats.returns, stats.checkouts);
}

TEST(SessionPoolStress, RevisionGuardRestoresPristineResidues) {
  const auto model = test::synthetic_model(1.05, 77, 20, 2);
  const SimoRealization pristine(model);

  SessionPool pool;
  {
    auto lease = pool.checkout(SimoRealization(pristine));
    // Perturb the residues the way enforcement would.
    la::RealMatrix c = lease.session().realization().c();
    c *= 0.9;
    lease.session().update_residues(c);
    ASSERT_FALSE(
        engine::same_realization(lease.session().realization(), pristine));
  }
  EXPECT_EQ(pool.stats().restores, 1u);

  // The next checkout over the same model must see pristine residues —
  // and still match the hash (reuse, not a new session).
  auto lease = pool.checkout(SimoRealization(pristine));
  EXPECT_TRUE(lease.reused());
  EXPECT_TRUE(
      engine::same_realization(lease.session().realization(), pristine));
  EXPECT_FALSE(lease.session().warm_start().valid);
}

TEST(SessionPoolStress, MemoryBudgetEvictsIdleSessions) {
  SessionPoolOptions options;
  options.max_idle_sessions = 64;
  options.memory_budget_bytes = 1;  // everything is over budget
  SessionPool pool(options);

  for (int i = 0; i < 4; ++i) {
    auto lease = pool.checkout(
        SimoRealization(test::synthetic_model(1.05, 300 + i, 16, 2)));
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.evictions, 4u);
  EXPECT_EQ(stats.idle_sessions, 0u);
  EXPECT_EQ(stats.idle_bytes, 0u);
}

TEST(SessionPoolStress, HashDistinguishesModels) {
  const SimoRealization a(test::synthetic_model(1.05, 1, 20, 2));
  const SimoRealization b(test::synthetic_model(1.05, 2, 20, 2));
  EXPECT_NE(engine::model_hash(a), engine::model_hash(b));
  EXPECT_EQ(engine::model_hash(a), engine::model_hash(a));
  EXPECT_TRUE(engine::same_realization(a, a));
  EXPECT_FALSE(engine::same_realization(a, b));
}

// ---- Assembled server under client pressure ---------------------------

TEST(ServerStress, ConcurrentClientsOverTwoModelsShareSessions) {
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kJobsPerClient = 6;
  constexpr std::size_t kTotal = kClients * kJobsPerClient;

  server::ServerOptions options;
  options.workers = 4;
  options.solver_threads = 1;
  options.queue_capacity = 3;  // deliberately tight: force backpressure
  JobServer jobs(options);

  // Two models; characterize-only keeps every job cheap and keeps the
  // session revision unchanged, so cross-job cache hits must appear.
  const auto samples_a = test::non_passive_samples(7, 20);
  const auto samples_b = test::passive_samples(11, 20);

  std::vector<std::uint64_t> ids(kTotal, 0);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t j = 0; j < kJobsPerClient; ++j) {
        PipelineJob job;
        const bool use_a = (c + j) % 2 == 0;
        job.name = use_a ? "model-a" : "model-b";
        job.samples = use_a ? samples_a : samples_b;
        job.options.fit.num_poles = 10;
        job.options.stop_after = Stage::kCharacterize;
        ids[c * kJobsPerClient + j] = jobs.submit(std::move(job));
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every submission must reach a terminal state (no deadlock, no
  // loss); generous timeout so slow CI cannot flake this.
  for (const std::uint64_t id : ids) {
    ASSERT_GT(id, 0u);
    ASSERT_TRUE(jobs.wait(id, 300.0)) << "job " << id << " stuck";
  }

  std::size_t done = 0;
  std::size_t total_cache_hits = 0;
  std::size_t reused_sessions = 0;
  for (const std::uint64_t id : ids) {
    const auto record = jobs.status(id);
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->state, JobState::kDone)
        << record->result.error;
    ++done;
    total_cache_hits += record->result.session.cache.hits;
    if (record->result.session_reused) ++reused_sessions;
  }
  EXPECT_EQ(done, kTotal);

  const auto stats = jobs.stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.queue.pushed, kTotal);
  EXPECT_EQ(stats.queue.popped, kTotal);
  EXPECT_LE(stats.queue.peak_size, options.queue_capacity);
  EXPECT_GT(stats.queue.push_waits, 0u)
      << "queue never filled: backpressure untested";
  EXPECT_EQ(stats.pool.checkouts, kTotal);
  EXPECT_GT(stats.pool.pool_hits, 0u) << "no cross-job session sharing";
  EXPECT_EQ(stats.pool.leased_sessions, 0u);
  EXPECT_GT(reused_sessions, 0u);
  EXPECT_GT(total_cache_hits, 0u)
      << "cross-job factorization reuse never happened";

  // All jobs over one model agree on the crossing set, bit for bit.
  const auto reference = jobs.result(ids[0]);
  ASSERT_TRUE(reference.has_value());
  for (const std::uint64_t id : ids) {
    const auto result = jobs.result(id);
    ASSERT_TRUE(result.has_value());
    if (result->name != reference->name) continue;
    ASSERT_EQ(result->initial_report.crossings.size(),
              reference->initial_report.crossings.size());
    for (std::size_t i = 0; i < result->initial_report.crossings.size();
         ++i) {
      EXPECT_DOUBLE_EQ(result->initial_report.crossings[i],
                       reference->initial_report.crossings[i]);
    }
  }
  jobs.shutdown(true);
}

TEST(ServerStress, CancelStormLeavesStoreConsistent) {
  server::ServerOptions options;
  options.workers = 2;
  options.solver_threads = 1;
  options.queue_capacity = 4;
  JobServer jobs(options);

  constexpr std::size_t kTotal = 16;
  std::vector<std::atomic<std::uint64_t>> ids(kTotal);
  std::thread submitter([&] {
    for (std::size_t i = 0; i < kTotal; ++i) {
      PipelineJob job;
      job.name = "storm";
      job.samples = test::non_passive_samples(7, 20);
      job.options.fit.num_poles = 10;
      job.options.stop_after = Stage::kFit;
      ids[i].store(jobs.submit(std::move(job)));
    }
  });
  // Race cancellations against the submitter and the workers.
  std::thread canceller([&] {
    for (std::size_t i = 0; i < kTotal; ++i) {
      const std::uint64_t id = ids[i].load();
      if (id != 0) (void)jobs.cancel(id);  // racing: any outcome is legal
      std::this_thread::yield();
    }
  });
  submitter.join();
  canceller.join();

  for (const auto& id_slot : ids) {
    const std::uint64_t id = id_slot.load();
    ASSERT_TRUE(jobs.wait(id, 300.0));
    const auto record = jobs.status(id);
    ASSERT_TRUE(record.has_value());
    // Every job lands in exactly one of the two legal terminal states.
    EXPECT_TRUE(record->state == JobState::kDone ||
                record->state == JobState::kCancelled)
        << job_state_name(record->state);
  }
  const auto counts = jobs.stats().states;
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kQueued)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kRunning)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kDone)] +
                counts[static_cast<std::size_t>(JobState::kCancelled)],
            kTotal);
  jobs.shutdown(true);
}

}  // namespace
}  // namespace phes
