// Deterministic unit tests for the shift-queue state machine
// (paper Sec. IV rules, Figs. 2-5).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "phes/core/intervals.hpp"
#include "phes/la/types.hpp"
#include "phes/util/rng.hpp"

namespace phes {
namespace {

using core::IntervalScheduler;
using core::TentativeInterval;

TEST(Intervals, StartupOrderProcessesExtremaFirst) {
  // Paper Eqs. 13-15: theta^_1 = theta~_1, theta^_2 = theta~_N.
  IntervalScheduler s(0.0, 8.0, 4, 1e-9);
  const auto t1 = s.acquire();
  const auto t2 = s.acquire();
  ASSERT_TRUE(t1 && t2);
  EXPECT_DOUBLE_EQ(t1->shift, 0.0);  // left extremum, shift at band edge
  EXPECT_DOUBLE_EQ(t2->shift, 8.0);  // right extremum
  // Interior shifts are centered.
  const auto t3 = s.acquire();
  ASSERT_TRUE(t3);
  EXPECT_DOUBLE_EQ(t3->shift, 3.0);  // interval [2,4] centered
}

TEST(Intervals, CoverRuleRetiresInterval) {
  IntervalScheduler s(0.0, 4.0, 2, 1e-9);
  auto t1 = s.acquire();  // [0,2], shift 0
  ASSERT_TRUE(t1);
  // A disk of radius 2.5 around shift 0 covers [0,2] fully and swallows
  // the tentative shift of [2,4] (at 4? no: N=2 => second interval is
  // the right extremum with shift 4, not swallowed by [-2.5, 2.5]).
  s.complete(*t1, 2.5, {});
  EXPECT_EQ(s.tentative_count(), 1u);
  auto t2 = s.acquire();
  ASSERT_TRUE(t2);
  EXPECT_DOUBLE_EQ(t2->shift, 4.0);
  // Its interval was partially covered; remaining is [2.5, 4].
  EXPECT_NEAR(t2->lo, 2.5, 1e-12);
  s.complete(*t2, 1.6, {});
  EXPECT_TRUE(s.done());
}

TEST(Intervals, SwallowedTentativeShiftsAreEliminated) {
  IntervalScheduler s(0.0, 10.0, 5, 1e-9);
  auto t1 = s.acquire();  // [0,2] shift 0
  ASSERT_TRUE(t1);
  // Huge disk covering [0, 10]: all remaining tentative shifts die.
  s.complete(*t1, 10.5, {});
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.shifts_eliminated(), 4u);
}

TEST(Intervals, SplitRuleSpawnsCenteredShifts) {
  // Paper Eqs. 25-28 and Fig. 5.
  IntervalScheduler s(0.0, 8.0, 2, 1e-9);
  auto t1 = s.acquire();        // [0,4], shift 0
  ASSERT_TRUE(t1);
  s.complete(*t1, 0.5, {});     // covers [0, 0.5] only
  // Remaining [0.5, 4] must be re-queued with a centered shift.
  auto t2 = s.acquire();        // right extremum [4,8] shift 8 queued 2nd
  ASSERT_TRUE(t2);
  EXPECT_DOUBLE_EQ(t2->shift, 8.0);
  auto t3 = s.acquire();
  ASSERT_TRUE(t3);
  EXPECT_NEAR(t3->lo, 0.5, 1e-12);
  EXPECT_NEAR(t3->hi, 4.0, 1e-12);
  EXPECT_NEAR(t3->shift, 2.25, 1e-12);

  // Interior split: complete t3 with a small centered disk.
  s.complete(*t2, 4.1, {});     // retire [4,8]
  s.complete(*t3, 0.25, {});    // covers [2.0, 2.5]; spawns two portions
  std::vector<double> los, his;
  std::vector<TentativeInterval> drained;
  while (auto t = s.acquire()) {
    los.push_back(t->lo);
    his.push_back(t->hi);
    drained.push_back(*t);  // acquire all before completing: a huge
                            // completion disk would swallow the rest
  }
  for (const auto& t : drained) s.complete(t, 10.0, {});
  ASSERT_EQ(los.size(), 2u);
  std::sort(los.begin(), los.end());
  std::sort(his.begin(), his.end());
  EXPECT_NEAR(los[0], 0.5, 1e-12);
  EXPECT_NEAR(his[0], 2.0, 1e-12);
  EXPECT_NEAR(los[1], 2.5, 1e-12);
  EXPECT_NEAR(his[1], 4.0, 1e-12);
  EXPECT_TRUE(s.done());
}

TEST(Intervals, TinyPortionsAreDropped) {
  IntervalScheduler s(0.0, 1.0, 2, 0.1);  // coarse resolution
  auto t1 = s.acquire();
  ASSERT_TRUE(t1);
  // Disk leaves only a 0.05-wide sliver: below resolution, dropped.
  s.complete(*t1, 0.45, {});  // interval [0, 0.5], shift 0, covers [0,0.45]
  auto t2 = s.acquire();      // right extremum
  ASSERT_TRUE(t2);
  s.complete(*t2, 0.6, {});
  EXPECT_TRUE(s.done());
}

TEST(Intervals, TerminationRequiresInFlightCompletion) {
  IntervalScheduler s(0.0, 2.0, 2, 1e-9);
  auto t1 = s.acquire();
  auto t2 = s.acquire();
  ASSERT_TRUE(t1 && t2);
  EXPECT_FALSE(s.done());
  EXPECT_FALSE(s.acquire().has_value());  // queue empty, work in flight
  s.complete(*t1, 5.0, {});
  EXPECT_FALSE(s.done());  // t2 still in flight
  s.complete(*t2, 5.0, {});
  EXPECT_TRUE(s.done());
}

TEST(Intervals, TentativeIntervalsStayDisjoint) {
  // Invariant behind the paper's free-interval pick rule (Eq. 20).
  IntervalScheduler s(0.0, 16.0, 8, 1e-9);
  std::vector<TentativeInterval> seen;
  // Drive a random-ish schedule: acquire two, complete with varied radii.
  for (int round = 0; round < 50 && !s.done(); ++round) {
    auto a = s.acquire();
    if (!a) break;
    // Check disjointness against current queue by acquiring everything.
    std::vector<TentativeInterval> rest;
    while (auto b = s.acquire()) rest.push_back(*b);
    for (const auto& iv : rest) {
      const bool disjoint = iv.hi <= a->lo + 1e-15 || iv.lo >= a->hi - 1e-15;
      EXPECT_TRUE(disjoint);
    }
    // Finish everything with alternating small/large disks.
    double radius = (round % 2 == 0) ? 0.3 : 2.0;
    s.complete(*a, radius, {});
    for (const auto& iv : rest) {
      s.complete(iv, (round % 3 == 0) ? 0.2 : 1.5, {});
    }
  }
  EXPECT_TRUE(s.done());
}

TEST(Intervals, FullBandIsCoveredAtTermination) {
  // Property: whatever radii the single-shift runs return, the union of
  // completed disks covers the band up to the resolution.
  util::Rng rng(7);
  IntervalScheduler s(0.0, 10.0, 4, 1e-6);
  int guard = 0;
  while (!s.done() && guard++ < 10000) {
    auto t = s.acquire();
    ASSERT_TRUE(t.has_value());
    const double halfwidth = 0.5 * (t->hi - t->lo);
    // Radii between 30% and 150% of the half-width exercise both the
    // cover and the split paths.
    const double radius = std::max(halfwidth * rng.uniform(0.3, 1.5), 1e-5);
    s.complete(*t, radius, {});
  }
  ASSERT_TRUE(s.done());

  std::vector<std::pair<double, double>> covered;
  for (const auto& d : s.disks()) {
    covered.emplace_back(d.center - d.radius, d.center + d.radius);
  }
  std::sort(covered.begin(), covered.end());
  double cursor = 0.0;
  for (const auto& [lo, hi] : covered) {
    EXPECT_LE(lo, cursor + 1e-5);
    cursor = std::max(cursor, hi);
    if (cursor >= 10.0) break;
  }
  EXPECT_GE(cursor, 10.0 - 1e-5);
}

TEST(Intervals, ExplicitIntervalConstructorValidates) {
  std::vector<TentativeInterval> bad(1);
  bad[0].lo = 0.0;
  bad[0].hi = 1.0;
  bad[0].shift = 2.0;  // outside
  EXPECT_THROW(IntervalScheduler(std::move(bad), 0.0, 1.0, 1e-9),
               std::invalid_argument);
}

TEST(Intervals, EigenvalueAggregation) {
  IntervalScheduler s(0.0, 2.0, 2, 1e-9);
  auto t1 = s.acquire();
  auto t2 = s.acquire();
  s.complete(*t1, 5.0, {la::Complex(0.0, 1.0)});
  s.complete(*t2, 5.0, {la::Complex(0.0, 1.7), la::Complex(0.1, 0.3)});
  EXPECT_EQ(s.all_eigenvalues().size(), 3u);
  EXPECT_EQ(s.disks().size(), 2u);
}

}  // namespace
}  // namespace phes
