// Tests for the deflated Arnoldi process and Ritz extraction.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "phes/core/arnoldi.hpp"
#include "phes/hamiltonian/operators.hpp"
#include "phes/la/blas.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using core::arnoldi;
using core::ritz_pairs;
using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;

/// Dense matrix wrapped as an implicit operator (test double).
class DenseOp final : public hamiltonian::ComplexLinearOperator {
 public:
  explicit DenseOp(ComplexMatrix m) : m_(std::move(m)) {}
  [[nodiscard]] std::size_t dim() const noexcept override {
    return m_.rows();
  }
  void apply(std::span<const Complex> x,
             std::span<Complex> y) const override {
    const auto r = la::gemv(m_, x);
    std::copy(r.begin(), r.end(), y.begin());
  }

 private:
  ComplexMatrix m_;
};

ComplexMatrix diagonal_matrix(const ComplexVector& d) {
  ComplexMatrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

TEST(Arnoldi, BasisIsOrthonormal) {
  util::Rng rng(1);
  const DenseOp op(test::random_complex_matrix(30, 30, rng));
  const auto v0 = core::random_start_vector(30, rng);
  const auto ar = arnoldi(op, v0, 12, {});
  ASSERT_EQ(ar.steps, 12u);
  for (std::size_t i = 0; i <= 12; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      Complex g{};
      for (std::size_t k = 0; k < 30; ++k) {
        g += std::conj(ar.v_rows(i, k)) * ar.v_rows(j, k);
      }
      const double expected = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(g), expected, 1e-10) << i << "," << j;
    }
  }
}

TEST(Arnoldi, HessenbergRelationHolds) {
  // Op * V_d == V_{d+1} * H  (the Arnoldi identity).
  util::Rng rng(2);
  ComplexMatrix m = test::random_complex_matrix(25, 25, rng);
  const DenseOp op(m);
  const auto v0 = core::random_start_vector(25, rng);
  const std::size_t d = 10;
  const auto ar = arnoldi(op, v0, d, {});
  for (std::size_t j = 0; j < d; ++j) {
    ComplexVector vj(25), av(25);
    for (std::size_t i = 0; i < 25; ++i) vj[i] = ar.v_rows(j, i);
    op.apply(vj, av);
    for (std::size_t i = 0; i < 25; ++i) {
      Complex rec{};
      for (std::size_t k = 0; k <= d; ++k) {
        rec += ar.v_rows(k, i) * ar.h(k, j);
      }
      EXPECT_NEAR(std::abs(rec - av[i]), 0.0, 1e-9);
    }
  }
}

TEST(Arnoldi, FindsDominantEigenvalueOfDiagonal) {
  // Geometric spectrum: well-separated, so d = 15 converges the
  // dominant eigenvalue to full accuracy.
  util::Rng rng(3);
  ComplexVector diag;
  for (int i = 1; i <= 20; ++i) {
    diag.emplace_back(0.1 * std::pow(1.4, i), 0.05 * std::pow(1.4, i));
  }
  const DenseOp op(diagonal_matrix(diag));
  const auto v0 = core::random_start_vector(20, rng);
  const auto ar = arnoldi(op, v0, 15, {});
  const auto pairs = ritz_pairs(ar, false);
  ASSERT_FALSE(pairs.empty());
  // pairs[0] is the largest-|value| Ritz value; must match diag.back().
  EXPECT_NEAR(std::abs(pairs.front().value - diag.back()), 0.0, 1e-8);
  EXPECT_LT(pairs.front().residual, 1e-8);
}

TEST(Arnoldi, LuckyBreakdownOnLowRankStart) {
  // Start vector is an exact eigenvector: Krylov space is 1-dim.
  ComplexVector diag{Complex(2.0, 0.0), Complex(3.0, 0.0)};
  const DenseOp op(diagonal_matrix(diag));
  ComplexVector v0{Complex(1.0, 0.0), Complex(0.0, 0.0)};
  const auto ar = arnoldi(op, v0, 1, {});
  EXPECT_EQ(ar.steps, 1u);
  const auto pairs = ritz_pairs(ar, false);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_NEAR(std::abs(pairs[0].value - Complex(2.0, 0.0)), 0.0, 1e-12);
}

TEST(Arnoldi, DeflationFindsSecondEigenvalue) {
  // Geometric spectrum 1.5^i: strong gaps make both runs converge.
  util::Rng rng(4);
  ComplexVector diag;
  for (int i = 1; i <= 15; ++i) diag.emplace_back(std::pow(1.5, i), 0.0);
  const DenseOp op(diagonal_matrix(diag));
  const Complex top = diag.back();
  const Complex second = diag[13];

  // First run: converge the dominant eigenpair.
  auto ar1 = arnoldi(op, core::random_start_vector(15, rng), 12, {});
  auto pairs1 = ritz_pairs(ar1, true);
  ASSERT_NEAR(std::abs(pairs1.front().value - top) / std::abs(top), 0.0,
              1e-9);

  // Lock it; second run must converge the next eigenvalue as dominant.
  std::vector<ComplexVector> locked{pairs1.front().vector};
  auto ar2 = arnoldi(op, core::random_start_vector(15, rng), 12, locked);
  auto pairs2 = ritz_pairs(ar2, false);
  EXPECT_NEAR(std::abs(pairs2.front().value - second) / std::abs(second),
              0.0, 1e-8);
}

TEST(Arnoldi, StartVectorInLockedSubspaceThrows) {
  ComplexVector diag{Complex(1, 0), Complex(2, 0), Complex(3, 0)};
  const DenseOp op(diagonal_matrix(diag));
  ComplexVector e0{Complex(1, 0), Complex(0, 0), Complex(0, 0)};
  std::vector<ComplexVector> locked{e0};
  EXPECT_THROW(arnoldi(op, e0, 2, locked), std::runtime_error);
}

TEST(Arnoldi, DimensionChecks) {
  ComplexVector diag{Complex(1, 0), Complex(2, 0)};
  const DenseOp op(diagonal_matrix(diag));
  ComplexVector bad(3);
  EXPECT_THROW(arnoldi(op, bad, 1, {}), std::invalid_argument);
  ComplexVector good(2, Complex(1.0, 0.0));
  EXPECT_THROW(arnoldi(op, good, 2, {}), std::invalid_argument);  // d >= dim
}

TEST(Arnoldi, RandomStartVectorIsUnitNorm) {
  util::Rng rng(9);
  const auto v = core::random_start_vector(100, rng);
  EXPECT_NEAR(la::nrm2<Complex>(v), 1.0, 1e-12);
}

}  // namespace
}  // namespace phes
