// Tests for the SVD / Hermitian eigensolver stack that backs the
// passivity singular-value checks.

#include <gtest/gtest.h>

#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/svd.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::Complex;
using la::ComplexMatrix;
using la::RealMatrix;
using la::RealVector;

TEST(RealSvd, KnownDiagonal) {
  RealMatrix a{{3, 0}, {0, -2}};
  const auto svd = la::real_svd(a);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-12);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-12);
}

TEST(RealSvd, ReconstructsAndOrthogonal) {
  util::Rng rng(21);
  const RealMatrix a = test::random_real_matrix(9, 5, rng);
  const auto svd = la::real_svd(a);
  // U diag(sigma) V^T == A
  RealMatrix us = svd.u;
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t i = 0; i < 9; ++i) us(i, j) *= svd.sigma[j];
  }
  const RealMatrix rec = la::gemm(us, la::transpose(svd.v));
  EXPECT_LT(test::max_abs_diff(rec, a), 1e-10);
  // Orthogonality of both factors.
  EXPECT_LT(test::max_abs_diff(la::gemm(la::transpose(svd.u), svd.u),
                               RealMatrix::identity(5)),
            1e-11);
  EXPECT_LT(test::max_abs_diff(la::gemm(la::transpose(svd.v), svd.v),
                               RealMatrix::identity(5)),
            1e-11);
}

TEST(RealSvd, DescendingOrder) {
  util::Rng rng(22);
  const RealMatrix a = test::random_real_matrix(8, 8, rng);
  const auto sigma = la::real_singular_values(a);
  for (std::size_t i = 1; i < sigma.size(); ++i) {
    EXPECT_GE(sigma[i - 1], sigma[i]);
  }
}

TEST(RealSvd, WideMatrixHandledByTranspose) {
  util::Rng rng(23);
  const RealMatrix a = test::random_real_matrix(3, 7, rng);
  const auto s1 = la::real_singular_values(a);
  const auto s2 = la::real_singular_values(la::transpose(a));
  ASSERT_EQ(s1.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(s1[i], s2[i], 1e-10);
}

TEST(HermitianEig, RealDiagonalKnown) {
  ComplexMatrix a(2, 2);
  a(0, 0) = Complex(4, 0);
  a(1, 1) = Complex(-1, 0);
  const auto eig = la::hermitian_eig(a, true);
  EXPECT_NEAR(eig.values[0], 4.0, 1e-12);
  EXPECT_NEAR(eig.values[1], -1.0, 1e-12);
}

class HermitianProperty : public ::testing::TestWithParam<int> {};

TEST_P(HermitianProperty, DecompositionResidual) {
  util::Rng rng(500 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.below(12);
  const ComplexMatrix a = test::random_hermitian_matrix(n, rng);
  const auto eig = la::hermitian_eig(a, true);
  // A v_j == lambda_j v_j
  for (std::size_t j = 0; j < n; ++j) {
    const auto v = eig.vectors.col(j);
    const auto av = la::gemv(a, std::span<const Complex>(v));
    double resid = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      resid = std::max(resid, std::abs(av[i] - eig.values[j] * v[i]));
    }
    EXPECT_LT(resid, 1e-9 * (1.0 + la::frobenius_norm(a)));
  }
  // Unitary eigenvector matrix.
  const ComplexMatrix vhv = la::gemm(la::adjoint(eig.vectors), eig.vectors);
  EXPECT_LT(test::max_abs_diff(vhv, ComplexMatrix::identity(n)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, HermitianProperty,
                         ::testing::Range(0, 10));

TEST(ComplexSingularValues, MatchRealEmbedding) {
  // The real embedding [[Re, -Im],[Im, Re]] has each singular value of
  // the complex matrix twice.
  util::Rng rng(31);
  const std::size_t n = 6;
  const ComplexMatrix a = test::random_complex_matrix(n, n, rng);
  RealMatrix embed(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      embed(i, j) = a(i, j).real();
      embed(i, j + n) = -a(i, j).imag();
      embed(i + n, j) = a(i, j).imag();
      embed(i + n, j + n) = a(i, j).real();
    }
  }
  const auto s_complex = la::complex_singular_values(a);
  const auto s_embed = la::real_singular_values(embed);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(s_complex[i], s_embed[2 * i], 1e-8);
    EXPECT_NEAR(s_complex[i], s_embed[2 * i + 1], 1e-8);
  }
}

TEST(ComplexSvd, TripletsResidual) {
  util::Rng rng(33);
  const std::size_t n = 7;
  const ComplexMatrix a = test::random_complex_matrix(n, n, rng);
  const auto svd = la::complex_svd(a);
  for (std::size_t j = 0; j < n; ++j) {
    const auto v = svd.v.col(j);
    const auto av = la::gemv(a, std::span<const Complex>(v));
    const auto u = svd.u.col(j);
    double resid = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      resid = std::max(resid, std::abs(av[i] - svd.sigma[j] * u[i]));
    }
    EXPECT_LT(resid, 1e-8 * (1.0 + svd.sigma[0]));
  }
}

TEST(ComplexSpectralNorm, UnitaryIsOne) {
  // Build a unitary matrix from the Hermitian eigensolver of a random
  // Hermitian matrix; its spectral norm must be exactly 1.
  util::Rng rng(34);
  const ComplexMatrix h = test::random_hermitian_matrix(5, rng);
  const auto eig = la::hermitian_eig(h, true);
  EXPECT_NEAR(la::complex_spectral_norm(eig.vectors), 1.0, 1e-10);
}

}  // namespace
}  // namespace phes
