// The pluggable result-storage layer: write_job_json/read_job_json
// round-trip stability (the property that makes recovered `result`
// responses byte-identical), MemoryStorage retention, DiskStorage
// persistence + crash recovery (journal replay, lost-job synthesis,
// byte-budget and TTL eviction), and the ResultStore facade over a
// durable backend.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "phes/pipeline/job.hpp"
#include "phes/pipeline/report.hpp"
#include "phes/server/result_store.hpp"
#include "phes/server/storage.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

namespace fs = std::filesystem;

using pipeline::PipelineResult;
using pipeline::Stage;
using server::DiskStorage;
using server::DiskStorageOptions;
using server::JobRecord;
using server::JobState;
using server::MemoryStorage;

std::string job_json(const PipelineResult& result) {
  std::ostringstream os;
  pipeline::write_job_json(result, os);
  return os.str();
}

/// A fully-populated successful result with awkward double values.
PipelineResult sample_result(std::uint64_t id) {
  PipelineResult r;
  r.name = "model-\"q\"\n.s2p";  // escaping must survive the round trip
  r.id = id;
  r.ok = true;
  r.completed = true;
  r.sample_count = 160;
  r.ports = 2;
  r.order = 24;
  r.fit_rms = 1.23456789e-4;
  r.fit_iterations = 9;  // NOT serialized; lost by design
  r.initial_report.bands.resize(2);
  r.initial_report.bands[0].sigma_peak = 1.05;  // only .size() survives
  r.initial_report.solver.total_matvecs = 4321;
  r.enforcement_run = true;
  r.enforcement.iterations = 3;
  r.enforcement.characterizations = 4;
  r.enforcement.relative_model_change = 0.00123456789;
  r.certified_passive = true;
  r.session.cache.hits = 7;
  r.session.cache.misses = 11;
  r.session.cache.evictions = 1;
  r.session.factorizations = 13;
  r.session.solves = 5;
  r.session.warm_solves = 4;
  r.session.revision = 3;
  r.session_reused = true;
  double t = 0.0123456789;
  for (const Stage stage :
       {Stage::kLoad, Stage::kFit, Stage::kRealize, Stage::kCharacterize,
        Stage::kEnforce, Stage::kVerify}) {
    r.stage_timings.push_back({stage, t});
    r.total_seconds += t;
    t *= 3.14159;
  }
  return r;
}

PipelineResult failed_result(std::uint64_t id) {
  PipelineResult r;
  r.name = "broken.s4p";
  r.id = id;
  r.ok = false;
  r.error = "fit diverged: rms 1e+9 > bound\n(line 42)";
  r.failed_stage = Stage::kFit;
  r.stage_timings.push_back({Stage::kLoad, 0.001});
  r.total_seconds = 0.002;
  r.sample_count = 40;
  r.ports = 4;
  return r;
}

PipelineResult cancelled_result(std::uint64_t id) {
  PipelineResult r;
  r.name = "cancelled.txt";
  r.id = id;
  r.ok = false;
  r.cancelled = true;
  r.error = "cancelled";
  r.failed_stage = Stage::kRealize;
  r.stage_timings.push_back({Stage::kLoad, 0.5});
  r.stage_timings.push_back({Stage::kFit, 1.5});
  r.total_seconds = 2.0;
  return r;
}

using test::TempDir;

JobRecord make_record(PipelineResult result, JobState state) {
  JobRecord rec;
  rec.id = result.id;
  rec.name = result.name;
  rec.state = state;
  rec.stage = Stage::kVerify;
  rec.stage_known = true;
  rec.result = std::move(result);
  return rec;
}

// ---- JSON round trip --------------------------------------------------

TEST(ReportReader, RoundTripIsByteStableForAllResultShapes) {
  for (const PipelineResult& original :
       {sample_result(1), failed_result(2), cancelled_result(3),
        PipelineResult{}}) {
    const std::string once = job_json(original);
    const PipelineResult reread = pipeline::read_job_json(once);
    EXPECT_EQ(job_json(reread), once) << once;
    // And the reader is idempotent, not just write-stable.
    EXPECT_EQ(job_json(pipeline::read_job_json(job_json(reread))), once);
  }
}

TEST(ReportReader, RoundTripOnARealPipelineRun) {
  pipeline::PipelineJob job;
  job.name = "real";
  job.samples = test::non_passive_samples(7);
  job.options.fit.num_poles = 12;
  job.options.solver.threads = 1;
  const PipelineResult result = run_pipeline(job);
  ASSERT_TRUE(result.ok) << result.error;
  const std::string once = job_json(result);
  EXPECT_EQ(job_json(pipeline::read_job_json(once)), once);
}

TEST(ReportReader, ReconstructsSemanticFields) {
  const PipelineResult reread =
      pipeline::read_job_json(job_json(sample_result(42)));
  EXPECT_EQ(reread.id, 42u);
  EXPECT_EQ(reread.name, "model-\"q\"\n.s2p");
  EXPECT_TRUE(reread.ok);
  EXPECT_EQ(reread.status(), "enforced");
  EXPECT_EQ(reread.initial_report.bands.size(), 2u);
  EXPECT_EQ(reread.stage_timings.size(), 6u);
  EXPECT_EQ(reread.session.cache.hits, 7u);
  EXPECT_TRUE(reread.session_reused);

  const PipelineResult failed =
      pipeline::read_job_json(job_json(failed_result(9)));
  EXPECT_EQ(failed.status(), "failed@fit");
  EXPECT_EQ(failed.error, "fit diverged: rms 1e+9 > bound\n(line 42)");

  EXPECT_THROW((void)pipeline::read_job_json("not json"),
               std::runtime_error);
  EXPECT_THROW((void)pipeline::read_job_json("[1, 2]"),
               std::runtime_error);
}

TEST(ReportReader, ToleratesUnknownFieldsAndStageNames) {
  // A record written by a future build may carry fields this one does
  // not know: the reader must ignore them, and the reserialized record
  // must match what this build would have written.
  const std::string once = job_json(sample_result(4));
  ASSERT_EQ(once.front(), '{');
  const std::string extended =
      "{\n  \"future_field\": {\"nested\": [1, 2]},\n" + once.substr(1);
  EXPECT_EQ(job_json(pipeline::read_job_json(extended)), once);

  // Same for a failed_stage name this build has never heard of: keep
  // the default stage instead of rejecting the whole record.
  std::string doc = job_json(failed_result(2));
  const std::string field = "\"failed_stage\": \"fit\"";
  const std::size_t at = doc.find(field);
  ASSERT_NE(at, std::string::npos);
  doc.replace(at, field.size(), "\"failed_stage\": \"quantize\"");
  const PipelineResult reread = pipeline::read_job_json(doc);
  EXPECT_FALSE(reread.ok);
  EXPECT_EQ(reread.error, failed_result(2).error);
  EXPECT_EQ(reread.failed_stage, Stage::kLoad) << "default kept";
}

// ---- Replayable input specs -------------------------------------------

TEST(JobSpec, RoundTripsPathAndInlineJobs) {
  pipeline::PipelineJob job;
  job.name = "spec \"quoted\"";
  job.input_path = "/models/a.s2p";
  job.input_ports = 2;
  job.options.fit.num_poles = 9;
  job.options.fit.iterations = 5;
  job.options.session.warm_start = false;
  job.options.stop_after = Stage::kCharacterize;
  const std::string spec = pipeline::write_job_spec_json(job);
  const pipeline::PipelineJob back = pipeline::read_job_spec_json(spec);
  EXPECT_EQ(back.name, job.name);
  EXPECT_EQ(back.input_path, job.input_path);
  EXPECT_EQ(back.input_ports, 2u);
  EXPECT_EQ(back.options.fit.num_poles, 9u);
  EXPECT_EQ(back.options.fit.iterations, 5u);
  EXPECT_FALSE(back.options.session.warm_start);
  EXPECT_EQ(back.options.stop_after, Stage::kCharacterize);
  EXPECT_EQ(pipeline::input_content_hash(back),
            pipeline::input_content_hash(job));

  pipeline::PipelineJob inline_job;
  inline_job.input_text = "# GHz S RI R 50\n1 0 0 0 0 0 0 0 0\n";
  inline_job.input_format = pipeline::InputFormat::kTouchstone;
  const pipeline::PipelineJob inline_back =
      pipeline::read_job_spec_json(pipeline::write_job_spec_json(inline_job));
  EXPECT_EQ(inline_back.input_text, inline_job.input_text);
  EXPECT_EQ(inline_back.input_format, pipeline::InputFormat::kTouchstone);
}

TEST(JobSpec, ToleratesUnknownFieldsAndRejectsInputlessSpecs) {
  pipeline::PipelineJob job;
  job.input_path = "m.s2p";
  std::string spec = pipeline::write_job_spec_json(job);
  ASSERT_EQ(spec.front(), '{');
  spec = "{\"spec_version\": 99, \"future\": true, " + spec.substr(1);
  EXPECT_EQ(pipeline::read_job_spec_json(spec).input_path, "m.s2p");

  // A samples-direct job has nothing to replay: the writer returns an
  // empty spec and the reader refuses an inputless document.
  EXPECT_TRUE(pipeline::write_job_spec_json(pipeline::PipelineJob{}).empty());
  EXPECT_THROW((void)pipeline::read_job_spec_json("{\"name\": \"x\"}"),
               std::runtime_error);
  EXPECT_THROW((void)pipeline::read_job_spec_json("not json"),
               std::runtime_error);
}

// ---- MemoryStorage ----------------------------------------------------

TEST(MemoryStorage, EvictsOldestPastCap) {
  MemoryStorage storage(2);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    storage.put(make_record(sample_result(id), JobState::kDone));
  }
  EXPECT_EQ(storage.size(), 2u);
  EXPECT_FALSE(storage.get(1).has_value());
  EXPECT_FALSE(storage.get(2).has_value());
  EXPECT_TRUE(storage.get(3).has_value());
  EXPECT_TRUE(storage.get(4).has_value());
  EXPECT_EQ(storage.stats().evicted, 2u);
  EXPECT_FALSE(storage.stats().durable);
}

// ---- DiskStorage ------------------------------------------------------

TEST(DiskStorage, PutGetServesTheExactRecord) {
  TempDir dir("putget");
  DiskStorage storage(dir.path);
  const JobRecord original = make_record(sample_result(5), JobState::kDone);
  storage.put(original);

  const auto fetched = storage.get(5);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->name, original.name);
  EXPECT_EQ(fetched->state, JobState::kDone);
  EXPECT_TRUE(fetched->stage_known);
  EXPECT_EQ(fetched->stage, Stage::kVerify);
  EXPECT_EQ(job_json(fetched->result), job_json(original.result));

  const auto summary = storage.summary(5);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->status, original.result.status());
  EXPECT_EQ(storage.stats().records, 1u);
  EXPECT_GT(storage.stats().bytes, 0u);
  EXPECT_TRUE(storage.stats().durable);
}

TEST(DiskStorage, RecoversRecordsAcrossInstances) {
  TempDir dir("recover");
  std::string done_json, failed_json;
  {
    DiskStorage storage(dir.path);
    JobRecord done = make_record(sample_result(1), JobState::kDone);
    JobRecord failed = make_record(failed_result(2), JobState::kFailed);
    storage.put(done);
    storage.put(failed);
    done_json = job_json(storage.get(1)->result);
    failed_json = job_json(storage.get(2)->result);
  }
  DiskStorage reopened(dir.path);
  EXPECT_EQ(reopened.stats().recovered, 2u);
  EXPECT_EQ(reopened.stats().lost, 0u);
  EXPECT_EQ(reopened.max_seen_id(), 2u);
  ASSERT_TRUE(reopened.get(1).has_value());
  // Byte-identical payloads: the acceptance property behind restart-
  // stable `result` responses.
  EXPECT_EQ(job_json(reopened.get(1)->result), done_json);
  EXPECT_EQ(job_json(reopened.get(2)->result), failed_json);
  EXPECT_EQ(reopened.state(2), JobState::kFailed);
  EXPECT_EQ(reopened.summaries().size(), 2u);
}

TEST(DiskStorage, AdmittedButUnfinishedJobsComeBackAsLost) {
  TempDir dir("lost");
  {
    DiskStorage storage(dir.path);
    storage.note_admitted(7, "ghost.s2p");
    storage.put(make_record(sample_result(3), JobState::kDone));
    // id 7 never finishes: the process "crashes" here.
  }
  DiskStorage reopened(dir.path);
  EXPECT_EQ(reopened.stats().lost, 1u);
  EXPECT_EQ(reopened.state(7), JobState::kFailed);
  const auto record = reopened.get(7);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->name, "ghost.s2p");
  EXPECT_FALSE(record->result.ok);
  EXPECT_NE(record->result.error.find("lost in server restart"),
            std::string::npos);
  EXPECT_EQ(reopened.max_seen_id(), 7u);
  // The lost verdict is itself durable: a third open has no pending
  // adds and serves the same failed record.
  DiskStorage third(dir.path);
  EXPECT_EQ(third.stats().lost, 0u);
  EXPECT_EQ(third.state(7), JobState::kFailed);
}

TEST(DiskStorage, ByteBudgetEvictsOldestFirst) {
  TempDir dir("bytes");
  DiskStorageOptions options;
  options.max_bytes = 3000;  // records are ~700-900 bytes each
  DiskStorage storage(dir.path, options);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    storage.put(make_record(sample_result(id), JobState::kDone));
  }
  EXPECT_LT(storage.size(), 10u);
  EXPECT_LE(storage.stats().bytes, options.max_bytes);
  EXPECT_GT(storage.stats().evicted, 0u);
  EXPECT_FALSE(storage.get(1).has_value()) << "oldest evicted first";
  EXPECT_TRUE(storage.get(10).has_value()) << "newest retained";
  // The budget survives recovery too.
  DiskStorage reopened(dir.path, options);
  EXPECT_LE(reopened.stats().bytes, options.max_bytes);
  EXPECT_TRUE(reopened.get(10).has_value());
}

TEST(DiskStorage, TtlPurgesExpiredRecords) {
  TempDir dir("ttl");
  DiskStorageOptions options;
  options.ttl_seconds = 0.05;
  DiskStorage storage(dir.path, options);
  storage.put(make_record(sample_result(1), JobState::kDone));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  storage.put(make_record(sample_result(2), JobState::kDone));
  EXPECT_FALSE(storage.get(1).has_value()) << "expired record purged";
  EXPECT_TRUE(storage.get(2).has_value());
}

TEST(DiskStorage, SalvagesPayloadWhoseFinishEventNeverMadeTheJournal) {
  TempDir dir("salvage");
  std::string payload_json;
  {
    DiskStorage storage(dir.path);
    storage.put(make_record(sample_result(4), JobState::kDone));
    payload_json = job_json(storage.get(4)->result);
  }
  {
    // Simulate a crash (or failed append) between the payload write
    // and the finish event: the journal holds only the admission.
    std::ofstream index(fs::path(dir.path) / "index.ndjson",
                        std::ios::trunc | std::ios::binary);
    index << "{\"event\": \"add\", \"id\": 4, \"name\": \"m\"}\n";
  }
  DiskStorage reopened(dir.path);
  // The intact payload must be salvaged, never overwritten as lost.
  EXPECT_EQ(reopened.stats().lost, 0u);
  EXPECT_EQ(reopened.stats().recovered, 1u);
  EXPECT_EQ(reopened.state(4), JobState::kDone);
  EXPECT_EQ(job_json(reopened.get(4)->result), payload_json);
}

TEST(DiskStorage, ToleratesATornJournalTail) {
  TempDir dir("torn");
  {
    DiskStorage storage(dir.path);
    storage.put(make_record(sample_result(1), JobState::kDone));
  }
  {
    // Simulate a crash mid-append: garbage half-line at the tail.
    std::ofstream index(fs::path(dir.path) / "index.ndjson",
                        std::ios::app | std::ios::binary);
    index << "{\"event\": \"finish\", \"id\": 2, \"na";
  }
  DiskStorage reopened(dir.path);
  EXPECT_EQ(reopened.stats().recovered, 1u);
  EXPECT_TRUE(reopened.get(1).has_value());
}

// ---- ResultStore over a durable backend -------------------------------

TEST(ResultStoreDurable, LifecycleSpillsTerminalRecordsToDisk) {
  TempDir dir("store");
  {
    server::ResultStore store(std::make_unique<DiskStorage>(dir.path));
    store.add(1, "a");
    store.add(2, "b");
    EXPECT_TRUE(store.mark_running(1));
    store.set_stage(1, Stage::kCharacterize);
    PipelineResult result = sample_result(1);
    store.finish(1, std::move(result));
    EXPECT_TRUE(store.mark_cancelled(2));
    EXPECT_EQ(store.get(1)->state, JobState::kDone);
    EXPECT_EQ(store.get(2)->state, JobState::kCancelled);
    EXPECT_EQ(store.size(), 2u);
  }
  server::ResultStore reopened(std::make_unique<DiskStorage>(dir.path));
  EXPECT_EQ(reopened.max_seen_id(), 2u);
  EXPECT_EQ(reopened.get(1)->state, JobState::kDone);
  EXPECT_EQ(reopened.get(1)->result.status(), "enforced");
  EXPECT_EQ(reopened.get(2)->state, JobState::kCancelled);
  EXPECT_TRUE(reopened.get(2)->result.cancelled);
  const auto counts = reopened.state_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kDone)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kCancelled)], 1u);
}

TEST(ResultStoreDurable, SummariesMergeLiveAndStoredAscending) {
  TempDir dir("merge");
  server::ResultStore store(std::make_unique<DiskStorage>(dir.path));
  store.add(1, "done");
  store.add(2, "still-queued");
  store.add(3, "also-done");
  store.finish(1, sample_result(1));
  store.finish(3, sample_result(3));
  const auto summaries = store.summaries();
  ASSERT_EQ(summaries.size(), 3u);
  EXPECT_EQ(summaries[0].id, 1u);
  EXPECT_EQ(summaries[0].state, JobState::kDone);
  EXPECT_EQ(summaries[1].id, 2u);
  EXPECT_EQ(summaries[1].state, JobState::kQueued);
  EXPECT_EQ(summaries[2].id, 3u);
}

}  // namespace
}  // namespace phes
