// Tests for passivity characterization, the sampling cross-validator,
// and enforcement.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "phes/hamiltonian/analysis.hpp"
#include "phes/hamiltonian/dense.hpp"
#include "phes/la/schur.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/passivity/characterization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "phes/passivity/sweep.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using macromodel::SimoRealization;
using passivity::characterize_passivity;
using passivity::enforce_passivity;
using passivity::sampling_passivity_check;

macromodel::PoleResidueModel make_model(double peak, std::uint64_t seed,
                                        std::size_t states = 36,
                                        std::size_t ports = 3) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = states;
  spec.target_peak_gain = peak;
  spec.seed = seed;
  return macromodel::make_synthetic_model(spec);
}

TEST(Characterization, NonPassiveModelYieldsViolationBands) {
  const auto model = make_model(1.08, 1);
  const SimoRealization simo(model);
  core::SolverOptions sopt;
  sopt.threads = 2;
  const auto report = characterize_passivity(simo, sopt);
  ASSERT_FALSE(report.passive);
  ASSERT_FALSE(report.bands.empty());
  for (const auto& band : report.bands) {
    EXPECT_GT(band.sigma_peak, 1.0);
    EXPECT_GE(band.omega_peak, band.omega_lo);
    EXPECT_LE(band.omega_peak, band.omega_hi);
    // The band peak is a genuine violation of the sampled response.
    const double sigma =
        la::complex_spectral_norm(simo.eval(band.omega_peak));
    EXPECT_NEAR(sigma, band.sigma_peak, 1e-9);
  }
}

TEST(Characterization, PassiveModelHasNoBands) {
  const auto model = make_model(0.8, 2);
  const SimoRealization simo(model);
  core::SolverOptions sopt;
  sopt.threads = 2;
  const auto report = characterize_passivity(simo, sopt);
  EXPECT_TRUE(report.passive);
  EXPECT_TRUE(report.bands.empty());
  EXPECT_TRUE(report.crossings.empty());
}

TEST(Characterization, BandsAreDelimitedByCrossings) {
  const auto model = make_model(1.06, 3);
  const SimoRealization simo(model);
  core::SolverOptions sopt;
  sopt.threads = 2;
  const auto report = characterize_passivity(simo, sopt);
  ASSERT_FALSE(report.bands.empty());
  for (const auto& band : report.bands) {
    // Band edges must be crossings (or the 0 / 1.5*wmax sentinels).
    const bool lo_is_crossing =
        band.omega_lo == 0.0 ||
        std::any_of(report.crossings.begin(), report.crossings.end(),
                    [&](double w) {
                      return std::abs(w - band.omega_lo) < 1e-9 * w;
                    });
    EXPECT_TRUE(lo_is_crossing);
  }
}

TEST(Sweep, AgreesWithHamiltonianCharacterization) {
  const auto model = make_model(1.07, 4);
  const SimoRealization simo(model);
  core::SolverOptions sopt;
  sopt.threads = 2;
  const auto report = characterize_passivity(simo, sopt);
  ASSERT_FALSE(report.crossings.empty());

  passivity::SweepOptions sw;
  sw.omega_min = 1e-3 * model.max_pole_magnitude();
  sw.omega_max = 1.2 * model.max_pole_magnitude();
  sw.initial_grid = 2048;  // dense enough to resolve every band
  const auto sweep = sampling_passivity_check(simo, sw);
  EXPECT_FALSE(sweep.passive);

  // Every sweep-estimated crossing matches a Hamiltonian crossing.
  for (double w : sweep.estimated_crossings) {
    double best = 1e300;
    for (double c : report.crossings) best = std::min(best, std::abs(c - w));
    EXPECT_LT(best, 1e-3 * model.max_pole_magnitude())
        << "sweep crossing " << w << " not found algebraically";
  }
}

TEST(Sweep, PassiveModelPasses) {
  const auto model = make_model(0.7, 5);
  const SimoRealization simo(model);
  passivity::SweepOptions sw;
  sw.omega_min = 0.01;
  sw.omega_max = 1.2 * model.max_pole_magnitude();
  const auto sweep = sampling_passivity_check(simo, sw);
  EXPECT_TRUE(sweep.passive);
  EXPECT_LT(sweep.worst_sigma, 1.0);
  EXPECT_TRUE(sweep.estimated_crossings.empty());
}

TEST(Sweep, RejectsBadOptions) {
  const auto model = make_model(0.8, 6, 20, 2);
  const SimoRealization simo(model);
  passivity::SweepOptions sw;
  sw.omega_min = 1.0;
  sw.omega_max = 1.0;
  EXPECT_THROW(sampling_passivity_check(simo, sw), std::invalid_argument);
}

class EnforcementProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnforcementProperty, MakesModelPassiveWithSmallPerturbation) {
  const auto model =
      make_model(1.05 + 0.01 * GetParam(), 100 + GetParam());
  SimoRealization simo(model);

  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 2;
  const auto result = enforce_passivity(simo, eopt);
  EXPECT_TRUE(result.success) << "not passive after "
                              << result.iterations << " iterations";
  EXPECT_LT(result.relative_model_change, 0.5);
  EXPECT_FALSE(result.history.empty());

  // Independent verification via dense Hamiltonian spectrum.
  const auto m = hamiltonian::build_scattering_hamiltonian(simo.to_dense());
  const auto spectrum = la::real_eigenvalues(m);
  const auto freqs = hamiltonian::extract_imaginary_frequencies(
      spectrum, 1e-8, model.max_pole_magnitude());
  EXPECT_TRUE(freqs.empty()) << freqs.size()
                             << " crossings remain after enforcement";

  // And via sampling.
  passivity::SweepOptions sw;
  sw.omega_min = 1e-3 * model.max_pole_magnitude();
  sw.omega_max = 1.3 * model.max_pole_magnitude();
  sw.initial_grid = 1024;
  const auto sweep = sampling_passivity_check(simo, sw);
  EXPECT_TRUE(sweep.passive)
      << "worst sigma " << sweep.worst_sigma << " at " << sweep.worst_omega;
}

INSTANTIATE_TEST_SUITE_P(Violations, EnforcementProperty,
                         ::testing::Range(0, 4));

TEST(Enforcement, PassiveInputIsANoop) {
  const auto model = make_model(0.8, 200);
  SimoRealization simo(model);
  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 2;
  const auto result = enforce_passivity(simo, eopt);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_DOUBLE_EQ(result.relative_model_change, 0.0);
}

TEST(Enforcement, PreservesPoles) {
  const auto model = make_model(1.06, 201);
  SimoRealization simo(model);
  const auto blocks_before = simo.blocks();
  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 2;
  (void)enforce_passivity(simo, eopt);
  const auto& blocks_after = simo.blocks();
  ASSERT_EQ(blocks_before.size(), blocks_after.size());
  for (std::size_t i = 0; i < blocks_before.size(); ++i) {
    EXPECT_DOUBLE_EQ(blocks_before[i].alpha, blocks_after[i].alpha);
    EXPECT_DOUBLE_EQ(blocks_before[i].beta, blocks_after[i].beta);
  }
}

TEST(Enforcement, AccuracyIsTracked) {
  // The relative model change must reflect the actual C perturbation.
  const auto model = make_model(1.05, 202);
  SimoRealization simo(model);
  const auto c_before = simo.c();
  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 2;
  const auto result = enforce_passivity(simo, eopt);
  const auto diff = simo.c() - c_before;
  const double expected =
      la::frobenius_norm(diff) / la::frobenius_norm(c_before);
  EXPECT_NEAR(result.relative_model_change, expected, 1e-12);
}

TEST(Enforcement, RejectsBadMargin) {
  const auto model = make_model(1.05, 203, 20, 2);
  SimoRealization simo(model);
  passivity::EnforcementOptions eopt;
  eopt.margin = 0.0;
  EXPECT_THROW(enforce_passivity(simo, eopt), std::invalid_argument);
}

}  // namespace
}  // namespace phes
