// phes::obs unit coverage: histogram bucket semantics and merge,
// registry snapshot consistency under concurrent writers (the test the
// CI TSAN job leans on), JSON round-trips through util::JsonValue, the
// Prometheus text conversion, and the registry kill switch.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "phes/util/json.hpp"
#include "phes/util/metrics.hpp"

namespace phes {
namespace {

using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  obs::Counter& c = registry.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Find-or-create: same name, same instrument.
  EXPECT_EQ(&registry.counter("c"), &c);

  obs::Gauge& g = registry.gauge("g");
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.set(-4);
  EXPECT_EQ(g.value(), -4);
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("h", {1.0, 2.0, 5.0});

  h.observe(0.5);  // <= 1.0
  h.observe(1.0);  // == bound: inclusive, still the 1.0 bucket
  h.observe(1.5);  // (1.0, 2.0]
  h.observe(5.0);  // == last bound
  h.observe(7.0);  // overflow (+Inf)

  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.bounds, (std::vector<double>{1.0, 2.0, 5.0}));
  ASSERT_EQ(s.counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(s.counts[0], 2u);      // 0.5 and the inclusive 1.0
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 5.0 + 7.0);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(
      { (void)registry.histogram("bad", {1.0, 1.0}); },
      std::exception);
  EXPECT_THROW(
      { (void)registry.histogram("bad2", {2.0, 1.0}); },
      std::exception);
  EXPECT_THROW({ (void)registry.histogram("bad3", {}); }, std::exception);
}

TEST(Metrics, HistogramFirstRegistrationWins) {
  MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("h", {1.0, 2.0});
  obs::Histogram& again = registry.histogram("h", {10.0, 20.0, 30.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Metrics, HistogramSnapshotMerge) {
  MetricsRegistry registry;
  obs::Histogram& a = registry.histogram("a", {1.0, 2.0});
  obs::Histogram& b = registry.histogram("b", {1.0, 2.0});
  a.observe(0.5);
  a.observe(3.0);
  b.observe(1.5);

  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.sum, 5.0);
  EXPECT_EQ(merged.counts, (std::vector<std::uint64_t>{1, 1, 1}));

  obs::Histogram& c = registry.histogram("c", {1.0, 2.0, 3.0});
  HistogramSnapshot mismatched = a.snapshot();
  EXPECT_THROW(mismatched.merge(c.snapshot()), std::runtime_error);
}

TEST(Metrics, SnapshotMergeAcrossRegistries) {
  // The fleet-aggregation path: two independent registries with
  // overlapping and disjoint names fold into one snapshot.
  MetricsRegistry r1;
  MetricsRegistry r2;
  r1.counter("shared").add(2);
  r2.counter("shared").add(3);
  r1.counter("only_1").add(1);
  r2.gauge("depth").set(7);
  r1.histogram("lat", {1.0}).observe(0.5);
  r2.histogram("lat", {1.0}).observe(2.0);

  MetricsSnapshot merged = r1.snapshot();
  merged.merge(r2.snapshot());
  EXPECT_EQ(merged.counters.at("shared"), 5u);
  EXPECT_EQ(merged.counters.at("only_1"), 1u);
  EXPECT_EQ(merged.gauges.at("depth"), 7);
  EXPECT_EQ(merged.histograms.at("lat").count, 2u);
  EXPECT_EQ(merged.histograms.at("lat").counts,
            (std::vector<std::uint64_t>{1, 1}));
}

TEST(Metrics, ConcurrentWritersSnapshotConsistency) {
  // Hammer one registry from several threads (registration first-touch
  // included) while the main thread snapshots concurrently; the final
  // snapshot must account for every operation.  Run under TSAN in CI.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      obs::Counter& mine =
          registry.counter("per_thread_" + std::to_string(t));
      obs::Counter& shared = registry.counter("shared_total");
      obs::Histogram& hist = registry.histogram("latency", {0.5, 1.5});
      obs::Gauge& gauge = registry.gauge("depth");
      for (int i = 0; i < kIters; ++i) {
        mine.add();
        shared.add();
        hist.observe(i % 3 == 0 ? 0.25 : 1.0);
        gauge.add(1);
        gauge.sub(1);
      }
    });
  }
  // Concurrent readers: snapshots taken mid-run must be well-formed
  // (monotone counts, counts summing to the histogram total).
  for (int probe = 0; probe < 50; ++probe) {
    const MetricsSnapshot s = registry.snapshot();
    for (const auto& [name, hist] : s.histograms) {
      std::uint64_t bucket_total = 0;
      for (const std::uint64_t c : hist.counts) bucket_total += c;
      EXPECT_LE(bucket_total, static_cast<std::uint64_t>(kThreads) * kIters)
          << name;
    }
  }
  for (auto& w : writers) w.join();

  const MetricsSnapshot s = registry.snapshot();
  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kIters;
  EXPECT_EQ(s.counters.at("shared_total"), total);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(s.counters.at("per_thread_" + std::to_string(t)),
              static_cast<std::uint64_t>(kIters));
  }
  EXPECT_EQ(s.gauges.at("depth"), 0);
  const HistogramSnapshot& hist = s.histograms.at("latency");
  EXPECT_EQ(hist.count, total);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : hist.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, total);
}

TEST(Metrics, JsonRoundTrip) {
  MetricsRegistry registry;
  registry.counter("requests_total").add(17);
  registry.gauge("queue_depth").set(-3);
  obs::Histogram& h = registry.histogram("wait_seconds", {0.001, 0.1, 10.0});
  h.observe(0.0005);
  h.observe(0.05);
  h.observe(99.0);

  const MetricsSnapshot original = registry.snapshot();
  const std::string json = original.to_json();
  const MetricsSnapshot parsed =
      MetricsSnapshot::from_json(util::JsonValue::parse(json));

  EXPECT_EQ(parsed.counters, original.counters);
  EXPECT_EQ(parsed.gauges, original.gauges);
  ASSERT_EQ(parsed.histograms.size(), original.histograms.size());
  const HistogramSnapshot& ph = parsed.histograms.at("wait_seconds");
  const HistogramSnapshot& oh = original.histograms.at("wait_seconds");
  EXPECT_EQ(ph.bounds, oh.bounds);
  EXPECT_EQ(ph.counts, oh.counts);
  EXPECT_EQ(ph.count, oh.count);
  EXPECT_DOUBLE_EQ(ph.sum, oh.sum);
  // Serialize-parse-serialize is byte-stable (the coordinator can
  // re-ship a snapshot it parsed without introducing drift).
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("phes_requests_total").add(5);
  registry.gauge("phes_queue_depth").set(2);
  obs::Histogram& h = registry.histogram("phes_wait_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);

  const std::string text = registry.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE phes_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("phes_requests_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE phes_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("phes_queue_depth 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE phes_wait_seconds histogram"),
            std::string::npos);
  // Buckets are CUMULATIVE in the exposition (le convention).
  EXPECT_NE(text.find("phes_wait_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("phes_wait_seconds_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("phes_wait_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("phes_wait_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("phes_wait_seconds_sum"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Metrics, KillSwitchFreezesInstruments) {
  MetricsRegistry registry;
  obs::Counter& c = registry.counter("c");
  obs::Gauge& g = registry.gauge("g");
  obs::Histogram& h = registry.histogram("h", {1.0});
  c.add();
  g.set(5);
  h.observe(0.5);

  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
  c.add(100);
  g.set(99);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(h.snapshot().count, 1u);

  registry.set_enabled(true);
  c.add();
  EXPECT_EQ(c.value(), 2u);
}

}  // namespace
}  // namespace phes
