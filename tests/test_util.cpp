// Tests for the utility substrate: RNG streams, statistics, thread pool,
// table printer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>

#include "phes/util/rng.hpp"
#include "phes/util/stats.hpp"
#include "phes/util/table.hpp"
#include "phes/util/thread_pool.hpp"

namespace phes {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, StreamsAreIndependent) {
  util::Rng a(123, 0), b(123, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMomentsApproximate) {
  util::Rng rng(11);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Stats, KnownValues) {
  util::RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  util::RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Stats, SummarizeSpan) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto s = util::summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(ThreadPool, RunsAllTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, TasksCanSubmitTasks) {
  // The scheduler's split rule enqueues new shifts from inside a worker.
  util::ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.submit([&] {
    counter.fetch_add(1);
    pool.submit([&] {
      counter.fetch_add(1);
      pool.submit([&] { counter.fetch_add(1); });
    });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, ZeroRequestedStillWorks) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(Table, FormatsAlignedColumns) {
  util::Table t({"Case", "n", "time"});
  t.add_row({"Case 1", "1000", "13.763"});
  t.add_row({"Case 10", "4150", "64.396"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Case 10"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(util::format_double(1.23456, 3), "1.235");
  EXPECT_EQ(util::format_double(2.0, 1), "2.0");
}

}  // namespace
}  // namespace phes
