// Pipeline subsystem tests: the stage machine, input dispatch, error
// capture, the two-level parallelism plan, and the end-to-end path
// from a synthetic non-passive model to a certified-passive result.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "phes/io/touchstone.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/macromodel/samples_io.hpp"
#include "phes/pipeline/batch.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/pipeline/report.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using pipeline::PipelineJob;
using pipeline::Stage;
using test::non_passive_samples;

PipelineJob make_job(macromodel::FrequencySamples samples) {
  PipelineJob job;
  job.name = "in-memory";
  job.samples = std::move(samples);
  job.options.fit.num_poles = 12;
  return job;
}

TEST(Pipeline, StageNamesRoundTrip) {
  for (const Stage stage :
       {Stage::kLoad, Stage::kFit, Stage::kRealize, Stage::kCharacterize,
        Stage::kEnforce, Stage::kVerify}) {
    EXPECT_EQ(pipeline::parse_stage(pipeline::stage_name(stage)), stage);
  }
  EXPECT_THROW((void)pipeline::parse_stage("bogus"), std::invalid_argument);
}

TEST(Pipeline, EndToEndEnforcesPassivity) {
  auto job = make_job(non_passive_samples(7));
  const auto result = run_pipeline(job);

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.status(), "enforced");
  EXPECT_TRUE(result.certified_passive);
  EXPECT_TRUE(result.enforcement_run);
  EXPECT_FALSE(result.initial_report.passive);
  EXPECT_GT(result.initial_report.bands.size(), 0u);
  EXPECT_TRUE(result.final_report.passive);
  EXPECT_EQ(result.final_report.bands.size(), 0u);

  // All six stages ran, in order, with non-negative timings.
  ASSERT_EQ(result.stage_timings.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.stage_timings[i].stage, static_cast<Stage>(i));
    EXPECT_GE(result.stage_timings[i].seconds, 0.0);
  }
  EXPECT_GT(result.order, 0u);
  EXPECT_EQ(result.ports, 2u);

  // One session carried the job: the enforcement rounds and the verify
  // stage were warm-started and re-used cached factorizations.
  EXPECT_GE(result.session.solves, 3u);  // characterize + >=1 round + verify
  EXPECT_GE(result.session.warm_solves, 2u);
  EXPECT_GT(result.session.cache.hits, 0u);
  EXPECT_GT(result.final_report.solver.cache_hits, 0u)
      << "verify stage did not reuse the enforcement factorizations";
}

TEST(Pipeline, StopAfterFitShortCircuits) {
  auto job = make_job(non_passive_samples(7));
  job.options.stop_after = Stage::kFit;
  const auto result = run_pipeline(job);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.status(), "stopped@fit");
  EXPECT_EQ(result.stage_timings.size(), 2u);
  EXPECT_GT(result.fit_rms, 0.0);
}

TEST(Pipeline, LoadFailureIsCapturedNotThrown) {
  PipelineJob job;
  job.input_path = "/nonexistent/model.s2p";
  const auto result = run_pipeline(job);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_stage, Stage::kLoad);
  EXPECT_NE(result.error.find("load:"), std::string::npos);
  EXPECT_EQ(result.status(), "failed@load");
}

TEST(Pipeline, LoadDispatchesOnExtension) {
  const auto samples = non_passive_samples(11);
  io::save_touchstone_file(samples, "/tmp/phes_pipeline_in.s2p", {});
  macromodel::save_samples_file(samples, "/tmp/phes_pipeline_in.txt");

  const auto from_ts = pipeline::load_input("/tmp/phes_pipeline_in.s2p");
  const auto from_txt = pipeline::load_input("/tmp/phes_pipeline_in.txt");
  EXPECT_EQ(from_ts.count(), samples.count());
  EXPECT_EQ(from_txt.count(), samples.count());
  EXPECT_EQ(from_ts.ports(), 2u);
  EXPECT_NEAR(from_ts.omega.back(), samples.omega.back(),
              1e-9 * samples.omega.back());
}

TEST(Pipeline, InlineTextInputMatchesThePathRoute) {
  // The same Touchstone bytes, submitted as a file path and as an
  // in-memory payload, must produce bit-identical pipeline results —
  // the invariant the server's submit_inline op rests on.
  const auto samples = non_passive_samples(11);
  const std::string path = "/tmp/phes_pipeline_inline.s2p";
  io::save_touchstone_file(samples, path, {});
  std::ostringstream contents;
  {
    std::ifstream in(path, std::ios::binary);
    contents << in.rdbuf();
  }

  PipelineJob by_path;
  by_path.input_path = path;
  by_path.options.fit.num_poles = 10;
  by_path.options.solver.threads = 1;
  PipelineJob by_text;
  by_text.name = "inline";
  by_text.input_text = contents.str();
  by_text.input_ports = 2;  // kAuto + ports>0 => Touchstone
  by_text.options = by_path.options;

  const auto from_path = run_pipeline(by_path);
  const auto from_text = run_pipeline(by_text);
  ASSERT_TRUE(from_path.ok) << from_path.error;
  ASSERT_TRUE(from_text.ok) << from_text.error;
  EXPECT_EQ(from_text.sample_count, from_path.sample_count);
  EXPECT_EQ(from_text.ports, from_path.ports);
  EXPECT_EQ(from_text.fit_rms, from_path.fit_rms);  // exact
  EXPECT_EQ(from_text.status(), from_path.status());
  ASSERT_EQ(from_text.initial_report.crossings.size(),
            from_path.initial_report.crossings.size());
  for (std::size_t i = 0; i < from_text.initial_report.crossings.size();
       ++i) {
    EXPECT_DOUBLE_EQ(from_text.initial_report.crossings[i],
                     from_path.initial_report.crossings[i]);
  }

  // The phes-samples text format goes through the same inline route.
  std::ostringstream samples_text;
  macromodel::save_samples(samples, samples_text);
  const auto parsed = pipeline::parse_input_text(
      samples_text.str(), pipeline::InputFormat::kSamples, 0);
  EXPECT_EQ(parsed.count(), samples.count());

  // Touchstone text without a port count cannot be parsed.
  EXPECT_THROW((void)pipeline::parse_input_text(
                   contents.str(), pipeline::InputFormat::kTouchstone, 0),
               std::runtime_error);
  // A broken payload fails inside the load stage, captured not thrown.
  PipelineJob bad;
  bad.input_text = "not a touchstone file";
  bad.input_ports = 2;
  const auto failed = run_pipeline(bad);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.failed_stage, Stage::kLoad);
}

TEST(Pipeline, BatchSessionPoolSharesAcrossDuplicateModels) {
  // Four jobs over ONE model, one worker: jobs serialize, so jobs 2-4
  // must check the first job's session back out of the batch pool and
  // serve their eigensolves from its factorization cache.
  const auto samples = non_passive_samples(7, 20);
  std::vector<PipelineJob> jobs;
  for (int i = 0; i < 4; ++i) {
    PipelineJob job = make_job(samples);
    job.name = "dup-" + std::to_string(i);
    job.options.fit.num_poles = 10;
    job.options.stop_after = Stage::kCharacterize;
    jobs.push_back(std::move(job));
  }

  pipeline::BatchOptions options;
  options.job_workers = 1;
  options.solver_threads = 1;
  const pipeline::BatchRunner runner(options);
  const auto outcome = runner.run_all(jobs);

  ASSERT_EQ(outcome.results.size(), 4u);
  for (const auto& r : outcome.results) ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(outcome.pool.checkouts, 4u);
  EXPECT_EQ(outcome.pool.creations, 1u);
  EXPECT_EQ(outcome.pool.pool_hits, 3u) << "duplicate models must share";
  EXPECT_FALSE(outcome.results[0].session_reused);
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(outcome.results[i].session_reused);
    EXPECT_GT(outcome.results[i].session.cache.hits, 0u)
        << "cross-job factorization reuse missing on job " << i;
  }
  // Pooled reuse must not change the numbers: all four crossing sets
  // agree bit for bit.
  for (int i = 1; i < 4; ++i) {
    ASSERT_EQ(outcome.results[i].initial_report.crossings.size(),
              outcome.results[0].initial_report.crossings.size());
    for (std::size_t k = 0;
         k < outcome.results[i].initial_report.crossings.size(); ++k) {
      EXPECT_DOUBLE_EQ(outcome.results[i].initial_report.crossings[k],
                       outcome.results[0].initial_report.crossings[k]);
    }
  }

  // Same batch with sharing off: private sessions, no pool activity.
  pipeline::BatchOptions isolated = options;
  isolated.share_sessions = false;
  const auto cold = pipeline::BatchRunner(isolated).run_all(jobs);
  EXPECT_EQ(cold.pool.checkouts, 0u);
  for (const auto& r : cold.results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_FALSE(r.session_reused);
  }
  // The summary table gains a pool footer row when stats are passed.
  const auto table =
      pipeline::summary_table(outcome.results, &outcome.pool);
  std::ostringstream rendered;
  table.print(rendered);
  EXPECT_NE(rendered.str().find("(session pool)"), std::string::npos);
  EXPECT_NE(rendered.str().find("3/4 reused"), std::string::npos);
}

TEST(Pipeline, ParallelismPlanSplitsTheBudget) {
  // Plenty of jobs: all threads go to job-level parallelism.
  auto plan = pipeline::plan_parallelism(8, 16);
  EXPECT_EQ(plan.job_workers, 8u);
  EXPECT_EQ(plan.solver_threads, 1u);
  // Few jobs: leftover threads feed each job's solver.
  plan = pipeline::plan_parallelism(8, 2);
  EXPECT_EQ(plan.job_workers, 2u);
  EXPECT_EQ(plan.solver_threads, 4u);
  // Degenerate inputs stay sane.
  plan = pipeline::plan_parallelism(1, 0);
  EXPECT_EQ(plan.job_workers, 1u);
  EXPECT_EQ(plan.solver_threads, 1u);
}

TEST(Pipeline, BatchRunsAllJobsAndIsolatesFailures) {
  // Two good jobs (one via Touchstone file, one in memory), one doomed.
  const auto samples = non_passive_samples(3);
  io::save_touchstone_file(samples, "/tmp/phes_pipeline_batch.s2p", {});
  {
    std::ofstream bad("/tmp/phes_pipeline_batch_bad.s2p");
    bad << "# Hz S RI\n1.0 0.5\n";  // truncated record
  }

  std::vector<PipelineJob> jobs(3);
  jobs[0].name = "file-job";
  jobs[0].input_path = "/tmp/phes_pipeline_batch.s2p";
  jobs[0].options.fit.num_poles = 12;
  jobs[1] = make_job(non_passive_samples(5));
  jobs[1].options.stop_after = Stage::kCharacterize;
  jobs[2].name = "bad-job";
  jobs[2].input_path = "/tmp/phes_pipeline_batch_bad.s2p";

  pipeline::BatchOptions options;
  options.total_threads = 2;
  const pipeline::BatchRunner runner(options);
  const auto results = runner.run(jobs);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "file-job");  // order preserved
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[0].certified_passive);
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_EQ(results[1].status(), "stopped@characterize");
  EXPECT_FALSE(results[2].ok);
  EXPECT_EQ(results[2].failed_stage, Stage::kLoad);
  EXPECT_NE(results[2].error.find("truncated"), std::string::npos);

  EXPECT_EQ(pipeline::count_succeeded(results), 2u);
  const auto table = pipeline::summary_table(results);
  EXPECT_EQ(table.rows(), 3u);
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

TEST(Pipeline, SummaryJsonAndCsvAreWrittenAndParseable) {
  std::vector<PipelineJob> jobs(2);
  jobs[0] = make_job(non_passive_samples(7));
  jobs[0].name = "full-job";
  jobs[1] = make_job(non_passive_samples(5));
  jobs[1].name = "fit-only";
  jobs[1].options.stop_after = Stage::kFit;

  pipeline::BatchOptions options;
  options.total_threads = 2;
  const auto results = pipeline::BatchRunner(options).run(jobs);
  ASSERT_EQ(pipeline::count_succeeded(results), 2u);

  // --- JSON ---
  const std::string json_path = "/tmp/phes_summary_test.json";
  pipeline::write_summary_json_file(results, json_path);
  std::ifstream jf(json_path);
  ASSERT_TRUE(jf.good());
  std::stringstream jbuf;
  jbuf << jf.rdbuf();
  const std::string json = jbuf.str();

  EXPECT_NE(json.find("\"jobs\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"full-job\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"fit-only\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"enforced\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"stopped@fit\""), std::string::npos);
  // The full job's session stats are reported verbatim.
  const std::string hits_field =
      "\"cache_hits\": " + std::to_string(results[0].session.cache.hits);
  EXPECT_NE(json.find(hits_field), std::string::npos) << json;
  EXPECT_NE(json.find("\"summary\": { \"jobs\": 2, \"succeeded\": 2"),
            std::string::npos);
  // A fit-only job reports no characterize products.
  EXPECT_NE(json.find("\"bands_initial\": null"), std::string::npos);

  // --- CSV ---
  const std::string csv_path = "/tmp/phes_summary_test.csv";
  pipeline::write_summary_csv_file(results, csv_path);
  std::ifstream cf(csv_path);
  ASSERT_TRUE(cf.good());
  std::string header_line;
  ASSERT_TRUE(std::getline(cf, header_line));
  const auto header = split_csv_line(header_line);
  std::size_t hits_col = header.size();
  std::size_t status_col = header.size();
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "cache_hits") hits_col = i;
    if (header[i] == "status") status_col = i;
  }
  ASSERT_LT(hits_col, header.size());
  ASSERT_LT(status_col, header.size());

  std::string row;
  std::size_t rows = 0;
  while (std::getline(cf, row)) {
    const auto cells = split_csv_line(row);
    ASSERT_EQ(cells.size(), header.size()) << row;
    if (rows == 0) {
      EXPECT_EQ(cells[status_col], "enforced");
      EXPECT_EQ(cells[hits_col],
                std::to_string(results[0].session.cache.hits));
    } else {
      EXPECT_EQ(cells[status_col], "stopped@fit");
      EXPECT_EQ(cells[hits_col], "0");
    }
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(Pipeline, SummaryTableHasCacheColumn) {
  auto job = make_job(non_passive_samples(7));
  job.options.stop_after = Stage::kCharacterize;
  const auto result = run_pipeline(job);
  ASSERT_TRUE(result.ok) << result.error;
  const auto table = pipeline::summary_table({result});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("cache"), std::string::npos);
  // A cold single characterization: all misses, zero hits.
  EXPECT_NE(os.str().find("0/"), std::string::npos) << os.str();
}

TEST(Pipeline, AlreadyPassiveModelSkipsEnforcement) {
  auto job = make_job(test::passive_samples(21));
  const auto result = run_pipeline(job);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status(), "passive");
  EXPECT_FALSE(result.enforcement_run);
  EXPECT_TRUE(result.certified_passive);
}

TEST(Pipeline, CancellationStopsAtStageBoundary) {
  auto job = make_job(non_passive_samples(7));
  std::atomic<bool> cancel{false};
  pipeline::PipelineContext context;
  context.cancel = &cancel;
  std::vector<Stage> started;
  context.on_stage_start = [&](Stage stage) {
    started.push_back(stage);
    if (stage == Stage::kFit) cancel.store(true);
  };
  const auto result = run_pipeline(job, context);

  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.failed_stage, Stage::kRealize);
  EXPECT_EQ(result.status(), "cancelled@realize");
  ASSERT_EQ(started.size(), 2u);  // load + fit ran, realize never started
  EXPECT_EQ(result.stage_timings.size(), 2u);
  EXPECT_NE(result.error.find("cancelled"), std::string::npos);
}

TEST(Pipeline, PreCancelledJobRunsNothing) {
  auto job = make_job(non_passive_samples(7));
  std::atomic<bool> cancel{true};
  pipeline::PipelineContext context;
  context.cancel = &cancel;
  const auto result = run_pipeline(job, context);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.status(), "cancelled@load");
  EXPECT_TRUE(result.stage_timings.empty());
}

TEST(Pipeline, JobIdIsCarriedOntoTheResult) {
  auto job = make_job(non_passive_samples(7));
  job.id = 42;
  job.options.stop_after = Stage::kFit;
  const auto result = run_pipeline(job);
  EXPECT_EQ(result.id, 42u);
}

}  // namespace
}  // namespace phes
