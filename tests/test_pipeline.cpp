// Pipeline subsystem tests: the stage machine, input dispatch, error
// capture, the two-level parallelism plan, and the end-to-end path
// from a synthetic non-passive model to a certified-passive result.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "phes/io/touchstone.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/macromodel/samples_io.hpp"
#include "phes/pipeline/batch.hpp"
#include "phes/pipeline/job.hpp"

namespace phes {
namespace {

using pipeline::PipelineJob;
using pipeline::Stage;

/// Samples of a deliberately non-passive synthetic scattering model.
macromodel::FrequencySamples non_passive_samples(std::uint64_t seed) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 2;
  spec.states = 24;
  spec.omega_min = 1.0;
  spec.omega_max = 20.0;
  spec.target_peak_gain = 1.05;  // > 1: unit-singular-value crossings
  spec.seed = seed;
  const auto model = macromodel::make_synthetic_model(spec);
  return sample_model(model, 0.3, 60.0, 160);
}

PipelineJob make_job(macromodel::FrequencySamples samples) {
  PipelineJob job;
  job.name = "in-memory";
  job.samples = std::move(samples);
  job.options.fit.num_poles = 12;
  return job;
}

TEST(Pipeline, StageNamesRoundTrip) {
  for (const Stage stage :
       {Stage::kLoad, Stage::kFit, Stage::kRealize, Stage::kCharacterize,
        Stage::kEnforce, Stage::kVerify}) {
    EXPECT_EQ(pipeline::parse_stage(pipeline::stage_name(stage)), stage);
  }
  EXPECT_THROW((void)pipeline::parse_stage("bogus"), std::invalid_argument);
}

TEST(Pipeline, EndToEndEnforcesPassivity) {
  auto job = make_job(non_passive_samples(7));
  const auto result = run_pipeline(job);

  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.status(), "enforced");
  EXPECT_TRUE(result.certified_passive);
  EXPECT_TRUE(result.enforcement_run);
  EXPECT_FALSE(result.initial_report.passive);
  EXPECT_GT(result.initial_report.bands.size(), 0u);
  EXPECT_TRUE(result.final_report.passive);
  EXPECT_EQ(result.final_report.bands.size(), 0u);

  // All six stages ran, in order, with non-negative timings.
  ASSERT_EQ(result.stage_timings.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.stage_timings[i].stage, static_cast<Stage>(i));
    EXPECT_GE(result.stage_timings[i].seconds, 0.0);
  }
  EXPECT_GT(result.order, 0u);
  EXPECT_EQ(result.ports, 2u);
}

TEST(Pipeline, StopAfterFitShortCircuits) {
  auto job = make_job(non_passive_samples(7));
  job.options.stop_after = Stage::kFit;
  const auto result = run_pipeline(job);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.status(), "stopped@fit");
  EXPECT_EQ(result.stage_timings.size(), 2u);
  EXPECT_GT(result.fit_rms, 0.0);
}

TEST(Pipeline, LoadFailureIsCapturedNotThrown) {
  PipelineJob job;
  job.input_path = "/nonexistent/model.s2p";
  const auto result = run_pipeline(job);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_stage, Stage::kLoad);
  EXPECT_NE(result.error.find("load:"), std::string::npos);
  EXPECT_EQ(result.status(), "failed@load");
}

TEST(Pipeline, LoadDispatchesOnExtension) {
  const auto samples = non_passive_samples(11);
  io::save_touchstone_file(samples, "/tmp/phes_pipeline_in.s2p", {});
  macromodel::save_samples_file(samples, "/tmp/phes_pipeline_in.txt");

  const auto from_ts = pipeline::load_input("/tmp/phes_pipeline_in.s2p");
  const auto from_txt = pipeline::load_input("/tmp/phes_pipeline_in.txt");
  EXPECT_EQ(from_ts.count(), samples.count());
  EXPECT_EQ(from_txt.count(), samples.count());
  EXPECT_EQ(from_ts.ports(), 2u);
  EXPECT_NEAR(from_ts.omega.back(), samples.omega.back(),
              1e-9 * samples.omega.back());
}

TEST(Pipeline, ParallelismPlanSplitsTheBudget) {
  // Plenty of jobs: all threads go to job-level parallelism.
  auto plan = pipeline::plan_parallelism(8, 16);
  EXPECT_EQ(plan.job_workers, 8u);
  EXPECT_EQ(plan.solver_threads, 1u);
  // Few jobs: leftover threads feed each job's solver.
  plan = pipeline::plan_parallelism(8, 2);
  EXPECT_EQ(plan.job_workers, 2u);
  EXPECT_EQ(plan.solver_threads, 4u);
  // Degenerate inputs stay sane.
  plan = pipeline::plan_parallelism(1, 0);
  EXPECT_EQ(plan.job_workers, 1u);
  EXPECT_EQ(plan.solver_threads, 1u);
}

TEST(Pipeline, BatchRunsAllJobsAndIsolatesFailures) {
  // Two good jobs (one via Touchstone file, one in memory), one doomed.
  const auto samples = non_passive_samples(3);
  io::save_touchstone_file(samples, "/tmp/phes_pipeline_batch.s2p", {});
  {
    std::ofstream bad("/tmp/phes_pipeline_batch_bad.s2p");
    bad << "# Hz S RI\n1.0 0.5\n";  // truncated record
  }

  std::vector<PipelineJob> jobs(3);
  jobs[0].name = "file-job";
  jobs[0].input_path = "/tmp/phes_pipeline_batch.s2p";
  jobs[0].options.fit.num_poles = 12;
  jobs[1] = make_job(non_passive_samples(5));
  jobs[1].options.stop_after = Stage::kCharacterize;
  jobs[2].name = "bad-job";
  jobs[2].input_path = "/tmp/phes_pipeline_batch_bad.s2p";

  pipeline::BatchOptions options;
  options.total_threads = 2;
  const pipeline::BatchRunner runner(options);
  const auto results = runner.run(jobs);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "file-job");  // order preserved
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[0].certified_passive);
  EXPECT_TRUE(results[1].ok) << results[1].error;
  EXPECT_EQ(results[1].status(), "stopped@characterize");
  EXPECT_FALSE(results[2].ok);
  EXPECT_EQ(results[2].failed_stage, Stage::kLoad);
  EXPECT_NE(results[2].error.find("truncated"), std::string::npos);

  EXPECT_EQ(pipeline::count_succeeded(results), 2u);
  const auto table = pipeline::summary_table(results);
  EXPECT_EQ(table.rows(), 3u);
}

TEST(Pipeline, AlreadyPassiveModelSkipsEnforcement) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 2;
  spec.states = 20;
  spec.target_peak_gain = 0.9;  // safely passive
  spec.seed = 21;
  const auto model = macromodel::make_synthetic_model(spec);
  auto job = make_job(sample_model(model, 0.3, 40.0, 140));
  const auto result = run_pipeline(job);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status(), "passive");
  EXPECT_FALSE(result.enforcement_run);
  EXPECT_TRUE(result.certified_passive);
}

}  // namespace
}  // namespace phes
