// Tests for pole-residue models, the structured SIMO realization
// (paper Eq. 2) and the synthetic model generator.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "phes/la/blas.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/pole_residue.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::Complex;
using la::ComplexVector;
using macromodel::make_synthetic_model;
using macromodel::PoleResidueModel;
using macromodel::SimoRealization;
using macromodel::SyntheticModelSpec;

PoleResidueModel tiny_model() {
  // 2-port model: column 0 has one real pole and one complex pair,
  // column 1 has one complex pair.
  macromodel::RealMatrix d{{0.1, 0.0}, {0.05, -0.1}};
  std::vector<macromodel::PoleResidueColumn> cols(2);
  cols[0].real_terms.push_back({-2.0, {0.5, -0.3}});
  cols[0].complex_terms.push_back(
      {Complex(-0.1, 3.0), {Complex(0.2, 0.1), Complex(-0.4, 0.05)}});
  cols[1].complex_terms.push_back(
      {Complex(-0.2, 5.0), {Complex(0.1, -0.2), Complex(0.3, 0.15)}});
  return PoleResidueModel(d, cols);
}

TEST(PoleResidue, OrderCountsPairsTwice) {
  const auto m = tiny_model();
  EXPECT_EQ(m.order(), 5u);  // 1 + 2 + 2
  EXPECT_EQ(m.ports(), 2u);
}

TEST(PoleResidue, EvalMatchesManualPartialFractions) {
  const auto m = tiny_model();
  const Complex s(0.0, 1.5);
  const auto h = m.eval(1.5);
  // Entry (0,0): d + r_real/(s-p) + r/(s-l) + conj(r)/(s-conj(l)).
  Complex expected = Complex(0.1, 0.0) + 0.5 / (s - Complex(-2.0, 0.0)) +
                     Complex(0.2, 0.1) / (s - Complex(-0.1, 3.0)) +
                     Complex(0.2, -0.1) / (s - Complex(-0.1, -3.0));
  EXPECT_NEAR(std::abs(h(0, 0) - expected), 0.0, 1e-14);
}

TEST(PoleResidue, StabilityCheck) {
  auto m = tiny_model();
  EXPECT_TRUE(m.is_stable());
  m.columns()[0].real_terms[0].pole = 0.5;
  EXPECT_FALSE(m.is_stable());
}

TEST(PoleResidue, ComplexPoleMustHavePositiveImag) {
  macromodel::RealMatrix d(1, 1);
  std::vector<macromodel::PoleResidueColumn> cols(1);
  cols[0].complex_terms.push_back({Complex(-1.0, -2.0), {Complex(1.0, 0.0)}});
  EXPECT_THROW(PoleResidueModel(d, cols), std::invalid_argument);
}

TEST(Simo, DenseConversionMatchesPoleResidueEval) {
  const auto m = tiny_model();
  const SimoRealization simo(m);
  EXPECT_EQ(simo.order(), m.order());
  const auto dense = simo.to_dense();
  for (double w : {0.3, 1.5, 3.0, 5.0, 20.0}) {
    const auto h_pr = m.eval(w);
    const auto h_ss = dense.eval(w);
    const auto h_simo = simo.eval(w);
    EXPECT_LT(test::max_abs_diff(h_pr, h_ss), 1e-11) << "w=" << w;
    EXPECT_LT(test::max_abs_diff(h_pr, h_simo), 1e-11) << "w=" << w;
  }
}

TEST(Simo, RoundTripPoleResidue) {
  const auto m = tiny_model();
  const SimoRealization simo(m);
  const auto back = simo.to_pole_residue();
  for (double w : {0.5, 2.0, 8.0}) {
    EXPECT_LT(test::max_abs_diff(m.eval(w), back.eval(w)), 1e-12);
  }
}

TEST(Simo, ApplyAMatchesDense) {
  const auto m = tiny_model();
  const SimoRealization simo(m);
  const auto dense = simo.to_dense();
  util::Rng rng(3);
  const std::size_t n = simo.order();
  ComplexVector x(n), y(n);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  simo.apply_a<Complex>(x, y);
  const auto y_ref = la::gemv(la::to_complex(dense.a),
                              std::span<const Complex>(x));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[i] - y_ref[i]), 0.0, 1e-12);
  }
  simo.apply_at<Complex>(x, y);
  const auto yt_ref = la::gemv(la::to_complex(la::transpose(dense.a)),
                               std::span<const Complex>(x));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y[i] - yt_ref[i]), 0.0, 1e-12);
  }
}

TEST(Simo, ShiftedSolveInvertsShiftedA) {
  const auto m = tiny_model();
  const SimoRealization simo(m);
  util::Rng rng(5);
  const std::size_t n = simo.order();
  for (const Complex s : {Complex(0.0, 2.0), Complex(0.3, -1.0),
                          Complex(-0.5, 4.0)}) {
    ComplexVector x(n), y(n), check(n);
    for (auto& v : x) v = Complex(rng.normal(), rng.normal());
    simo.solve_a_minus(s, x, y);
    // check = (A - sI) y must equal x.
    simo.apply_a<Complex>(y, check);
    for (std::size_t i = 0; i < n; ++i) check[i] -= s * y[i];
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(check[i] - x[i]), 0.0, 1e-11);
    }
    // Transposed variant.
    simo.solve_at_minus(s, x, y);
    simo.apply_at<Complex>(y, check);
    for (std::size_t i = 0; i < n; ++i) check[i] -= s * y[i];
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(check[i] - x[i]), 0.0, 1e-11);
    }
  }
}

TEST(Simo, BAndCKernelsMatchDense) {
  const auto m = tiny_model();
  const SimoRealization simo(m);
  const auto dense = simo.to_dense();
  util::Rng rng(7);
  const std::size_t n = simo.order(), p = simo.ports();

  ComplexVector u(p), x(n);
  for (auto& v : u) v = Complex(rng.normal(), rng.normal());
  simo.apply_b<Complex>(u, x);
  const auto x_ref = la::gemv(la::to_complex(dense.b),
                              std::span<const Complex>(u));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_ref[i]), 0.0, 1e-13);
  }

  ComplexVector xs(n), us(p);
  for (auto& v : xs) v = Complex(rng.normal(), rng.normal());
  simo.apply_bt<Complex>(xs, us);
  const auto u_ref = la::gemv(la::to_complex(la::transpose(dense.b)),
                              std::span<const Complex>(xs));
  for (std::size_t i = 0; i < p; ++i) {
    EXPECT_NEAR(std::abs(us[i] - u_ref[i]), 0.0, 1e-13);
  }

  ComplexVector yc(p);
  simo.apply_c(xs, yc);
  const auto yc_ref = la::gemv(la::to_complex(dense.c),
                               std::span<const Complex>(xs));
  for (std::size_t i = 0; i < p; ++i) {
    EXPECT_NEAR(std::abs(yc[i] - yc_ref[i]), 0.0, 1e-12);
  }

  ComplexVector xc(n);
  simo.apply_ct(u, xc);
  const auto xc_ref = la::gemv(la::to_complex(la::transpose(dense.c)),
                               std::span<const Complex>(u));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(xc[i] - xc_ref[i]), 0.0, 1e-12);
  }
}

TEST(Simo, ResolventBMatchesDenseSolve) {
  const auto m = tiny_model();
  const SimoRealization simo(m);
  const auto dense = simo.to_dense();
  util::Rng rng(9);
  const std::size_t n = simo.order(), p = simo.ports();
  const Complex s(0.0, 2.7);
  ComplexVector v(p), z(n);
  for (auto& vi : v) vi = Complex(rng.normal(), rng.normal());
  simo.resolvent_b(s, v, z);
  // Dense reference: (sI - A) z == B v.
  const auto bv = la::gemv(la::to_complex(dense.b),
                           std::span<const Complex>(v));
  auto az = la::gemv(la::to_complex(dense.a), std::span<const Complex>(z));
  for (std::size_t i = 0; i < n; ++i) {
    const Complex lhs = s * z[i] - az[i];
    EXPECT_NEAR(std::abs(lhs - bv[i]), 0.0, 1e-11);
  }
}

class GeneratorProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorProperty, ProducesRequestedStructure) {
  SyntheticModelSpec spec;
  spec.seed = static_cast<std::uint64_t>(GetParam());
  spec.ports = 3 + spec.seed % 4;
  spec.states = 40 + 7 * (spec.seed % 5);
  spec.target_peak_gain = 1.05;
  const auto model = make_synthetic_model(spec);
  EXPECT_EQ(model.ports(), spec.ports);
  EXPECT_EQ(model.order(), spec.states);
  EXPECT_TRUE(model.is_stable());
  // D norm as requested.
  const auto sigma_d = la::real_singular_values(model.d());
  EXPECT_NEAR(sigma_d.front(), spec.d_norm, 1e-9);
}

TEST_P(GeneratorProperty, PeakGainNearTarget) {
  SyntheticModelSpec spec;
  spec.seed = 100 + static_cast<std::uint64_t>(GetParam());
  spec.ports = 4;
  spec.states = 60;
  spec.target_peak_gain = 1.08;
  const auto model = make_synthetic_model(spec);
  double peak = 0.0;
  for (std::size_t i = 0; i < 600; ++i) {
    const double w =
        std::exp(std::log(0.5) + (std::log(12.0) - std::log(0.5)) *
                                     static_cast<double>(i) / 599.0);
    peak = std::max(peak, la::complex_spectral_norm(model.eval(w)));
  }
  EXPECT_GT(peak, 1.0);   // non-passive as requested
  EXPECT_LT(peak, 1.35);  // but controlled
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty, ::testing::Range(0, 6));

TEST(Generator, DeterministicForSeed) {
  SyntheticModelSpec spec;
  spec.seed = 42;
  const auto m1 = make_synthetic_model(spec);
  const auto m2 = make_synthetic_model(spec);
  for (double w : {1.0, 3.0, 9.0}) {
    EXPECT_LT(test::max_abs_diff(m1.eval(w), m2.eval(w)), 1e-15);
  }
}

TEST(Generator, RejectsBadSpecs) {
  SyntheticModelSpec spec;
  spec.ports = 0;
  EXPECT_THROW(make_synthetic_model(spec), std::invalid_argument);
  spec = SyntheticModelSpec{};
  spec.d_norm = 1.0;
  EXPECT_THROW(make_synthetic_model(spec), std::invalid_argument);
  spec = SyntheticModelSpec{};
  spec.omega_max = spec.omega_min;
  EXPECT_THROW(make_synthetic_model(spec), std::invalid_argument);
}

TEST(Samples, SampleAndErrorRoundTrip) {
  const auto m = tiny_model();
  const auto samples = macromodel::sample_model(m, 0.5, 10.0, 31);
  samples.check_consistency();
  EXPECT_EQ(samples.count(), 31u);
  EXPECT_EQ(samples.ports(), 2u);
  EXPECT_LT(macromodel::max_relative_error(m, samples), 1e-14);
}

TEST(Samples, InconsistentDataThrows) {
  macromodel::FrequencySamples s;
  s.omega = {1.0, 0.5};
  s.h.resize(2, la::ComplexMatrix(2, 2));
  EXPECT_THROW(s.check_consistency(), std::invalid_argument);
}

}  // namespace
}  // namespace phes
