// Job-trace coverage: JobTrace JSON byte-stable round-trips, the
// TraceStore ring + NDJSON file sink, build_job_trace's mapping of
// pipeline/solver counters onto spans, and the `trace` protocol op end
// to end against an in-process JobServer running a real job through
// every pipeline stage.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/server.hpp"
#include "phes/server/trace.hpp"
#include "phes/util/json.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using server::JobTrace;
using server::StageSpan;
using server::TraceStore;

JobTrace sample_trace(std::uint64_t id) {
  JobTrace t;
  t.id = id;
  t.name = "model \"quoted\" \\ path";
  t.status = "enforced";
  t.submitted_unix = 1754650000.123456;
  t.started_unix = 1754650000.234567;
  t.queue_wait_ms = 111.111;
  t.total_ms = 1234.5;
  StageSpan span;
  span.stage = "characterize";
  span.start_unix = 1754650000.25;
  span.duration_ms = 800.25;
  span.matvecs = 1234;
  span.factorizations = 7;
  span.cache_hits = 3;
  span.cache_misses = 4;
  t.spans.push_back(span);
  span = StageSpan{};
  span.stage = "verify";
  span.start_unix = 1754650001.05;
  span.duration_ms = 400.0;
  t.spans.push_back(span);
  t.solves = 9;
  t.warm_solves = 5;
  t.factorizations = 7;
  t.cache_hits = 11;
  t.cache_misses = 6;
  return t;
}

TEST(JobTraceJson, RoundTripIsByteIdentical) {
  const JobTrace original = sample_trace(41);
  const std::string json = original.to_json();
  // NDJSON: one line, no raw newlines even with hostile names.
  EXPECT_EQ(json.find('\n'), std::string::npos);

  const JobTrace parsed =
      JobTrace::from_json(util::JsonValue::parse(json));
  EXPECT_EQ(parsed.id, original.id);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.status, original.status);
  ASSERT_EQ(parsed.spans.size(), original.spans.size());
  EXPECT_EQ(parsed.spans[0].stage, "characterize");
  EXPECT_EQ(parsed.spans[0].matvecs, 1234u);
  EXPECT_EQ(parsed.spans[1].stage, "verify");
  EXPECT_EQ(parsed.solves, 9u);
  // The contract from trace.hpp: parse -> rebuild -> serialize is
  // byte-identical (fixed %.6f timestamp formatting at build time).
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(TraceStore, RingEvictsOldestAndFindsNewest) {
  TraceStore store(3);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    store.record(sample_trace(id));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_FALSE(store.get(1).has_value());  // evicted
  EXPECT_FALSE(store.get(2).has_value());
  ASSERT_TRUE(store.get(3).has_value());
  ASSERT_TRUE(store.get(5).has_value());
  EXPECT_EQ(store.get(5)->id, 5u);
}

TEST(TraceStore, NdjsonFileSinkRoundTrips) {
  test::TempDir dir("trace_store");
  std::filesystem::create_directories(dir.path);
  const std::string path = dir.path + "/traces.ndjson";
  {
    TraceStore store(8, path);
    ASSERT_TRUE(store.file_open());
    store.record(sample_trace(1));
    store.record(sample_trace(2));
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<JobTrace> parsed;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto v = util::JsonValue::parse(line);
    EXPECT_EQ(v.string_or("event", ""), "job_trace");
    parsed.push_back(JobTrace::from_json(v));
  }
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, 1u);
  EXPECT_EQ(parsed[1].id, 2u);
  EXPECT_EQ(parsed[1].to_json(), sample_trace(2).to_json());
}

TEST(TraceStore, UnwritableFileIsNonFatal) {
  TraceStore store(4, "/nonexistent_dir_for_phes_test/traces.ndjson");
  EXPECT_FALSE(store.file_open());
  store.record(sample_trace(1));  // ring still works
  EXPECT_TRUE(store.get(1).has_value());
}

TEST(BuildJobTrace, MapsSolverCountersOntoStages) {
  pipeline::PipelineResult result;
  result.id = 7;
  result.name = "m";
  result.ok = true;
  result.total_seconds = 2.0;
  result.stage_timings = {
      {pipeline::Stage::kLoad, 0.1, 0.0},
      {pipeline::Stage::kCharacterize, 0.8, 0.1},
      {pipeline::Stage::kVerify, 0.5, 0.9},
  };
  result.initial_report.solver.total_matvecs = 100;
  result.initial_report.solver.factorizations = 3;
  result.initial_report.solver.cache_hits = 1;
  result.initial_report.solver.cache_misses = 2;
  result.final_report.solver.total_matvecs = 40;
  result.final_report.solver.cache_hits = 5;
  result.session.solves = 8;
  result.session.warm_solves = 6;
  result.session.cache.hits = 9;
  result.session.cache.misses = 4;

  const JobTrace trace =
      server::build_job_trace(result, 1000.0, 1000.5, 500.0);
  EXPECT_EQ(trace.id, 7u);
  EXPECT_DOUBLE_EQ(trace.queue_wait_ms, 500.0);
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].stage, "load");
  EXPECT_EQ(trace.spans[0].matvecs, 0u);
  EXPECT_EQ(trace.spans[1].stage, "characterize");
  EXPECT_EQ(trace.spans[1].matvecs, 100u);
  EXPECT_EQ(trace.spans[1].factorizations, 3u);
  EXPECT_EQ(trace.spans[1].cache_misses, 2u);
  EXPECT_EQ(trace.spans[2].stage, "verify");
  EXPECT_EQ(trace.spans[2].matvecs, 40u);
  EXPECT_EQ(trace.spans[2].cache_hits, 5u);
  // Span start = job start + the stage's offset into the run.
  EXPECT_NEAR(trace.spans[1].start_unix, 1000.6, 1e-6);
  EXPECT_EQ(trace.solves, 8u);
  EXPECT_EQ(trace.warm_solves, 6u);
  EXPECT_EQ(trace.cache_hits, 9u);
}

// ---- trace op integration ---------------------------------------------

TEST(TraceOp, FullPipelineJobYieldsOrderedSpans) {
  server::ServerOptions options;
  options.workers = 1;
  options.solver_threads = 1;
  options.queue_capacity = 4;
  server::JobServer jobs(options);

  pipeline::PipelineJob job;
  job.input_path = test::fixture_path("golden.s2p");
  job.options.fit.num_poles = 12;
  const std::uint64_t id = jobs.submit(job);
  ASSERT_TRUE(jobs.wait(id, 120.0));

  const auto outcome = server::handle_request(
      jobs, "{\"op\": \"trace\", \"id\": " + std::to_string(id) + "}");
  const auto response = util::JsonValue::parse(outcome.response);
  ASSERT_TRUE(response.bool_or("ok", false)) << outcome.response;
  const util::JsonValue* trace_json = response.find("trace");
  ASSERT_NE(trace_json, nullptr);
  const JobTrace trace = JobTrace::from_json(*trace_json);

  EXPECT_EQ(trace.id, id);
  EXPECT_GT(trace.total_ms, 0.0);
  EXPECT_GE(trace.queue_wait_ms, 0.0);
  EXPECT_GT(trace.started_unix, 0.0);
  EXPECT_GE(trace.started_unix, trace.submitted_unix);

  // Every stage executed, in pipeline order, each with a measured
  // duration and a start inside the job's window.
  const std::vector<std::string> expected = {
      "load", "fit", "realize", "characterize", "enforce", "verify"};
  ASSERT_EQ(trace.spans.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(trace.spans[i].stage, expected[i]);
    EXPECT_GT(trace.spans[i].duration_ms, 0.0) << expected[i];
    EXPECT_GE(trace.spans[i].start_unix, trace.started_unix);
    if (i > 0) {
      EXPECT_GE(trace.spans[i].start_unix, trace.spans[i - 1].start_unix);
    }
  }
  // The eigensolver stages carry solver counters; golden.s2p is
  // non-passive, so characterization must have done real work.
  EXPECT_GT(trace.spans[3].matvecs, 0u);   // characterize
  EXPECT_GT(trace.spans[5].matvecs, 0u);   // verify
  EXPECT_GT(trace.solves, 0u);

  // The aggregate layer saw the same job: per-stage histograms and the
  // job counter are registry-backed.
  const auto snapshot = jobs.metrics_snapshot();
  EXPECT_EQ(snapshot.counters.at("phes_jobs_done_total"), 1u);
  EXPECT_EQ(snapshot.histograms.at("phes_stage_seconds_verify").count, 1u);
}

TEST(TraceOp, ErrorsDistinguishUnknownUnfinishedAndEvicted) {
  server::ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  options.trace_capacity = 1;
  server::JobServer jobs(options);

  // Unknown id.
  auto outcome = server::handle_request(jobs, "{\"op\": \"trace\", \"id\": 99}");
  EXPECT_NE(outcome.response.find("unknown job id"), std::string::npos);

  // Missing id.
  outcome = server::handle_request(jobs, "{\"op\": \"trace\"}");
  EXPECT_NE(outcome.response.find("trace: missing"), std::string::npos)
      << outcome.response;

  // Two finished jobs with a 1-slot ring: the older trace is evicted
  // and the error says so (instead of "unknown").
  pipeline::PipelineJob job;
  job.input_path = test::fixture_path("golden.s2p");
  job.options.fit.num_poles = 12;
  job.options.stop_after = pipeline::Stage::kFit;  // keep it fast
  const std::uint64_t first = jobs.submit(job);
  ASSERT_TRUE(jobs.wait(first, 120.0));
  const std::uint64_t second = jobs.submit(job);
  ASSERT_TRUE(jobs.wait(second, 120.0));

  outcome = server::handle_request(
      jobs, "{\"op\": \"trace\", \"id\": " + std::to_string(first) + "}");
  EXPECT_NE(outcome.response.find("no trace retained"), std::string::npos)
      << outcome.response;
  outcome = server::handle_request(
      jobs, "{\"op\": \"trace\", \"id\": " + std::to_string(second) + "}");
  EXPECT_TRUE(util::JsonValue::parse(outcome.response).bool_or("ok", false))
      << outcome.response;
}

}  // namespace
}  // namespace phes
