// Time-domain validation of the passivity machinery: the transient
// simulator must (a) agree with the frequency-domain singular-value
// picture (energy gain == sigma^2 at the drive frequency), (b) stay
// bounded for passive models under any passive termination, and (c)
// blow up for non-passive models exactly when the closed loop has
// right-half-plane poles — the paper's motivating failure mode.

#include <gtest/gtest.h>

#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/schur.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/macromodel/transient.hpp"
#include "phes/passivity/characterization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using macromodel::EnergyGainOptions;
using macromodel::measure_energy_gain;
using macromodel::simulate_terminated;
using macromodel::SimoRealization;
using macromodel::TransientOptions;

macromodel::PoleResidueModel make_model(double peak, std::uint64_t seed,
                                        std::size_t states = 24,
                                        std::size_t ports = 3) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = states;
  spec.target_peak_gain = peak;
  spec.seed = seed;
  spec.min_damping = 0.05;  // faster settling for short simulations
  spec.max_damping = 0.2;
  return macromodel::make_synthetic_model(spec);
}

// Closed-loop system matrix A + B W Gamma C, W = (I - Gamma D)^{-1}.
la::RealMatrix closed_loop_matrix(const SimoRealization& simo,
                                  const la::RealVector& gammas) {
  const auto ss = simo.to_dense();
  const std::size_t p = simo.ports();
  la::RealMatrix iw = la::RealMatrix::identity(p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) iw(i, j) -= gammas[i] * ss.d(i, j);
  }
  const la::RealMatrix w = la::lu_inverse(iw);
  la::RealMatrix gc = ss.c;
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < gc.cols(); ++j) gc(i, j) *= gammas[i];
  }
  const la::RealMatrix loop = la::gemm(ss.b, la::gemm(w, gc));
  return ss.a + loop;
}

bool has_rhp_pole(const SimoRealization& simo,
                  const la::RealVector& gammas) {
  const auto ev = la::real_eigenvalues(closed_loop_matrix(simo, gammas));
  for (const auto& l : ev) {
    if (l.real() > 1e-9) return true;
  }
  return false;
}

// All +-magnitude sign patterns over p ports (2^p terminations).
std::vector<la::RealVector> sign_patterns(std::size_t p, double magnitude) {
  std::vector<la::RealVector> out;
  for (std::size_t mask = 0; mask < (1u << p); ++mask) {
    la::RealVector g(p);
    for (std::size_t k = 0; k < p; ++k) {
      g[k] = (mask >> k) & 1u ? magnitude : -magnitude;
    }
    out.push_back(std::move(g));
  }
  return out;
}

TEST(EnergyGain, MatchesSigmaSquaredAtDriveFrequency) {
  const auto model = make_model(1.10, 31);
  const SimoRealization simo(model);
  // Pick a frequency and the corresponding top right singular vector.
  const double w = 0.6 * model.max_pole_magnitude();
  const auto svd = la::complex_svd(simo.eval(w));
  EnergyGainOptions opt;
  opt.omega = w;
  opt.port_vector = svd.v.col(0);
  opt.cycles = 400;
  const auto gain = measure_energy_gain(simo, opt);
  const double sigma_sq = svd.sigma[0] * svd.sigma[0];
  EXPECT_NEAR(gain.gain, sigma_sq, 0.05 * sigma_sq)
      << "time-domain gain disagrees with sigma^2";
}

TEST(EnergyGain, ExceedsUnityInsideViolationBand) {
  const auto model = make_model(1.25, 32);
  const SimoRealization simo(model);
  core::SolverOptions sopt;
  sopt.threads = 2;
  const auto report = passivity::characterize_passivity(simo, sopt);
  ASSERT_FALSE(report.bands.empty());
  const auto& band = report.bands.front();

  const auto svd = la::complex_svd(simo.eval(band.omega_peak));
  EnergyGainOptions opt;
  opt.omega = band.omega_peak;
  opt.port_vector = svd.v.col(0);
  opt.cycles = 400;
  const auto gain = measure_energy_gain(simo, opt);
  EXPECT_GT(gain.gain, 1.0)
      << "non-passive band must amplify energy in the time domain";
}

TEST(EnergyGain, BelowUnityForPassiveModel) {
  const auto model = make_model(0.8, 33);
  const SimoRealization simo(model);
  for (double frac : {0.3, 0.6, 0.9}) {
    EnergyGainOptions opt;
    opt.omega = frac * model.max_pole_magnitude();
    opt.cycles = 300;
    const auto gain = measure_energy_gain(simo, opt);
    EXPECT_LT(gain.gain, 1.0) << "passive model amplified at omega frac "
                              << frac;
  }
}

TEST(Transient, PassiveModelStaysBoundedForAllTerminations) {
  const auto model = make_model(0.85, 34);
  const SimoRealization simo(model);
  for (double gamma : {-0.99, -0.5, 0.0, 0.5, 0.99}) {
    TransientOptions opt;
    opt.dt = 0.02;
    opt.steps = 20000;
    opt.termination_gamma = gamma;
    const auto res = simulate_terminated(simo, opt);
    EXPECT_FALSE(res.blew_up) << "gamma = " << gamma;
    // After the pulse the state must decay: final << peak.
    EXPECT_LT(res.final_state_norm, res.peak_state_norm);
  }
}

TEST(Transient, NonPassiveModelBlowsUpWhenClosedLoopIsUnstable) {
  // Scan per-port resistive terminations; simulate only where dense
  // analysis proves a right-half-plane pole, and require the simulator
  // to detect the blow-up.
  const auto model = make_model(1.5, 35);
  const SimoRealization simo(model);
  bool found_unstable_loop = false;
  for (const auto& gammas : sign_patterns(simo.ports(), 0.999)) {
    if (!has_rhp_pole(simo, gammas)) continue;
    found_unstable_loop = true;
    TransientOptions opt;
    opt.dt = 0.02;
    opt.steps = 200000;
    opt.termination_gammas = gammas;
    const auto res = simulate_terminated(simo, opt);
    EXPECT_TRUE(res.blew_up)
        << "closed loop has RHP poles but simulation stayed bounded";
    break;  // one confirmed blow-up is enough
  }
  // The paper's premise: a strongly non-passive model admits a passive
  // termination that destabilizes the loop.  If this generator/seed
  // stops producing one, the test must be revisited, not skipped.
  EXPECT_TRUE(found_unstable_loop);
}

TEST(Transient, EnforcementRemovesInstability) {
  // End-to-end: find an unstable termination for the non-passive model,
  // enforce passivity, verify the same termination is now stable.
  auto model = make_model(1.5, 35);
  SimoRealization simo(model);
  la::RealVector bad_gammas;
  for (const auto& gammas : sign_patterns(simo.ports(), 0.999)) {
    if (has_rhp_pole(simo, gammas)) {
      bad_gammas = gammas;
      break;
    }
  }
  ASSERT_FALSE(bad_gammas.empty()) << "no destabilizing termination";

  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 2;
  eopt.max_iterations = 40;
  const auto enf = passivity::enforce_passivity(simo, eopt);
  ASSERT_TRUE(enf.success);
  EXPECT_FALSE(has_rhp_pole(simo, bad_gammas));

  TransientOptions opt;
  opt.dt = 0.02;
  opt.steps = 50000;
  opt.termination_gammas = bad_gammas;
  const auto res = simulate_terminated(simo, opt);
  EXPECT_FALSE(res.blew_up);
}

TEST(Transient, RejectsActiveTermination) {
  const auto model = make_model(0.9, 37, 12, 2);
  const SimoRealization simo(model);
  TransientOptions opt;
  opt.termination_gamma = 1.5;  // |gamma| > 1: active load
  EXPECT_THROW((void)simulate_terminated(simo, opt), std::invalid_argument);
}

}  // namespace
}  // namespace phes
