// Server integration tests: an in-process JobServer fronted by the real
// AF_UNIX NDJSON transport.  Jobs submitted over the socket must
// produce results bit-identical to one-shot run_pipeline on the same
// inputs — with and without cross-job session reuse — and the protocol
// surface (submit/status/result/cancel/stats/shutdown, error paths) is
// exercised end to end.  Also holds the JobQueue/ResultStore unit
// coverage the server relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/pipeline/report.hpp"
#include "phes/server/job_queue.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/result_store.hpp"
#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/transport.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using pipeline::PipelineJob;
using pipeline::PipelineResult;
using pipeline::Stage;
using server::JobServer;
using server::JobState;
using server::JsonValue;
using server::ServerOptions;

std::string unique_socket_path(const char* tag) {
  return "/tmp/phes_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Deterministic options for the bitwise comparisons: one solver
/// thread (the dynamic scheduler is then fully deterministic) and a
/// fixed pole budget.
pipeline::JobOptions deterministic_options() {
  pipeline::JobOptions options;
  options.fit.num_poles = 12;
  options.solver.threads = 1;
  return options;
}

ServerOptions deterministic_server_options() {
  ServerOptions options;
  options.workers = 2;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  options.job_defaults = deterministic_options();
  return options;
}

/// Field-by-field bitwise comparison of the numerical products of two
/// pipeline runs (ids and timings legitimately differ; session
/// counters depend on pooling and are asserted separately).
void expect_bit_identical(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.status(), b.status());
  EXPECT_EQ(a.sample_count, b.sample_count);
  EXPECT_EQ(a.ports, b.ports);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.fit_rms, b.fit_rms);  // exact: same fit, bit for bit
  EXPECT_EQ(a.fit_iterations, b.fit_iterations);

  ASSERT_EQ(a.initial_report.crossings.size(),
            b.initial_report.crossings.size());
  for (std::size_t i = 0; i < a.initial_report.crossings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.initial_report.crossings[i],
                     b.initial_report.crossings[i]);
  }
  ASSERT_EQ(a.initial_report.bands.size(), b.initial_report.bands.size());
  for (std::size_t i = 0; i < a.initial_report.bands.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.initial_report.bands[i].omega_peak,
                     b.initial_report.bands[i].omega_peak);
    EXPECT_DOUBLE_EQ(a.initial_report.bands[i].sigma_peak,
                     b.initial_report.bands[i].sigma_peak);
  }
  EXPECT_EQ(a.initial_report.solver.total_matvecs,
            b.initial_report.solver.total_matvecs);
  EXPECT_EQ(a.initial_report.solver.shifts_processed,
            b.initial_report.solver.shifts_processed);

  EXPECT_EQ(a.enforcement_run, b.enforcement_run);
  EXPECT_EQ(a.enforcement.iterations, b.enforcement.iterations);
  EXPECT_EQ(a.enforcement.relative_model_change,
            b.enforcement.relative_model_change);

  EXPECT_EQ(a.certified_passive, b.certified_passive);
  ASSERT_EQ(a.final_report.crossings.size(), b.final_report.crossings.size());
  for (std::size_t i = 0; i < a.final_report.crossings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.final_report.crossings[i],
                     b.final_report.crossings[i]);
  }
  EXPECT_EQ(a.final_report.bands.size(), b.final_report.bands.size());
}

// ---- JobQueue unit coverage -------------------------------------------

TEST(JobQueue, FifoPushPopAndStats) {
  server::JobQueue queue(4);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_TRUE(queue.push({id, PipelineJob{}}));
  }
  EXPECT_EQ(queue.size(), 3u);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(item->id, id);  // FIFO
  }
  const auto stats = queue.stats();
  EXPECT_EQ(stats.pushed, 3u);
  EXPECT_EQ(stats.popped, 3u);
  EXPECT_EQ(stats.peak_size, 3u);
  EXPECT_EQ(stats.push_waits, 0u);
}

TEST(JobQueue, RemoveDrainAndClose) {
  server::JobQueue queue(8);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    EXPECT_TRUE(queue.push({id, PipelineJob{}}));
  }
  EXPECT_TRUE(queue.remove(2));
  EXPECT_FALSE(queue.remove(2));  // already gone
  EXPECT_FALSE(queue.remove(99));

  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, 1u);
  EXPECT_EQ(drained[1].id, 3u);
  EXPECT_EQ(drained[2].id, 4u);
  EXPECT_EQ(queue.size(), 0u);

  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push({5, PipelineJob{}}));
  EXPECT_FALSE(queue.pop().has_value());
}

// ---- ResultStore unit coverage ----------------------------------------

TEST(ResultStore, LifecycleAndStates) {
  server::ResultStore store(16);
  store.add(1, "a");
  store.add(2, "b");
  EXPECT_TRUE(store.mark_running(1));
  EXPECT_FALSE(store.mark_running(1));  // already running
  store.set_stage(1, Stage::kFit);

  auto record = store.get(1);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kRunning);
  EXPECT_TRUE(record->stage_known);
  EXPECT_EQ(record->stage, Stage::kFit);

  PipelineResult result;
  result.ok = true;
  store.finish(1, result);
  EXPECT_EQ(store.get(1)->state, JobState::kDone);

  EXPECT_TRUE(store.mark_cancelled(2));
  EXPECT_FALSE(store.mark_cancelled(2));  // terminal already
  record = store.get(2);
  EXPECT_EQ(record->state, JobState::kCancelled);
  EXPECT_TRUE(record->result.cancelled);

  const auto counts = store.state_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kDone)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(JobState::kCancelled)], 1u);
}

TEST(ResultStore, EvictsOldestFinishedPastRetentionCap) {
  server::ResultStore store(2);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    store.add(id, "job");
    if (id <= 4) {
      PipelineResult result;
      result.ok = true;
      store.finish(id, result);
    }
  }
  // 4 finished with cap 2: ids 1 and 2 evicted; the queued id 5 stays.
  EXPECT_FALSE(store.get(1).has_value());
  EXPECT_FALSE(store.get(2).has_value());
  EXPECT_TRUE(store.get(3).has_value());
  EXPECT_TRUE(store.get(4).has_value());
  EXPECT_TRUE(store.get(5).has_value());
}

// ---- Protocol (no transport) ------------------------------------------

TEST(Protocol, JsonParserRoundTrips) {
  const auto v = JsonValue::parse(
      R"({"op": "submit", "id": 7, "flag": true, "x": -1.5e2,)"
      R"( "list": [1, "two", null], "nested": {"k": "v\n\"q\""}})");
  EXPECT_EQ(v.string_or("op", ""), "submit");
  EXPECT_EQ(v.uint_or("id", 0), 7u);
  EXPECT_TRUE(v.bool_or("flag", false));
  EXPECT_DOUBLE_EQ(v.number_or("x", 0.0), -150.0);
  ASSERT_NE(v.find("list"), nullptr);
  EXPECT_EQ(v.find("list")->items().size(), 3u);
  EXPECT_TRUE(v.find("list")->items()[2].is_null());
  ASSERT_NE(v.find("nested"), nullptr);
  EXPECT_EQ(v.find("nested")->string_or("k", ""), "v\n\"q\"");

  EXPECT_THROW((void)JsonValue::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": 1e}"), std::runtime_error);

  // A hostile deeply-nested line must be an error, not a stack
  // overflow (the parser runs on server connection threads).
  const std::string bomb(100000, '[');
  EXPECT_THROW((void)JsonValue::parse(bomb), std::runtime_error);
  // Protocol-depth nesting still parses.
  EXPECT_NO_THROW((void)JsonValue::parse(
      "{\"a\": {\"b\": {\"c\": [[[1]]]}}}"));
}

TEST(Protocol, MalformedAndUnknownRequests) {
  JobServer jobs(deterministic_server_options());
  auto outcome = server::handle_request(jobs, "not json at all");
  EXPECT_NE(outcome.response.find("\"ok\": false"), std::string::npos);
  outcome = server::handle_request(jobs, "{\"op\": \"frobnicate\"}");
  EXPECT_NE(outcome.response.find("unknown op"), std::string::npos);
  outcome = server::handle_request(jobs, "{}");
  EXPECT_NE(outcome.response.find("missing \\\"op\\\""), std::string::npos);
  outcome = server::handle_request(jobs, "{\"op\": \"submit\"}");
  EXPECT_NE(outcome.response.find("missing \\\"path\\\""),
            std::string::npos);
  outcome = server::handle_request(jobs, "{\"op\": \"result\"}");
  EXPECT_NE(outcome.response.find("missing \\\"id\\\""), std::string::npos);
  outcome = server::handle_request(jobs, "{\"op\": \"status\", \"id\": 99}");
  EXPECT_NE(outcome.response.find("unknown job id"), std::string::npos);
  outcome = server::handle_request(jobs, "{\"op\": \"ping\"}");
  EXPECT_NE(outcome.response.find("\"ok\": true"), std::string::npos);
  EXPECT_FALSE(outcome.shutdown_requested);
  outcome = server::handle_request(
      jobs, "{\"op\": \"shutdown\", \"drain\": false}");
  EXPECT_TRUE(outcome.shutdown_requested);
  EXPECT_FALSE(outcome.drain);
  jobs.shutdown(false);
}

// ---- End-to-end over the socket ---------------------------------------

TEST(ServerIntegration, SocketJobsBitMatchOneShotPipeline) {
  // One-shot reference on the committed golden fixture.
  PipelineJob reference;
  reference.input_path = test::fixture_path("golden.s2p");
  reference.options = deterministic_options();
  const PipelineResult oneshot = run_pipeline(reference);
  ASSERT_TRUE(oneshot.ok) << oneshot.error;
  ASSERT_EQ(oneshot.status(), "enforced");

  JobServer jobs(deterministic_server_options());
  const std::string socket_path = unique_socket_path("bitmatch");
  server::TransportServer transport(
      jobs, std::make_unique<server::UnixTransport>(socket_path));
  transport.start();

  // Two successive submissions of the same file over the socket: the
  // second must share the first's pooled session (same model hash).
  server::Client client(socket_path);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 2; ++i) {
    const std::string response = client.request(
        "{\"op\": \"submit\", \"path\": " +
        server::json_quote(reference.input_path) + "}");
    const auto json = JsonValue::parse(response);
    ASSERT_TRUE(json.bool_or("ok", false)) << response;
    const std::uint64_t id = json.uint_or("id", 0);
    ASSERT_GT(id, 0u);
    ids.push_back(id);
    // Serialize the pair so the second checkout sees the returned
    // session (concurrent jobs get distinct sessions by design).
    ASSERT_TRUE(jobs.wait(id, 300.0));
  }

  // Bitwise comparison against the one-shot run, via the in-process
  // result store (JSON would round to %.9g).
  for (const std::uint64_t id : ids) {
    const auto result = jobs.result(id);
    ASSERT_TRUE(result.has_value());
    expect_bit_identical(*result, oneshot);
  }
  const auto first = jobs.result(ids[0]);
  const auto second = jobs.result(ids[1]);
  EXPECT_FALSE(first->session_reused);
  EXPECT_TRUE(second->session_reused) << "same model hash must share";

  // The socket-facing result op returns the machine-readable record.
  const std::string result_line = client.request(
      "{\"op\": \"result\", \"id\": " + std::to_string(ids[1]) + "}");
  EXPECT_NE(result_line.find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(result_line.find("\"status\": \"enforced\""), std::string::npos);
  EXPECT_NE(result_line.find("\"certified_passive\": true"),
            std::string::npos);
  EXPECT_NE(result_line.find("\"reused\": true"), std::string::npos);
  EXPECT_EQ(result_line.find('\n'), std::string::npos) << "NDJSON: one line";

  // status (single + all) and stats over the same connection.
  const std::string status_line = client.request(
      "{\"op\": \"status\", \"id\": " + std::to_string(ids[0]) + "}");
  EXPECT_NE(status_line.find("\"state\": \"done\""), std::string::npos);
  const std::string all_line = client.request("{\"op\": \"status\"}");
  EXPECT_NE(all_line.find("\"jobs\": ["), std::string::npos);
  const std::string stats_line = client.request("{\"op\": \"stats\"}");
  EXPECT_NE(stats_line.find("\"pool_hits\": 1"), std::string::npos)
      << stats_line;

  // Shutdown over the wire: ack first, then the owner tears down.
  const std::string ack = client.request("{\"op\": \"shutdown\"}");
  EXPECT_NE(ack.find("\"ok\": true"), std::string::npos);
  EXPECT_TRUE(transport.wait_shutdown());
  jobs.shutdown(true);
  transport.stop();
}

TEST(ServerIntegration, CrossJobCacheHitsOnRepeatCharacterization) {
  // Characterize-only jobs never bump the session revision, so the
  // second job's eigensolve is served from the first job's cache.
  ServerOptions options = deterministic_server_options();
  options.workers = 1;
  JobServer jobs(options);

  PipelineJob job;
  job.input_path = test::fixture_path("golden.s2p");
  job.options = deterministic_options();
  job.options.stop_after = Stage::kCharacterize;

  const std::uint64_t first = jobs.submit(job);
  ASSERT_TRUE(jobs.wait(first, 300.0));
  const std::uint64_t second = jobs.submit(job);
  ASSERT_TRUE(jobs.wait(second, 300.0));

  const auto r1 = jobs.result(first);
  const auto r2 = jobs.result(second);
  ASSERT_TRUE(r1 && r1->ok) << (r1 ? r1->error : "missing");
  ASSERT_TRUE(r2 && r2->ok) << (r2 ? r2->error : "missing");

  // Cold first job, hot second job — same crossings, bit for bit.
  EXPECT_FALSE(r1->session_reused);
  EXPECT_EQ(r1->session.cache.hits, 0u);
  EXPECT_TRUE(r2->session_reused);
  EXPECT_GT(r2->session.cache.hits, 0u) << "no cross-job cache hits";
  EXPECT_GT(r2->initial_report.solver.cache_hits, 0u);
  EXPECT_EQ(r2->initial_report.solver.factorizations, 0u)
      << "a fully cached re-characterization builds nothing";
  ASSERT_EQ(r1->initial_report.crossings.size(),
            r2->initial_report.crossings.size());
  for (std::size_t i = 0; i < r1->initial_report.crossings.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1->initial_report.crossings[i],
                     r2->initial_report.crossings[i]);
  }
  EXPECT_EQ(r1->initial_report.solver.total_matvecs,
            r2->initial_report.solver.total_matvecs)
      << "cached factorizations must not change the solve";

  const auto stats = jobs.stats();
  EXPECT_EQ(stats.pool.checkouts, 2u);
  EXPECT_EQ(stats.pool.pool_hits, 1u);
  EXPECT_EQ(stats.pool.creations, 1u);
  jobs.shutdown(true);
}

TEST(ServerIntegration, FailedJobIsReportedNotFatal) {
  JobServer jobs(deterministic_server_options());
  PipelineJob bad;
  bad.input_path = "/nonexistent/missing.s2p";
  const std::uint64_t id = jobs.submit(bad);
  ASSERT_TRUE(jobs.wait(id, 60.0));
  const auto record = jobs.status(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kFailed);
  EXPECT_EQ(record->result.failed_stage, Stage::kLoad);

  // The server keeps serving after a failure.
  PipelineJob good;
  good.input_path = test::fixture_path("golden.s2p");
  good.options.stop_after = Stage::kFit;
  const std::uint64_t next = jobs.submit(good);
  ASSERT_TRUE(jobs.wait(next, 300.0));
  EXPECT_EQ(jobs.status(next)->state, JobState::kDone);
  jobs.shutdown(true);
}

TEST(ServerIntegration, StaleSocketFileIsReplacedLiveServerIsNot) {
  const std::string path = unique_socket_path("stale");
  {
    // Plant a stale socket file (no listener behind it).
    JobServer jobs(deterministic_server_options());
    server::TransportServer transport(
        jobs, std::make_unique<server::UnixTransport>(path));
    transport.start();
    // Leak the file on purpose: stop() unlinks, so instead simulate a
    // crash by writing a plain file after teardown.
    transport.stop();
    jobs.shutdown(true);
  }
  { std::ofstream stale(path); stale << ""; }

  JobServer jobs(deterministic_server_options());
  server::TransportServer transport(
      jobs, std::make_unique<server::UnixTransport>(path));
  EXPECT_NO_THROW(transport.start());  // stale file replaced

  // A second server on the same live path must be refused.
  JobServer other(deterministic_server_options());
  server::TransportServer duplicate(
      other, std::make_unique<server::UnixTransport>(path));
  EXPECT_THROW(duplicate.start(), std::runtime_error);

  transport.stop();
  jobs.shutdown(true);
  other.shutdown(true);
}

}  // namespace
}  // namespace phes
