#pragma once
// Shared helpers for the PHES test suite.

#include <algorithm>
#include <complex>
#include <vector>

#include "phes/la/blas.hpp"
#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/util/rng.hpp"

namespace phes::test {

using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;
using la::RealMatrix;
using la::RealVector;

/// Random real matrix with i.i.d. standard normal entries.
inline RealMatrix random_real_matrix(std::size_t rows, std::size_t cols,
                                     util::Rng& rng) {
  RealMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal();
  }
  return m;
}

/// Random complex matrix with i.i.d. standard complex normal entries.
inline ComplexMatrix random_complex_matrix(std::size_t rows, std::size_t cols,
                                           util::Rng& rng) {
  ComplexMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = Complex(rng.normal(), rng.normal());
    }
  }
  return m;
}

/// Random Hermitian matrix.
inline ComplexMatrix random_hermitian_matrix(std::size_t n, util::Rng& rng) {
  ComplexMatrix a = random_complex_matrix(n, n, rng);
  ComplexMatrix h(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      h(i, j) = 0.5 * (a(i, j) + std::conj(a(j, i)));
    }
  }
  return h;
}

/// Greedily matches two unordered spectra and returns the max pairwise
/// distance; large when the sets differ.
inline double spectrum_distance(ComplexVector a, ComplexVector b) {
  if (a.size() != b.size()) return 1e300;
  double worst = 0.0;
  for (const Complex& x : a) {
    double best = 1e300;
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const double d = std::abs(x - b[j]);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    worst = std::max(worst, best);
    b.erase(b.begin() + static_cast<std::ptrdiff_t>(best_j));
  }
  return worst;
}

/// || A - B ||_max
template <typename T>
double max_abs_diff(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

/// Set-compare two sorted frequency lists within an absolute tolerance.
inline bool frequencies_match(const RealVector& a, const RealVector& b,
                              double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace phes::test
