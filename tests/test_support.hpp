#pragma once
// Shared helpers for the PHES test suite: random matrices, spectrum
// comparison, and the seeded synthetic-model fixtures used by the
// engine/pipeline/server tests and the session-reuse bench.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <complex>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "phes/la/blas.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/la/matrix.hpp"
#include "phes/la/types.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/pole_residue.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/util/rng.hpp"
#include "phes/util/sync.hpp"

namespace phes::test {

using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;
using la::RealMatrix;
using la::RealVector;

/// Random real matrix with i.i.d. standard normal entries.
inline RealMatrix random_real_matrix(std::size_t rows, std::size_t cols,
                                     util::Rng& rng) {
  RealMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.normal();
  }
  return m;
}

/// Random complex matrix with i.i.d. standard complex normal entries.
inline ComplexMatrix random_complex_matrix(std::size_t rows, std::size_t cols,
                                           util::Rng& rng) {
  ComplexMatrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      m(i, j) = Complex(rng.normal(), rng.normal());
    }
  }
  return m;
}

/// Random Hermitian matrix.
inline ComplexMatrix random_hermitian_matrix(std::size_t n, util::Rng& rng) {
  ComplexMatrix a = random_complex_matrix(n, n, rng);
  ComplexMatrix h(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      h(i, j) = 0.5 * (a(i, j) + std::conj(a(j, i)));
    }
  }
  return h;
}

/// Greedily matches two unordered spectra and returns the max pairwise
/// distance; large when the sets differ.
inline double spectrum_distance(ComplexVector a, ComplexVector b) {
  if (a.size() != b.size()) return 1e300;
  double worst = 0.0;
  for (const Complex& x : a) {
    double best = 1e300;
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const double d = std::abs(x - b[j]);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    worst = std::max(worst, best);
    b.erase(b.begin() + static_cast<std::ptrdiff_t>(best_j));
  }
  return worst;
}

/// || A - B ||_max
template <typename T>
double max_abs_diff(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      worst = std::max(worst, std::abs(a(i, j) - b(i, j)));
    }
  }
  return worst;
}

/// Set-compare two sorted frequency lists within an absolute tolerance.
inline bool frequencies_match(const RealVector& a, const RealVector& b,
                              double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

// ---- Seeded model fixtures --------------------------------------------
// One source of truth for the synthetic models the engine, pipeline,
// server, and bench suites exercise; seeds select reproducible model
// instances, peak gain selects passive (< 1) vs violating (> 1).

/// Seeded synthetic pole-residue model with the given peak gain.
inline macromodel::PoleResidueModel synthetic_model(double peak_gain,
                                                    std::uint64_t seed,
                                                    std::size_t states = 36,
                                                    std::size_t ports = 3) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = states;
  spec.target_peak_gain = peak_gain;
  spec.seed = seed;
  return macromodel::make_synthetic_model(spec);
}

/// Samples of a deliberately non-passive 2-port scattering model (unit
/// singular-value crossings guaranteed by peak gain 1.05).
inline macromodel::FrequencySamples non_passive_samples(
    std::uint64_t seed, std::size_t states = 24) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 2;
  spec.states = states;
  spec.omega_min = 1.0;
  spec.omega_max = 20.0;
  spec.target_peak_gain = 1.05;
  spec.seed = seed;
  const auto model = macromodel::make_synthetic_model(spec);
  return sample_model(model, 0.3, 60.0, 160);
}

/// Samples of a safely passive 2-port model (peak gain 0.9).
inline macromodel::FrequencySamples passive_samples(std::uint64_t seed,
                                                    std::size_t states = 20) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 2;
  spec.states = states;
  spec.target_peak_gain = 0.9;
  spec.seed = seed;
  const auto model = macromodel::make_synthetic_model(spec);
  return sample_model(model, 0.3, 40.0, 140);
}

/// Small sampled p-port model for Touchstone round-trip tests.
inline macromodel::FrequencySamples sampled_synthetic(std::size_t ports) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = 6 * ports;
  spec.seed = 17;
  const auto model = macromodel::make_synthetic_model(spec);
  return sample_model(model, 0.5, 20.0, 12);
}

/// Path of a committed golden fixture (tests/data); PHES_TEST_DATA_DIR
/// is injected by CMake so tests run from any build directory.
inline std::string fixture_path(const std::string& name) {
#ifdef PHES_TEST_DATA_DIR
  return std::string(PHES_TEST_DATA_DIR) + "/" + name;
#else
  return "tests/data/" + name;
#endif
}

/// RAII scratch directory under the system temp dir, unique per
/// (tag, pid, instance); any pre-existing leftover is cleared so a
/// crashed earlier run cannot leak state into this one.
struct TempDir {
  explicit TempDir(const char* tag) {
    static std::atomic<int> counter{0};
    path = (std::filesystem::temp_directory_path() /
            ("phes_test_" + std::string(tag) + "_" +
             std::to_string(::getpid()) + "_" +
             std::to_string(++counter)))
               .string();
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

/// Blocks one specific job when it starts `gate_stage`, until the test
/// releases it — the deterministic "in flight" hook for the server
/// suites and the dispatch-latency bench (wired in through
/// JobServer::set_stage_observer).
class StageGate {
 public:
  void arm(std::uint64_t id, pipeline::Stage stage)
      PHES_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    armed_id_ = id;
    stage_ = stage;
  }

  void operator()(std::uint64_t id, pipeline::Stage stage)
      PHES_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    if (id != armed_id_ || stage != stage_) return;
    blocked_ = true;
    cv_.notify_all();
    while (!released_) cv_.wait(mutex_);
  }

  void wait_blocked() PHES_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (!blocked_) cv_.wait(mutex_);
  }

  void release() PHES_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  util::Mutex mutex_;
  util::CondVar cv_;
  std::uint64_t armed_id_ PHES_GUARDED_BY(mutex_) = 0;
  pipeline::Stage stage_ PHES_GUARDED_BY(mutex_) = pipeline::Stage::kLoad;
  bool blocked_ PHES_GUARDED_BY(mutex_) = false;
  bool released_ PHES_GUARDED_BY(mutex_) = false;
};

}  // namespace phes::test
