// Event-loop stress: many concurrent TCP clients against one
// TransportServer — a single epoll thread multiplexing every
// connection, with the worker pool executing jobs underneath.  This
// suite runs under the ThreadSanitizer CI job: keep every scenario
// free of sleeps-as-synchronization.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "phes/io/touchstone.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/transport.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using server::Endpoint;
using server::JobServer;
using server::JsonValue;
using server::TcpTransport;
using server::TransportServer;

Endpoint tcp_endpoint(const TcpTransport& tcp, std::string token) {
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = tcp.bound_port();
  endpoint.token = std::move(token);
  return endpoint;
}

TEST(TransportStress, SixteenConcurrentTcpClientsOnOneEventLoop) {
  constexpr std::size_t kClients = 16;
  constexpr std::size_t kJobsPerClient = 2;
  constexpr std::size_t kTotal = kClients * kJobsPerClient;

  server::ServerOptions options;
  options.workers = 4;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  JobServer jobs(options);

  const std::string token = "stress-token";
  auto tcp_owned = std::make_unique<TcpTransport>("127.0.0.1", 0, token);
  TcpTransport* tcp = tcp_owned.get();
  TransportServer transport(jobs, std::move(tcp_owned));
  transport.start();
  const Endpoint endpoint = tcp_endpoint(*tcp, token);

  // Two distinct inline payloads, submitted as Touchstone text: the
  // whole job cycle — auth, inline submit, status polling — runs over
  // the single loop thread while 16 clients hammer it.
  const auto samples_a = test::non_passive_samples(7, 20);
  const auto samples_b = test::passive_samples(11, 20);
  std::string payload_a;
  std::string payload_b;
  {
    std::ostringstream os_a;
    io::save_touchstone(samples_a, os_a);
    payload_a = os_a.str();
    std::ostringstream os_b;
    io::save_touchstone(samples_b, os_b);
    payload_b = os_b.str();
  }

  std::vector<std::uint64_t> ids(kTotal, 0);
  std::atomic<std::size_t> request_errors{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        server::Client client(endpoint);
        for (std::size_t j = 0; j < kJobsPerClient; ++j) {
          const bool use_a = (c + j) % 2 == 0;
          const std::string request =
              "{\"op\": \"submit_inline\", \"ports\": 2, \"name\": " +
              server::json_quote(use_a ? "model-a" : "model-b") +
              ", \"options\": {\"poles\": 10, \"stop_after\": "
              "\"characterize\"}, \"payload\": " +
              server::json_quote(use_a ? payload_a : payload_b) + "}";
          const auto response = JsonValue::parse(client.request(request));
          if (!response.bool_or("ok", false)) {
            request_errors.fetch_add(1);
            return;
          }
          ids[c * kJobsPerClient + j] = response.uint_or("id", 0);
          // Interleave cheap ops so the loop multiplexes read+write
          // traffic across all 16 connections, not just submits.
          (void)client.request("{\"op\": \"stats\"}");
          (void)client.request(
              "{\"op\": \"status\", \"id\": " +
              std::to_string(ids[c * kJobsPerClient + j]) + "}");
        }
      } catch (const std::exception&) {
        request_errors.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(request_errors.load(), 0u);

  // Every inline submission must reach a terminal done state, and jobs
  // over one model must agree bit for bit.
  for (const std::uint64_t id : ids) {
    ASSERT_GT(id, 0u);
    ASSERT_TRUE(jobs.wait(id, 300.0)) << "job " << id << " stuck";
  }
  const auto reference = jobs.result(ids[0]);
  ASSERT_TRUE(reference.has_value());
  std::size_t done = 0;
  for (const std::uint64_t id : ids) {
    const auto result = jobs.result(id);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->ok) << result->error;
    ++done;
    if (result->name != reference->name) continue;
    ASSERT_EQ(result->initial_report.crossings.size(),
              reference->initial_report.crossings.size());
    for (std::size_t i = 0; i < result->initial_report.crossings.size();
         ++i) {
      EXPECT_DOUBLE_EQ(result->initial_report.crossings[i],
                       reference->initial_report.crossings[i]);
    }
  }
  EXPECT_EQ(done, kTotal);

  const auto stats = transport.stats();
  EXPECT_EQ(stats.accepted, kClients);
  EXPECT_EQ(stats.auth_failures, 0u);
  // Every client issued 3 ops per job on one multiplexed loop.
  EXPECT_GE(stats.requests, kTotal * 3u);

  const auto server_stats = jobs.stats();
  EXPECT_EQ(server_stats.submitted, kTotal);
  EXPECT_GT(server_stats.pool.pool_hits, 0u)
      << "inline TCP jobs must share pooled sessions too";

  transport.stop();
  jobs.shutdown(true);
}

TEST(TransportStress, AuthStormDoesNotWedgeTheLoop) {
  JobServer jobs(server::ServerOptions{});
  const std::string token = "storm-token";
  auto tcp_owned = std::make_unique<TcpTransport>("127.0.0.1", 0, token);
  TcpTransport* tcp = tcp_owned.get();
  TransportServer transport(jobs, std::move(tcp_owned));
  transport.start();

  // A burst of bad-token and good-token connections racing each other;
  // the loop must refuse the former, serve the latter, and leak
  // nothing.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kItersPerThread = 4;
  std::atomic<std::size_t> served{0};
  std::atomic<std::size_t> refused{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kItersPerThread; ++i) {
        const bool good = (t + i) % 2 == 0;
        Endpoint endpoint = tcp_endpoint(*tcp, good ? token : "wrong");
        try {
          server::Client client(endpoint);
          const std::string response =
              client.request("{\"op\": \"ping\"}");
          if (response.find("\"ok\": true") != std::string::npos) {
            served.fetch_add(1);
          }
        } catch (const std::exception&) {
          refused.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(served.load(), kThreads * kItersPerThread / 2);
  EXPECT_EQ(refused.load(), kThreads * kItersPerThread / 2);
  const auto stats = transport.stats();
  EXPECT_EQ(stats.auth_failures, refused.load());

  transport.stop();
  jobs.shutdown(true);
}

}  // namespace
}  // namespace phes
