// Tests for the dense eigensolvers: Hessenberg reduction, real Schur
// (Francis double-shift QR), and the complex Hessenberg QR iteration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/eig.hpp"
#include "phes/la/hessenberg.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/schur.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::Complex;
using la::ComplexMatrix;
using la::ComplexVector;
using la::RealMatrix;

TEST(Hessenberg, RealStructureAndSimilarity) {
  util::Rng rng(1);
  const RealMatrix a = test::random_real_matrix(8, 8, rng);
  const auto [h, q] = la::hessenberg_reduce(a, true);
  // Structure: zero below first subdiagonal.
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) EXPECT_DOUBLE_EQ(h(i, j), 0.0);
  }
  // Similarity: Q H Q^T == A.
  const RealMatrix rec = la::gemm(la::gemm(q, h), la::transpose(q));
  EXPECT_LT(test::max_abs_diff(rec, a), 1e-11);
  // Orthogonality.
  const RealMatrix qtq = la::gemm(la::transpose(q), q);
  EXPECT_LT(test::max_abs_diff(qtq, RealMatrix::identity(8)), 1e-12);
}

TEST(Hessenberg, ComplexStructureAndSimilarity) {
  util::Rng rng(2);
  const ComplexMatrix a = test::random_complex_matrix(7, 7, rng);
  const auto [h, q] = la::hessenberg_reduce(a, true);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) {
      EXPECT_EQ(h(i, j), Complex{});
    }
  }
  const ComplexMatrix rec = la::gemm(la::gemm(q, h), la::adjoint(q));
  EXPECT_LT(test::max_abs_diff(rec, a), 1e-11);
}

TEST(RealSchur, DiagonalMatrix) {
  RealMatrix a{{3, 0, 0}, {0, -1, 0}, {0, 0, 5}};
  const auto ev = la::real_eigenvalues(a);
  EXPECT_NEAR(test::spectrum_distance(
                  ev, {Complex(3, 0), Complex(-1, 0), Complex(5, 0)}),
              0.0, 1e-12);
}

TEST(RealSchur, KnownComplexPair) {
  // Rotation-like matrix: eigenvalues 1 +- 2i.
  RealMatrix a{{1, 2}, {-2, 1}};
  const auto ev = la::real_eigenvalues(a);
  EXPECT_NEAR(
      test::spectrum_distance(ev, {Complex(1, 2), Complex(1, -2)}), 0.0,
      1e-12);
}

TEST(RealSchur, SchurFactorizationReconstructs) {
  util::Rng rng(3);
  const RealMatrix a = test::random_real_matrix(12, 12, rng);
  const auto schur = la::real_schur(a, true);
  const RealMatrix rec =
      la::gemm(la::gemm(schur.q, schur.t), la::transpose(schur.q));
  EXPECT_LT(test::max_abs_diff(rec, a), 1e-9);
  // T must be quasi-triangular: no two consecutive subdiagonals.
  for (std::size_t i = 2; i < 12; ++i) {
    const bool two_subdiags =
        schur.t(i, i - 1) != 0.0 && schur.t(i - 1, i - 2) != 0.0;
    EXPECT_FALSE(two_subdiags);
  }
}

class SchurProperty : public ::testing::TestWithParam<int> {};

TEST_P(SchurProperty, EigenvaluesSatisfyCharacteristicResidual) {
  // Verify det-free: for each eigenvalue, smallest singular value of
  // (A - lambda I) must be tiny relative to ||A||.
  util::Rng rng(50 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(14);
  const RealMatrix a = test::random_real_matrix(n, n, rng);
  const auto ev = la::real_eigenvalues(a);
  ASSERT_EQ(ev.size(), n);
  const ComplexMatrix ac = la::to_complex(a);
  const double scale = la::frobenius_norm(a);
  for (const Complex& lambda : ev) {
    ComplexMatrix shifted = ac;
    for (std::size_t i = 0; i < n; ++i) shifted(i, i) -= lambda;
    // Smallest singular value via the complex eigensolver of A^H A is
    // overkill; use determinant magnitude of LU as a proxy: a tiny
    // pivot indicates near-singularity.
    double min_pivot = 1e300;
    try {
      la::LuFactorization<Complex> lu(shifted);
      min_pivot = lu.min_pivot_magnitude();
    } catch (const std::runtime_error&) {
      min_pivot = 0.0;  // exactly singular: perfect eigenvalue
    }
    EXPECT_LT(min_pivot, 1e-5 * scale)
        << "eigenvalue " << lambda << " does not annihilate A - lambda I";
  }
}

TEST_P(SchurProperty, TraceAndSpectrumSumAgree) {
  util::Rng rng(150 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(20);
  const RealMatrix a = test::random_real_matrix(n, n, rng);
  const auto ev = la::real_eigenvalues(a);
  Complex sum{};
  for (const auto& l : ev) sum += l;
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  EXPECT_NEAR(sum.real(), trace, 1e-8 * (1.0 + std::abs(trace)));
  EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SchurProperty, ::testing::Range(0, 12));

TEST(ComplexEig, DiagonalKnown) {
  ComplexMatrix a(3, 3);
  a(0, 0) = Complex(1, 1);
  a(1, 1) = Complex(-2, 0);
  a(2, 2) = Complex(0, -3);
  const auto ev = la::complex_eigenvalues(a);
  EXPECT_NEAR(test::spectrum_distance(
                  ev, {Complex(1, 1), Complex(-2, 0), Complex(0, -3)}),
              0.0, 1e-12);
}

TEST(ComplexEig, MatchesRealSchurOnRealMatrix) {
  util::Rng rng(4);
  const RealMatrix a = test::random_real_matrix(10, 10, rng);
  const auto ev_real = la::real_eigenvalues(a);
  const auto ev_complex = la::complex_eigenvalues(la::to_complex(a));
  EXPECT_LT(test::spectrum_distance(ev_real, ev_complex), 1e-7);
}

class ComplexEigProperty : public ::testing::TestWithParam<int> {};

TEST_P(ComplexEigProperty, EigenpairsHaveSmallResidual) {
  util::Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(16);
  const ComplexMatrix a = test::random_complex_matrix(n, n, rng);
  const auto eig = la::complex_eig(a, true);
  ASSERT_EQ(eig.values.size(), n);
  const double scale = la::frobenius_norm(a);
  for (std::size_t j = 0; j < n; ++j) {
    const auto v = eig.vectors.col(j);
    const auto av = la::gemv(a, std::span<const Complex>(v));
    double resid = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      resid = std::max(resid, std::abs(av[i] - eig.values[j] * v[i]));
    }
    EXPECT_LT(resid, 1e-8 * (1.0 + scale));
  }
}

TEST_P(ComplexEigProperty, HessenbergEigMatchesDense) {
  util::Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 4 + rng.below(20);
  ComplexMatrix h = test::random_complex_matrix(n, n, rng);
  // Zero below the first subdiagonal to get a Hessenberg matrix.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) h(i, j) = Complex{};
  }
  const auto ev1 = la::hessenberg_eig(h, false).values;
  const auto ev2 = la::complex_eigenvalues(h);
  EXPECT_LT(test::spectrum_distance(ev1, ev2), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ComplexEigProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace phes
