// Unit + property tests for LU and QR factorizations.

#include <gtest/gtest.h>

#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/qr.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::Complex;
using la::ComplexMatrix;
using la::RealMatrix;
using la::RealVector;

TEST(Lu, SolvesKnownSystem) {
  RealMatrix a{{4, 3}, {6, 3}};
  RealVector b{10, 12};
  const auto x = la::lu_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, SingularThrows) {
  RealMatrix a{{1, 2}, {2, 4}};
  EXPECT_THROW((la::LuFactorization<double>{a}), std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  RealMatrix a(2, 3);
  EXPECT_THROW((la::LuFactorization<double>{a}), std::invalid_argument);
}

TEST(Lu, Determinant) {
  RealMatrix a{{2, 0}, {0, 3}};
  la::LuFactorization<double> lu(a);
  EXPECT_NEAR(lu.determinant(), 6.0, 1e-12);
  // Permutation sign: swap rows.
  RealMatrix b{{0, 1}, {1, 0}};
  la::LuFactorization<double> lub(b);
  EXPECT_NEAR(lub.determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseReconstructs) {
  util::Rng rng(5);
  const RealMatrix a = test::random_real_matrix(6, 6, rng);
  const RealMatrix inv = la::lu_inverse(a);
  const RealMatrix prod = la::gemm(a, inv);
  EXPECT_LT(test::max_abs_diff(prod, RealMatrix::identity(6)), 1e-10);
}

class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, RealResidualSmall) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(40);
  const RealMatrix a = test::random_real_matrix(n, n, rng);
  RealVector b(n);
  for (auto& v : b) v = rng.normal();
  const auto x = la::lu_solve(a, b);
  const auto ax = la::gemv(a, std::span<const double>(x));
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) resid = std::max(resid, std::abs(ax[i] - b[i]));
  EXPECT_LT(resid, 1e-9 * (1.0 + la::nrm2<double>(b)));
}

TEST_P(LuProperty, ComplexResidualSmall) {
  util::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(30);
  const ComplexMatrix a = test::random_complex_matrix(n, n, rng);
  la::ComplexVector b(n);
  for (auto& v : b) v = Complex(rng.normal(), rng.normal());
  const auto x = la::lu_solve(a, b);
  const auto ax = la::gemv(a, std::span<const Complex>(x));
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) resid = std::max(resid, std::abs(ax[i] - b[i]));
  EXPECT_LT(resid, 1e-9 * (1.0 + la::nrm2<Complex>(b)));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LuProperty, ::testing::Range(0, 12));

TEST(Qr, ThinQOrthonormal) {
  util::Rng rng(9);
  const RealMatrix a = test::random_real_matrix(10, 4, rng);
  la::QrFactorization qr(a);
  const RealMatrix q = qr.thin_q();
  const RealMatrix qtq = la::gemm(la::transpose(q), q);
  EXPECT_LT(test::max_abs_diff(qtq, RealMatrix::identity(4)), 1e-12);
}

TEST(Qr, Reconstructs) {
  util::Rng rng(10);
  const RealMatrix a = test::random_real_matrix(8, 5, rng);
  la::QrFactorization qr(a);
  const RealMatrix prod = la::gemm(qr.thin_q(), qr.r());
  EXPECT_LT(test::max_abs_diff(prod, a), 1e-12);
}

TEST(Qr, UnderdeterminedThrows) {
  RealMatrix a(2, 3);
  EXPECT_THROW(la::QrFactorization{a}, std::invalid_argument);
}

TEST(Qr, ExactSolveSquare) {
  RealMatrix a{{2, 1}, {1, 3}};
  RealVector b{5, 10};
  const auto x = la::least_squares(a, b);
  EXPECT_NEAR(2 * x[0] + x[1], 5.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1], 10.0, 1e-12);
}

class QrProperty : public ::testing::TestWithParam<int> {};

TEST_P(QrProperty, NormalEquationsHold) {
  // At the least-squares optimum, the residual is orthogonal to the
  // column space: A^T (A x - b) = 0.
  util::Rng rng(77 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 8 + rng.below(20);
  const std::size_t n = 2 + rng.below(6);
  const RealMatrix a = test::random_real_matrix(m, n, rng);
  RealVector b(m);
  for (auto& v : b) v = rng.normal();
  const auto x = la::least_squares(a, b);
  auto r = la::gemv(a, std::span<const double>(x));
  for (std::size_t i = 0; i < m; ++i) r[i] -= b[i];
  const auto atr = la::gemv_transposed(a, std::span<const double>(r));
  EXPECT_LT(la::inf_norm<double>(atr), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, QrProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace phes
