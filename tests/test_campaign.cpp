// Replayable campaigns end to end: stored records resolved back into
// fresh jobs through the replay/resubmit/campaign protocol ops.  The
// acceptance property is replay determinism — running a whole
// --data-dir again after a restart classifies every job bit-identical
// against its stored baseline (pipeline::result_signature).  The fault
// half: corrupt payloads and missing input specs are skipped-and-
// counted (phes_campaign_skipped_total), never fatal, and the queue
// keeps serving fresh submissions afterwards.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "phes/io/touchstone.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/pipeline/report.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/server.hpp"
#include "phes/server/storage.hpp"
#include "phes/util/metrics.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

namespace fs = std::filesystem;

using server::handle_request;
using server::JobServer;
using server::JobState;
using server::JsonValue;
using server::ServerOptions;

using test::TempDir;

ServerOptions campaign_options(const std::string& data_dir,
                               obs::MetricsRegistry* registry) {
  ServerOptions options;
  options.workers = 2;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  options.job_defaults.fit.num_poles = 12;
  options.data_dir = data_dir;
  options.registry = registry;
  return options;
}

std::string request(JobServer& server, const std::string& line) {
  return handle_request(server, line).response;
}

/// Touchstone text of a seeded passive 2-port model, for inline
/// submissions whose bytes round-trip through the stored input spec.
std::string touchstone_payload(std::uint64_t seed) {
  std::ostringstream os;
  io::save_touchstone(test::passive_samples(seed), os);
  return os.str();
}

std::string submit_inline_request(const std::string& payload,
                                  const std::string& name) {
  return "{\"op\": \"submit_inline\", \"payload\": " +
         server::json_quote(payload) + ", \"ports\": 2, \"name\": \"" +
         name + "\"}";
}

std::uint64_t submit_inline(JobServer& server, const std::string& payload,
                            const std::string& name) {
  const auto ack =
      JsonValue::parse(request(server, submit_inline_request(payload, name)));
  EXPECT_TRUE(ack.bool_or("ok", false)) << ack.string_or("error", "");
  return ack.uint_or("id", 0);
}

/// Replay ids out of a replay ack's "jobs" array, in response order.
std::vector<std::uint64_t> replay_ids(const JsonValue& ack) {
  std::vector<std::uint64_t> ids;
  const JsonValue* jobs = ack.find("jobs");
  if (jobs == nullptr) return ids;
  for (const JsonValue& entry : jobs->items()) {
    ids.push_back(entry.uint_or("id", 0));
  }
  return ids;
}

TEST(Campaign, ReplayAllAfterRestartIsBitIdentical) {
  TempDir dir("campaign_restart");
  const std::string data_dir = dir.path + "/data";
  const std::string model_path = dir.path + "/model.s2p";
  fs::create_directories(dir.path);
  io::save_touchstone_file(test::passive_samples(11), model_path);

  std::string path_signature, inline_signature;
  {
    obs::MetricsRegistry registry;
    JobServer jobs(campaign_options(data_dir, &registry));
    const auto ack = JsonValue::parse(request(
        jobs, "{\"op\": \"submit\", \"path\": " +
                  server::json_quote(model_path) + ", \"name\": \"path\"}"));
    ASSERT_TRUE(ack.bool_or("ok", false));
    const std::uint64_t path_id = ack.uint_or("id", 0);
    const std::uint64_t inline_id =
        submit_inline(jobs, touchstone_payload(7), "inline");
    ASSERT_TRUE(jobs.wait(path_id, 300.0));
    ASSERT_TRUE(jobs.wait(inline_id, 300.0));
    ASSERT_EQ(jobs.status(path_id)->state, JobState::kDone);
    ASSERT_EQ(jobs.status(inline_id)->state, JobState::kDone);
    path_signature = pipeline::result_signature(*jobs.result(path_id));
    inline_signature = pipeline::result_signature(*jobs.result(inline_id));
    // Graceful shutdown at scope exit; records + input specs on disk.
  }

  obs::MetricsRegistry registry;
  JobServer jobs(campaign_options(data_dir, &registry));
  const auto ack =
      JsonValue::parse(request(jobs, "{\"op\": \"replay\", \"all\": true}"));
  ASSERT_TRUE(ack.bool_or("ok", false)) << ack.string_or("error", "");
  EXPECT_EQ(ack.uint_or("campaign", 0), 1u);
  ASSERT_EQ(ack.uint_or("replayed", 0), 2u);
  EXPECT_EQ(ack.uint_or("skipped", 99), 0u);

  const std::vector<std::uint64_t> ids = replay_ids(ack);
  ASSERT_EQ(ids.size(), 2u);
  for (const std::uint64_t id : ids) {
    EXPECT_GT(id, 2u) << "replays continue above recovered ids";
    ASSERT_TRUE(jobs.wait(id, 300.0));
  }

  // THE acceptance property: a full-directory replay after a restart
  // classifies 100% of jobs bit-identical.
  const auto status =
      JsonValue::parse(request(jobs, "{\"op\": \"campaign\", \"id\": 1}"));
  ASSERT_TRUE(status.bool_or("ok", false));
  EXPECT_TRUE(status.bool_or("done", false));
  EXPECT_EQ(status.uint_or("total", 0), 2u);
  EXPECT_EQ(status.uint_or("completed", 0), 2u);
  const JsonValue* deltas = status.find("deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_EQ(deltas->uint_or("identical", 0), 2u);
  EXPECT_EQ(deltas->uint_or("numeric", 99), 0u);
  EXPECT_EQ(deltas->uint_or("state", 99), 0u);
  for (const JsonValue& entry : status.find("jobs")->items()) {
    EXPECT_EQ(entry.string_or("delta", ""), "bit-identical");
    EXPECT_EQ(entry.string_or("after", ""), entry.string_or("before", "?"));
  }

  // Belt and braces: the signatures themselves, not just the labels.
  EXPECT_EQ(pipeline::result_signature(*jobs.result(ids[0])),
            path_signature);
  EXPECT_EQ(pipeline::result_signature(*jobs.result(ids[1])),
            inline_signature);

  EXPECT_EQ(registry.counter("phes_campaign_started_total").value(), 1u);
  EXPECT_EQ(registry.counter("phes_campaign_completed_total").value(), 1u);
  EXPECT_EQ(registry.counter("phes_campaign_replayed_total").value(), 2u);
  EXPECT_EQ(registry.counter("phes_campaign_skipped_total").value(), 0u);
  EXPECT_EQ(
      registry.counter("phes_campaign_delta_identical_total").value(), 2u);
}

TEST(Campaign, SingleIdReplayTracksAndResubmitDoesNot) {
  // No data_dir: the in-memory backend keeps input specs too, so
  // replay works without a restart in the picture.
  obs::MetricsRegistry registry;
  ServerOptions options = campaign_options("", &registry);
  options.data_dir.clear();
  JobServer jobs(options);

  const std::uint64_t source = submit_inline(jobs, touchstone_payload(3), "m");
  ASSERT_TRUE(jobs.wait(source, 300.0));
  const std::string baseline =
      pipeline::result_signature(*jobs.result(source));

  const auto ack = JsonValue::parse(request(
      jobs, "{\"op\": \"replay\", \"id\": " + std::to_string(source) + "}"));
  ASSERT_TRUE(ack.bool_or("ok", false)) << ack.string_or("error", "");
  ASSERT_EQ(ack.uint_or("replayed", 0), 1u);
  const std::uint64_t replay_id = replay_ids(ack)[0];
  ASSERT_TRUE(jobs.wait(replay_id, 300.0));
  EXPECT_EQ(pipeline::result_signature(*jobs.result(replay_id)), baseline);

  const auto status =
      JsonValue::parse(request(jobs, "{\"op\": \"campaign\", \"id\": 1}"));
  ASSERT_TRUE(status.bool_or("ok", false));
  EXPECT_TRUE(status.bool_or("done", false));
  EXPECT_EQ(status.find("deltas")->uint_or("identical", 0), 1u);

  // resubmit re-admits without campaign tracking: a fresh job id, the
  // same deterministic result, and no campaign 2.
  const auto resub = JsonValue::parse(request(
      jobs,
      "{\"op\": \"resubmit\", \"id\": " + std::to_string(source) + "}"));
  ASSERT_TRUE(resub.bool_or("ok", false)) << resub.string_or("error", "");
  EXPECT_EQ(resub.uint_or("source", 0), source);
  const std::uint64_t resub_id = resub.uint_or("id", 0);
  ASSERT_TRUE(jobs.wait(resub_id, 300.0));
  EXPECT_EQ(pipeline::result_signature(*jobs.result(resub_id)), baseline);
  const auto none =
      JsonValue::parse(request(jobs, "{\"op\": \"campaign\", \"id\": 2}"));
  EXPECT_FALSE(none.bool_or("ok", true));
  EXPECT_NE(none.string_or("error", "").find("unknown campaign id"),
            std::string::npos);
}

TEST(Campaign, ReplayRejectsUnknownUnfinishedAndMissingSelector) {
  obs::MetricsRegistry registry;
  ServerOptions options = campaign_options("", &registry);
  options.data_dir.clear();
  options.workers = 1;  // one worker: job 2 stays queued behind job 1
  JobServer jobs(options);

  test::StageGate gate;
  jobs.set_stage_observer(std::ref(gate));
  gate.arm(1, pipeline::Stage::kLoad);

  const std::uint64_t running = submit_inline(jobs, touchstone_payload(5), "r");
  const std::uint64_t queued = submit_inline(jobs, touchstone_payload(6), "q");
  gate.wait_blocked();

  const auto unknown =
      JsonValue::parse(request(jobs, "{\"op\": \"replay\", \"id\": 42}"));
  EXPECT_FALSE(unknown.bool_or("ok", true));
  EXPECT_NE(unknown.string_or("error", "").find("unknown job id 42"),
            std::string::npos);

  const auto unfinished = JsonValue::parse(request(
      jobs, "{\"op\": \"replay\", \"id\": " + std::to_string(queued) + "}"));
  EXPECT_FALSE(unfinished.bool_or("ok", true));
  EXPECT_NE(unfinished.string_or("error", "").find("has not finished"),
            std::string::npos);

  const auto selectorless =
      JsonValue::parse(request(jobs, "{\"op\": \"replay\"}"));
  EXPECT_FALSE(selectorless.bool_or("ok", true));

  const auto resub =
      JsonValue::parse(request(jobs, "{\"op\": \"resubmit\", \"id\": 42}"));
  EXPECT_FALSE(resub.bool_or("ok", true));
  EXPECT_NE(resub.string_or("error", "").find("unknown job id 42"),
            std::string::npos);

  gate.release();
  ASSERT_TRUE(jobs.wait(running, 300.0));
  ASSERT_TRUE(jobs.wait(queued, 300.0));
}

TEST(Campaign, FaultInjectionSkipsAndCountsWithoutPoisoningTheQueue) {
  TempDir dir("campaign_faults");
  {
    obs::MetricsRegistry registry;
    JobServer jobs(campaign_options(dir.path, &registry));
    const std::uint64_t a = submit_inline(jobs, touchstone_payload(21), "a");
    const std::uint64_t b = submit_inline(jobs, touchstone_payload(22), "b");
    // A samples-direct job has no replayable input spec at all.
    pipeline::PipelineJob direct;
    direct.name = "direct";
    direct.samples = test::passive_samples(23);
    const std::uint64_t c = jobs.submit(std::move(direct));
    ASSERT_TRUE(jobs.wait(a, 300.0));
    ASSERT_TRUE(jobs.wait(b, 300.0));
    ASSERT_TRUE(jobs.wait(c, 300.0));
  }

  // Fault injection: job 1's stored payload is corrupted, job 2's
  // input spec is deleted.  Job 3 never had one.
  {
    std::ofstream out(fs::path(dir.path) / "jobs" / "job-1.json",
                      std::ios::trunc | std::ios::binary);
    out << "{ this is not json\n";
  }
  fs::remove(fs::path(dir.path) / "inputs" / "job-2.json");

  obs::MetricsRegistry registry;
  JobServer jobs(campaign_options(dir.path, &registry));
  const auto ack =
      JsonValue::parse(request(jobs, "{\"op\": \"replay\", \"all\": true}"));
  ASSERT_TRUE(ack.bool_or("ok", false)) << ack.string_or("error", "");
  EXPECT_EQ(ack.uint_or("replayed", 99), 0u);
  EXPECT_EQ(ack.uint_or("skipped", 0), 3u);
  const JsonValue* skips = ack.find("skips");
  ASSERT_NE(skips, nullptr);
  ASSERT_EQ(skips->items().size(), 3u);
  for (const JsonValue& skip : skips->items()) {
    const std::uint64_t source = skip.uint_or("source", 0);
    const std::string reason = skip.string_or("reason", "");
    if (source == 1) {
      EXPECT_EQ(reason.rfind(server::kUnreadableResultPrefix, 0), 0u)
          << reason;
    } else {
      EXPECT_EQ(reason, "no stored input") << "source " << source;
    }
  }
  EXPECT_EQ(registry.counter("phes_campaign_skipped_total").value(), 3u);
  EXPECT_EQ(registry.counter("phes_campaign_replayed_total").value(), 0u);

  // An all-skip campaign is immediately done and diffs nothing.
  const auto status =
      JsonValue::parse(request(jobs, "{\"op\": \"campaign\", \"id\": 1}"));
  ASSERT_TRUE(status.bool_or("ok", false));
  EXPECT_TRUE(status.bool_or("done", false));
  EXPECT_EQ(status.uint_or("total", 99), 0u);
  EXPECT_EQ(status.uint_or("skipped", 0), 3u);

  // The queue is not poisoned: fresh work still flows end to end.
  const std::uint64_t fresh = submit_inline(jobs, touchstone_payload(24), "f");
  ASSERT_TRUE(jobs.wait(fresh, 300.0));
  EXPECT_EQ(jobs.status(fresh)->state, JobState::kDone);
}

TEST(Campaign, FiltersNarrowByStateIdRangeAndModelHash) {
  TempDir dir("campaign_filters");
  obs::MetricsRegistry registry;
  JobServer jobs(campaign_options(dir.path, &registry));

  const std::string payload_a = touchstone_payload(31);
  const std::uint64_t a = submit_inline(jobs, payload_a, "a");
  const std::uint64_t bad =
      submit_inline(jobs, "not touchstone data", "bad");
  const std::uint64_t c = submit_inline(jobs, touchstone_payload(32), "c");
  ASSERT_TRUE(jobs.wait(a, 300.0));
  ASSERT_TRUE(jobs.wait(bad, 60.0));
  ASSERT_TRUE(jobs.wait(c, 300.0));
  ASSERT_EQ(jobs.status(bad)->state, JobState::kFailed);

  // state filter: only the failed job — and a deterministic failure
  // replays as bit-identical too (same error, same signature).
  const auto failed = JsonValue::parse(
      request(jobs, "{\"op\": \"replay\", \"all\": true, "
                    "\"state\": \"failed\"}"));
  ASSERT_TRUE(failed.bool_or("ok", false)) << failed.string_or("error", "");
  ASSERT_EQ(failed.uint_or("replayed", 0), 1u);
  EXPECT_EQ(failed.find("jobs")->items()[0].uint_or("source", 0), bad);
  const std::uint64_t bad_replay = replay_ids(failed)[0];
  ASSERT_TRUE(jobs.wait(bad_replay, 60.0));
  const auto failed_status =
      JsonValue::parse(request(jobs, "{\"op\": \"campaign\", \"id\": 1}"));
  EXPECT_EQ(failed_status.find("deltas")->uint_or("identical", 0), 1u);

  // id-range filter: exactly job c.
  const auto ranged = JsonValue::parse(
      request(jobs, "{\"op\": \"replay\", \"all\": true, \"from\": " +
                        std::to_string(c) + ", \"to\": " +
                        std::to_string(c) + "}"));
  ASSERT_TRUE(ranged.bool_or("ok", false));
  ASSERT_EQ(ranged.uint_or("replayed", 0), 1u);
  EXPECT_EQ(ranged.find("jobs")->items()[0].uint_or("source", 0), c);

  // model filter: the content hash of payload_a selects job a only
  // (non-matching records are unselected, not skipped).
  pipeline::PipelineJob probe;
  probe.input_text = payload_a;
  const std::string model = pipeline::input_content_hash(probe);
  const auto by_model = JsonValue::parse(
      request(jobs, "{\"op\": \"replay\", \"all\": true, \"to\": " +
                        std::to_string(c) + ", \"model\": \"" + model +
                        "\"}"));
  ASSERT_TRUE(by_model.bool_or("ok", false));
  ASSERT_EQ(by_model.uint_or("replayed", 0), 1u);
  EXPECT_EQ(by_model.uint_or("skipped", 99), 0u);
  EXPECT_EQ(by_model.find("jobs")->items()[0].uint_or("source", 0), a);

  for (const std::uint64_t id :
       {replay_ids(ranged)[0], replay_ids(by_model)[0]}) {
    ASSERT_TRUE(jobs.wait(id, 300.0));
  }
}

}  // namespace
}  // namespace phes
