// Restart recovery end to end: a JobServer with a --data-dir style
// durable store is fed over the real transports (AF_UNIX + TCP with
// auth), shut down, and rebuilt on the same directory.  The acceptance
// property: `result` responses fetched after the restart are
// byte-identical to the pre-restart ones, over both transports; ids
// keep counting above recovered records; `status`/`wait` answer for
// recovered jobs; and a job admitted but never finished surfaces as
// failed/lost after the "crash".

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/result_store.hpp"
#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/storage.hpp"
#include "phes/server/transport.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

namespace fs = std::filesystem;

using server::Endpoint;
using server::JobServer;
using server::JobState;
using server::JsonValue;
using server::ServerOptions;
using server::TcpTransport;
using server::TransportServer;
using server::UnixTransport;

using test::TempDir;

std::string unique_socket_path(const char* tag) {
  return "/tmp/phes_recovery_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

ServerOptions durable_options(const std::string& data_dir) {
  ServerOptions options;
  options.workers = 2;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  options.job_defaults.fit.num_poles = 12;
  options.data_dir = data_dir;
  return options;
}

/// One serving generation: a JobServer on `data_dir` behind fresh
/// UNIX + TCP listeners.
struct Generation {
  explicit Generation(const std::string& data_dir, const char* tag)
      : jobs(durable_options(data_dir)) {
    const std::string socket_path = unique_socket_path(tag);
    std::vector<std::unique_ptr<server::Transport>> transports;
    transports.push_back(std::make_unique<UnixTransport>(socket_path));
    auto tcp = std::make_unique<TcpTransport>("127.0.0.1", 0, kToken);
    tcp_ptr = tcp.get();
    transports.push_back(std::move(tcp));
    transport = std::make_unique<TransportServer>(jobs,
                                                  std::move(transports));
    transport->start();
    unix_endpoint.kind = Endpoint::Kind::kUnix;
    unix_endpoint.path = socket_path;
    tcp_endpoint.kind = Endpoint::Kind::kTcp;
    tcp_endpoint.host = "127.0.0.1";
    tcp_endpoint.port = tcp_ptr->bound_port();
    tcp_endpoint.token = kToken;
  }

  ~Generation() {
    transport->stop();
    jobs.shutdown(true);
  }

  static constexpr const char* kToken = "recovery-token";

  JobServer jobs;
  std::unique_ptr<TransportServer> transport;
  TcpTransport* tcp_ptr = nullptr;
  Endpoint unix_endpoint;
  Endpoint tcp_endpoint;
};

std::string result_request(std::uint64_t id) {
  return "{\"op\": \"result\", \"id\": " + std::to_string(id) + "}";
}

TEST(ServerRecovery, RestartServesByteIdenticalResultsOverBothTransports) {
  TempDir dir("restart");
  std::string done_unix, done_tcp, failed_unix, status_done;

  {
    Generation gen(dir.path, "gen1");
    server::Client unix_client(gen.unix_endpoint);
    server::Client tcp_client(gen.tcp_endpoint);

    // Job 1: a real enforced run submitted by path over UNIX.
    const std::string fixture = test::fixture_path("golden.s2p");
    const std::string submit =
        "{\"op\": \"submit\", \"path\": " + server::json_quote(fixture) +
        "}";
    const auto ack = JsonValue::parse(unix_client.request(submit));
    ASSERT_TRUE(ack.bool_or("ok", false));
    const std::uint64_t done_id = ack.uint_or("id", 0);
    ASSERT_EQ(done_id, 1u);

    // Job 2: an inline payload that fails in the load stage.
    const auto ack2 = JsonValue::parse(tcp_client.request(
        "{\"op\": \"submit_inline\", \"payload\": \"not touchstone\", "
        "\"ports\": 2, \"name\": \"bad\"}"));
    ASSERT_TRUE(ack2.bool_or("ok", false));
    const std::uint64_t failed_id = ack2.uint_or("id", 0);
    ASSERT_EQ(failed_id, 2u);

    ASSERT_TRUE(gen.jobs.wait(done_id, 300.0));
    ASSERT_TRUE(gen.jobs.wait(failed_id, 60.0));
    ASSERT_EQ(gen.jobs.status(done_id)->state, JobState::kDone);
    ASSERT_EQ(gen.jobs.status(failed_id)->state, JobState::kFailed);

    done_unix = unix_client.request(result_request(done_id));
    done_tcp = tcp_client.request(result_request(done_id));
    EXPECT_EQ(done_unix, done_tcp) << "transports agree pre-restart";
    failed_unix = unix_client.request(result_request(failed_id));
    status_done = unix_client.request("{\"op\": \"status\", \"id\": 1}");
    // Graceful shutdown at scope exit; the records are already spilled.
  }

  {
    Generation gen(dir.path, "gen2");
    EXPECT_EQ(gen.jobs.stats().storage.recovered, 2u);
    EXPECT_EQ(gen.jobs.stats().storage.lost, 0u);

    server::Client unix_client(gen.unix_endpoint);
    server::Client tcp_client(gen.tcp_endpoint);

    // THE acceptance property: byte-identical result responses, both
    // transports.
    EXPECT_EQ(unix_client.request(result_request(1)), done_unix);
    EXPECT_EQ(tcp_client.request(result_request(1)), done_tcp);
    EXPECT_EQ(unix_client.request(result_request(2)), failed_unix);
    EXPECT_EQ(tcp_client.request(result_request(2)), failed_unix);

    // status survives too (stage + terminal status string recovered).
    EXPECT_EQ(unix_client.request("{\"op\": \"status\", \"id\": 1}"),
              status_done);
    // wait on a recovered job answers immediately.
    EXPECT_TRUE(gen.jobs.wait(1, 5.0));

    // New ids continue above the recovered ones.
    pipeline::PipelineJob job;
    job.name = "post-restart";
    job.samples = test::passive_samples(3);
    EXPECT_EQ(gen.jobs.submit(std::move(job)), 3u);
    ASSERT_TRUE(gen.jobs.wait(3, 300.0));
  }

  // Third generation: the post-restart job persisted as well.
  {
    Generation gen(dir.path, "gen3");
    EXPECT_EQ(gen.jobs.stats().storage.recovered, 3u);
    server::Client unix_client(gen.unix_endpoint);
    const auto json =
        JsonValue::parse(unix_client.request(result_request(3)));
    EXPECT_TRUE(json.bool_or("ok", false));
    EXPECT_EQ(json.string_or("state", ""), "done");
  }
}

TEST(ServerRecovery, JobsInFlightAtACrashComeBackAsLost) {
  TempDir dir("crash");
  {
    // Simulate the crash at the store layer: records admitted (and the
    // admission journaled) but the process dies before they finish —
    // ResultStore/JobServer never get to write a terminal record.
    server::ResultStore store(
        std::make_unique<server::DiskStorage>(dir.path));
    store.add(1, "was-running.s2p");
    store.add(2, "was-queued.s2p");
    EXPECT_TRUE(store.mark_running(1));
  }
  Generation gen(dir.path, "aftercrash");
  EXPECT_EQ(gen.jobs.stats().storage.lost, 2u);
  server::Client client(gen.unix_endpoint);

  const auto status =
      JsonValue::parse(client.request("{\"op\": \"status\", \"id\": 1}"));
  ASSERT_TRUE(status.bool_or("ok", false));
  const JsonValue* job = status.find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->string_or("state", ""), "failed");

  const auto result =
      JsonValue::parse(client.request(result_request(2)));
  ASSERT_TRUE(result.bool_or("ok", false));
  const JsonValue* record = result.find("job");
  ASSERT_NE(record, nullptr);
  EXPECT_NE(record->string_or("error", "").find("lost in server restart"),
            std::string::npos);

  // The lost ids are burned: new submissions continue above them.
  pipeline::PipelineJob next;
  next.name = "fresh";
  next.samples = test::passive_samples(5);
  EXPECT_EQ(gen.jobs.submit(std::move(next)), 3u);
  ASSERT_TRUE(gen.jobs.wait(3, 300.0));
}

}  // namespace
}  // namespace phes
