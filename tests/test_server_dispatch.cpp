// Off-loop request dispatch: the regression guard for PR 4's inline
// handling, where a submit blocked on a full admission queue stalled
// every connection of the server.  Determinism comes from the
// StageGate observer (a job provably parked inside a stage keeps the
// single worker busy) plus JobQueue's push_waits counter (a submit
// provably blocked in admission).  With both pinned, status/ping/stats
// round-trips on other connections MUST complete while the submit
// stays blocked — and per-connection response ordering MUST hold for
// requests queued behind the blocked submit on the same connection.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>

#include "phes/pipeline/job.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/transport.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using pipeline::PipelineJob;
using pipeline::Stage;
using server::JobServer;
using server::JobState;
using server::JsonValue;
using server::ServerOptions;
using server::TransportServer;
using server::UnixTransport;
using test::StageGate;

std::string unique_socket_path(const char* tag) {
  return "/tmp/phes_dispatch_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// One worker, a one-slot queue: one gated job + one queued job make
/// the next submit block in admission — the pressure scenario.
ServerOptions pressure_options() {
  ServerOptions options;
  options.workers = 1;
  options.solver_threads = 1;
  options.queue_capacity = 1;
  options.job_defaults.fit.num_poles = 12;
  return options;
}

PipelineJob quick_job(const char* name, std::uint64_t seed) {
  PipelineJob job;
  job.name = name;
  job.samples = test::non_passive_samples(seed);
  job.options.fit.num_poles = 12;
  job.options.stop_after = Stage::kCharacterize;
  return job;
}

/// Submit-by-path of a nonexistent file: admission does not touch the
/// filesystem, so the request exercises pure queue backpressure (the
/// job later fails in its load stage, which is irrelevant here).
constexpr const char* kBlockedSubmit =
    "{\"op\": \"submit\", \"path\": \"/nonexistent/pressure.s2p\"}";

/// Drive the server to the pinned pressure point: job 1 gated mid-fit
/// on the only worker, job 2 filling the queue, and `blocked_submit`'s
/// request provably waiting in admission (push_waits).
void reach_pressure_point(JobServer& jobs, StageGate& gate) {
  gate.arm(1, Stage::kFit);
  ASSERT_EQ(jobs.submit(quick_job("gated", 7)), 1u);
  gate.wait_blocked();
  ASSERT_EQ(jobs.submit(quick_job("queued", 5)), 2u);
  ASSERT_EQ(jobs.stats().queue.size, 1u);
}

void wait_for_blocked_push(JobServer& jobs) {
  while (jobs.stats().queue.push_waits == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServerDispatch, StatusAndPingStayLiveWhileASubmitBlocksOnAdmission) {
  JobServer jobs(pressure_options());
  StageGate gate;
  jobs.set_stage_observer(std::ref(gate));
  const std::string socket_path = unique_socket_path("liveness");
  TransportServer transport(jobs,
                            std::make_unique<UnixTransport>(socket_path));
  transport.start();

  reach_pressure_point(jobs, gate);

  // Connection 1: a submit that blocks in admission on a pool worker.
  auto blocked_ack = std::async(std::launch::async, [&] {
    server::Client submitter(socket_path);
    return submitter.request(kBlockedSubmit);
  });
  wait_for_blocked_push(jobs);

  // Connection 2: while the submit is provably blocked, cheap ops must
  // round-trip.  (Under PR 4's inline handling this future never
  // becomes ready — the loop thread itself is parked in admission.)
  auto live_ops = std::async(std::launch::async, [&] {
    server::Client poller(socket_path);
    std::string out = poller.request("{\"op\": \"ping\"}");
    out += "\n" + poller.request("{\"op\": \"status\"}");
    out += "\n" + poller.request("{\"op\": \"stats\"}");
    return out;
  });
  ASSERT_EQ(live_ops.wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "status polls stalled behind a blocked submit";
  const std::string responses = live_ops.get();
  EXPECT_NE(responses.find("\"op\": \"ping\""), std::string::npos);
  // The blocked job is already visible as a queued record.
  EXPECT_NE(responses.find("\"id\": 3"), std::string::npos) << responses;
  // The stats op reports the transport + dispatch sections.
  EXPECT_NE(responses.find("\"transport\""), std::string::npos);
  EXPECT_NE(responses.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(responses.find("\"push_waits\": 1"), std::string::npos);

  // The submit is still blocked; nothing resolved it by accident.
  EXPECT_EQ(blocked_ack.wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);

  gate.release();
  const auto ack = JsonValue::parse(blocked_ack.get());
  EXPECT_TRUE(ack.bool_or("ok", false));
  EXPECT_EQ(ack.uint_or("id", 0), 3u);
  ASSERT_TRUE(jobs.wait(3, 120.0));
  EXPECT_EQ(jobs.status(3)->state, JobState::kFailed);  // bogus path

  const auto stats = transport.stats();
  EXPECT_GT(stats.inline_requests, 0u) << "cheap ops used the fast path";
  EXPECT_GT(stats.dispatched, 0u) << "the submit went through the pool";

  transport.stop();
  jobs.shutdown(true);
}

/// Raw blocking AF_UNIX connection so the test controls exactly which
/// bytes hit the wire and when.
class RawConnection {
 public:
  explicit RawConnection(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0)
        << std::strerror(errno);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  std::string read_response_line() {
    for (;;) {
      const std::size_t nl = carry_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return line;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) return "<connection closed>";
      carry_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string carry_;
};

TEST(ServerDispatch, PerConnectionOrderHoldsBehindABlockedSubmit) {
  JobServer jobs(pressure_options());
  StageGate gate;
  jobs.set_stage_observer(std::ref(gate));
  const std::string socket_path = unique_socket_path("ordering");
  TransportServer transport(jobs,
                            std::make_unique<UnixTransport>(socket_path));
  transport.start();

  reach_pressure_point(jobs, gate);

  // Pipeline a blocking submit AND a ping on the SAME connection.  The
  // ping is a fast-path op, but it queued behind the submit — the
  // response order must be submit ack first, ping second.
  RawConnection raw(socket_path);
  raw.send_bytes(std::string(kBlockedSubmit) + "\n{\"op\": \"ping\"}\n");
  wait_for_blocked_push(jobs);

  gate.release();
  const std::string first = raw.read_response_line();
  const std::string second = raw.read_response_line();
  EXPECT_NE(first.find("\"op\": \"submit\""), std::string::npos) << first;
  EXPECT_NE(second.find("\"op\": \"ping\""), std::string::npos) << second;

  ASSERT_TRUE(jobs.wait(3, 120.0));
  transport.stop();
  jobs.shutdown(true);
}

TEST(ServerDispatch, OverloadedDispatchQueueRejectsInsteadOfStalling) {
  JobServer jobs(pressure_options());
  StageGate gate;
  jobs.set_stage_observer(std::ref(gate));
  const std::string socket_path = unique_socket_path("overload");
  server::TransportLimits limits;
  limits.dispatch_workers = 1;
  limits.dispatch_queue_capacity = 1;
  TransportServer transport(
      jobs, std::make_unique<UnixTransport>(socket_path), limits);
  transport.start();

  reach_pressure_point(jobs, gate);

  // Submit A occupies the single pool worker (blocked in admission).
  auto ack_a = std::async(std::launch::async, [&] {
    server::Client a(socket_path);
    return a.request(kBlockedSubmit);
  });
  wait_for_blocked_push(jobs);
  // Submit B fills the one-slot task queue.
  auto ack_b = std::async(std::launch::async, [&] {
    server::Client b(socket_path);
    return b.request(kBlockedSubmit);
  });
  while (transport.dispatch_stats().queue_depth == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Submit C finds the pool full: answered with an overload error
  // immediately — the loop never stalls and the connection survives.
  server::Client c(socket_path);
  const std::string rejected = c.request(kBlockedSubmit);
  EXPECT_NE(rejected.find("server overloaded"), std::string::npos)
      << rejected;
  EXPECT_NE(c.request("{\"op\": \"ping\"}").find("\"ok\": true"),
            std::string::npos);
  EXPECT_GE(transport.stats().rejected, 1u);

  gate.release();
  EXPECT_TRUE(JsonValue::parse(ack_a.get()).bool_or("ok", false));
  EXPECT_TRUE(JsonValue::parse(ack_b.get()).bool_or("ok", false));
  transport.stop();
  jobs.shutdown(true);
}

TEST(ServerDispatch, InlineModeStillServesEverything) {
  // dispatch_workers = 0 restores PR 4 semantics; the protocol must
  // behave identically when nothing blocks.
  JobServer jobs(pressure_options());
  const std::string socket_path = unique_socket_path("inlinemode");
  server::TransportLimits limits;
  limits.dispatch_workers = 0;
  TransportServer transport(
      jobs, std::make_unique<UnixTransport>(socket_path), limits);
  transport.start();

  server::Client client(socket_path);
  EXPECT_NE(client.request("{\"op\": \"ping\"}").find("\"ok\": true"),
            std::string::npos);
  const auto stats_json =
      JsonValue::parse(client.request("{\"op\": \"stats\"}"));
  ASSERT_TRUE(stats_json.bool_or("ok", false));
  const JsonValue* dispatch = stats_json.find("dispatch");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->uint_or("workers", 99), 0u);

  transport.stop();
  jobs.shutdown(true);
}

}  // namespace
}  // namespace phes
