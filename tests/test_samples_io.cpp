// Round-trip and error-path tests for the tabulated-samples text format.

#include <gtest/gtest.h>

#include <sstream>

#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/macromodel/samples_io.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using macromodel::load_samples;
using macromodel::sample_model;
using macromodel::save_samples;

macromodel::FrequencySamples make_samples() {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 18;
  spec.seed = 9;
  const auto model = macromodel::make_synthetic_model(spec);
  return sample_model(model, 0.5, 20.0, 25);
}

TEST(SamplesIo, RoundTripIsExact) {
  const auto original = make_samples();
  std::stringstream ss;
  save_samples(original, ss);
  const auto loaded = load_samples(ss);
  ASSERT_EQ(loaded.count(), original.count());
  ASSERT_EQ(loaded.ports(), original.ports());
  for (std::size_t k = 0; k < original.count(); ++k) {
    EXPECT_DOUBLE_EQ(loaded.omega[k], original.omega[k]);
    EXPECT_LT(test::max_abs_diff(loaded.h[k], original.h[k]), 0.0 + 1e-300);
  }
}

TEST(SamplesIo, CommentsAreIgnored) {
  const auto original = make_samples();
  std::stringstream ss;
  save_samples(original, ss);
  std::string text = "# leading comment line\n" + ss.str();
  std::stringstream annotated(text);
  const auto loaded = load_samples(annotated);
  EXPECT_EQ(loaded.count(), original.count());
}

TEST(SamplesIo, TruncatedInputThrows) {
  const auto original = make_samples();
  std::stringstream ss;
  save_samples(original, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_samples(truncated), std::runtime_error);
}

TEST(SamplesIo, BadHeaderThrows) {
  std::stringstream ss("bogus 3\npoints 1\n");
  EXPECT_THROW(load_samples(ss), std::runtime_error);
}

TEST(SamplesIo, MalformedHeadersAndValuesThrow) {
  struct Case {
    const char* label;
    const char* text;
    const char* expect_in_message;
  };
  const Case cases[] = {
      {"zero ports", "ports 0\npoints 1\n", "ports must be positive"},
      {"zero points", "ports 1\npoints 0\n", "points must be positive"},
      {"negative ports", "ports -2\npoints 1\n", "expected port count"},
      {"non-numeric count", "ports x\npoints 1\n", "expected port count"},
      {"non-finite omega",
       "ports 1\npoints 1\nomega inf\n0 0\n", "non-finite"},
      {"non-finite entry",
       "ports 1\npoints 1\nomega 1.0\nnan 0\n", "non-finite"},
      {"non-numeric entry",
       "ports 1\npoints 1\nomega 1.0\n0.5z 0\n", "expected Re H entry"},
      {"non-increasing omega",
       "ports 1\npoints 2\nomega 1.0\n0 0\nomega 1.0\n0 0\n",
       "strictly increasing"},
      {"truncated record",
       "ports 1\npoints 2\nomega 1.0\n0 0\n", "unexpected end of input"},
      {"overflowing ports",
       "ports 18446744073709551617\npoints 1\n", "exceeds the supported"},
      {"absurd ports", "ports 1000000\npoints 1\n", "exceeds the supported"},
      {"absurd points", "ports 1\npoints 999999999999\n",
       "exceeds the supported"},
  };
  for (const auto& c : cases) {
    std::stringstream ss(c.text);
    try {
      (void)load_samples(ss);
      FAIL() << c.label << ": expected a parse error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << c.label << ": got '" << e.what() << "'";
    }
  }
}

TEST(SamplesIo, TrailingSameLineCommentsAreIgnored) {
  std::stringstream ss(
      "ports 1\npoints 1\nomega 1.0 # measured at 25C\n0.5 0.25 # entry\n");
  const auto loaded = load_samples(ss);
  ASSERT_EQ(loaded.count(), 1u);
  EXPECT_DOUBLE_EQ(loaded.h[0](0, 0).real(), 0.5);
}

TEST(SamplesIo, ErrorsCarryLineNumbers) {
  std::stringstream ss("ports 1\npoints 1\nomega 1.0\nbad 0\n");
  try {
    (void)load_samples(ss);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(SamplesIo, FileRoundTrip) {
  const auto original = make_samples();
  const std::string path = "/tmp/phes_samples_io_test.txt";
  macromodel::save_samples_file(original, path);
  const auto loaded = macromodel::load_samples_file(path);
  EXPECT_EQ(loaded.count(), original.count());
  EXPECT_THROW(macromodel::load_samples_file("/nonexistent/path.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace phes
