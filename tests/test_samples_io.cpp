// Round-trip and error-path tests for the tabulated-samples text format.

#include <gtest/gtest.h>

#include <sstream>

#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/macromodel/samples_io.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using macromodel::load_samples;
using macromodel::sample_model;
using macromodel::save_samples;

macromodel::FrequencySamples make_samples() {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 18;
  spec.seed = 9;
  const auto model = macromodel::make_synthetic_model(spec);
  return sample_model(model, 0.5, 20.0, 25);
}

TEST(SamplesIo, RoundTripIsExact) {
  const auto original = make_samples();
  std::stringstream ss;
  save_samples(original, ss);
  const auto loaded = load_samples(ss);
  ASSERT_EQ(loaded.count(), original.count());
  ASSERT_EQ(loaded.ports(), original.ports());
  for (std::size_t k = 0; k < original.count(); ++k) {
    EXPECT_DOUBLE_EQ(loaded.omega[k], original.omega[k]);
    EXPECT_LT(test::max_abs_diff(loaded.h[k], original.h[k]), 0.0 + 1e-300);
  }
}

TEST(SamplesIo, CommentsAreIgnored) {
  const auto original = make_samples();
  std::stringstream ss;
  save_samples(original, ss);
  std::string text = "# leading comment line\n" + ss.str();
  std::stringstream annotated(text);
  const auto loaded = load_samples(annotated);
  EXPECT_EQ(loaded.count(), original.count());
}

TEST(SamplesIo, TruncatedInputThrows) {
  const auto original = make_samples();
  std::stringstream ss;
  save_samples(original, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_samples(truncated), std::runtime_error);
}

TEST(SamplesIo, BadHeaderThrows) {
  std::stringstream ss("bogus 3\npoints 1\n");
  EXPECT_THROW(load_samples(ss), std::runtime_error);
}

TEST(SamplesIo, FileRoundTrip) {
  const auto original = make_samples();
  const std::string path = "/tmp/phes_samples_io_test.txt";
  macromodel::save_samples_file(original, path);
  const auto loaded = macromodel::load_samples_file(path);
  EXPECT_EQ(loaded.count(), original.count());
  EXPECT_THROW(macromodel::load_samples_file("/nonexistent/path.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace phes
