// Transport-layer integration tests: the pluggable Transport
// abstraction (AF_UNIX + TCP with token auth) driven by the epoll
// event loop.  The core acceptance matrix: results must be bitwise
// identical across one-shot run_pipeline, UNIX submit-by-path, TCP
// submit-by-path, and TCP submit_inline (payload in the request).
// Also covers the auth failure paths and the protocol robustness
// fixes: oversized NDJSON lines answered with an error (connection
// survives), and frames split across many partial writes / epoll
// wakeups.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/server/protocol.hpp"
#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/transport.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using pipeline::PipelineJob;
using pipeline::PipelineResult;
using server::Endpoint;
using server::JobServer;
using server::JsonValue;
using server::ServerOptions;
using server::TcpTransport;
using server::TransportServer;
using server::UnixTransport;

std::string unique_socket_path(const char* tag) {
  return "/tmp/phes_transport_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

pipeline::JobOptions deterministic_options() {
  pipeline::JobOptions options;
  options.fit.num_poles = 12;
  options.solver.threads = 1;
  return options;
}

ServerOptions deterministic_server_options() {
  ServerOptions options;
  options.workers = 2;
  options.solver_threads = 1;
  options.queue_capacity = 8;
  options.job_defaults = deterministic_options();
  return options;
}

/// Field-by-field bitwise comparison of the numerical products of two
/// pipeline runs (ids and timings legitimately differ).
void expect_bit_identical(const PipelineResult& a, const PipelineResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.status(), b.status());
  EXPECT_EQ(a.sample_count, b.sample_count);
  EXPECT_EQ(a.ports, b.ports);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.fit_rms, b.fit_rms);  // exact: same fit, bit for bit
  EXPECT_EQ(a.fit_iterations, b.fit_iterations);

  ASSERT_EQ(a.initial_report.crossings.size(),
            b.initial_report.crossings.size());
  for (std::size_t i = 0; i < a.initial_report.crossings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.initial_report.crossings[i],
                     b.initial_report.crossings[i]);
  }
  ASSERT_EQ(a.initial_report.bands.size(), b.initial_report.bands.size());
  for (std::size_t i = 0; i < a.initial_report.bands.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.initial_report.bands[i].omega_peak,
                     b.initial_report.bands[i].omega_peak);
    EXPECT_DOUBLE_EQ(a.initial_report.bands[i].sigma_peak,
                     b.initial_report.bands[i].sigma_peak);
  }
  EXPECT_EQ(a.initial_report.solver.total_matvecs,
            b.initial_report.solver.total_matvecs);

  EXPECT_EQ(a.enforcement_run, b.enforcement_run);
  EXPECT_EQ(a.enforcement.iterations, b.enforcement.iterations);
  EXPECT_EQ(a.enforcement.relative_model_change,
            b.enforcement.relative_model_change);

  EXPECT_EQ(a.certified_passive, b.certified_passive);
  ASSERT_EQ(a.final_report.crossings.size(), b.final_report.crossings.size());
  for (std::size_t i = 0; i < a.final_report.crossings.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.final_report.crossings[i],
                     b.final_report.crossings[i]);
  }
  EXPECT_EQ(a.final_report.bands.size(), b.final_report.bands.size());
}

std::string slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

/// Submit over `client`, wait in-process, return the stored result.
PipelineResult submit_and_wait(JobServer& jobs, server::Client& client,
                               const std::string& request) {
  const std::string response = client.request(request);
  const auto json = JsonValue::parse(response);
  EXPECT_TRUE(json.bool_or("ok", false)) << response;
  const std::uint64_t id = json.uint_or("id", 0);
  EXPECT_GT(id, 0u) << response;
  EXPECT_TRUE(jobs.wait(id, 300.0)) << "job " << id << " stuck";
  const auto result = jobs.result(id);
  EXPECT_TRUE(result.has_value());
  return result.value_or(PipelineResult{});
}

// ---- The submission matrix --------------------------------------------

TEST(TransportMatrix, BitIdenticalAcrossAllFourSubmissionRoutes) {
  const std::string fixture = test::fixture_path("golden.s2p");

  // Route 1: one-shot run_pipeline, the ground truth.
  PipelineJob reference;
  reference.input_path = fixture;
  reference.options = deterministic_options();
  const PipelineResult oneshot = run_pipeline(reference);
  ASSERT_TRUE(oneshot.ok) << oneshot.error;
  ASSERT_EQ(oneshot.status(), "enforced");

  // One server, both listeners, one event loop.
  JobServer jobs(deterministic_server_options());
  const std::string socket_path = unique_socket_path("matrix");
  const std::string token = "matrix-secret-token";
  std::vector<std::unique_ptr<server::Transport>> transports;
  transports.push_back(std::make_unique<UnixTransport>(socket_path));
  auto tcp = std::make_unique<TcpTransport>("127.0.0.1", 0, token);
  TcpTransport* tcp_ptr = tcp.get();
  transports.push_back(std::move(tcp));
  TransportServer transport(jobs, std::move(transports));
  transport.start();
  ASSERT_GT(tcp_ptr->bound_port(), 0u);

  Endpoint tcp_endpoint;
  tcp_endpoint.kind = Endpoint::Kind::kTcp;
  tcp_endpoint.host = "127.0.0.1";
  tcp_endpoint.port = tcp_ptr->bound_port();
  tcp_endpoint.token = token;

  const std::string submit_by_path =
      "{\"op\": \"submit\", \"path\": " + server::json_quote(fixture) + "}";
  const std::string submit_inline =
      "{\"op\": \"submit_inline\", \"filename\": \"golden.s2p\", "
      "\"payload\": " +
      server::json_quote(slurp_file(fixture)) + "}";

  // Route 2: UNIX submit-by-path.  Jobs run sequentially so pooled
  // sessions can be reused — reuse must never change the bits.
  server::Client unix_client(socket_path);
  const PipelineResult via_unix =
      submit_and_wait(jobs, unix_client, submit_by_path);

  // Routes 3 + 4: TCP submit-by-path and TCP submit_inline.
  server::Client tcp_client(tcp_endpoint);
  const PipelineResult via_tcp =
      submit_and_wait(jobs, tcp_client, submit_by_path);
  const PipelineResult via_inline =
      submit_and_wait(jobs, tcp_client, submit_inline);

  expect_bit_identical(via_unix, oneshot);
  expect_bit_identical(via_tcp, oneshot);
  expect_bit_identical(via_inline, oneshot);
  // The inline route went through the same Touchstone reader: same
  // sample count, same ports, no filesystem involved on the server.
  EXPECT_EQ(via_inline.sample_count, oneshot.sample_count);
  EXPECT_EQ(via_inline.name, "golden.s2p");

  const auto stats = transport.stats();
  EXPECT_EQ(stats.auth_failures, 0u);
  EXPECT_GE(stats.accepted, 2u);

  transport.stop();
  jobs.shutdown(true);
}

TEST(TransportMatrix, InlineRejectsMissingPortsAndBadFormat) {
  JobServer jobs(deterministic_server_options());
  // No transport needed: exercise the protocol handler directly.
  auto outcome = server::handle_request(
      jobs, "{\"op\": \"submit_inline\", \"payload\": \"# GHz S MA R 50\","
            " \"format\": \"touchstone\"}");
  EXPECT_NE(outcome.response.find("needs \\\"ports\\\""), std::string::npos)
      << outcome.response;
  outcome = server::handle_request(
      jobs, "{\"op\": \"submit_inline\", \"payload\": \"x\", "
            "\"format\": \"csv\"}");
  EXPECT_NE(outcome.response.find("unknown format"), std::string::npos);
  outcome = server::handle_request(jobs, "{\"op\": \"submit_inline\"}");
  EXPECT_NE(outcome.response.find("missing \\\"payload\\\""),
            std::string::npos);
  // A parse error inside the payload is a captured load-stage failure,
  // not a protocol error: the submission is accepted, the job fails.
  outcome = server::handle_request(
      jobs, "{\"op\": \"submit_inline\", \"payload\": \"not touchstone\","
            " \"ports\": 2}");
  EXPECT_NE(outcome.response.find("\"ok\": true"), std::string::npos);
  const auto id = JsonValue::parse(outcome.response).uint_or("id", 0);
  ASSERT_GT(id, 0u);
  ASSERT_TRUE(jobs.wait(id, 60.0));
  const auto record = jobs.status(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, server::JobState::kFailed);
  EXPECT_EQ(record->result.failed_stage, pipeline::Stage::kLoad);
  jobs.shutdown(true);
}

// ---- Auth handshake ---------------------------------------------------

TEST(TransportAuth, MissingAndWrongTokensAreRefused) {
  JobServer jobs(deterministic_server_options());
  const std::string token = "the-right-token";
  auto tcp = std::make_unique<TcpTransport>("127.0.0.1", 0, token);
  TcpTransport* tcp_ptr = tcp.get();
  TransportServer transport(jobs, std::move(tcp));
  transport.start();

  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = tcp_ptr->bound_port();

  {
    // No token: the first non-auth op is refused and the connection is
    // closed by the server.
    server::Client client(endpoint);  // no handshake without a token
    const std::string response = client.request("{\"op\": \"ping\"}");
    EXPECT_NE(response.find("authentication required"), std::string::npos);
    EXPECT_THROW((void)client.request("{\"op\": \"ping\"}"),
                 std::runtime_error);
  }
  {
    // Wrong token: the handshake itself fails (Client throws).
    Endpoint wrong = endpoint;
    wrong.token = "the-wrong-token";
    EXPECT_THROW(server::Client{wrong}, std::runtime_error);
  }
  {
    // Right token: handshake succeeds, ops are served.
    Endpoint right = endpoint;
    right.token = token;
    server::Client client(right);
    const std::string response = client.request("{\"op\": \"ping\"}");
    EXPECT_NE(response.find("\"ok\": true"), std::string::npos);
  }

  const auto stats = transport.stats();
  EXPECT_EQ(stats.auth_failures, 2u);
  transport.stop();
  jobs.shutdown(true);
}

TEST(TransportAuth, PreAuthConnectionsCannotBufferLargeLines) {
  JobServer jobs(deterministic_server_options());
  auto tcp = std::make_unique<TcpTransport>("127.0.0.1", 0, "tok");
  TcpTransport* tcp_ptr = tcp.get();
  TransportServer transport(jobs, std::move(tcp));
  transport.start();

  // An unauthenticated peer dribbling a huge terminator-less line must
  // hit the small pre-auth bound (4 KiB), not the 8 MiB payload bound:
  // otherwise N tokenless connections could park N x 8 MiB of buffer.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(tcp_ptr->bound_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0)
      << std::strerror(errno);
  const std::string flood(8192, 'x');  // > 4 KiB, no newline
  std::size_t off = 0;
  while (off < flood.size()) {
    const ssize_t n =
        ::send(fd, flood.data() + off, flood.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
  char buf[4096];
  const ssize_t n = ::read(fd, buf, sizeof buf);
  ASSERT_GT(n, 0);
  const std::string response(buf, static_cast<std::size_t>(n));
  EXPECT_NE(response.find("exceeds 4096 bytes"), std::string::npos)
      << response;
  // ...and, still unauthenticated, the connection is closed outright
  // (an authenticated oversize survives; pre-auth misbehaviour ends).
  ssize_t tail;
  do {
    tail = ::read(fd, buf, sizeof buf);
  } while (tail > 0);
  EXPECT_EQ(tail, 0) << "server must close the flooding pre-auth peer";
  ::close(fd);

  const auto stats = transport.stats();
  EXPECT_EQ(stats.oversized_lines, 1u);
  EXPECT_EQ(stats.auth_failures, 1u);
  transport.stop();
  jobs.shutdown(true);
}

TEST(TransportAuth, UnixListenerNeedsNoAuthButAcceptsTheOp) {
  JobServer jobs(deterministic_server_options());
  const std::string socket_path = unique_socket_path("noauth");
  TransportServer transport(
      jobs, std::make_unique<UnixTransport>(socket_path));
  transport.start();

  // A client configured with a token works against a unix listener:
  // the auth op is acknowledged as a no-op.
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kUnix;
  endpoint.path = socket_path;
  server::Client bare(endpoint);
  EXPECT_NE(bare.request("{\"op\": \"ping\"}").find("\"ok\": true"),
            std::string::npos);
  EXPECT_NE(bare.request("{\"op\": \"auth\", \"token\": \"x\"}")
                .find("\"ok\": true"),
            std::string::npos);

  transport.stop();
  jobs.shutdown(true);
}

// ---- Robustness: framing across partial reads, oversized lines --------

/// Raw blocking AF_UNIX connection (no Client conveniences) so the
/// tests control exactly which bytes hit the wire and when.
class RawConnection {
 public:
  explicit RawConnection(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0)
        << std::strerror(errno);
  }
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  std::string read_response_line() {
    for (;;) {
      const std::size_t nl = carry_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = carry_.substr(0, nl);
        carry_.erase(0, nl + 1);
        return line;
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) return "<connection closed>";
      carry_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string carry_;
};

TEST(TransportRobustness, FrameSplitAcrossManyWakeupsIsReassembled) {
  JobServer jobs(deterministic_server_options());
  const std::string socket_path = unique_socket_path("split");
  TransportServer transport(
      jobs, std::make_unique<UnixTransport>(socket_path));
  transport.start();

  RawConnection raw(socket_path);
  // Dribble one request over many separate writes; each lands in its
  // own epoll wakeup (the sleeps make coalescing unlikely, and the
  // loop must be correct either way).
  const std::string request = "{\"op\": \"ping\"}\n";
  for (const char c : request) {
    raw.send_bytes(std::string(1, c));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_NE(raw.read_response_line().find("\"ok\": true"),
            std::string::npos);

  // Two requests + a partial third in one write: both complete frames
  // are answered, the tail waits for its terminator.
  raw.send_bytes("{\"op\": \"ping\"}\n{\"op\": \"stats\"}\n{\"op\": ");
  EXPECT_NE(raw.read_response_line().find("\"op\": \"ping\""),
            std::string::npos);
  EXPECT_NE(raw.read_response_line().find("\"queue\""), std::string::npos);
  raw.send_bytes("\"ping\"}\n");
  EXPECT_NE(raw.read_response_line().find("\"op\": \"ping\""),
            std::string::npos);

  transport.stop();
  jobs.shutdown(true);
}

TEST(TransportRobustness, OversizedLineGetsErrorResponseNotDisconnect) {
  JobServer jobs(deterministic_server_options());
  const std::string socket_path = unique_socket_path("oversize");
  server::TransportLimits limits;
  limits.max_line_bytes = 512;  // small so the test stays cheap
  TransportServer transport(
      jobs, std::make_unique<UnixTransport>(socket_path), limits);
  transport.start();

  RawConnection raw(socket_path);
  // A 4 KiB line with no terminator: the server must answer with an
  // error as soon as the bound is exceeded...
  raw.send_bytes(std::string(4096, 'x'));
  const std::string error = raw.read_response_line();
  EXPECT_NE(error.find("\"ok\": false"), std::string::npos) << error;
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
  // ...and once the oversized line finally ends, the connection keeps
  // serving (the remainder was discarded, not interpreted).
  raw.send_bytes("yyy\n{\"op\": \"ping\"}\n");
  EXPECT_NE(raw.read_response_line().find("\"op\": \"ping\""),
            std::string::npos);

  // A complete over-bound line delivered terminator-and-all in one
  // write is rejected the same way.
  raw.send_bytes(std::string(1024, 'z') + "\n{\"op\": \"ping\"}\n");
  EXPECT_NE(raw.read_response_line().find("exceeds"), std::string::npos);
  EXPECT_NE(raw.read_response_line().find("\"op\": \"ping\""),
            std::string::npos);

  const auto stats = transport.stats();
  EXPECT_EQ(stats.oversized_lines, 2u);
  EXPECT_EQ(stats.open_connections, 1u) << "connection must survive";

  transport.stop();
  jobs.shutdown(true);
}

TEST(TransportRobustness, ShutdownOverTcpAcksThenSignalsOwner) {
  JobServer jobs(deterministic_server_options());
  const std::string token = "tok";
  auto tcp = std::make_unique<TcpTransport>("127.0.0.1", 0, token);
  TcpTransport* tcp_ptr = tcp.get();
  TransportServer transport(jobs, std::move(tcp));
  transport.start();

  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = tcp_ptr->bound_port();
  endpoint.token = token;
  server::Client client(endpoint);
  const std::string ack =
      client.request("{\"op\": \"shutdown\", \"drain\": false}");
  EXPECT_NE(ack.find("\"ok\": true"), std::string::npos);
  // The ack is flushed before the owner is signalled; block on the
  // signal (checking the flag here would race the loop thread).
  EXPECT_FALSE(transport.wait_shutdown());  // drain=false requested
  EXPECT_TRUE(transport.shutdown_requested());

  jobs.shutdown(false);
  transport.stop();
}

TEST(TransportEndpoint, ParseAcceptsUnixPathsAndTcpSpecs) {
  const Endpoint unix_ep = server::parse_endpoint("/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");

  const Endpoint tcp_ep = server::parse_endpoint("tcp:10.0.0.8:4545");
  EXPECT_EQ(tcp_ep.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_ep.host, "10.0.0.8");
  EXPECT_EQ(tcp_ep.port, 4545u);

  EXPECT_THROW((void)server::parse_endpoint("tcp:nohost"),
               std::invalid_argument);
  EXPECT_THROW((void)server::parse_endpoint("tcp::123"),
               std::invalid_argument);
  EXPECT_THROW((void)server::parse_endpoint("tcp:h:notaport"),
               std::invalid_argument);
  EXPECT_THROW((void)server::parse_endpoint("tcp:h:0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace phes
