// Unit tests for the dense matrix container and BLAS-like kernels.

#include <gtest/gtest.h>

#include "phes/la/blas.hpp"
#include "phes/la/matrix.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::Complex;
using la::ComplexMatrix;
using la::RealMatrix;

TEST(Matrix, ConstructionAndIndexing) {
  RealMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, InitializerList) {
  RealMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RealMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const auto id = RealMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, BlockExtractAndInsert) {
  RealMatrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const RealMatrix b = m.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 9.0);
  RealMatrix target(4, 4);
  target.set_block(2, 2, b);
  EXPECT_DOUBLE_EQ(target(2, 2), 5.0);
  EXPECT_DOUBLE_EQ(target(3, 3), 9.0);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  RealMatrix m(2, 2);
  EXPECT_THROW(m.block(1, 1, 2, 2), std::invalid_argument);
}

TEST(Matrix, Arithmetic) {
  RealMatrix a{{1, 2}, {3, 4}};
  RealMatrix b{{5, 6}, {7, 8}};
  const RealMatrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const RealMatrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 1), 8.0);
  const RealMatrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 0), 4.0);
}

TEST(Matrix, TransposeAndAdjoint) {
  RealMatrix a{{1, 2, 3}, {4, 5, 6}};
  const RealMatrix t = la::transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);

  ComplexMatrix c(1, 2);
  c(0, 0) = Complex(1.0, 2.0);
  c(0, 1) = Complex(3.0, -4.0);
  const ComplexMatrix h = la::adjoint(c);
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h(0, 0), Complex(1.0, -2.0));
  EXPECT_EQ(h(1, 0), Complex(3.0, 4.0));
}

TEST(Blas, DotIsConjugateLinear) {
  la::ComplexVector x{Complex(0.0, 1.0), Complex(2.0, 0.0)};
  la::ComplexVector y{Complex(0.0, 1.0), Complex(1.0, 1.0)};
  // conj(i)*i + conj(2)*(1+i) = 1 + 2 + 2i = 3 + 2i
  const Complex d = la::dot<Complex>(x, y);
  EXPECT_NEAR(d.real(), 3.0, 1e-15);
  EXPECT_NEAR(d.imag(), 2.0, 1e-15);
}

TEST(Blas, GemvMatchesManual) {
  RealMatrix a{{1, 2}, {3, 4}, {5, 6}};
  la::RealVector x{1.0, -1.0};
  const auto y = la::gemv(a, std::span<const double>(x));
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Blas, GemvTransposedMatchesExplicitTranspose) {
  util::Rng rng(42);
  const RealMatrix a = test::random_real_matrix(7, 5, rng);
  la::RealVector x(7);
  for (auto& v : x) v = rng.normal();
  const auto y1 = la::gemv_transposed(a, std::span<const double>(x));
  const auto y2 = la::gemv(la::transpose(a), std::span<const double>(x));
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Blas, GemmAssociativityProperty) {
  util::Rng rng(7);
  const RealMatrix a = test::random_real_matrix(4, 6, rng);
  const RealMatrix b = test::random_real_matrix(6, 3, rng);
  const RealMatrix c = test::random_real_matrix(3, 5, rng);
  const RealMatrix left = la::gemm(la::gemm(a, b), c);
  const RealMatrix right = la::gemm(a, la::gemm(b, c));
  EXPECT_LT(test::max_abs_diff(left, right), 1e-12);
}

TEST(Blas, GemmIdentity) {
  util::Rng rng(3);
  const RealMatrix a = test::random_real_matrix(5, 5, rng);
  const RealMatrix prod = la::gemm(a, RealMatrix::identity(5));
  EXPECT_LT(test::max_abs_diff(a, prod), 1e-15);
}

TEST(Blas, MixedRealComplexGemv) {
  util::Rng rng(11);
  const RealMatrix a = test::random_real_matrix(4, 4, rng);
  la::ComplexVector x(4);
  for (auto& v : x) v = Complex(rng.normal(), rng.normal());
  const auto y1 = la::gemv_real_complex(a, std::span<const Complex>(x));
  const auto y2 = la::gemv(la::to_complex(a), std::span<const Complex>(x));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(y1[i] - y2[i]), 0.0, 1e-12);
  }
}

TEST(Blas, Norms) {
  la::RealVector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(la::nrm2<double>(v), 5.0);
  EXPECT_DOUBLE_EQ(la::inf_norm<double>(v), 4.0);
  RealMatrix m{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(la::frobenius_norm(m), 5.0);
  EXPECT_DOUBLE_EQ(la::max_abs(m), 4.0);
}

TEST(Blas, ShapeMismatchThrows) {
  RealMatrix a(2, 3);
  RealMatrix b(2, 3);
  EXPECT_THROW(la::gemm(a, b), std::invalid_argument);
  la::RealVector x(2);
  EXPECT_THROW(la::gemv(a, std::span<const double>(x)),
               std::invalid_argument);
}

}  // namespace
}  // namespace phes
