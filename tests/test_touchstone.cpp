// Touchstone reader/writer tests: round trips across formats and
// frequency units, the 2-port ordering quirk, noise-section handling,
// and a malformed-input table with line-numbered diagnostics.

#include <gtest/gtest.h>

#include <numbers>
#include <sstream>
#include <string>

#include "phes/io/touchstone.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/samples.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using io::load_touchstone;
using io::save_touchstone;
using io::TouchstoneFormat;
using io::TouchstoneMetadata;
using test::sampled_synthetic;

// Shared seeded-sample fixture (tests/test_support.hpp).
macromodel::FrequencySamples make_samples(std::size_t ports) {
  return sampled_synthetic(ports);
}

double round_trip_error(std::size_t ports, TouchstoneFormat format,
                        const std::string& unit) {
  const auto original = make_samples(ports);
  TouchstoneMetadata meta;
  meta.format = format;
  meta.unit = unit;
  std::stringstream ss;
  save_touchstone(original, ss, meta);
  const auto loaded = load_touchstone(ss, ports);
  EXPECT_EQ(loaded.metadata.format, format);
  EXPECT_EQ(loaded.metadata.unit, unit);
  EXPECT_EQ(loaded.samples.count(), original.count());
  double worst = 0.0;
  for (std::size_t k = 0; k < original.count(); ++k) {
    worst = std::max(worst, std::abs(loaded.samples.omega[k] -
                                     original.omega[k]) /
                                original.omega[k]);
    worst = std::max(worst,
                     test::max_abs_diff(loaded.samples.h[k], original.h[k]));
  }
  return worst;
}

TEST(Touchstone, RoundTripAllFormatsAndUnits) {
  for (const auto format : {TouchstoneFormat::kRI, TouchstoneFormat::kMA,
                            TouchstoneFormat::kDB}) {
    for (const std::string unit : {"Hz", "kHz", "MHz", "GHz"}) {
      EXPECT_LT(round_trip_error(3, format, unit), 1e-12)
          << io::format_name(format) << " / " << unit;
    }
  }
}

TEST(Touchstone, RoundTripOnePortAndTwoPort) {
  EXPECT_LT(round_trip_error(1, TouchstoneFormat::kRI, "GHz"), 1e-12);
  EXPECT_LT(round_trip_error(2, TouchstoneFormat::kMA, "MHz"), 1e-12);
}

TEST(Touchstone, FrequencyUnitScaling) {
  // 1 MHz -> omega = 2 pi 1e6 rad/s.
  std::stringstream ss("# MHz S RI R 50\n1.0 0.5 0.0\n");
  const auto data = load_touchstone(ss, 1);
  ASSERT_EQ(data.samples.count(), 1u);
  EXPECT_NEAR(data.samples.omega[0], 2.0 * std::numbers::pi * 1e6, 1e-3);
  EXPECT_DOUBLE_EQ(data.samples.h[0](0, 0).real(), 0.5);
}

TEST(Touchstone, TwoPortDataIsColumnMajor) {
  // Spec quirk: .s2p rows are S11 S21 S12 S22.
  std::stringstream ss(
      "# Hz S RI R 50\n"
      "1.0  11 0  21 0  12 0  22 0\n");
  const auto data = load_touchstone(ss, 2);
  EXPECT_DOUBLE_EQ(data.samples.h[0](0, 0).real(), 11.0);
  EXPECT_DOUBLE_EQ(data.samples.h[0](1, 0).real(), 21.0);
  EXPECT_DOUBLE_EQ(data.samples.h[0](0, 1).real(), 12.0);
  EXPECT_DOUBLE_EQ(data.samples.h[0](1, 1).real(), 22.0);
}

TEST(Touchstone, ThreePortDataIsRowMajorAndMayWrapLines) {
  std::stringstream ss(
      "# Hz S RI\n"
      "1.0  11 0 12 0 13 0\n"
      "     21 0 22 0 23 0\n"
      "     31 0 32 0 33 0\n"
      "2.0  11 0 12 0 13 0  21 0 22 0 23 0  31 0 32 0 33 0\n");
  const auto data = load_touchstone(ss, 3);
  ASSERT_EQ(data.samples.count(), 2u);
  EXPECT_DOUBLE_EQ(data.samples.h[0](0, 1).real(), 12.0);
  EXPECT_DOUBLE_EQ(data.samples.h[0](1, 0).real(), 21.0);
  EXPECT_DOUBLE_EQ(data.samples.h[0](2, 2).real(), 33.0);
}

TEST(Touchstone, CommentsAndBlankLinesAreIgnored) {
  std::stringstream ss(
      "! header comment\n"
      "\n"
      "# Hz S RI R 50\n"
      "! another comment\n"
      "1.0 0.5 0.25  ! trailing comment\n");
  const auto data = load_touchstone(ss, 1);
  ASSERT_EQ(data.samples.count(), 1u);
  EXPECT_DOUBLE_EQ(data.samples.h[0](0, 0).imag(), 0.25);
}

TEST(Touchstone, DefaultsApplyWithoutOptionLine) {
  // Spec defaults: GHz, S, MA, R 50.
  std::stringstream ss("1.0 0.5 90.0\n");
  const auto data = load_touchstone(ss, 1);
  EXPECT_EQ(data.metadata.format, TouchstoneFormat::kMA);
  EXPECT_NEAR(data.samples.omega[0], 2.0 * std::numbers::pi * 1e9, 1.0);
  EXPECT_NEAR(data.samples.h[0](0, 0).imag(), 0.5, 1e-12);  // 0.5 at 90deg
}

TEST(Touchstone, TwoPortNoiseSectionIsSkipped) {
  std::stringstream ss(
      "# Hz S RI R 50\n"
      "1.0  1 0 0 0 0 0 1 0\n"
      "2.0  1 0 0 0 0 0 1 0\n"
      "! noise parameters restart at a lower frequency\n"
      "0.5  3.0 0.4 110 20\n");
  const auto data = load_touchstone(ss, 2);
  EXPECT_EQ(data.samples.count(), 2u);
}

TEST(Touchstone, PortsFromExtension) {
  EXPECT_EQ(io::ports_from_extension("a/b/model.s2p"), 2u);
  EXPECT_EQ(io::ports_from_extension("model.S16P"), 16u);
  EXPECT_THROW((void)io::ports_from_extension("model.txt"),
               std::runtime_error);
  EXPECT_THROW((void)io::ports_from_extension("model"), std::runtime_error);
  EXPECT_THROW((void)io::ports_from_extension("model.s0p"),
               std::runtime_error);
  EXPECT_THROW((void)io::ports_from_extension("model.sp"),
               std::runtime_error);
  // Overflowing / absurd port counts must not wrap allocations.
  EXPECT_THROW(
      (void)io::ports_from_extension("model.s18446744073709551617p"),
      std::runtime_error);
  EXPECT_THROW((void)io::ports_from_extension("model.s99999999p"),
               std::runtime_error);
  EXPECT_TRUE(io::is_touchstone_path("a/b.s12p"));
  EXPECT_TRUE(io::is_touchstone_path("a/b.S2P"));
  EXPECT_FALSE(io::is_touchstone_path("a/b.txt"));
  EXPECT_FALSE(io::is_touchstone_path("a/b.sp"));
}

TEST(Touchstone, DbFormatRoundTripsExactZeroEntries) {
  macromodel::FrequencySamples samples;
  samples.omega = {1.0, 2.0};
  la::ComplexMatrix h(2, 2);
  h(0, 0) = {0.5, 0.1};  // h(0,1), h(1,0) stay exactly zero
  h(1, 1) = {-0.2, 0.3};
  samples.h = {h, h};
  TouchstoneMetadata meta;
  meta.format = TouchstoneFormat::kDB;
  meta.unit = "Hz";
  std::stringstream ss;
  save_touchstone(samples, ss, meta);
  const auto loaded = load_touchstone(ss, 2);  // must not see '-inf'
  EXPECT_LT(std::abs(loaded.samples.h[0](0, 1)), 1e-19);
  EXPECT_NEAR(loaded.samples.h[0](0, 0).real(), 0.5, 1e-12);
}

struct MalformedCase {
  const char* label;
  const char* text;
  const char* expect_in_message;
};

TEST(Touchstone, MalformedInputTable) {
  const MalformedCase cases[] = {
      {"empty input", "", "no data records"},
      {"comment only", "! nothing here\n", "no data records"},
      {"bad unit", "# THz S RI\n1.0 0 0\n", "unknown frequency unit"},
      {"admittance data", "# Hz Y RI\n1.0 0 0\n", "unsupported parameter"},
      {"unknown option", "# Hz S XX\n1.0 0 0\n", "unknown option"},
      {"duplicate option line", "# Hz S RI\n# Hz S RI\n1.0 0 0\n",
       "duplicate option"},
      {"missing R value", "# Hz S RI R\n1.0 0 0\n", "missing its"},
      {"non-numeric value", "# Hz S RI\n1.0 abc 0\n", "expected a number"},
      {"non-finite value", "# Hz S RI\n1.0 nan 0\n", "non-finite"},
      {"negative frequency", "# Hz S RI\n-1.0 0 0\n", "negative frequency"},
      {"non-increasing frequency", "# Hz S RI\n1.0 0 0\n1.0 0 0\n",
       "strictly increasing"},
      {"truncated record", "# Hz S RI\n1.0 0.5\n", "truncated record"},
      {"option line after data", "# Hz S RI\n1.0 0 0\n# Hz S MA\n2.0 0 0\n",
       "option line after data"},
  };
  for (const auto& c : cases) {
    std::stringstream ss(c.text);
    try {
      (void)load_touchstone(ss, 1);
      FAIL() << c.label << ": expected a parse error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << c.label << ": got '" << e.what() << "'";
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
          << c.label << ": message has no line number: '" << e.what() << "'";
    }
  }
}

TEST(Touchstone, ErrorMessagesCarryTheRightLine) {
  std::stringstream ss("# Hz S RI\n1.0 0 0\n2.0 bad 0\n");
  try {
    (void)load_touchstone(ss, 1);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Touchstone, FileRoundTripAndExtensionChecks) {
  const auto samples = make_samples(2);
  const std::string path = "/tmp/phes_touchstone_test.s2p";
  io::save_touchstone_file(samples, path, {});
  const auto loaded = io::load_touchstone_file(path);
  EXPECT_EQ(loaded.samples.count(), samples.count());
  EXPECT_EQ(loaded.samples.ports(), 2u);
  // Extension contradicting the data is refused.
  EXPECT_THROW(
      io::save_touchstone_file(samples, "/tmp/phes_touchstone_test.s3p", {}),
      std::invalid_argument);
  EXPECT_THROW((void)io::load_touchstone_file("/nonexistent/x.s2p"),
               std::runtime_error);
}

// ---- Golden fixture directory (tests/data) ----------------------------
// Committed .s2p/.s4p exports; the server integration test feeds the
// same files through the job server, so a reader regression shows up in
// both suites.

TEST(Touchstone, GoldenS2pLoadsAndRoundTrips) {
  const auto data = io::load_touchstone_file(test::fixture_path("golden.s2p"));
  EXPECT_EQ(data.samples.ports(), 2u);
  EXPECT_EQ(data.samples.count(), 200u);
  EXPECT_EQ(data.metadata.format, TouchstoneFormat::kRI);
  EXPECT_EQ(data.metadata.unit, "GHz");
  ASSERT_GT(data.samples.omega.size(), 1u);
  EXPECT_LT(data.samples.omega.front(), data.samples.omega.back());

  // Save -> reload must reproduce the loaded data essentially exactly
  // (one text round trip of already-text-rounded values).
  std::stringstream ss;
  save_touchstone(data.samples, ss, data.metadata);
  const auto reloaded = load_touchstone(ss, 2);
  ASSERT_EQ(reloaded.samples.count(), data.samples.count());
  for (std::size_t k = 0; k < data.samples.count(); ++k) {
    EXPECT_NEAR(reloaded.samples.omega[k], data.samples.omega[k],
                1e-9 * data.samples.omega[k]);
    EXPECT_LT(test::max_abs_diff(reloaded.samples.h[k], data.samples.h[k]),
              1e-12);
  }
}

TEST(Touchstone, GoldenS4pLoadsAndRoundTrips) {
  const auto data = io::load_touchstone_file(test::fixture_path("golden.s4p"));
  EXPECT_EQ(data.samples.ports(), 4u);
  EXPECT_EQ(data.samples.count(), 60u);
  EXPECT_EQ(data.metadata.format, TouchstoneFormat::kMA);
  EXPECT_EQ(data.metadata.unit, "MHz");

  std::stringstream ss;
  save_touchstone(data.samples, ss, data.metadata);
  const auto reloaded = load_touchstone(ss, 4);
  ASSERT_EQ(reloaded.samples.count(), data.samples.count());
  for (std::size_t k = 0; k < data.samples.count(); ++k) {
    EXPECT_LT(test::max_abs_diff(reloaded.samples.h[k], data.samples.h[k]),
              1e-12);
  }
}

TEST(Touchstone, SaveRejectsUnknownUnit) {
  const auto samples = make_samples(1);
  TouchstoneMetadata meta;
  meta.unit = "THz";
  std::stringstream ss;
  EXPECT_THROW(save_touchstone(samples, ss, meta), std::runtime_error);
}

}  // namespace
}  // namespace phes
