// Engine subsystem tests: the shift-factorization LRU cache (eviction
// order, revision invalidation, concurrent access) and the
// SolverSession contract — cold solves bit-identical to the classic
// API, warm re-solves finding the same crossing set cheaper, and the
// enforcement loop's re-characterizations hitting the cache.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "phes/engine/session.hpp"
#include "phes/engine/shift_cache.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/passivity/characterization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using engine::SessionOptions;
using engine::ShiftFactorizationCache;
using engine::SolverSession;
using la::Complex;
using macromodel::SimoRealization;

// Shared seeded-model fixture (tests/test_support.hpp).
macromodel::PoleResidueModel make_model(double peak, std::uint64_t seed,
                                        std::size_t states = 36,
                                        std::size_t ports = 3) {
  return test::synthetic_model(peak, seed, states, ports);
}

ShiftFactorizationCache::OpPtr build_op(const SimoRealization& simo,
                                        Complex theta) {
  return std::make_shared<const hamiltonian::SmwShiftInvertOp>(simo, theta);
}

// ---- ShiftFactorizationCache ------------------------------------------

TEST(ShiftCache, HitsMissesAndStats) {
  const auto model = make_model(1.05, 10, 20, 2);
  const SimoRealization simo(model);
  ShiftFactorizationCache cache(8);

  const Complex t1(0.0, 1.0), t2(0.0, 2.0);
  const auto op1 = cache.acquire(0, t1, [&] { return build_op(simo, t1); });
  ASSERT_NE(op1, nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Same key: hit, same operator instance.
  const auto again = cache.acquire(0, t1, [&] { return build_op(simo, t1); });
  EXPECT_EQ(again.get(), op1.get());
  EXPECT_EQ(cache.stats().hits, 1u);

  // Different shift and different revision are distinct keys.
  (void)cache.acquire(0, t2, [&] { return build_op(simo, t2); });
  (void)cache.acquire(1, t1, [&] { return build_op(simo, t1); });
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ShiftCache, EvictsLeastRecentlyUsedFirst) {
  const auto model = make_model(1.05, 11, 20, 2);
  const SimoRealization simo(model);
  ShiftFactorizationCache cache(2);

  const Complex ta(0.0, 1.0), tb(0.0, 2.0), tc(0.0, 3.0);
  (void)cache.acquire(0, ta, [&] { return build_op(simo, ta); });
  (void)cache.acquire(0, tb, [&] { return build_op(simo, tb); });
  // Touch A so B becomes the least recently used entry.
  (void)cache.acquire(0, ta, [&] { return build_op(simo, ta); });
  // Inserting C must evict B, not A.
  (void)cache.acquire(0, tc, [&] { return build_op(simo, tc); });

  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.contains(0, ta));
  EXPECT_FALSE(cache.contains(0, tb));
  EXPECT_TRUE(cache.contains(0, tc));
}

TEST(ShiftCache, KernelBackendIsPartOfTheKey) {
  const auto model = make_model(1.05, 14, 20, 2);
  const SimoRealization simo(model);
  ShiftFactorizationCache cache(8);

  const Complex t(0.0, 1.0);
  const auto tuned = cache.acquire(
      0, t, [&] { return build_op(simo, t); }, la::KernelBackend::kTuned);
  // Same revision and shift, other backend: must be a distinct entry —
  // serving a tuned operator to a reference solve would silently
  // change the compute substrate mid-session.
  const auto ref = cache.acquire(
      0, t, [&] { return build_op(simo, t); }, la::KernelBackend::kReference);
  EXPECT_NE(tuned.get(), ref.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);

  EXPECT_TRUE(cache.contains(0, t, la::KernelBackend::kTuned));
  EXPECT_TRUE(cache.contains(0, t, la::KernelBackend::kReference));
  EXPECT_EQ(cache.stats().hits, 0u);
  const auto again = cache.acquire(
      0, t, [&] { return build_op(simo, t); }, la::KernelBackend::kReference);
  EXPECT_EQ(again.get(), ref.get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ShiftCache, RevisionInvalidationDropsStaleEntries) {
  const auto model = make_model(1.05, 12, 20, 2);
  const SimoRealization simo(model);
  ShiftFactorizationCache cache(8);

  const Complex ta(0.0, 1.0), tb(0.0, 2.0);
  (void)cache.acquire(0, ta, [&] { return build_op(simo, ta); });
  (void)cache.acquire(1, tb, [&] { return build_op(simo, tb); });
  cache.invalidate_before(1);
  EXPECT_FALSE(cache.contains(0, ta));
  EXPECT_TRUE(cache.contains(1, tb));
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ShiftCache, ConcurrentAcquireIsSafeAndCoherent) {
  const auto model = make_model(1.05, 13, 24, 2);
  const SimoRealization simo(model);
  ShiftFactorizationCache cache(64);

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 200;
  std::atomic<std::size_t> builds{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        // 16 distinct shifts hammered from every thread.
        const Complex theta(0.0, 1.0 + static_cast<double>((t + i) % 16));
        const auto op = cache.acquire(0, theta, [&] {
          builds.fetch_add(1);
          return build_op(simo, theta);
        });
        ASSERT_NE(op, nullptr);
        EXPECT_EQ(op->shift(), theta);
      }
    });
  }
  for (auto& th : pool) th.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
  EXPECT_EQ(stats.entries, 16u);
  // Duplicate racing builds are allowed but every miss built at most
  // once, and hits dominate by construction.
  EXPECT_GE(builds.load(), 16u);
  EXPECT_EQ(builds.load(), stats.misses);
  EXPECT_GT(stats.hits, stats.misses);
}

// ---- SolverSession ----------------------------------------------------

TEST(Session, ColdSolveMatchesClassicApiBitForBit) {
  const auto model = make_model(1.07, 20);
  const SimoRealization simo(model);
  core::SolverOptions opt;
  opt.threads = 1;

  const auto classic = passivity::characterize_passivity(simo, opt);

  SolverSession session{SimoRealization(simo)};
  const auto report = passivity::characterize_passivity(session, opt);

  ASSERT_EQ(report.crossings.size(), classic.crossings.size());
  for (std::size_t i = 0; i < report.crossings.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.crossings[i], classic.crossings[i]);
  }
  EXPECT_EQ(report.solver.total_matvecs, classic.solver.total_matvecs);
  EXPECT_EQ(report.solver.shifts_processed, classic.solver.shifts_processed);
  EXPECT_FALSE(report.solver.warm_started);
}

TEST(Session, SameRevisionResolveIsWarmCachedAndCheaper) {
  const auto model = make_model(1.07, 21);
  SolverSession session(model);
  core::SolverOptions opt;
  opt.threads = 1;

  const auto cold = session.solve(opt);
  ASSERT_FALSE(cold.warm_started);
  ASSERT_GT(cold.factorizations, 0u);
  ASSERT_GT(cold.lambda_max_matvecs, 0u);

  const auto warm = session.solve(opt);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_GT(warm.seeded_shifts, 0u);
  // Identical revision: the previous disk plan is re-solved and the
  // seed factorizations come out of the cache (a few fresh ones may
  // appear when a re-derived radius leaves a sliver to mop up).
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_LT(warm.factorizations, cold.factorizations);
  EXPECT_EQ(warm.lambda_max_matvecs, 0u);
  EXPECT_LT(warm.total_matvecs, cold.total_matvecs);

  const double tol = 1e-5 * model.max_pole_magnitude();
  EXPECT_TRUE(test::frequencies_match(warm.crossings, cold.crossings, tol));
}

class SessionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SessionEquivalence, WarmResolveFindsSameOmegaAsColdSolve) {
  // Acceptance: on seeded non-passive models, the session-reused solve
  // after a residue perturbation finds the same crossing set (to
  // tolerance) as a from-scratch cold solve of the perturbed model.
  const auto model = make_model(1.05 + 0.01 * GetParam(), 30 + GetParam());
  const SimoRealization simo(model);
  const double tol = 1e-5 * model.max_pole_magnitude();
  core::SolverOptions opt;
  opt.threads = 2;

  SolverSession session{SimoRealization(simo)};
  const auto before = session.solve(opt);
  ASSERT_FALSE(before.passive);

  // Small residue perturbation (what one enforcement step does).
  SimoRealization perturbed(simo);
  la::RealMatrix c = perturbed.c();
  c *= 0.995;
  perturbed.c() = c;
  session.update_residues(c);

  const auto warm = session.solve(opt);
  EXPECT_TRUE(warm.warm_started);

  SolverSession cold_session{SimoRealization(perturbed)};
  const auto cold = cold_session.solve(opt);
  EXPECT_TRUE(test::frequencies_match(warm.crossings, cold.crossings, tol))
      << "warm found " << warm.crossings.size() << " vs cold "
      << cold.crossings.size();
}

INSTANTIATE_TEST_SUITE_P(Models, SessionEquivalence, ::testing::Range(0, 3));

TEST(Session, UpdateResiduesBumpsRevisionAndInvalidates) {
  const auto model = make_model(1.06, 40, 24, 2);
  SolverSession session(model);
  core::SolverOptions opt;
  opt.threads = 1;
  (void)session.solve(opt);
  ASSERT_GT(session.cache_stats().entries, 0u);
  ASSERT_EQ(session.revision(), 0u);

  la::RealMatrix c = session.realization().c();
  c *= 0.99;
  session.update_residues(c);
  EXPECT_EQ(session.revision(), 1u);
  EXPECT_EQ(session.cache_stats().entries, 0u);  // stale ops purged
  // The warm-start record survives the revision bump.
  EXPECT_TRUE(session.warm_start().valid);
  EXPECT_EQ(session.warm_start().revision, 0u);
}

TEST(Session, ExplicitBandLimitNeverBecomesADefaultBandHint) {
  // A caller-truncated band must not cap a later default-band solve.
  const auto model = make_model(1.06, 46, 24, 2);
  SolverSession session(model);
  core::SolverOptions narrow;
  narrow.threads = 1;
  narrow.omega_max = 0.5 * model.max_pole_magnitude();
  (void)session.solve(narrow);

  core::SolverOptions full;
  full.threads = 1;
  const auto res = session.solve(full);
  EXPECT_GT(res.lambda_max_matvecs, 0u)
      << "explicit omega_max leaked into the default-band search";
  EXPECT_GT(res.omega_max, narrow.omega_max);
}

TEST(Session, LargeResidueDriftReestimatesTheBand) {
  // The band hint must not go stale: a large cumulative residue change
  // forces a fresh |lambda|max estimate instead of trusting the edge
  // recorded before the perturbations.
  const auto model = make_model(1.06, 45, 24, 2);
  SolverSession session(model);
  core::SolverOptions opt;
  opt.threads = 1;
  (void)session.solve(opt);

  la::RealMatrix c = session.realization().c();
  c *= 1.5;  // far beyond the estimate's 5% safety factor
  session.update_residues(c);
  const auto warm = session.solve(opt);
  EXPECT_GT(warm.lambda_max_matvecs, 0u)
      << "stale band hint accepted after a 50% residue change";

  // Small drifts keep the hint (and skip the estimate).
  la::RealMatrix c2 = session.realization().c();
  c2 *= 1.001;
  session.update_residues(c2);
  const auto warm2 = session.solve(opt);
  EXPECT_EQ(warm2.lambda_max_matvecs, 0u);
}

TEST(Session, EnforcementRecharacterizationsHitTheCache) {
  // Acceptance criterion: on a non-passive demo model, the enforcement
  // loop's second and later characterizations report >= 1
  // factorization-cache hit and strictly fewer total matvecs than the
  // initial cold characterization.
  const auto model = make_model(1.15, 70);
  SolverSession session(model);

  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 1;
  const auto result = passivity::enforce_passivity(session, eopt);
  EXPECT_TRUE(result.success);
  ASSERT_GE(result.history.size(), 3u)
      << "model enforced too quickly; pick a stronger violation";

  const auto& first = result.history.front();
  EXPECT_FALSE(first.warm_started);
  EXPECT_EQ(first.cache_hits, 0u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    const auto& round = result.history[i];
    EXPECT_TRUE(round.warm_started) << "round " << i;
    EXPECT_GE(round.cache_hits, 1u) << "round " << i;
    EXPECT_LT(round.solver_matvecs, first.solver_matvecs) << "round " << i;
  }
  EXPECT_GT(result.cache_hits, 0u);
  EXPECT_EQ(result.characterizations, result.history.size());
}

TEST(Session, CompatOverloadMatchesSessionEnforcement) {
  // The compatibility overload must land on the same perturbed model.
  const auto model = make_model(1.06, 60);
  SimoRealization via_compat(model);
  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 1;
  const auto compat = passivity::enforce_passivity(via_compat, eopt);

  SolverSession session(model);
  const auto direct = passivity::enforce_passivity(session, eopt);

  EXPECT_EQ(compat.success, direct.success);
  EXPECT_EQ(compat.iterations, direct.iterations);
  EXPECT_NEAR(compat.relative_model_change, direct.relative_model_change,
              1e-12);
  EXPECT_LT(
      test::max_abs_diff(via_compat.c(), session.realization().c()), 1e-12);
}

}  // namespace
}  // namespace phes
