// Tests for balanced-truncation model order reduction.

#include <gtest/gtest.h>

#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/schur.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/balanced_truncation.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/gramians.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using macromodel::balanced_truncation;
using macromodel::SimoRealization;
using macromodel::StateSpaceModel;

StateSpaceModel make_dense_model(std::uint64_t seed, std::size_t states,
                                 std::size_t ports) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = states;
  spec.target_peak_gain = 0.9;
  spec.seed = seed;
  const auto model = macromodel::make_synthetic_model(spec);
  return SimoRealization(model).to_dense();
}

double sampled_error(const StateSpaceModel& a, const StateSpaceModel& b,
                     double w_lo, double w_hi, int points) {
  double worst = 0.0;
  for (int i = 0; i < points; ++i) {
    const double w = w_lo + (w_hi - w_lo) * i / (points - 1.0);
    la::ComplexMatrix diff = a.eval(w);
    diff -= b.eval(w);
    worst = std::max(worst, la::complex_spectral_norm(diff));
  }
  return worst;
}

TEST(BalancedTruncation, ReducedModelIsStable) {
  const auto full = make_dense_model(1, 24, 2);
  const auto red = balanced_truncation(full, 10);
  EXPECT_EQ(red.reduced.order(), 10u);
  for (const auto& l : la::real_eigenvalues(red.reduced.a)) {
    EXPECT_LT(l.real(), 0.0);
  }
}

TEST(BalancedTruncation, ErrorBoundHolds) {
  const auto full = make_dense_model(2, 24, 2);
  for (std::size_t k : {6u, 12u, 18u}) {
    const auto red = balanced_truncation(full, k);
    const double err = sampled_error(full, red.reduced, 0.05, 15.0, 200);
    EXPECT_LE(err, red.error_bound * (1.0 + 1e-6))
        << "twice-sum bound violated at order " << k;
  }
}

TEST(BalancedTruncation, ErrorShrinksWithOrder) {
  const auto full = make_dense_model(3, 24, 2);
  double prev = 1e300;
  for (std::size_t k : {4u, 10u, 16u, 22u}) {
    const auto red = balanced_truncation(full, k);
    const double err = sampled_error(full, red.reduced, 0.05, 15.0, 120);
    EXPECT_LE(err, prev * (1.0 + 1e-9));
    prev = err;
  }
}

TEST(BalancedTruncation, HsvsMatchGramianRoute) {
  const auto full = make_dense_model(4, 20, 2);
  const auto red = balanced_truncation(full, 10);
  const auto hsv_direct = macromodel::hankel_singular_values(full);
  ASSERT_EQ(red.hankel_sv.size(), hsv_direct.size());
  for (std::size_t i = 0; i < hsv_direct.size(); ++i) {
    EXPECT_NEAR(red.hankel_sv[i], hsv_direct[i],
                1e-7 * (1.0 + hsv_direct[0]));
  }
}

TEST(BalancedTruncation, ReducedGramiansAreBalanced) {
  // In the balanced realization both gramians equal diag(HSV); after
  // truncation the leading block survives.
  const auto full = make_dense_model(5, 18, 2);
  const auto red = balanced_truncation(full, 8);
  const auto p = macromodel::controllability_gramian(red.reduced);
  const auto q = macromodel::observability_gramian(red.reduced);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(p(i, i), red.hankel_sv[i], 1e-6 * (1.0 + red.hankel_sv[0]));
    EXPECT_NEAR(q(i, i), red.hankel_sv[i], 1e-6 * (1.0 + red.hankel_sv[0]));
  }
}

TEST(BalancedTruncation, OrderForTolerance) {
  const la::RealVector hsv{5.0, 1.0, 0.1, 0.01, 0.001};
  // tol = 0.25: can discard 0.001 + 0.01 + 0.1 (2*0.111 = 0.222 <= 0.25)
  EXPECT_EQ(macromodel::order_for_tolerance(hsv, 0.25), 2u);
  // tol huge: everything goes.
  EXPECT_EQ(macromodel::order_for_tolerance(hsv, 100.0), 0u);
  EXPECT_THROW((void)macromodel::order_for_tolerance(hsv, 0.0),
               std::invalid_argument);
}

TEST(BalancedTruncation, RejectsBadOrders) {
  const auto full = make_dense_model(6, 12, 2);
  EXPECT_THROW(balanced_truncation(full, 0), std::invalid_argument);
  EXPECT_THROW(balanced_truncation(full, 12), std::invalid_argument);
}

}  // namespace
}  // namespace phes
