// Tests for the single-shift iteration S(theta, rho0) against dense
// Schur ground truth.  The contract under test (paper Sec. III):
// S returns ({lambda_k}, rho) such that {lambda_k} are ALL eigenvalues
// of M inside the disk C(j*omega_center, rho) — soundness (each
// returned value is an eigenvalue) and completeness (none is missed).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "phes/core/single_shift.hpp"
#include "phes/hamiltonian/analysis.hpp"
#include "phes/hamiltonian/dense.hpp"
#include "phes/la/schur.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using core::single_shift_iteration;
using core::SingleShiftOptions;
using la::Complex;
using la::ComplexVector;
using macromodel::SimoRealization;

struct Truth {
  macromodel::PoleResidueModel model;
  SimoRealization simo;
  ComplexVector spectrum;
  double scale;
};

Truth make_truth(double peak, std::uint64_t seed, std::size_t states = 30,
                 std::size_t ports = 3) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = states;
  spec.target_peak_gain = peak;
  spec.seed = seed;
  auto model = macromodel::make_synthetic_model(spec);
  SimoRealization simo(model);
  auto m = hamiltonian::build_scattering_hamiltonian(simo.to_dense());
  auto spectrum = la::real_eigenvalues(std::move(m));
  const double scale = model.max_pole_magnitude();
  return {std::move(model), std::move(simo), std::move(spectrum), scale};
}

void check_contract(const Truth& truth, double omega_center, double rho0,
                    std::uint64_t rng_seed) {
  SingleShiftOptions opt;
  util::Rng rng(rng_seed);
  const auto res = single_shift_iteration(truth.simo, omega_center, rho0,
                                          opt, rng);
  ASSERT_GT(res.radius, 0.0);
  const Complex theta(0.0, omega_center);
  const double tol = 1e-6 * truth.scale;

  // Soundness: every reported eigenvalue matches a true eigenvalue.
  for (const Complex& lambda : res.eigenvalues) {
    double best = 1e300;
    for (const Complex& mu : truth.spectrum) {
      best = std::min(best, std::abs(lambda - mu));
    }
    EXPECT_LT(best, tol) << "spurious eigenvalue " << lambda << " at shift "
                         << omega_center;
  }

  // Completeness: every true eigenvalue strictly inside the certified
  // disk is reported.  Allow a small boundary layer for roundoff.
  for (const Complex& mu : truth.spectrum) {
    const double dist = std::abs(mu - theta);
    if (dist < res.radius * (1.0 - 1e-6) - tol) {
      double best = 1e300;
      for (const Complex& lambda : res.eigenvalues) {
        best = std::min(best, std::abs(lambda - mu));
      }
      EXPECT_LT(best, tol)
          << "missed eigenvalue " << mu << " inside disk at " << omega_center
          << " radius " << res.radius;
    }
  }
}

class SingleShiftContract
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SingleShiftContract, SoundAndCompleteInsideDisk) {
  const auto [seed, peak] = GetParam();
  const Truth truth = make_truth(peak, 400 + seed);
  const double wmax = truth.scale;
  // Several shifts across the band, several initial radii.
  for (double frac : {0.0, 0.25, 0.6, 0.95}) {
    for (double rel_rho : {0.05, 0.3}) {
      check_contract(truth, frac * wmax, rel_rho * wmax,
                     900 + static_cast<std::uint64_t>(seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndPeaks, SingleShiftContract,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(1.06, 0.9)));

TEST(SingleShift, FindsKnownCrossingsNearShift) {
  // Place the shift exactly at a known imaginary eigenvalue; it must be
  // returned.
  const Truth truth = make_truth(1.08, 777);
  const auto freqs = hamiltonian::extract_imaginary_frequencies(
      truth.spectrum, 1e-8, truth.scale);
  ASSERT_FALSE(freqs.empty());
  const double w0 = freqs[freqs.size() / 2];

  SingleShiftOptions opt;
  util::Rng rng(5);
  const auto res = single_shift_iteration(truth.simo, w0,
                                          0.1 * truth.scale, opt, rng);
  double best = 1e300;
  for (const Complex& lambda : res.eigenvalues) {
    best = std::min(best, std::abs(lambda - Complex(0.0, w0)));
  }
  EXPECT_LT(best, 1e-6 * truth.scale);
}

TEST(SingleShift, ShrinkRuleCapsReportedCount) {
  // With a huge initial radius the disk would contain many eigenvalues;
  // the shrink rule must cap the report at n_theta (the paper requires
  // n_theta << d for stabilization and fine scheduling granularity).
  const Truth truth = make_truth(1.1, 888, 40, 4);
  SingleShiftOptions opt;
  opt.eigs_per_shift = 4;
  util::Rng rng(6);
  const auto res = single_shift_iteration(truth.simo, 0.5 * truth.scale,
                                          10.0 * truth.scale, opt, rng);
  EXPECT_LE(res.eigenvalues.size(), 4u);
  // And the certificate still holds.
  const Complex theta(0.0, 0.5 * truth.scale);
  const double tol = 1e-6 * truth.scale;
  for (const Complex& mu : truth.spectrum) {
    if (std::abs(mu - theta) < res.radius * (1.0 - 1e-6) - tol) {
      double best = 1e300;
      for (const Complex& lambda : res.eigenvalues) {
        best = std::min(best, std::abs(lambda - mu));
      }
      EXPECT_LT(best, tol);
    }
  }
}

TEST(SingleShift, EmptyDiskOnPassiveQuietRegion) {
  // A passive model with well-damped poles: a small disk far from any
  // eigenvalue returns empty but certifies a positive radius.
  macromodel::SyntheticModelSpec spec;
  spec.ports = 2;
  spec.states = 16;
  spec.target_peak_gain = 0.5;
  spec.min_damping = 0.3;
  spec.max_damping = 0.5;
  spec.seed = 99;
  const auto model = macromodel::make_synthetic_model(spec);
  const SimoRealization simo(model);
  SingleShiftOptions opt;
  util::Rng rng(7);
  const double w = 0.5 * model.max_pole_magnitude();
  const auto res =
      single_shift_iteration(simo, w, 0.01 * model.max_pole_magnitude(),
                             opt, rng);
  EXPECT_GT(res.radius, 0.0);
  EXPECT_TRUE(res.eigenvalues.empty());
}

TEST(SingleShift, RejectsBadArguments) {
  const Truth truth = make_truth(1.05, 1234, 20, 2);
  SingleShiftOptions opt;
  util::Rng rng(1);
  EXPECT_THROW(
      single_shift_iteration(truth.simo, 1.0, 0.0, opt, rng),
      std::invalid_argument);
  opt.eigs_per_shift = 60;
  opt.krylov_dim = 60;
  EXPECT_THROW(
      single_shift_iteration(truth.simo, 1.0, 1.0, opt, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace phes
