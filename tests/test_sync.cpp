// Runtime contracts of the annotated sync layer (phes/util/sync.hpp)
// and the ThreadPool built on it.  The negative-compile harness
// (test_sync_negative) proves the *compile-time* contracts; this suite
// proves the runtime ones, and is part of the TSAN CI target so every
// wait/notify path here is also exercised under the race detector.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "phes/util/sync.hpp"
#include "phes/util/thread_pool.hpp"

namespace phes {
namespace {

using namespace std::chrono_literals;

// One-shot open/wait latch in the sync layer's own vocabulary.
class Gate {
 public:
  void open() PHES_EXCLUDES(mu_) {
    {
      util::MutexLock lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void wait_open() PHES_EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    while (!open_) cv_.wait(mu_);
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  bool open_ PHES_GUARDED_BY(mu_) = false;
};

// The documented shutdown contract: the destructor drains tasks that
// are still queued when it runs — it must never drop them.  A single
// worker is pinned inside a blocker while fifty tasks pile up behind
// it; the pool is then destroyed with the blocker still blocked, so
// the destructor provably begins with a non-empty queue.
TEST(ThreadPoolTest, DestructorDrainsTasksStillQueuedAtShutdown) {
  constexpr int kQueued = 50;
  std::atomic<int> ran{0};
  Gate release_blocker;
  Gate destroying;

  // Unblocks the worker only once this thread has reached the pool's
  // destructor, so shutdown begins with all kQueued tasks still queued.
  std::thread releaser([&] {
    destroying.wait_open();
    release_blocker.open();
  });

  {
    util::ThreadPool pool(1);
    pool.submit([&] {
      release_blocker.wait_open();
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    for (int i = 0; i < kQueued; ++i) {
      pool.submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    destroying.open();
    // Destructor runs here: stopping_ is set while kQueued tasks wait
    // behind the blocker.
  }

  releaser.join();
  EXPECT_EQ(ran.load(), kQueued + 1);
}

// Tasks submitted *by running tasks* after shutdown has begun are part
// of the same drain guarantee (the scheduler's split rule relies on
// this).
TEST(ThreadPoolTest, DestructorDrainsTasksSubmittedByDrainingTasks) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&ran, &pool] {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(ran.load(), 16);
}

// wait_idle() means full quiescence: queue empty AND nothing in
// flight, including work enqueued by the tasks themselves.
TEST(ThreadPoolTest, WaitIdleCoversTasksSubmittedByTasks) {
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran, &pool] {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);

  // The pool is still usable after an idle point.
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 33);
}

// Predicate wait must sit through notifies that arrive while the
// predicate is still false (and through spurious wakeups, which look
// identical from inside wait()).
TEST(CondVarTest, PredicateWaitIgnoresNotifiesWhilePredicateFalse) {
  struct State {
    util::Mutex mu;
    util::CondVar cv;
    bool ready PHES_GUARDED_BY(mu) = false;
  } st;
  std::atomic<bool> woke{false};

  std::thread waiter([&] {
    util::MutexLock lock(st.mu);
    st.cv.wait(st.mu, [&st] {
      st.mu.assert_held();
      return st.ready;
    });
    EXPECT_TRUE(st.ready);
    woke.store(true, std::memory_order_release);
  });

  // A notify storm with the predicate still false: a waiter that
  // trusts wakeups instead of the predicate sets `woke` here and
  // fails the check below.
  for (int i = 0; i < 20; ++i) {
    st.cv.notify_all();
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(woke.load(std::memory_order_acquire));

  {
    util::MutexLock lock(st.mu);
    st.ready = true;
  }
  st.cv.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

// wait_for(mu, dur, pred) returns pred()'s value at exit: false means
// the deadline passed with the predicate still false — and the
// deadline is honoured (no early return).
TEST(CondVarTest, TimedPredicateWaitReturnsFalseAtDeadline) {
  util::Mutex mu;
  util::CondVar cv;

  const auto start = std::chrono::steady_clock::now();
  bool satisfied;
  {
    util::MutexLock lock(mu);
    satisfied = cv.wait_for(mu, 30ms, [] { return false; });
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_FALSE(satisfied);
  EXPECT_GE(elapsed, 30ms);
}

TEST(CondVarTest, TimedPredicateWaitReturnsTrueWhenPredicateFlips) {
  struct State {
    util::Mutex mu;
    util::CondVar cv;
    bool ready PHES_GUARDED_BY(mu) = false;
  } st;

  std::thread setter([&] {
    {
      util::MutexLock lock(st.mu);
      st.ready = true;
    }
    st.cv.notify_one();
  });

  bool satisfied;
  {
    util::MutexLock lock(st.mu);
    // Generous deadline: the test asserts the *result*, not timing.
    satisfied = st.cv.wait_for(st.mu, 10s, [&st] {
      st.mu.assert_held();
      return st.ready;
    });
  }
  setter.join();
  EXPECT_TRUE(satisfied);
}

// The non-predicate timed overload reports timeout via std::cv_status.
TEST(CondVarTest, TimedWaitReportsTimeout) {
  util::Mutex mu;
  util::CondVar cv;
  util::MutexLock lock(mu);
  EXPECT_EQ(cv.wait_for(mu, 5ms), std::cv_status::timeout);
}

// SharedMutex smoke under TSAN: writers are mutually exclusive with
// readers, and the reader path really is shared (two readers hold it
// at once, proven with a rendezvous).
TEST(SharedMutexTest, ReadersShareWritersExclude) {
  struct State {
    util::SharedMutex mu;
    long value PHES_GUARDED_BY(mu) = 0;
  } st;

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&st] {
      for (int i = 0; i < 1000; ++i) {
        util::WriterLock lock(st.mu);
        ++st.value;
      }
    });
  }
  for (auto& w : writers) w.join();
  {
    util::ReaderLock lock(st.mu);
    EXPECT_EQ(st.value, 4000);
  }

  // Two readers inside the lock at the same time: each waits for the
  // other while still holding its ReaderLock, which deadlocks unless
  // the reader side is genuinely shared.
  std::atomic<int> inside{0};
  auto reader = [&] {
    util::ReaderLock lock(st.mu);
    inside.fetch_add(1, std::memory_order_acq_rel);
    while (inside.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    EXPECT_EQ(st.value, 4000);
  };
  std::thread r1(reader), r2(reader);
  r1.join();
  r2.join();
}

}  // namespace
}  // namespace phes
