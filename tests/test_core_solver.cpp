// Integration tests for the parallel Hamiltonian eigensolver: the
// crossing set Omega must match the dense-Schur ground truth for any
// thread count and both scheduling modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "phes/core/lambda_max.hpp"
#include "phes/core/solver.hpp"
#include "phes/hamiltonian/analysis.hpp"
#include "phes/hamiltonian/dense.hpp"
#include "phes/la/schur.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using core::ParallelHamiltonianEigensolver;
using core::SchedulingMode;
using core::SolverOptions;
using la::RealVector;
using macromodel::SimoRealization;

struct Fixture {
  macromodel::PoleResidueModel model;
  SimoRealization simo;
  RealVector truth;  ///< dense-Schur crossing frequencies
  double scale;
};

Fixture make_fixture(double peak, std::uint64_t seed,
                     std::size_t states = 36, std::size_t ports = 3) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = ports;
  spec.states = states;
  spec.target_peak_gain = peak;
  spec.seed = seed;
  auto model = macromodel::make_synthetic_model(spec);
  SimoRealization simo(model);
  auto m = hamiltonian::build_scattering_hamiltonian(simo.to_dense());
  const auto spectrum = la::real_eigenvalues(std::move(m));
  const double scale = model.max_pole_magnitude();
  auto truth =
      hamiltonian::extract_imaginary_frequencies(spectrum, 1e-8, scale);
  return {std::move(model), std::move(simo), std::move(truth), scale};
}

class SolverAgainstTruth : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgainstTruth, SerialMatchesDenseSchur) {
  const Fixture fx = make_fixture(1.07, 600 + GetParam());
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 1;
  opt.seed = 11 + GetParam();
  const auto res = solver.solve(opt);
  EXPECT_TRUE(test::frequencies_match(res.crossings, fx.truth,
                                      1e-5 * fx.scale))
      << "found " << res.crossings.size() << " vs truth "
      << fx.truth.size();
  EXPECT_EQ(res.passive, fx.truth.empty());
}

TEST_P(SolverAgainstTruth, ParallelMatchesDenseSchur) {
  const Fixture fx = make_fixture(1.07, 700 + GetParam());
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 4;
  opt.seed = 23 + GetParam();
  const auto res = solver.solve(opt);
  EXPECT_TRUE(test::frequencies_match(res.crossings, fx.truth,
                                      1e-5 * fx.scale))
      << "found " << res.crossings.size() << " vs truth "
      << fx.truth.size();
}

TEST_P(SolverAgainstTruth, StaticGridMatchesDenseSchur) {
  const Fixture fx = make_fixture(1.07, 800 + GetParam());
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 3;
  opt.scheduling = SchedulingMode::kStaticGrid;
  opt.seed = 31 + GetParam();
  const auto res = solver.solve(opt);
  EXPECT_TRUE(test::frequencies_match(res.crossings, fx.truth,
                                      1e-5 * fx.scale));
  EXPECT_EQ(res.shifts_eliminated, 0u);
}

INSTANTIATE_TEST_SUITE_P(Models, SolverAgainstTruth, ::testing::Range(0, 6));

TEST(Solver, PassiveModelReportsEmptyOmega) {
  const Fixture fx = make_fixture(0.8, 901);
  ASSERT_TRUE(fx.truth.empty());
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 2;
  const auto res = solver.solve(opt);
  EXPECT_TRUE(res.passive);
  EXPECT_TRUE(res.crossings.empty());
}

TEST(Solver, NearPassiveModelIsStillClassifiedCorrectly) {
  // Peak just below 1: eigenvalues near but not on the axis — the
  // expensive passive case (paper Cases 4 and 6).
  const Fixture fx = make_fixture(0.97, 902);
  ASSERT_TRUE(fx.truth.empty());
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 4;
  const auto res = solver.solve(opt);
  EXPECT_TRUE(res.passive);
}

TEST(Solver, DisksCoverSearchBand) {
  const Fixture fx = make_fixture(1.05, 903);
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 2;
  const auto res = solver.solve(opt);
  std::vector<std::pair<double, double>> covered;
  for (const auto& d : res.disks) {
    covered.emplace_back(d.center - d.radius, d.center + d.radius);
  }
  std::sort(covered.begin(), covered.end());
  const double tol = 1e-6 * (res.omega_max - res.omega_min);
  double cursor = res.omega_min;
  for (const auto& [lo, hi] : covered) {
    ASSERT_LE(lo, cursor + tol) << "coverage gap before " << lo;
    cursor = std::max(cursor, hi);
    if (cursor >= res.omega_max) break;
  }
  EXPECT_GE(cursor, res.omega_max - tol);
}

TEST(Solver, SerialRunsAreDeterministic) {
  const Fixture fx = make_fixture(1.06, 904);
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 1;
  opt.seed = 5;
  const auto r1 = solver.solve(opt);
  const auto r2 = solver.solve(opt);
  ASSERT_EQ(r1.crossings.size(), r2.crossings.size());
  for (std::size_t i = 0; i < r1.crossings.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.crossings[i], r2.crossings[i]);
  }
  EXPECT_EQ(r1.shifts_processed, r2.shifts_processed);
}

TEST(Solver, ThreadCountsAgreeWithEachOther) {
  const Fixture fx = make_fixture(1.08, 905, 48, 4);
  ParallelHamiltonianEigensolver solver(fx.simo);
  RealVector reference;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    SolverOptions opt;
    opt.threads = threads;
    opt.seed = 77;
    const auto res = solver.solve(opt);
    if (reference.empty()) {
      reference = res.crossings;
    } else {
      EXPECT_TRUE(test::frequencies_match(res.crossings, reference,
                                          1e-5 * fx.scale))
          << "thread count " << threads << " changed the result";
    }
  }
  EXPECT_TRUE(
      test::frequencies_match(reference, fx.truth, 1e-5 * fx.scale));
}

TEST(Solver, ExplicitBandLimitsAreHonored) {
  const Fixture fx = make_fixture(1.07, 906);
  ASSERT_GE(fx.truth.size(), 2u);
  // Search only the upper half of the crossing range.
  const double mid = fx.truth[fx.truth.size() / 2] * 0.999;
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 2;
  opt.omega_min = mid;
  opt.omega_max = fx.scale * 1.2;
  const auto res = solver.solve(opt);
  // All truth crossings above mid are found; none below reported
  // (modulo disks slightly overhanging the band edge).
  for (double w : fx.truth) {
    const bool inside = w >= mid;
    double best = 1e300;
    for (double r : res.crossings) best = std::min(best, std::abs(r - w));
    if (inside) {
      EXPECT_LT(best, 1e-5 * fx.scale) << "missed in-band crossing " << w;
    }
  }
}

TEST(Solver, LambdaMaxBoundsSpectralRadius) {
  const Fixture fx = make_fixture(1.05, 907);
  auto m = hamiltonian::build_scattering_hamiltonian(fx.simo.to_dense());
  const auto spectrum = la::real_eigenvalues(std::move(m));
  double rho = 0.0;
  for (const auto& l : spectrum) rho = std::max(rho, std::abs(l));

  util::Rng rng(3);
  core::LambdaMaxOptions lopt;
  const double est = core::estimate_lambda_max(fx.simo, lopt, rng);
  EXPECT_GE(est, rho * 0.999);  // upper bound (with safety factor)
  EXPECT_LE(est, rho * 2.0);    // not wildly pessimistic
}

TEST(Solver, RejectsBadOptions) {
  const Fixture fx = make_fixture(1.05, 908, 20, 2);
  ParallelHamiltonianEigensolver solver(fx.simo);
  SolverOptions opt;
  opt.threads = 0;
  EXPECT_THROW(solver.solve(opt), std::invalid_argument);
  opt = SolverOptions{};
  opt.kappa = 1;
  EXPECT_THROW(solver.solve(opt), std::invalid_argument);
  opt = SolverOptions{};
  opt.alpha = 0.5;
  EXPECT_THROW(solver.solve(opt), std::invalid_argument);
}

}  // namespace
}  // namespace phes
