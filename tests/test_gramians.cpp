// Tests for the Lyapunov solver and gramian/Hankel machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/lyapunov.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/gramians.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "test_support.hpp"

namespace phes {
namespace {

using la::RealMatrix;
using la::solve_lyapunov;
using macromodel::SimoRealization;
using macromodel::StateSpaceModel;

TEST(Lyapunov, ScalarAnalytic) {
  // a x + x a + q = 0 with a = -1, q = 2  =>  x = 1.
  RealMatrix a{{-1.0}};
  RealMatrix q{{2.0}};
  const auto x = solve_lyapunov(a, q);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
}

TEST(Lyapunov, DiagonalAnalytic) {
  // Decoupled: x_ii = q_ii / (2 |a_ii|).
  RealMatrix a{{-2.0, 0.0}, {0.0, -5.0}};
  RealMatrix q{{4.0, 0.0}, {0.0, 10.0}};
  const auto x = solve_lyapunov(a, q);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 0.0, 1e-12);
}

class LyapunovProperty : public ::testing::TestWithParam<int> {};

TEST_P(LyapunovProperty, ResidualSmallAndSymmetric) {
  util::Rng rng(600 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.below(15);
  // Stable A: random minus a diagonal shift dominating its norm.
  RealMatrix a = test::random_real_matrix(n, n, rng);
  const double shift = la::frobenius_norm(a) + 1.0;
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= shift;
  // PSD Q = G G^T.
  const RealMatrix g = test::random_real_matrix(n, n, rng);
  const RealMatrix q = la::gemm(g, la::transpose(g));

  const auto x = solve_lyapunov(a, q);
  // Residual A X + X A^T + Q ~ 0.
  const RealMatrix resid =
      la::gemm(a, x) + la::gemm(x, la::transpose(a)) + q;
  EXPECT_LT(la::max_abs(resid), 1e-8 * (1.0 + la::max_abs(q)));
  // Symmetry.
  EXPECT_LT(la::max_abs(x - la::transpose(x)), 1e-10 * (1.0 + la::max_abs(x)));
}

INSTANTIATE_TEST_SUITE_P(RandomStable, LyapunovProperty,
                         ::testing::Range(0, 10));

TEST(Gramians, OnePoleAnalytic) {
  // H(s) = r/(s + a):  P = 1/(2a), Q = r^2/(2a), HSV = r/(2a).
  StateSpaceModel ss;
  ss.a = RealMatrix{{-3.0}};
  ss.b = RealMatrix{{1.0}};
  ss.c = RealMatrix{{4.0}};
  ss.d = RealMatrix(1, 1);
  const auto p = macromodel::controllability_gramian(ss);
  const auto q = macromodel::observability_gramian(ss);
  EXPECT_NEAR(p(0, 0), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(q(0, 0), 16.0 / 6.0, 1e-12);
  const auto hsv = macromodel::hankel_singular_values(ss);
  ASSERT_EQ(hsv.size(), 1u);
  EXPECT_NEAR(hsv[0], 4.0 / 6.0, 1e-12);
}

TEST(Gramians, HinfBoundDominatesSampledNorm) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 24;
  spec.target_peak_gain = 1.1;
  spec.seed = 5;
  const auto model = macromodel::make_synthetic_model(spec);
  const SimoRealization simo(model);
  const auto ss = simo.to_dense();

  const double bound = macromodel::hinf_upper_bound(ss);
  double sampled = 0.0;
  for (int i = 0; i < 400; ++i) {
    const double w = 0.05 + 20.0 * i / 399.0;
    sampled = std::max(sampled, la::complex_spectral_norm(model.eval(w)));
  }
  EXPECT_GE(bound, sampled);
  EXPECT_LT(bound, 200.0 * sampled);  // not uselessly loose
}

TEST(Gramians, EnforcementPerturbationBoundHolds) {
  // The Hankel bound on ||H_after - H_before||_inf must dominate the
  // sampled perturbation after a real enforcement run.
  macromodel::SyntheticModelSpec spec;
  spec.ports = 3;
  spec.states = 30;
  spec.target_peak_gain = 1.06;
  spec.seed = 6;
  const auto model = macromodel::make_synthetic_model(spec);
  SimoRealization simo(model);
  const RealMatrix c_before = simo.c();

  passivity::EnforcementOptions eopt;
  eopt.solver.threads = 2;
  const auto enf = passivity::enforce_passivity(simo, eopt);
  ASSERT_TRUE(enf.success);

  const double bound = macromodel::perturbation_hinf_bound(simo, c_before);
  // Sampled actual perturbation.
  const auto after = simo.to_pole_residue();
  double actual = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double w = 0.05 + 15.0 * i / 299.0;
    la::ComplexMatrix diff = after.eval(w);
    diff -= model.eval(w);
    actual = std::max(actual, la::complex_spectral_norm(diff));
  }
  EXPECT_GE(bound * (1.0 + 1e-9), actual);
  EXPECT_GT(bound, 0.0);
}

TEST(Gramians, ShapeChecks) {
  StateSpaceModel bad;
  bad.a = RealMatrix(2, 2);
  bad.b = RealMatrix(3, 1);  // wrong
  bad.c = RealMatrix(1, 2);
  bad.d = RealMatrix(1, 1);
  EXPECT_THROW(macromodel::controllability_gramian(bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace phes
