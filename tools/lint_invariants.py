#!/usr/bin/env python3
"""Repo-invariant linter: cross-artifact contracts a compiler cannot see.

Checks (each failure is one line on stdout; exit 1 if any fired):

  1. metrics-docs   Every `phes_*` instrument registered in source
                    appears in README.md's metric table, and every
                    README table entry names a registered instrument.
                    The table uses `{a,b}` brace shorthand and `<...>`
                    placeholders for dynamically-suffixed families.
  2. protocol-ops   Every protocol op handled in protocol.cpp has a
                    client-side subcommand (examples/phes_pipeline.cpp)
                    and at least one mention in the test suite.
  3. protocol-docs  Every protocol op handled in protocol.cpp is
                    documented in README.md (as `"op":"name"` or a
                    backticked `name`), so the wire surface and the
                    docs cannot drift apart.
  4. sync-layer     No raw std synchronization primitive outside
                    util/sync.hpp: every mutex in the tree must be a
                    phes::util one so the thread-safety analysis sees
                    it.  (See README "Static analysis".)
  5. kernel-flag    Every `--kernel*` CLI flag accepted by the pipeline
                    binary is evidenced on the wire (a "kernel" job
                    option parsed in protocol.cpp) and documented in
                    README.md, so a backend knob cannot exist that the
                    replay A/B machinery and the docs don't know about.

Run from anywhere: paths resolve relative to this file's repo root.
"""

from __future__ import annotations

import itertools
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# ---- check 1: metric names vs README table ----------------------------

# Registration calls whose string literal is the canonical metric name.
REGISTRATION_RE = re.compile(
    r'\b(?:counter|gauge|histogram)\(\s*"(phes_[a-z0-9_]+)"'
)
# Dynamically-suffixed families are registered by string concatenation
# off a literal prefix; the README documents them with a <placeholder>.
PREFIX_REGISTRATION_RE = re.compile(
    r'std::string\(\s*"(phes_[a-z0-9_]+_)"\s*\)'
)
README_METRIC_RE = re.compile(r"`(phes_[a-z0-9_{},<>]+)`")


def expand_braces(name: str) -> list[str]:
    """phes_a_{x,y}_total -> [phes_a_x_total, phes_a_y_total]."""
    parts = re.split(r"\{([^{}]*)\}", name)
    # Odd indices are the comma groups, even indices literal text.
    options = [
        part.split(",") if i % 2 else [part]
        for i, part in enumerate(parts)
    ]
    return ["".join(combo) for combo in itertools.product(*options)]


def source_metric_names() -> tuple[set[str], set[str]]:
    names: set[str] = set()
    prefixes: set[str] = set()
    for directory in ("src", "include"):
        for path in (ROOT / directory).rglob("*.[ch]pp"):
            text = path.read_text(encoding="utf-8")
            names.update(REGISTRATION_RE.findall(text))
            prefixes.update(PREFIX_REGISTRATION_RE.findall(text))
    return names, prefixes


README_TABLE_MARKER = "Metric names, by layer:"


def readme_metric_entries() -> tuple[set[str], set[str]]:
    """Exact names and `<...>`-wildcard prefixes documented in README."""
    exact: set[str] = set()
    wildcard_prefixes: set[str] = set()
    lines = (ROOT / "README.md").read_text(encoding="utf-8").splitlines()
    try:
        start = next(i for i, l in enumerate(lines)
                     if README_TABLE_MARKER in l)
    except StopIteration:
        return exact, wildcard_prefixes  # caller flags the empty table
    in_table = False
    for line in lines[start + 1:]:
        if line.lstrip().startswith("|"):
            in_table = True
        elif in_table:
            break  # the metric table ended
        elif line.strip():
            break  # something other than the table follows the marker
        else:
            continue
        for raw in README_METRIC_RE.findall(line):
            for name in expand_braces(raw):
                if "<" in name:
                    wildcard_prefixes.add(name.split("<", 1)[0])
                else:
                    exact.add(name)
    return exact, wildcard_prefixes


def check_metrics(errors: list[str]) -> None:
    names, prefixes = source_metric_names()
    exact, wildcards = readme_metric_entries()
    if not exact and not wildcards:
        errors.append(
            "metrics-docs: README.md metric table not found (marker: "
            f"'{README_TABLE_MARKER}')"
        )
        return
    for name in sorted(names):
        if name in exact:
            continue
        if any(name.startswith(w) for w in wildcards):
            continue
        errors.append(
            f"metrics-docs: '{name}' is registered in source but missing "
            "from README.md's metric table"
        )
    for name in sorted(exact):
        if name not in names:
            errors.append(
                f"metrics-docs: README.md documents '{name}' but no "
                "source file registers it"
            )
    for prefix in sorted(wildcards):
        if prefix not in prefixes and not any(
            n.startswith(prefix) for n in names
        ):
            errors.append(
                f"metrics-docs: README.md documents the '{prefix}<...>' "
                "family but no source file registers that prefix"
            )


# ---- check 2: protocol ops vs client + tests --------------------------

OP_RE = re.compile(r'\bop == "(\w+)"')

# Ops whose client-side spelling differs from the wire op.  The client
# maps `wait` onto the wire `status` op, sends `submit_inline` via
# `submit --inline`, and performs `auth` implicitly from
# --auth-token-file.
CLIENT_EVIDENCE_OVERRIDES = {
    "submit_inline": "--inline",
    "auth": "--auth-token-file",
}


def check_protocol_ops(errors: list[str]) -> None:
    protocol = (ROOT / "src/server/protocol.cpp").read_text(encoding="utf-8")
    ops = sorted(set(OP_RE.findall(protocol)))
    if not ops:
        errors.append("protocol-ops: no ops found in protocol.cpp "
                      "(extraction pattern broke?)")
        return
    client = (ROOT / "examples/phes_pipeline.cpp").read_text(encoding="utf-8")
    test_text = "".join(
        p.read_text(encoding="utf-8")
        for p in sorted((ROOT / "tests").glob("*.[ch]pp"))
    )
    for op in ops:
        evidence = CLIENT_EVIDENCE_OVERRIDES.get(op, f'"{op}"')
        if evidence not in client:
            errors.append(
                f"protocol-ops: op '{op}' has no client subcommand "
                f"(expected '{evidence}' in examples/phes_pipeline.cpp)"
            )
        if op not in test_text:
            errors.append(
                f"protocol-ops: op '{op}' is never mentioned in tests/"
            )


# ---- check 3: protocol ops vs README ----------------------------------


def check_protocol_docs(errors: list[str]) -> None:
    protocol = (ROOT / "src/server/protocol.cpp").read_text(encoding="utf-8")
    ops = sorted(set(OP_RE.findall(protocol)))
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for op in ops:
        if f'"op":"{op}"' in readme or f"`{op}`" in readme:
            continue
        errors.append(
            f"protocol-docs: op '{op}' is handled in protocol.cpp but "
            "not documented in README.md"
        )


# ---- check 4: raw std synchronization outside util/sync.hpp -----------

BANNED_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b"
)
SYNC_HPP = Path("include/phes/util/sync.hpp")


def check_sync_layer(errors: list[str]) -> None:
    for directory in ("src", "include", "tests", "bench", "examples"):
        base = ROOT / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.[ch]pp")):
            rel = path.relative_to(ROOT)
            if rel == SYNC_HPP:
                continue
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                code = line.split("//", 1)[0]
                match = BANNED_RE.search(code)
                if match:
                    errors.append(
                        f"sync-layer: {rel}:{lineno}: {match.group(0)} — "
                        "use phes::util::Mutex/MutexLock/CondVar from "
                        "phes/util/sync.hpp"
                    )


# ---- check 5: kernel CLI flags vs protocol + README -------------------

KERNEL_FLAG_RE = re.compile(r'"(--kernel[a-z-]*)"')


def check_kernel_flag(errors: list[str]) -> None:
    client = (ROOT / "examples/phes_pipeline.cpp").read_text(encoding="utf-8")
    flags = sorted(set(KERNEL_FLAG_RE.findall(client)))
    if not flags:
        errors.append(
            "kernel-flag: no --kernel flag found in "
            "examples/phes_pipeline.cpp (extraction pattern broke?)"
        )
        return
    protocol = (ROOT / "src/server/protocol.cpp").read_text(encoding="utf-8")
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for flag in flags:
        option = flag.removeprefix("--").replace("-", "_")
        if f'"{option}"' not in protocol:
            errors.append(
                f"kernel-flag: CLI flag '{flag}' has no matching "
                f"'\"{option}\"' job option in src/server/protocol.cpp — "
                "the backend knob would be invisible to replay A/B"
            )
        if f"`{flag}`" not in readme and flag not in readme:
            errors.append(
                f"kernel-flag: CLI flag '{flag}' is not documented in "
                "README.md"
            )


def main() -> int:
    errors: list[str] = []
    check_metrics(errors)
    check_protocol_ops(errors)
    check_protocol_docs(errors)
    check_sync_layer(errors)
    check_kernel_flag(errors)
    if errors:
        for err in errors:
            print(err)
        print(f"\n{len(errors)} invariant violation(s).")
        return 1
    print("lint_invariants: all invariants hold "
          "(metrics-docs, protocol-ops, protocol-docs, sync-layer, "
          "kernel-flag).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
