// bench_metrics_overhead — ctest-registered smoke target for the
// observability layer's hot-path cost: protocol round-trips against a
// fully instrumented server must not regress measurably versus the
// same server with its MetricsRegistry kill switch thrown.
//
// Method: alternate enabled/disabled passes of ping/status round-trips
// over the real AF_UNIX transport (interleaving cancels slow drift —
// CPU frequency, page cache — that back-to-back blocks would alias
// into the comparison), then compare the best pass mean per mode.
// Min-of-means is the standard low-noise estimator here: the fastest
// pass is the one least disturbed by the OS, and instrumentation cost
// is a constant per request, so it survives in every pass including
// the fastest.
//
// Prints one BENCH-friendly JSON line and exits non-zero when the
// instrumented path is more than 5% (plus a 2 µs absolute guard for
// timer noise on sub-50 µs round-trips) slower than the disabled one.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/transport.hpp"
#include "phes/util/metrics.hpp"

namespace {

using namespace phes;

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

/// Mean round-trip milliseconds over `count` requests on `client`.
double pass_mean_ms(server::Client& client, std::size_t count) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    const std::string response = client.request(
        i % 2 == 0 ? "{\"op\": \"ping\"}" : "{\"op\": \"status\"}");
    expect(response.find("\"ok\": true") != std::string::npos,
           "round-trip ok");
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() /
         static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;

  server::ServerOptions options;
  options.workers = 1;
  options.solver_threads = 1;
  options.queue_capacity = 4;
  server::JobServer jobs(options);

  const std::string socket_path =
      "/tmp/phes_bench_metrics_" + std::to_string(::getpid()) + ".sock";
  server::TransportServer transport(
      jobs, std::make_unique<server::UnixTransport>(socket_path));
  transport.start();

  constexpr std::size_t kPasses = 7;        // per mode
  constexpr std::size_t kRoundTrips = 400;  // per pass

  server::Client client(socket_path);
  (void)pass_mean_ms(client, kRoundTrips);  // warm-up (both paths hot)

  std::vector<double> enabled_means;
  std::vector<double> disabled_means;
  for (std::size_t pass = 0; pass < kPasses; ++pass) {
    jobs.metrics_registry().set_enabled(true);
    enabled_means.push_back(pass_mean_ms(client, kRoundTrips));
    jobs.metrics_registry().set_enabled(false);
    disabled_means.push_back(pass_mean_ms(client, kRoundTrips));
  }
  jobs.metrics_registry().set_enabled(true);

  // The kill switch must actually have frozen the counters while it
  // was off, or the comparison above measured nothing.
  const auto snapshot = jobs.metrics_snapshot();
  const std::uint64_t requests =
      snapshot.counters.at("phes_transport_requests_total");
  expect(requests >= (kPasses + 1) * kRoundTrips,
         "enabled passes were counted");
  expect(requests < (2 * kPasses + 1) * kRoundTrips,
         "disabled passes were not counted");

  const double enabled_ms =
      *std::min_element(enabled_means.begin(), enabled_means.end());
  const double disabled_ms =
      *std::min_element(disabled_means.begin(), disabled_means.end());
  const double overhead =
      disabled_ms > 0.0 ? (enabled_ms - disabled_ms) / disabled_ms : 0.0;

  constexpr double kMaxOverhead = 0.05;  // 5%
  constexpr double kNoiseFloorMs = 0.002;
  expect(enabled_ms <= disabled_ms * (1.0 + kMaxOverhead) + kNoiseFloorMs,
         "instrumented round-trips within 5% of registry-disabled");

  std::printf(
      "BENCH {\"bench\":\"metrics_overhead\",\"passes\":%zu,"
      "\"round_trips\":%zu,\"enabled_ms\":%.5f,\"disabled_ms\":%.5f,"
      "\"overhead_pct\":%.2f,\"bound_pct\":%.1f}\n",
      kPasses, kRoundTrips, enabled_ms, disabled_ms, overhead * 100.0,
      kMaxOverhead * 100.0);

  transport.stop();
  jobs.shutdown(true);

  if (failures > 0) {
    std::fprintf(stderr, "%d metrics overhead invariant(s) failed\n",
                 failures);
    return 1;
  }
  std::printf("metrics overhead within bounds\n");
  return 0;
}
