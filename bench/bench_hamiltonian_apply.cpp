// bench_hamiltonian_apply — ctest-registered BENCH-JSON A/B smoke of
// the tuned kernel backend against the reference backend on the hot
// paths of the Hamiltonian solve:
//
//   - SmwShiftInvertOp::apply (shift-and-invert: resolvent tables +
//     split-plane C products vs. the original per-block divisions);
//   - ImplicitHamiltonianOp::apply (batched R/S multi-RHS solves +
//     fused J-symmetric block sweep vs. six LU passes);
//   - arnoldi orthogonalization at the paper's d = 60 (blocked CGS2 vs.
//     vector-at-a-time MGS2), on a FIXED operator so the delta is the
//     Gram-Schmidt kernel alone.
//
// Measurements are best-of-N with tuned/reference interleaved inside
// each repetition, so machine noise hits both backends alike.  Exits
// non-zero when the tuned backend fails to at least match reference
// (speedup < 1.0) or when the two backends disagree numerically.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "phes/core/arnoldi.hpp"
#include "phes/hamiltonian/implicit_op.hpp"
#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/blas.hpp"
#include "phes/util/rng.hpp"
#include "phes/util/timer.hpp"
#include "test_support.hpp"

namespace {

using namespace phes;
using la::Complex;
using la::ComplexVector;
using la::KernelBackend;

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

ComplexVector random_vector(std::size_t n, util::Rng& rng) {
  ComplexVector v(n);
  for (auto& x : v) x = Complex(rng.normal(), rng.normal());
  return v;
}

double max_rel_diff(const ComplexVector& a, const ComplexVector& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num = std::max(num, std::abs(a[i] - b[i]));
    den = std::max(den, std::abs(b[i]));
  }
  return den > 0.0 ? num / den : num;
}

/// Interleaved best-of-N: each rep times tuned then reference, so load
/// spikes penalize both.  Returns {tuned_best, reference_best}.
template <typename Tuned, typename Ref>
std::pair<double, double> ab_best(int reps, Tuned&& tuned, Ref&& ref) {
  double bt = 1e300, br = 1e300;
  for (int r = 0; r < reps; ++r) {
    {
      util::WallTimer t;
      tuned();
      bt = std::min(bt, t.seconds());
    }
    {
      util::WallTimer t;
      ref();
      br = std::min(br, t.seconds());
    }
  }
  return {bt, br};
}

void bench_operators(std::size_t states, std::size_t ports,
                     std::uint64_t seed) {
  const auto model = test::synthetic_model(1.08, seed, states, ports);
  const macromodel::SimoRealization realization(model);
  const std::size_t dim = 2 * realization.order();
  util::Rng rng(seed ^ 0x9e3779b9);
  const ComplexVector x = random_vector(dim, rng);
  ComplexVector yt(dim), yr(dim);

  // --- SMW shift-and-invert apply ------------------------------------
  const Complex theta(0.0, 2.0);
  const hamiltonian::SmwShiftInvertOp smw_tuned(realization, theta,
                                                KernelBackend::kTuned);
  const hamiltonian::SmwShiftInvertOp smw_ref(realization, theta,
                                              KernelBackend::kReference);
  smw_tuned.apply(x, yt);
  smw_ref.apply(x, yr);
  expect(max_rel_diff(yt, yr) < 1e-9, "SMW backends agree numerically");

  constexpr int kIters = 40;
  auto [smw_t, smw_r] = ab_best(
      7,
      [&] {
        for (int i = 0; i < kIters; ++i) smw_tuned.apply(x, yt);
      },
      [&] {
        for (int i = 0; i < kIters; ++i) smw_ref.apply(x, yr);
      });
  const double smw_speedup = smw_r / smw_t;
  expect(smw_speedup >= 1.0, "tuned SMW apply at least matches reference");
  std::printf(
      "BENCH {\"bench\":\"hamiltonian_apply\",\"op\":\"smw_apply\","
      "\"n\":%zu,\"p\":%zu,\"tuned_seconds\":%.6f,"
      "\"reference_seconds\":%.6f,\"speedup\":%.3f}\n",
      realization.order(), ports, smw_t, smw_r, smw_speedup);

  // --- implicit Hamiltonian apply ------------------------------------
  const hamiltonian::ImplicitHamiltonianOp imp_tuned(
      realization, KernelBackend::kTuned);
  const hamiltonian::ImplicitHamiltonianOp imp_ref(
      realization, KernelBackend::kReference);
  imp_tuned.apply(x, yt);
  imp_ref.apply(x, yr);
  expect(max_rel_diff(yt, yr) < 1e-10,
         "implicit-op backends agree numerically");

  auto [imp_t, imp_r] = ab_best(
      7,
      [&] {
        for (int i = 0; i < kIters; ++i) imp_tuned.apply(x, yt);
      },
      [&] {
        for (int i = 0; i < kIters; ++i) imp_ref.apply(x, yr);
      });
  const double imp_speedup = imp_r / imp_t;
  expect(imp_speedup >= 1.0,
         "tuned implicit apply at least matches reference");
  std::printf(
      "BENCH {\"bench\":\"hamiltonian_apply\",\"op\":\"implicit_apply\","
      "\"n\":%zu,\"p\":%zu,\"tuned_seconds\":%.6f,"
      "\"reference_seconds\":%.6f,\"speedup\":%.3f}\n",
      realization.order(), ports, imp_t, imp_r, imp_speedup);

  // --- Arnoldi orthogonalization at d = 60 ---------------------------
  // Same operator for both runs: the timing delta is the Gram-Schmidt
  // kernel (blocked CGS2 vs. vector-at-a-time MGS2), not the matvec.
  const std::size_t d = 60;
  const ComplexVector v0 = core::random_start_vector(dim, rng);
  std::size_t steps_t = 0, steps_r = 0;
  auto [orth_t, orth_r] = ab_best(
      5,
      [&] {
        const auto ar =
            core::arnoldi(imp_tuned, v0, d, {}, KernelBackend::kTuned);
        steps_t = ar.steps;
      },
      [&] {
        const auto ar = core::arnoldi(imp_tuned, v0, d, {},
                                      KernelBackend::kReference);
        steps_r = ar.steps;
      });
  expect(steps_t == steps_r, "both backends complete the same steps");
  const double orth_speedup = orth_r / orth_t;
  expect(orth_speedup >= 1.0,
         "tuned orthogonalization at least matches reference");
  std::printf(
      "BENCH {\"bench\":\"hamiltonian_apply\",\"op\":\"arnoldi_d60\","
      "\"n\":%zu,\"p\":%zu,\"tuned_seconds\":%.6f,"
      "\"reference_seconds\":%.6f,\"speedup\":%.3f}\n",
      realization.order(), ports, orth_t, orth_r, orth_speedup);
}

}  // namespace

int main() {
  // The acceptance shapes: d = 60 Krylov on models with p = 4 and
  // p = 16 ports (n large enough that the apply and GS loops dominate).
  bench_operators(256, 4, 2011);
  bench_operators(256, 16, 2012);

  if (failures > 0) {
    std::fprintf(stderr, "%d A/B expectation(s) failed\n", failures);
    return 1;
  }
  std::printf("kernel A/B invariants hold\n");
  return 0;
}
