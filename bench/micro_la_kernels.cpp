// Microbenchmarks of the dense-kernel substrate on the shapes the
// solver actually uses: the d x d complex Hessenberg eigensolver that
// runs once per Arnoldi restart, the p x p singular value machinery the
// passivity sampler calls per frequency point, and the 2p x 2p LU at
// the heart of every SMW apply.

#include <benchmark/benchmark.h>

#include "phes/la/blas.hpp"
#include "phes/la/eig.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/schur.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/rng.hpp"

namespace {

using namespace phes;

la::ComplexMatrix random_complex(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::ComplexMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = la::Complex(rng.normal(), rng.normal());
    }
  }
  return m;
}

la::RealMatrix random_real(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Ritz problem: eigenpairs of the projected d x d Hessenberg matrix
// (one per Arnoldi restart; d = 60 in the paper).
void BM_HessenbergEigRitz(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  la::ComplexMatrix h = random_complex(d, 1);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) h(i, j) = la::Complex{};
  }
  for (auto _ : state) {
    auto eig = la::hessenberg_eig(h, true);
    benchmark::DoNotOptimize(eig.values.data());
  }
}
BENCHMARK(BM_HessenbergEigRitz)->Arg(30)->Arg(60)->Arg(90);

// Passivity sampling kernel: singular values of a p x p complex matrix.
void BM_ComplexSingularValues(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const la::ComplexMatrix h = random_complex(p, 2);
  for (auto _ : state) {
    auto sigma = la::complex_singular_values(h);
    benchmark::DoNotOptimize(sigma.data());
  }
}
BENCHMARK(BM_ComplexSingularValues)->Arg(18)->Arg(56)->Arg(83);

// SMW kernel factorization: 2p x 2p complex LU (once per shift).
void BM_ComplexLu2p(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const la::ComplexMatrix k = random_complex(2 * p, 3);
  for (auto _ : state) {
    la::LuFactorization<la::Complex> lu(k);
    benchmark::DoNotOptimize(&lu);
  }
}
BENCHMARK(BM_ComplexLu2p)->Arg(18)->Arg(56)->Arg(83);

// Dense real Schur — the O(n^3) baseline's core cost.
void BM_RealSchur(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::RealMatrix a = random_real(n, 4);
  for (auto _ : state) {
    auto ev = la::real_eigenvalues(a);
    benchmark::DoNotOptimize(ev.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RealSchur)->Arg(100)->Arg(200)->Arg(400)
    ->Complexity(benchmark::oNCubed);

// gemm on residue-matrix shapes.
void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::RealMatrix a = random_real(n, 5);
  const la::RealMatrix b = random_real(n, 6);
  for (auto _ : state) {
    auto c = la::gemm(a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
