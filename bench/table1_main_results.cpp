// Regenerates paper Table I: for each of the 12 benchmark cases, the
// dynamic order n, port count p, number of imaginary Hamiltonian
// eigenvalues Nl, single-thread serial time tau1, 16-thread mean and
// worst-case times, and the speedup factor eta16.
//
// The models are synthetic surrogates with the paper's (n, p) — see
// DESIGN.md; absolute times and Nl differ from the paper (different
// hardware and data), the shape to check is: seconds-scale parallel
// characterization of thousand-state models with order-10x speedups.
//
// Env knobs: PHES_BENCH_RUNS, PHES_BENCH_THREADS, PHES_BENCH_CASES,
// PHES_PAPER_PROTOCOL (see bench_support.hpp).

#include <cstdio>
#include <iostream>

#include "bench_support.hpp"
#include "phes/core/solver.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/stats.hpp"
#include "phes/util/table.hpp"

int main() {
  using namespace phes;

  const std::size_t threads = bench::bench_threads();
  const std::size_t runs =
      bench::paper_protocol() ? 20 : bench::env_size("PHES_BENCH_RUNS", 2);

  std::printf("Table I reproduction: parallel runs per case = %zu, "
              "threads = %zu\n",
              runs, threads);
  std::printf("(paper: IBM LS42, 16 Opteron cores @2.3 GHz; 20 runs)\n\n");

  util::Table table({"Case", "n", "p", "Nl(paper)", "Nl", "tau1[s](paper)",
                     "tau1[s]", "tauT[s](paper)", "tauT[s]", "tauTmax[s]",
                     "eta(paper)", "eta"});

  for (const auto& c : bench::table1_cases()) {
    if (!bench::case_selected(c.id)) continue;
    const auto model = bench::build_case_model(c);
    const macromodel::SimoRealization realization(model);
    core::ParallelHamiltonianEigensolver solver(realization);

    core::SolverOptions opt;
    opt.seed = 33;
    opt.threads = 1;
    const auto serial = solver.solve(opt);
    const double tau1 = serial.seconds;

    util::RunningStats par;
    std::size_t nl = serial.crossings.size();
    for (std::size_t r = 0; r < runs; ++r) {
      opt.threads = threads;
      opt.seed = 33 + r;  // paper: random start vectors vary across runs
      const auto res = solver.solve(opt);
      par.add(res.seconds);
      nl = res.crossings.size();
    }

    table.add_row({"Case " + std::to_string(c.id), std::to_string(c.n),
                   std::to_string(c.p), std::to_string(c.paper_nl),
                   std::to_string(nl), util::format_double(c.paper_tau1, 3),
                   util::format_double(tau1, 3),
                   util::format_double(c.paper_tau16_mean, 3),
                   util::format_double(par.mean(), 3),
                   util::format_double(par.max(), 3),
                   util::format_double(c.paper_eta16, 3),
                   util::format_double(tau1 / par.mean(), 3)});
    std::printf("case %d done (tau1 %.2fs, tau%zu %.2fs)\n", c.id, tau1,
                threads, par.mean());
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nShape checks vs paper: (a) every case characterized in seconds "
      "at %zu threads; (b) speedups of order 10x-20x; (c) the large\n"
      "near-passive cases (4, 6) are the most expensive relative to "
      "their size; (d) Nl is data-dependent (synthetic surrogate).\n",
      threads);
  return 0;
}
