// bench_session_reuse — ctest-registered micro-benchmark smoke target
// for the engine::SolverSession warm-start + factorization-cache path.
//
// Scenarios (both on a seeded non-passive synthetic model):
//   1. verify-style re-solve: characterize cold, then re-solve the SAME
//      revision — must do fewer matvecs and build fewer factorizations;
//   2. enforcement-style re-solve: perturb the residues
//      (update_residues), re-characterize — must be warm-started, hit
//      the prefetched seed factorizations, and still beat the cold
//      matvec count.
//
// Prints one BENCH-friendly JSON line per scenario and exits non-zero
// when any reuse invariant fails, so CI catches regressions of the
// session fast path, not just its correctness.

#include <cstdio>
#include <cstdlib>

#include "phes/engine/session.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/la/matrix.hpp"
#include "test_support.hpp"

namespace {

using namespace phes;

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;

  // Shared seeded-model fixture; 1.08 peak gain: clearly non-passive.
  const auto model = test::synthetic_model(1.08, 2011, 48, 3);

  core::SolverOptions opt;
  // One solver thread: the dynamic scheduler is then fully
  // deterministic (fixed RNG streams, fixed completion order), so the
  // asserted reuse invariants cannot flake under CI load.
  opt.threads = 1;

  engine::SolverSession session(model);
  const auto cold = session.solve(opt);
  expect(!cold.warm_started, "first solve must be cold");
  expect(!cold.passive, "benchmark model must be non-passive");
  expect(cold.factorizations > 0, "cold solve builds factorizations");

  // --- scenario 1: same-revision re-solve (the verify stage) ----------
  const auto warm_same = session.solve(opt);
  expect(warm_same.warm_started, "same-revision re-solve is warm");
  expect(warm_same.cache_hits > 0, "same-revision re-solve hits the cache");
  expect(warm_same.total_matvecs < cold.total_matvecs,
         "same-revision re-solve does fewer matvecs than cold");
  expect(warm_same.factorizations < cold.factorizations,
         "same-revision re-solve builds fewer factorizations than cold");
  std::printf(
      "BENCH {\"bench\":\"session_reuse\",\"scenario\":\"same_revision\","
      "\"cold_matvecs\":%zu,\"warm_matvecs\":%zu,"
      "\"cold_factorizations\":%zu,\"warm_factorizations\":%zu,"
      "\"cache_hits\":%zu,\"cold_seconds\":%.6f,\"warm_seconds\":%.6f}\n",
      cold.total_matvecs, warm_same.total_matvecs, cold.factorizations,
      warm_same.factorizations, warm_same.cache_hits, cold.seconds,
      warm_same.seconds);

  // --- scenario 2: re-characterization after a residue update ---------
  la::RealMatrix c = session.realization().c();
  c *= 0.995;  // a perturbation of enforcement-step magnitude
  session.update_residues(c);
  const auto warm_next = session.solve(opt);
  expect(warm_next.warm_started, "post-update re-solve is warm");
  expect(warm_next.cache_hits > 0,
         "post-update re-solve hits the prefetched seed factorizations");
  expect(warm_next.lambda_max_matvecs == 0,
         "post-update re-solve reuses the band estimate");
  expect(warm_next.total_matvecs < cold.total_matvecs,
         "post-update re-solve does fewer matvecs than cold");
  std::printf(
      "BENCH {\"bench\":\"session_reuse\",\"scenario\":\"after_update\","
      "\"cold_matvecs\":%zu,\"warm_matvecs\":%zu,"
      "\"cold_factorizations\":%zu,\"warm_factorizations\":%zu,"
      "\"cache_hits\":%zu,\"seeded_shifts\":%zu,\"warm_seconds\":%.6f}\n",
      cold.total_matvecs, warm_next.total_matvecs, cold.factorizations,
      warm_next.factorizations, warm_next.cache_hits,
      warm_next.seeded_shifts, warm_next.seconds);

  if (failures > 0) {
    std::fprintf(stderr, "%d reuse invariant(s) failed\n", failures);
    return 1;
  }
  std::printf("session reuse invariants hold\n");
  return 0;
}
