// bench_la_kernels — ctest-registered BENCH-JSON smoke over the dense
// kernel substrate on the shapes the solver actually uses (the same
// grid as the optional gbench harness micro_la_kernels.cpp, but
// self-contained so it runs in every CI build):
//
//   - d x d complex Hessenberg eigensolve, d = 30/60/90 (one per
//     Arnoldi restart);
//   - p x p complex singular values, p = 18/56/83 (passivity sampling);
//   - 2p x 2p complex LU factor + fused multi-RHS solve (the SMW
//     kernel), with a correctness check of solve_many against the
//     column-wise solve;
//   - gemm on residue-matrix shapes.
//
// Prints one BENCH JSON line per shape; exits non-zero if any
// correctness expectation fails.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "phes/la/blas.hpp"
#include "phes/la/eig.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/rng.hpp"
#include "phes/util/timer.hpp"

namespace {

using namespace phes;

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

la::ComplexMatrix random_complex(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::ComplexMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = la::Complex(rng.normal(), rng.normal());
    }
  }
  return m;
}

la::RealMatrix random_real(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  la::RealMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  }
  return m;
}

/// Best-of-reps wall time of `body` in seconds.
template <typename F>
double best_seconds(int reps, F&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    util::WallTimer t;
    body();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  // Ritz problem: projected Hessenberg eigensolve per Arnoldi restart.
  for (const std::size_t d : {30u, 60u, 90u}) {
    la::ComplexMatrix h = random_complex(d, 1);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j + 1 < i; ++j) h(i, j) = la::Complex{};
    }
    std::size_t values = 0;
    const double sec = best_seconds(3, [&] {
      const auto eig = la::hessenberg_eig(h, true);
      values = eig.values.size();
    });
    expect(values == d, "hessenberg_eig returns d eigenvalues");
    std::printf(
        "BENCH {\"bench\":\"la_kernels\",\"kernel\":\"hessenberg_eig\","
        "\"d\":%zu,\"seconds\":%.6f}\n",
        d, sec);
  }

  // Passivity sampling: p x p complex singular values.
  for (const std::size_t p : {18u, 56u, 83u}) {
    const la::ComplexMatrix h = random_complex(p, 2);
    double sigma_max = 0.0;
    const double sec = best_seconds(3, [&] {
      const auto sigma = la::complex_singular_values(h);
      sigma_max = sigma.empty() ? 0.0 : sigma.front();
    });
    expect(std::isfinite(sigma_max) && sigma_max > 0.0,
           "singular values are finite and positive");
    std::printf(
        "BENCH {\"bench\":\"la_kernels\",\"kernel\":\"complex_svd\","
        "\"p\":%zu,\"seconds\":%.6f}\n",
        p, sec);
  }

  // SMW kernel: 2p x 2p complex LU factor + fused multi-RHS solve.
  for (const std::size_t p : {18u, 56u, 83u}) {
    la::ComplexMatrix k = random_complex(2 * p, 3);
    for (std::size_t i = 0; i < 2 * p; ++i) {
      k(i, i) += la::Complex(6.0, 0.0);
    }
    const double factor_sec = best_seconds(3, [&] {
      const la::LuFactorization<la::Complex> lu(k);
      (void)lu;
    });
    const la::LuFactorization<la::Complex> lu(k);
    la::ComplexMatrix b(2 * p, 4);
    util::Rng rng(4);
    for (std::size_t i = 0; i < 2 * p; ++i) {
      for (std::size_t c = 0; c < 4; ++c) {
        b(i, c) = la::Complex(rng.normal(), rng.normal());
      }
    }
    la::ComplexMatrix x(1, 1);
    const double solve_sec = best_seconds(5, [&] { x = lu.solve_many(b); });
    // solve_many must be bit-identical to the column-wise solve.
    bool identical = true;
    for (std::size_t c = 0; c < 4; ++c) {
      la::ComplexVector col(2 * p);
      for (std::size_t i = 0; i < 2 * p; ++i) col[i] = b(i, c);
      const la::ComplexVector ref = lu.solve(col);
      for (std::size_t i = 0; i < 2 * p; ++i) {
        if (x(i, c) != ref[i]) identical = false;
      }
    }
    expect(identical, "solve_many is bit-identical to column solves");
    std::printf(
        "BENCH {\"bench\":\"la_kernels\",\"kernel\":\"smw_lu\","
        "\"p\":%zu,\"factor_seconds\":%.6f,\"solve4_seconds\":%.6f}\n",
        p, factor_sec, solve_sec);
  }

  // gemm on residue-matrix shapes.
  for (const std::size_t n : {64u, 128u, 256u}) {
    const la::RealMatrix a = random_real(n, 5);
    const la::RealMatrix b = random_real(n, 6);
    double check = 0.0;
    const double sec = best_seconds(3, [&] {
      const auto c = la::gemm(a, b);
      check = c(0, 0);
    });
    expect(std::isfinite(check), "gemm result is finite");
    std::printf(
        "BENCH {\"bench\":\"la_kernels\",\"kernel\":\"gemm\","
        "\"n\":%zu,\"seconds\":%.6f}\n",
        n, sec);
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d kernel expectation(s) failed\n", failures);
    return 1;
  }
  std::printf("la kernel smokes hold\n");
  return 0;
}
