// Ablation D — Krylov parameter sensitivity (paper Sec. III guidance:
// "For all examples we used a maximum size d = 60" and "only a small
// number n_theta of eigenvalues are sought for, typically 4-6 ...
// n_theta << d in order to guarantee good eigenvalue stabilization").
//
// Sweeps the subspace cap d and the per-shift eigenvalue budget n_theta
// on one model and reports runtime, shifts, matvecs, and whether the
// crossing set matches the reference configuration.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "phes/core/solver.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/table.hpp"

namespace {

bool same_crossings(const phes::la::RealVector& a,
                    const phes::la::RealVector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace

int main() {
  using namespace phes;

  macromodel::SyntheticModelSpec spec;
  spec.states = 1200;
  spec.ports = 40;
  spec.omega_min = 1.0;
  spec.omega_max = 60.0;
  spec.target_peak_gain = 1.30;  // dense crossing set stresses the disks
  spec.seed = 3;
  spec.gain_tuning_grid = 64;
  const auto model = macromodel::make_synthetic_model(spec);
  const macromodel::SimoRealization realization(model);
  core::ParallelHamiltonianEigensolver solver(realization);

  // Reference: the paper's configuration.
  core::SolverOptions ref_opt;
  ref_opt.threads = 4;
  ref_opt.seed = 2;
  const auto reference = solver.solve(ref_opt);
  const double tol = 1e-5 * model.max_pole_magnitude();
  std::printf("model n = %zu, p = %zu; reference (d=60, n_theta=6): "
              "%zu crossings in %.3f s\n\n",
              realization.order(), realization.ports(),
              reference.crossings.size(), reference.seconds);

  util::Table table({"d", "n_theta", "time[s]", "shifts", "matvecs",
                     "Omega", "matches d=60/6"});
  for (std::size_t d : {20, 40, 60, 80}) {
    for (std::size_t ntheta : {2, 4, 6, 10}) {
      if (ntheta + 4 > d) continue;  // need n_theta << d
      core::SolverOptions opt;
      opt.threads = 4;
      opt.seed = 2;
      opt.shift.krylov_dim = d;
      opt.shift.eigs_per_shift = ntheta;
      const auto res = solver.solve(opt);
      // Shift-iteration matvecs only: total_matvecs also counts the
      // (d, n_theta)-independent |lambda|max band estimate, which
      // would add a constant offset to every row of this ablation.
      const std::size_t shift_matvecs =
          res.total_matvecs - res.lambda_max_matvecs;
      table.add_row(
          {std::to_string(d), std::to_string(ntheta),
           util::format_double(res.seconds, 3),
           std::to_string(res.shifts_processed),
           std::to_string(shift_matvecs),
           std::to_string(res.crossings.size()),
           same_crossings(res.crossings, reference.crossings, tol) ? "yes"
                                                                   : "NO"});
    }
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nShape check vs paper: every configuration returns the same "
      "crossing set — the method is robust to (d, n_theta), which is\n"
      "the property that matters.  Cost trade-off: larger n_theta "
      "consistently reduces the shift count at fixed d; small d means\n"
      "cheap restarts (orthogonalization grows as d^2) but smaller "
      "certified disks and more shifts, each paying the O(n p^2 + p^3)\n"
      "per-shift setup — so the optimum d grows with n and p (the "
      "paper's d = 60 targets its largest cases).\n");
  return 0;
}
