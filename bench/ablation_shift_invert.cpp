// Ablation B — cost of one shift-and-invert application (paper Sec. III).
//
// The paper's enabling observation: via the Sherman-Morrison-Woodbury
// form (Eq. 6) the operator (M - theta I)^{-1} applies in O(n p) on the
// structured realization, vs O(n^2) for an explicit dense matvec and
// O(n^3) for a dense factor-and-solve.  This google-benchmark harness
// measures all three across n.

#include <benchmark/benchmark.h>

#include <memory>

#include "phes/hamiltonian/dense.hpp"
#include "phes/hamiltonian/implicit_op.hpp"
#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/rng.hpp"

namespace {

using namespace phes;

struct Setup {
  std::unique_ptr<macromodel::SimoRealization> realization;
  la::ComplexVector x;

  explicit Setup(std::size_t n) {
    macromodel::SyntheticModelSpec spec;
    spec.states = n;
    spec.ports = 20;
    spec.omega_min = 1.0;
    spec.omega_max = 100.0;
    spec.target_peak_gain = 1.05;
    spec.seed = 5;
    spec.gain_tuning_grid = 32;
    const auto model = macromodel::make_synthetic_model(spec);
    realization = std::make_unique<macromodel::SimoRealization>(model);
    util::Rng rng(1);
    x.resize(2 * n);
    for (auto& v : x) v = la::Complex(rng.normal(), rng.normal());
  }
};

Setup& setup_for(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<Setup>> cache;
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<Setup>(n);
  return *slot;
}

void BM_SmwShiftInvertApply(benchmark::State& state) {
  Setup& s = setup_for(static_cast<std::size_t>(state.range(0)));
  const hamiltonian::SmwShiftInvertOp op(*s.realization,
                                         la::Complex(0.0, 10.0));
  la::ComplexVector y(op.dim());
  for (auto _ : state) {
    op.apply(s.x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SmwShiftInvertApply)
    ->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Complexity(benchmark::oN);

void BM_ImplicitHamiltonianMatvec(benchmark::State& state) {
  Setup& s = setup_for(static_cast<std::size_t>(state.range(0)));
  const hamiltonian::ImplicitHamiltonianOp op(*s.realization);
  la::ComplexVector y(op.dim());
  for (auto _ : state) {
    op.apply(s.x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ImplicitHamiltonianMatvec)
    ->Arg(250)->Arg(500)->Arg(1000)->Arg(2000)->Arg(4000)
    ->Complexity(benchmark::oN);

// Dense baseline: one LU factor + solve of (M - theta I).  O(n^3);
// kept to n <= 500 so the harness stays fast.
void BM_DenseLuFactorSolve(benchmark::State& state) {
  Setup& s = setup_for(static_cast<std::size_t>(state.range(0)));
  const la::RealMatrix m =
      hamiltonian::build_scattering_hamiltonian(s.realization->to_dense());
  la::ComplexMatrix shifted = la::to_complex(m);
  for (std::size_t i = 0; i < shifted.rows(); ++i) {
    shifted(i, i) -= la::Complex(0.0, 10.0);
  }
  for (auto _ : state) {
    la::LuFactorization<la::Complex> lu(shifted);
    auto y = lu.solve(s.x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DenseLuFactorSolve)->Arg(250)->Arg(500)
    ->Complexity(benchmark::oNCubed);

// Per-shift SMW setup (two transfer evaluations + 2p x 2p LU): the
// amortized O(n p^2 + p^3) cost paid once per shift.
void BM_SmwPerShiftSetup(benchmark::State& state) {
  Setup& s = setup_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const hamiltonian::SmwShiftInvertOp op(*s.realization,
                                           la::Complex(0.0, 10.0));
    benchmark::DoNotOptimize(&op);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SmwPerShiftSetup)->Arg(250)->Arg(1000)->Arg(4000)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
