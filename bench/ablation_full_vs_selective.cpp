// Ablation C — full dense eigensolution vs selective Krylov extraction
// (paper Sec. III).
//
// "a standard full eigensolution scales as the third power of the
// problem size. This fact prevents an efficient characterization for
// large-size macromodels."  This harness times the dense real-Schur
// route (Francis QR on the full 2n x 2n Hamiltonian) against the
// multi-shift selective solver, cross-checking that both return the
// same crossing set where both run.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "phes/core/solver.hpp"
#include "phes/hamiltonian/analysis.hpp"
#include "phes/hamiltonian/dense.hpp"
#include "phes/la/schur.hpp"
#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/table.hpp"
#include "phes/util/timer.hpp"

int main() {
  using namespace phes;

  util::Table table({"n", "dense 2n Schur [s]", "selective serial [s]",
                     "selective 8T [s]", "Omega dense", "Omega selective"});

  for (std::size_t n : {100, 200, 400, 800, 1600}) {
    macromodel::SyntheticModelSpec spec;
    spec.states = n;
    spec.ports = 8;
    spec.omega_min = 1.0;
    spec.omega_max = 60.0;
    spec.target_peak_gain = 1.07;
    spec.seed = 21;
    spec.gain_tuning_grid = 48;
    const auto model = macromodel::make_synthetic_model(spec);
    const macromodel::SimoRealization realization(model);

    // Dense route: build M, full Schur, extract imaginary eigenvalues.
    // Skipped above n = 400 (the whole point: it stops scaling).
    std::string dense_time = "(skipped)";
    std::string dense_nl = "-";
    if (n <= 400) {
      util::WallTimer t;
      const auto m =
          hamiltonian::build_scattering_hamiltonian(realization.to_dense());
      const auto spectrum = la::real_eigenvalues(m);
      const auto freqs = hamiltonian::extract_imaginary_frequencies(
          spectrum, 1e-8, model.max_pole_magnitude());
      dense_time = util::format_double(t.seconds(), 3);
      dense_nl = std::to_string(freqs.size());
    }

    core::ParallelHamiltonianEigensolver solver(realization);
    core::SolverOptions opt;
    opt.threads = 1;
    opt.seed = 13;
    const auto serial = solver.solve(opt);
    opt.threads = 8;
    const auto par = solver.solve(opt);

    table.add_row({std::to_string(n), dense_time,
                   util::format_double(serial.seconds, 3),
                   util::format_double(par.seconds, 3), dense_nl,
                   std::to_string(serial.crossings.size())});
    std::printf("n = %zu done\n", n);
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nShape check vs paper: the dense route grows ~8x per doubling "
      "of n (O(n^3)) while the selective solver grows roughly\n"
      "linearly, with identical crossing sets where both run.\n");
  return 0;
}
