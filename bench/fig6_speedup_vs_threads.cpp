// Regenerates paper Fig. 6: speedup factor vs number of threads for
// Case 5 (n = 2240, p = 56), mean +- standard deviation over repeated
// runs with re-randomized Arnoldi start vectors, against the ideal
// speedup line.
//
// Env knobs: PHES_BENCH_RUNS (default 3; paper used 20 — set
// PHES_PAPER_PROTOCOL=1), PHES_BENCH_THREADS.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_support.hpp"
#include "phes/core/solver.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/stats.hpp"
#include "phes/util/table.hpp"

int main() {
  using namespace phes;

  const std::size_t max_threads = bench::bench_threads();
  const std::size_t runs =
      bench::paper_protocol() ? 20 : bench::env_size("PHES_BENCH_RUNS", 3);

  const auto& c = bench::table1_cases()[4];  // Case 5
  std::printf("Fig. 6 reproduction: Case %d (n = %zu, p = %zu), "
              "%zu runs per point, up to %zu threads\n\n",
              c.id, c.n, c.p, runs, max_threads);

  const auto model = bench::build_case_model(c);
  const macromodel::SimoRealization realization(model);
  core::ParallelHamiltonianEigensolver solver(realization);

  // tau1: mean serial time over the same number of runs.
  util::RunningStats serial;
  for (std::size_t r = 0; r < runs; ++r) {
    core::SolverOptions opt;
    opt.threads = 1;
    opt.seed = 100 + r;
    serial.add(solver.solve(opt).seconds);
  }
  const double tau1 = serial.mean();
  std::printf("serial reference tau1 = %.3f s (+- %.3f)\n\n", tau1,
              serial.stddev());

  // Thread grid: full 1..16 under the paper protocol, else powers-ish.
  std::vector<std::size_t> grid;
  if (bench::paper_protocol()) {
    for (std::size_t t = 1; t <= max_threads; ++t) grid.push_back(t);
  } else {
    for (std::size_t t = 1; t <= max_threads; t *= 2) grid.push_back(t);
    if (grid.back() != max_threads) grid.push_back(max_threads);
  }

  util::Table table(
      {"threads", "time[s]", "speedup", "stddev", "ideal", "shifts", "elim"});
  for (std::size_t t : grid) {
    util::RunningStats speedup, time;
    std::size_t shifts = 0, elim = 0;
    for (std::size_t r = 0; r < runs; ++r) {
      core::SolverOptions opt;
      opt.threads = t;
      opt.seed = 500 + r;
      const auto res = solver.solve(opt);
      time.add(res.seconds);
      speedup.add(tau1 / res.seconds);
      shifts = res.shifts_processed;
      elim = res.shifts_eliminated;
    }
    table.add_row({std::to_string(t), util::format_double(time.mean(), 3),
                   util::format_double(speedup.mean(), 3),
                   util::format_double(speedup.stddev(), 3),
                   util::format_double(static_cast<double>(t), 1),
                   std::to_string(shifts), std::to_string(elim)});
    std::printf("t = %zu done (%.3f s)\n", t, time.mean());
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nShape checks vs paper Fig. 6: near-ideal scaling with moderate "
      "run-to-run spread from the randomized restarts; occasional\n"
      "super-ideal points caused by dynamic elimination of tentative "
      "shifts (column 'elim').\n");
  return 0;
}
