#pragma once
// Shared infrastructure for the benchmark harnesses that regenerate the
// paper's evaluation (Table I, Fig. 6) and the ablations.
//
// Environment knobs (all optional):
//   PHES_BENCH_RUNS      repetitions per parallel measurement (default 2
//                        for Table I, 3 for Fig. 6; the paper used 20 —
//                        set PHES_PAPER_PROTOCOL=1 to match)
//   PHES_BENCH_THREADS   max thread count (default min(16, hardware))
//   PHES_BENCH_CASES     comma list of Table I case ids to run (1..12)
//   PHES_PAPER_PROTOCOL  1 => 20 runs per point, full thread grid

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "phes/macromodel/generator.hpp"
#include "phes/macromodel/pole_residue.hpp"

namespace phes::bench {

/// One Table I benchmark case: the paper's (n, p, Nl) plus the reported
/// timings, and the synthetic-substitute knobs that land the surrogate
/// model in the same regime (see DESIGN.md "Substitutions").
struct CaseSpec {
  int id;
  std::size_t n;
  std::size_t p;
  std::size_t paper_nl;
  double paper_tau1;
  double paper_tau16_mean;
  double paper_tau16_max;
  double paper_eta16;
  double peak;        ///< generator target peak gain
  std::uint64_t seed;
};

/// The 12 cases of paper Table I.
inline const std::vector<CaseSpec>& table1_cases() {
  static const std::vector<CaseSpec> cases = {
      // id    n    p   Nl   tau1    t16m   t16M    eta    peak  seed
      {1, 1000, 20, 6, 13.763, 0.655, 0.844, 21.028, 1.10, 101},
      {2, 1000, 20, 42, 10.911, 0.521, 0.579, 20.957, 1.45, 102},
      {3, 1000, 20, 40, 11.729, 0.565, 0.639, 20.745, 1.45, 103},
      {4, 1980, 18, 0, 81.193, 5.020, 5.208, 16.175, 0.97, 104},
      {5, 2240, 56, 22, 33.972, 1.950, 2.121, 17.420, 1.12, 105},
      {6, 1728, 18, 0, 46.735, 3.022, 3.109, 15.463, 0.96, 106},
      {7, 1734, 83, 10, 22.836, 1.518, 1.563, 15.040, 1.06, 107},
      {8, 1792, 56, 104, 50.933, 3.627, 3.736, 14.044, 1.65, 108},
      {9, 1702, 56, 115, 14.206, 0.976, 1.055, 14.554, 1.68, 109},
      {10, 4150, 83, 114, 64.396, 5.171, 6.024, 12.453, 1.50, 110},
      {11, 1792, 56, 125, 54.470, 3.809, 3.911, 14.301, 1.70, 111},
      {12, 2432, 83, 46, 27.842, 1.955, 2.043, 14.242, 1.30, 112},
  };
  return cases;
}

/// Builds the synthetic surrogate for a case.
inline macromodel::PoleResidueModel build_case_model(const CaseSpec& c) {
  macromodel::SyntheticModelSpec spec;
  spec.ports = c.p;
  spec.states = c.n;
  spec.omega_min = 1.0;
  spec.omega_max = 100.0;
  spec.target_peak_gain = c.peak;
  spec.seed = c.seed;
  spec.gain_tuning_grid = 96;  // keep generation cheap at n > 2000
  return macromodel::make_synthetic_model(spec);
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline bool paper_protocol() { return env_size("PHES_PAPER_PROTOCOL", 0) == 1; }

inline std::size_t bench_threads() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return env_size("PHES_BENCH_THREADS",
                  std::min<std::size_t>(hw > 0 ? hw : 1, 16));
}

/// Parses PHES_BENCH_CASES ("1,5,10"); empty => all ids.
inline std::vector<int> selected_cases() {
  std::vector<int> ids;
  const char* v = std::getenv("PHES_BENCH_CASES");
  if (v == nullptr || *v == '\0') return ids;
  std::string s(v);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    ids.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return ids;
}

inline bool case_selected(int id) {
  const auto ids = selected_cases();
  if (ids.empty()) return true;
  for (int x : ids) {
    if (x == id) return true;
  }
  return false;
}

}  // namespace phes::bench
