// bench_dispatch_latency — ctest-registered smoke target for the
// off-loop dispatch path: status/ping round-trip latency must stay
// bounded while a submit is blocked on a full admission queue.
//
// Scenario (StageGate-deterministic): one worker parked mid-fit on a
// gated job, a second job filling the one-slot queue, and a protocol
// submit provably blocked in admission on a dispatch-pool worker.
// Under PR 4's inline handling every poll below would hang until the
// gate released; with off-loop dispatch they must complete promptly.
//
// Prints one BENCH-friendly JSON line with the latency distribution
// and exits non-zero when any liveness invariant fails, so CI catches
// regressions of the dispatch path, not just its correctness.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/server/server.hpp"
#include "phes/server/socket.hpp"
#include "phes/server/transport.hpp"
#include "test_support.hpp"

namespace {

using namespace phes;

int failures = 0;

void expect(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    ++failures;
  }
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;

  server::ServerOptions options;
  options.workers = 1;
  options.solver_threads = 1;
  options.queue_capacity = 1;
  options.job_defaults.fit.num_poles = 12;
  server::JobServer jobs(options);
  test::StageGate gate;
  jobs.set_stage_observer(std::ref(gate));

  const std::string socket_path =
      "/tmp/phes_bench_dispatch_" + std::to_string(::getpid()) + ".sock";
  server::TransportServer transport(
      jobs, std::make_unique<server::UnixTransport>(socket_path));
  transport.start();

  // Pin the pressure point: worker gated, queue full, submit blocked.
  gate.arm(1, pipeline::Stage::kFit);
  pipeline::PipelineJob gated;
  gated.name = "gated";
  gated.samples = test::non_passive_samples(7);
  gated.options.stop_after = pipeline::Stage::kCharacterize;
  expect(jobs.submit(gated) == 1, "gated job admitted first");
  gate.wait_blocked();
  pipeline::PipelineJob queued = gated;
  queued.name = "queued";
  expect(jobs.submit(queued) == 2, "queue filler admitted second");

  auto blocked_ack = std::async(std::launch::async, [&] {
    server::Client submitter(socket_path);
    return submitter.request(
        "{\"op\": \"submit\", \"path\": \"/nonexistent/pressure.s2p\"}");
  });
  while (jobs.stats().queue.push_waits == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Measure poll latency while the submit stays blocked.
  constexpr std::size_t kPolls = 100;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kPolls);
  server::Client poller(socket_path);
  double total_ms = 0.0;
  for (std::size_t i = 0; i < kPolls; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const std::string response = poller.request(
        i % 2 == 0 ? "{\"op\": \"status\"}" : "{\"op\": \"ping\"}");
    const double ms = ms_since(start);
    expect(response.find("\"ok\": true") != std::string::npos,
           "poll response ok under submit pressure");
    latencies_ms.push_back(ms);
    total_ms += ms;
  }
  // The gate is still held, so the submit must still be pending —
  // checked on the future itself (push_waits is cumulative and would
  // pass vacuously).
  expect(blocked_ack.wait_for(std::chrono::milliseconds(0)) ==
             std::future_status::timeout,
         "submit stayed blocked through the measurement");

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = latencies_ms[kPolls / 2];
  const double p99 = latencies_ms[(kPolls * 99) / 100];
  const double max = latencies_ms.back();

  // The liveness bound: far above any healthy round-trip, far below
  // the "blocked forever" failure mode this guards against.
  constexpr double kMaxPollMs = 2000.0;
  expect(max < kMaxPollMs, "status-poll latency bounded under pressure");

  std::printf(
      "BENCH {\"bench\":\"dispatch_latency\",\"polls\":%zu,"
      "\"mean_ms\":%.3f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f,"
      "\"bound_ms\":%.1f}\n",
      kPolls, total_ms / static_cast<double>(kPolls), p50, p99, max,
      kMaxPollMs);

  // Unwind: release the gate, let everything finish, verify the
  // blocked submit was acknowledged.
  gate.release();
  const std::string ack = blocked_ack.get();
  expect(ack.find("\"ok\": true") != std::string::npos,
         "blocked submit acknowledged after release");
  expect(jobs.wait(3, 300.0), "blocked submission reached the store");

  transport.stop();
  jobs.shutdown(true);

  if (failures > 0) {
    std::fprintf(stderr, "%d dispatch invariant(s) failed\n", failures);
    return 1;
  }
  std::printf("dispatch liveness invariants hold\n");
  return 0;
}
