// Ablation A — scheduling strategy (paper Sec. IV).
//
// The paper rejects pre-distributing shifts on a fixed grid: "it is
// very likely that the work performed on some preallocated shifts will
// be useless ... there is no potential for good scalability ... This
// poor scalability was indeed verified experimentally."  This harness
// reproduces that comparison: dynamic work-queue scheduling vs a static
// uniform grid (plus the dynamic mop-up pass static needs to stay
// correct), at several thread counts.
//
// Env knobs: PHES_BENCH_THREADS.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_support.hpp"
#include "phes/core/solver.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/util/table.hpp"

int main() {
  using namespace phes;

  const std::size_t max_threads = bench::bench_threads();

  macromodel::SyntheticModelSpec spec;
  spec.states = 1200;
  spec.ports = 24;
  spec.omega_min = 1.0;
  spec.omega_max = 100.0;
  spec.target_peak_gain = 1.15;
  spec.seed = 77;
  spec.gain_tuning_grid = 96;
  const auto model = macromodel::make_synthetic_model(spec);
  const macromodel::SimoRealization realization(model);
  core::ParallelHamiltonianEigensolver solver(realization);

  std::printf("Scheduler ablation: n = %zu, p = %zu\n\n",
              realization.order(), realization.ports());

  util::Table table({"threads", "scheduler", "time[s]", "speedup", "shifts",
                     "eliminated", "Omega"});
  std::vector<std::size_t> grid{1};
  for (std::size_t t = 4; t <= max_threads; t *= 2) grid.push_back(t);
  if (grid.back() != max_threads) grid.push_back(max_threads);

  double tau1_dyn = 0.0, tau1_sta = 0.0;
  for (std::size_t t : grid) {
    for (const bool dynamic : {true, false}) {
      core::SolverOptions opt;
      opt.threads = t;
      opt.seed = 9;
      opt.scheduling = dynamic ? core::SchedulingMode::kDynamic
                               : core::SchedulingMode::kStaticGrid;
      const auto res = solver.solve(opt);
      double& tau1 = dynamic ? tau1_dyn : tau1_sta;
      if (t == 1) tau1 = res.seconds;
      table.add_row({std::to_string(t), dynamic ? "dynamic" : "static",
                     util::format_double(res.seconds, 3),
                     util::format_double(tau1 > 0 ? tau1 / res.seconds : 1.0,
                                         3),
                     std::to_string(res.shifts_processed),
                     std::to_string(res.shifts_eliminated),
                     std::to_string(res.crossings.size())});
      std::printf("t = %zu %s done (%.3f s)\n", t,
                  dynamic ? "dynamic" : "static", res.seconds);
    }
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf(
      "\nReading the result: the dynamic queue's advantage comes from "
      "the cover rule eliminating tentative shifts (column\n"
      "'eliminated') and from splitting only where certified disks "
      "left gaps.  On spectra with uniform disk radii the static grid\n"
      "can match or slightly beat it (no shifts to eliminate); on "
      "crossing-rich / irregular spectra — the paper's regime — the\n"
      "elimination fires and the dynamic queue processes strictly "
      "fewer shifts (compare Table I runs, where 'elim' is nonzero).\n");
  return 0;
}
