#include "phes/core/arnoldi.hpp"

#include <algorithm>
#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/eig.hpp"
#include "phes/util/check.hpp"

namespace phes::core {

namespace {

// Orthogonalize `w` against rows [0, count) of `v_rows` and against all
// locked vectors, accumulating projection coefficients for the basis
// rows into `coeffs` (length >= count).  One MGS pass.
void mgs_pass(const ComplexMatrix& v_rows, std::size_t count,
              std::span<const ComplexVector> locked, ComplexVector& w,
              Complex* coeffs) {
  const std::size_t dim = w.size();
  for (const auto& lv : locked) {
    Complex proj{};
    const Complex* q = lv.data();
    for (std::size_t i = 0; i < dim; ++i) proj += std::conj(q[i]) * w[i];
    for (std::size_t i = 0; i < dim; ++i) w[i] -= proj * q[i];
  }
  for (std::size_t j = 0; j < count; ++j) {
    const Complex* vj = v_rows.row_ptr(j);
    Complex proj{};
    for (std::size_t i = 0; i < dim; ++i) proj += std::conj(vj[i]) * w[i];
    for (std::size_t i = 0; i < dim; ++i) w[i] -= proj * vj[i];
    if (coeffs != nullptr) coeffs[j] += proj;
  }
}

// Tuned pass: blocked classical Gram-Schmidt.  ALL projections are
// taken against the un-updated w (one reduction sweep through the
// row-paired multi-accumulator dot kernels), then subtracted en bloc.
// Callers run it twice (CGS2), which restores the orthogonality
// quality of reorthogonalized MGS.
void cgs_pass(const ComplexMatrix& v_rows, std::size_t count,
              std::span<const ComplexVector> locked, ComplexVector& w,
              Complex* coeffs, std::vector<Complex>& proj,
              std::vector<const Complex*>& locked_ptrs) {
  const std::size_t dim = w.size();
  const std::size_t nl = locked.size();
  proj.resize(nl + count);
  if (nl > 0) {
    locked_ptrs.resize(nl);
    for (std::size_t i = 0; i < nl; ++i) locked_ptrs[i] = locked[i].data();
    la::kernels::dotc_ptrs(locked_ptrs.data(), nl, w.data(), dim,
                           proj.data());
  }
  if (count > 0) {
    la::kernels::dotc_rows(v_rows.row_ptr(0), v_rows.cols(), count, w.data(),
                           dim, proj.data() + nl);
  }
  if (nl > 0) {
    la::kernels::axpy_ptrs(locked_ptrs.data(), nl, proj.data(), w.data(),
                           dim);
  }
  if (count > 0) {
    la::kernels::axpy_rows(v_rows.row_ptr(0), v_rows.cols(), count,
                           proj.data() + nl, w.data(), dim);
  }
  if (coeffs != nullptr) {
    for (std::size_t j = 0; j < count; ++j) coeffs[j] += proj[nl + j];
  }
}

}  // namespace

ComplexVector random_start_vector(std::size_t dim, util::Rng& rng) {
  ComplexVector v(dim);
  for (auto& x : v) x = Complex(rng.normal(), rng.normal());
  const double norm = la::nrm2<Complex>(v);
  for (auto& x : v) x /= norm;
  return v;
}

ArnoldiResult arnoldi(const hamiltonian::ComplexLinearOperator& op,
                      std::span<const Complex> v0, std::size_t d,
                      std::span<const ComplexVector> locked,
                      la::KernelBackend backend) {
  const std::size_t dim = op.dim();
  util::check(v0.size() == dim, "arnoldi: start vector dimension mismatch");
  util::check(d >= 1 && d < dim, "arnoldi: need 1 <= d < dim");
  for (const auto& lv : locked) {
    util::check(lv.size() == dim, "arnoldi: locked vector dimension mismatch");
  }

  // The Krylov space lives in the orthogonal complement of the locked
  // subspace; never ask for more directions than exist there, or the
  // process runs past exhaustion on roundoff noise and manufactures
  // spurious "converged" Ritz pairs.
  const std::size_t available = dim - locked.size();
  util::check(available >= 2, "arnoldi: locked subspace leaves no room");
  const std::size_t d_eff = std::min(d, available - 1);

  ArnoldiResult res;
  res.v_rows = ComplexMatrix(d_eff + 1, dim);
  res.h = ComplexMatrix(d_eff + 1, d_eff);

  // Backend dispatch for the orthogonalization pass; scratch lives
  // outside so the tuned path allocates at most once per run.
  std::vector<Complex> proj_scratch;
  std::vector<const Complex*> locked_ptrs;
  const bool tuned = backend == la::KernelBackend::kTuned;
  const auto orth = [&](std::size_t count, ComplexVector& w,
                        Complex* coeffs) {
    if (tuned) {
      cgs_pass(res.v_rows, count, locked, w, coeffs, proj_scratch,
               locked_ptrs);
    } else {
      mgs_pass(res.v_rows, count, locked, w, coeffs);
    }
  };

  // Normalize (and deflate) the start vector.
  {
    ComplexVector w(v0.begin(), v0.end());
    orth(0, w, nullptr);
    orth(0, w, nullptr);
    const double norm = la::nrm2<Complex>(w);
    util::require(norm > 1e-10,
                  "arnoldi: start vector lies in the locked subspace");
    Complex* row0 = res.v_rows.row_ptr(0);
    for (std::size_t i = 0; i < dim; ++i) row0[i] = w[i] / norm;
  }

  ComplexVector w(dim);
  std::vector<Complex> coeffs(d_eff + 1);
  for (std::size_t k = 0; k < d_eff; ++k) {
    // w = Op v_k.
    op.apply(std::span<const Complex>(res.v_rows.row_ptr(k), dim), w);
    ++res.matvecs;
    const double norm_before = la::nrm2<Complex>(w);

    // Two orthogonalization passes (classic "twice is enough"):
    // MGS+reorth on the reference backend, CGS2 on the tuned one.
    std::fill(coeffs.begin(), coeffs.end(), Complex{});
    orth(k + 1, w, coeffs.data());
    orth(k + 1, w, coeffs.data());
    for (std::size_t j = 0; j <= k; ++j) res.h(j, k) = coeffs[j];

    const double norm = la::nrm2<Complex>(w);
    res.steps = k + 1;
    // Relative breakdown test: when Op v_k lies (numerically) in the
    // span already built, the subspace is invariant — stop rather than
    // continue on noise.
    if (norm <= 1e-10 * std::max(norm_before, 1e-300)) {
      res.h(k + 1, k) = Complex{};
      break;
    }
    res.h(k + 1, k) = Complex(norm, 0.0);
    Complex* next = res.v_rows.row_ptr(k + 1);
    for (std::size_t i = 0; i < dim; ++i) next[i] = w[i] / norm;
  }
  return res;
}

std::vector<RitzPair> ritz_pairs(const ArnoldiResult& ar, bool want_vectors) {
  const std::size_t d = ar.steps;
  std::vector<RitzPair> pairs;
  if (d == 0) return pairs;

  // Square projection H_d and the residual scale h(d+1, d).
  ComplexMatrix hd(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) hd(i, j) = ar.h(i, j);
  }
  const double beta = std::abs(ar.h(d, d - 1));

  const la::ComplexEigResult eig = la::hessenberg_eig(hd, true);
  pairs.reserve(d);
  const std::size_t dim = ar.v_rows.cols();
  for (std::size_t j = 0; j < d; ++j) {
    RitzPair p;
    p.value = eig.values[j];
    const auto y = eig.vectors.col(j);
    p.residual = beta * std::abs(y[d - 1]);
    if (want_vectors) {
      p.vector.assign(dim, Complex{});
      for (std::size_t row = 0; row < d; ++row) {
        const Complex yc = y[row];
        if (yc == Complex{}) continue;
        const Complex* vr = ar.v_rows.row_ptr(row);
        for (std::size_t i = 0; i < dim; ++i) {
          p.vector[i] += vr[i] * yc;
        }
      }
      const double norm = la::nrm2<Complex>(p.vector);
      if (norm > 0.0) {
        for (auto& x : p.vector) x /= norm;
      }
    }
    pairs.push_back(std::move(p));
  }
  std::sort(pairs.begin(), pairs.end(), [](const RitzPair& a,
                                           const RitzPair& b) {
    return std::abs(a.value) > std::abs(b.value);
  });
  return pairs;
}

}  // namespace phes::core
