#include "phes/core/solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "phes/util/check.hpp"
#include "phes/util/sync.hpp"
#include "phes/util/timer.hpp"

namespace phes::core {

namespace {

// Salts separating RNG streams of different subsystems.
constexpr std::uint64_t kShiftStreamSalt = 0x5348494654ULL;   // "SHIFT"
constexpr std::uint64_t kStaticStreamSalt = 0x53544154ULL;    // "STAT"
constexpr std::uint64_t kLambdaStreamSalt = 0x4c4d4158ULL;    // "LMAX"

}  // namespace

ParallelHamiltonianEigensolver::ParallelHamiltonianEigensolver(
    const macromodel::SimoRealization& realization)
    : realization_(realization) {}

SeedPlan planned_seeds(const SolverOptions& opt, double band_lo,
                       double band_hi, const WarmStartSeeds& seeds) {
  if (seeds.shifts.empty() || band_hi <= band_lo ||
      opt.scheduling != SchedulingMode::kDynamic) {
    return {};
  }
  const double min_width =
      std::max(opt.resolution * (band_hi - band_lo), 1e-300);
  return plan_seeds(band_lo, band_hi, seeds.shifts, seeds.radii,
                    8.0 * min_width);
}

SolverResult ParallelHamiltonianEigensolver::solve(
    const SolverOptions& opt) const {
  return solve(opt, SolveContext{});
}

SolverResult ParallelHamiltonianEigensolver::solve(
    const SolverOptions& options, const SolveContext& ctx) const {
  util::check(options.threads >= 1, "solve: need at least one thread");
  util::check(options.kappa >= 2, "solve: kappa must be >= 2 (Sec. IV-A)");
  util::check(options.alpha >= 1.0, "solve: alpha must be >= 1 (Eq. 23)");

  // The top-level backend is authoritative: one switch flips every
  // kernel in the solve path (documented on SolverOptions::kernel).
  SolverOptions opt = options;
  opt.shift.kernel = opt.kernel;
  opt.lambda_max.kernel = opt.kernel;

  util::WallTimer timer;

  double band_lo = opt.omega_min;
  double band_hi = opt.omega_max;
  std::size_t lambda_matvecs = 0;
  bool warm_started = false;
  if (band_hi <= band_lo) {
    if (ctx.seeds != nullptr && ctx.seeds->band_hint > band_lo) {
      // Warm start: the previous solve already paid for the band edge.
      band_hi = ctx.seeds->band_hint;
      warm_started = true;
    } else {
      util::Rng rng(opt.seed, kLambdaStreamSalt);
      const LambdaMaxEstimate est =
          estimate_lambda_max_counted(realization_, opt.lambda_max, rng);
      band_hi = est.omega_max;
      lambda_matvecs = est.matvecs;
      util::require(band_hi > band_lo,
                    "solve: could not establish a positive search band");
    }
  }

  const std::size_t n_intervals =
      std::max<std::size_t>(2, opt.kappa * opt.threads);
  const double min_width =
      std::max(opt.resolution * (band_hi - band_lo), 1e-300);

  // Warm-start seeds become the startup intervals (dynamic mode only —
  // the static-grid strawman keeps its uniform grid by definition).
  SeedPlan seeds;
  if (ctx.seeds != nullptr) {
    seeds = planned_seeds(opt, band_lo, band_hi, *ctx.seeds);
  }

  SolverResult result;
  if (opt.scheduling == SchedulingMode::kDynamic) {
    if (!seeds.shifts.empty()) {
      warm_started = true;
      IntervalScheduler sched(
          seeded_partition(band_lo, band_hi, seeds, n_intervals, min_width),
          band_lo, band_hi, min_width);
      result = run_scheduler(std::move(sched), opt, ctx, band_lo, band_hi);
      result.seeded_shifts = seeds.shifts.size();
    } else {
      IntervalScheduler sched(band_lo, band_hi, n_intervals, min_width);
      result = run_scheduler(std::move(sched), opt, ctx, band_lo, band_hi);
    }
  } else {
    result = run_static_grid(opt, ctx, band_lo, band_hi);
  }

  result.omega_min = band_lo;
  result.omega_max = band_hi;
  result.lambda_max_matvecs = lambda_matvecs;
  result.total_matvecs += lambda_matvecs;
  result.warm_started = warm_started;
  result.seconds = timer.seconds();
  return result;
}

SolverResult ParallelHamiltonianEigensolver::run_scheduler(
    IntervalScheduler sched, const SolverOptions& opt,
    const SolveContext& ctx, double band_lo, double band_hi) const {
  SolverResult result;

  util::Mutex mutex;
  util::CondVar cv;
  std::size_t failures = 0;
  const double min_width =
      std::max(opt.resolution * (band_hi - band_lo), 1e-300);

  // The worker holds the lock around the scheduler and drops it for the
  // shift iteration; the explicit lock()/unlock() calls are balanced on
  // every path so the analysis can track the capability across the loop.
  auto worker = [&](std::size_t tid) {
    mutex.lock();
    while (!sched.done()) {
      auto task = sched.acquire();
      if (!task) {
        // In-flight shifts may still split their intervals; wait for a
        // completion (or termination) signal.
        cv.wait(mutex);
        continue;
      }
      mutex.unlock();

      // Initial radius per Eq. 23: alpha * half-width, slight overlap
      // with the adjacent intervals; a warm-started seed interval
      // starts from its previously certified radius instead.
      const double rho0 = std::max(
          task->rho0 > 0.0 ? task->rho0
                           : opt.alpha * 0.5 * (task->hi - task->lo),
          2.0 * min_width);
      SingleShiftOptions shift_opt = opt.shift;
      if (ctx.confirm_seeded && task->rho0 > 0.0) {
        // This disk was certified for this exact model by the recorded
        // solve; one fresh randomized restart re-confirms it.
        shift_opt.min_restarts =
            std::min<std::size_t>(shift_opt.min_restarts, 1);
      }
      util::Rng rng(opt.seed, kShiftStreamSalt ^ task->id);
      util::WallTimer shift_timer;
      SingleShiftResult sres;
      bool ok = true;
      try {
        sres = single_shift_iteration(realization_, task->shift, rho0,
                                      shift_opt, rng, ctx.factory);
      } catch (const std::exception&) {
        ok = false;
      }
      const double seconds = shift_timer.seconds();

      mutex.lock();
      if (ok) {
        ShiftRecord rec;
        rec.center = task->shift;
        rec.radius = sres.radius;
        rec.eigenvalues_found = sres.eigenvalues.size();
        rec.restarts = sres.restarts;
        rec.matvecs = sres.matvecs;
        rec.seconds = seconds;
        rec.thread = tid;
        result.shift_log.push_back(rec);
        result.total_matvecs += sres.matvecs;
        result.factorizations += sres.factorizations;
        sched.complete(*task, std::max(sres.radius, 2.0 * min_width),
                       std::move(sres.eigenvalues));
      } else {
        // Retire a sliver so the scheduler keeps making progress; the
        // rest of the interval is re-queued by the split rule.
        ++failures;
        sched.complete(*task, 2.0 * min_width, {});
      }
      cv.notify_all();
    }
    mutex.unlock();
    cv.notify_all();
  };

  if (opt.threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(opt.threads);
    for (std::size_t t = 0; t < opt.threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (auto& th : pool) th.join();
  }

  util::require(failures == 0,
                "solve: one or more single-shift iterations failed");

  result.shifts_eliminated = sched.shifts_eliminated();
  result.disks = sched.disks();
  la::ComplexVector all = sched.all_eigenvalues();
  result.eigenvalues = std::move(all);
  finalize_result(result, opt, band_hi);
  return result;
}

SolverResult ParallelHamiltonianEigensolver::run_static_grid(
    const SolverOptions& opt, const SolveContext& ctx, double band_lo,
    double band_hi) const {
  SolverResult result;
  const std::size_t n_shifts =
      std::max<std::size_t>(2, opt.kappa * opt.threads);
  const double width =
      (band_hi - band_lo) / static_cast<double>(n_shifts);
  const double min_width =
      std::max(opt.resolution * (band_hi - band_lo), 1e-300);

  // Phase 1: process every grid shift unconditionally, in parallel.
  std::vector<ShiftRecord> records(n_shifts);
  std::vector<SingleShiftResult> outcomes(n_shifts);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  auto worker = [&](std::size_t tid) {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n_shifts) return;
      const double lo = band_lo + width * static_cast<double>(i);
      const double hi = (i + 1 == n_shifts) ? band_hi : lo + width;
      const double center = 0.5 * (lo + hi);
      const double rho0 = std::max(opt.alpha * 0.5 * (hi - lo),
                                   2.0 * min_width);
      util::Rng rng(opt.seed, kStaticStreamSalt ^ i);
      util::WallTimer t;
      try {
        outcomes[i] = single_shift_iteration(realization_, center, rho0,
                                             opt.shift, rng, ctx.factory);
      } catch (const std::exception&) {
        failures.fetch_add(1);
        outcomes[i].radius = 2.0 * min_width;
      }
      records[i] = {center,
                    outcomes[i].radius,
                    outcomes[i].eigenvalues.size(),
                    outcomes[i].restarts,
                    outcomes[i].matvecs,
                    t.seconds(),
                    tid};
    }
  };
  if (opt.threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < opt.threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (auto& th : pool) th.join();
  }
  util::require(failures.load() == 0,
                "solve: one or more single-shift iterations failed");

  for (std::size_t i = 0; i < n_shifts; ++i) {
    result.shift_log.push_back(records[i]);
    result.total_matvecs += records[i].matvecs;
    result.factorizations += outcomes[i].factorizations;
    CompletedDisk disk;
    disk.center = records[i].center;
    disk.radius = records[i].radius;
    disk.eigenvalues = outcomes[i].eigenvalues;
    result.disks.push_back(std::move(disk));
  }

  // Phase 2: find coverage gaps and finish them with a dynamic pass.
  std::vector<std::pair<double, double>> covered;
  covered.reserve(n_shifts);
  for (const auto& d : result.disks) {
    covered.emplace_back(d.center - d.radius, d.center + d.radius);
  }
  std::sort(covered.begin(), covered.end());
  std::vector<TentativeInterval> gaps;
  double cursor = band_lo;
  for (const auto& [lo, hi] : covered) {
    if (lo > cursor + min_width) {
      TentativeInterval iv;
      iv.lo = cursor;
      iv.hi = lo;
      iv.shift = 0.5 * (cursor + lo);
      gaps.push_back(iv);
    }
    cursor = std::max(cursor, hi);
  }
  if (band_hi > cursor + min_width) {
    TentativeInterval iv;
    iv.lo = cursor;
    iv.hi = band_hi;
    iv.shift = 0.5 * (cursor + band_hi);
    gaps.push_back(iv);
  }

  if (!gaps.empty()) {
    IntervalScheduler mop(std::move(gaps), band_lo, band_hi, min_width);
    SolverResult phase2 =
        run_scheduler(std::move(mop), opt, ctx, band_lo, band_hi);
    for (const auto& rec : phase2.shift_log) {
      result.shift_log.push_back(rec);
      result.total_matvecs += rec.matvecs;
    }
    result.factorizations += phase2.factorizations;
    for (const auto& d : phase2.disks) result.disks.push_back(d);
  }

  la::ComplexVector all;
  for (const auto& d : result.disks) {
    all.insert(all.end(), d.eigenvalues.begin(), d.eigenvalues.end());
  }
  result.eigenvalues = std::move(all);
  result.shifts_eliminated = 0;  // the static grid never skips work
  finalize_result(result, opt, band_hi);
  return result;
}

void ParallelHamiltonianEigensolver::finalize_result(
    SolverResult& result, const SolverOptions& opt, double band_hi) const {
  const double scale =
      std::max(realization_.max_pole_magnitude(), band_hi);

  la::ComplexVector all = std::move(result.eigenvalues);
  std::sort(all.begin(), all.end(), [](la::Complex a, la::Complex b) {
    if (a.imag() != b.imag()) return a.imag() < b.imag();
    return a.real() < b.real();
  });
  la::ComplexVector dedup;
  for (const auto& lambda : all) {
    if (dedup.empty() ||
        std::abs(lambda - dedup.back()) > opt.shift.cluster_tol * scale) {
      dedup.push_back(lambda);
    }
  }

  la::RealVector crossings;
  for (const auto& lambda : dedup) {
    const double mag = std::max(std::abs(lambda), scale * 1e-12);
    if (std::abs(lambda.real()) <= opt.imag_tol * mag) {
      crossings.push_back(std::abs(lambda.imag()));
    }
  }
  std::sort(crossings.begin(), crossings.end());
  la::RealVector unique;
  for (double w : crossings) {
    if (unique.empty() ||
        w - unique.back() > opt.shift.cluster_tol * scale) {
      unique.push_back(w);
    }
  }

  result.crossings = std::move(unique);
  result.passive = result.crossings.empty();
  result.eigenvalues = std::move(dedup);
  result.shifts_processed = result.shift_log.size();
}

}  // namespace phes::core
