#include "phes/core/lambda_max.hpp"

#include <algorithm>
#include <cmath>

#include "phes/core/arnoldi.hpp"
#include "phes/hamiltonian/implicit_op.hpp"

namespace phes::core {

LambdaMaxEstimate estimate_lambda_max_counted(
    const macromodel::SimoRealization& realization,
    const LambdaMaxOptions& opt, util::Rng& rng) {
  const hamiltonian::ImplicitHamiltonianOp op(realization, opt.kernel);
  const std::size_t dim = op.dim();
  const std::size_t d = std::min(opt.krylov_dim, dim - 1);

  LambdaMaxEstimate est;
  double best = 0.0;
  for (std::size_t r = 0; r < std::max<std::size_t>(opt.restarts, 1); ++r) {
    const auto v0 = random_start_vector(dim, rng);
    const auto ar = arnoldi(op, v0, d, {}, opt.kernel);
    est.matvecs += ar.matvecs;
    for (const auto& p : ritz_pairs(ar, false)) {
      best = std::max(best, std::abs(p.value));
    }
  }
  // Safeguard floor: unit-threshold crossings can only occur where the
  // dynamic part of H(jw) is active, i.e. within the pole band, so
  // never search less than the largest pole magnitude.
  best = std::max(best, realization.max_pole_magnitude());
  est.omega_max = best * opt.safety_factor;
  return est;
}

double estimate_lambda_max(const macromodel::SimoRealization& realization,
                           const LambdaMaxOptions& opt, util::Rng& rng) {
  return estimate_lambda_max_counted(realization, opt, rng).omega_max;
}

}  // namespace phes::core
