#include "phes/core/lambda_max.hpp"

#include <algorithm>
#include <cmath>

#include "phes/core/arnoldi.hpp"
#include "phes/hamiltonian/implicit_op.hpp"

namespace phes::core {

double estimate_lambda_max(const macromodel::SimoRealization& realization,
                           const LambdaMaxOptions& opt, util::Rng& rng) {
  const hamiltonian::ImplicitHamiltonianOp op(realization);
  const std::size_t dim = op.dim();
  const std::size_t d = std::min(opt.krylov_dim, dim - 1);

  double best = 0.0;
  for (std::size_t r = 0; r < std::max<std::size_t>(opt.restarts, 1); ++r) {
    const auto v0 = random_start_vector(dim, rng);
    const auto ar = arnoldi(op, v0, d, {});
    for (const auto& p : ritz_pairs(ar, false)) {
      best = std::max(best, std::abs(p.value));
    }
  }
  // Safeguard floor: unit-threshold crossings can only occur where the
  // dynamic part of H(jw) is active, i.e. within the pole band, so
  // never search less than the largest pole magnitude.
  best = std::max(best, realization.max_pole_magnitude());
  return best * opt.safety_factor;
}

}  // namespace phes::core
