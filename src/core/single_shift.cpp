#include "phes/core/single_shift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "phes/core/arnoldi.hpp"
#include "phes/hamiltonian/shift_invert.hpp"
#include "phes/la/blas.hpp"
#include "phes/util/check.hpp"

namespace phes::core {

namespace {

using hamiltonian::SmwShiftInvertOp;
using la::Complex;
using la::ComplexVector;

struct LockedEig {
  Complex lambda{};
  double distance = 0.0;  ///< |lambda - theta|
};

}  // namespace

SingleShiftResult single_shift_iteration(
    const macromodel::SimoRealization& realization, double omega_center,
    double rho0, const SingleShiftOptions& opt, util::Rng& rng) {
  return single_shift_iteration(realization, omega_center, rho0, opt, rng,
                                hamiltonian::ShiftInvertFactory{});
}

SingleShiftResult single_shift_iteration(
    const macromodel::SimoRealization& realization, double omega_center,
    double rho0, const SingleShiftOptions& opt, util::Rng& rng,
    const hamiltonian::ShiftInvertFactory& factory) {
  util::check(rho0 > 0.0, "single_shift_iteration: rho0 must be positive");
  util::check(opt.eigs_per_shift >= 1 && opt.krylov_dim > opt.eigs_per_shift,
              "single_shift_iteration: need krylov_dim > eigs_per_shift >= 1");

  const double scale =
      std::max({std::abs(omega_center), realization.max_pole_magnitude(),
                1e-30});

  SingleShiftResult result;

  // Acquire the shift-and-invert operator; if theta is numerically an
  // eigenvalue the 2p x 2p kernel is singular — nudge and retry.
  Complex theta(0.0, omega_center);
  std::shared_ptr<const SmwShiftInvertOp> op;
  for (int attempt = 0; attempt < 4; ++attempt) {
    try {
      if (factory) {
        op = factory(theta);
      } else {
        op = std::make_shared<const SmwShiftInvertOp>(realization, theta,
                                                      opt.kernel);
        ++result.factorizations;
      }
      break;
    } catch (const std::runtime_error&) {
      theta += Complex(0.0, scale * 1e-9 * static_cast<double>(attempt + 1));
    }
  }
  util::require(op != nullptr,
                "single_shift_iteration: shift-invert kernel singular even "
                "after nudging the shift");

  const std::size_t dim = op->dim();
  const std::size_t d = std::min(opt.krylov_dim, dim - 1);

  std::vector<LockedEig> locked;
  // Deflation basis: an ORTHONORMALIZED basis of the span of converged
  // Ritz vectors.  Eigenvectors of the (non-normal) Hamiltonian are not
  // mutually orthogonal, and sequential projection against a
  // non-orthogonal set is not a projector — deflating with raw Ritz
  // vectors produces spurious Ritz values.  Orthonormalizing preserves
  // the span (an approximately invariant subspace), which is all the
  // deflation needs.
  std::vector<ComplexVector> locked_vectors;
  const auto lock_vector = [&](const ComplexVector& v) {
    ComplexVector w = v;
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& q : locked_vectors) {
        Complex proj{};
        for (std::size_t i = 0; i < w.size(); ++i) {
          proj += std::conj(q[i]) * w[i];
        }
        for (std::size_t i = 0; i < w.size(); ++i) w[i] -= proj * q[i];
      }
    }
    const double norm = la::nrm2<Complex>(w);
    if (norm < 1e-8) return;  // direction already represented
    for (auto& x : w) x /= norm;
    locked_vectors.push_back(std::move(w));
  };
  double rho = rho0;
  // Distance estimate of the nearest eigenvalue the process has seen but
  // not yet converged; caps the certified radius.
  double unconverged_limit = std::numeric_limits<double>::infinity();

  const auto already_locked = [&](Complex lambda) {
    for (const auto& le : locked) {
      if (std::abs(le.lambda - lambda) <= opt.cluster_tol * scale) return true;
    }
    return false;
  };

  for (std::size_t restart = 0; restart < opt.max_restarts; ++restart) {
    if (locked_vectors.size() + 2 >= dim) {
      // The locked subspace nearly exhausts the whole space: every
      // reachable eigenvalue has converged.
      break;
    }
    const ComplexVector v0 = random_start_vector(dim, rng);
    ArnoldiResult ar;
    try {
      ar = arnoldi(*op, v0, d, locked_vectors, opt.kernel);
    } catch (const std::runtime_error&) {
      // Start vector collapsed into the locked subspace: the operator's
      // reachable space is exhausted — everything findable is found.
      ++result.restarts;
      break;
    }
    result.matvecs += ar.matvecs;
    ++result.restarts;

    const auto pairs = ritz_pairs(ar, true);
    std::size_t new_in_disk = 0;
    unconverged_limit = std::numeric_limits<double>::infinity();
    for (const auto& p : pairs) {
      const double mu_abs = std::abs(p.value);
      if (mu_abs < 1e3 * la::kEps / rho0) continue;  // numerically zero
      const double dist = 1.0 / mu_abs;
      const bool converged = p.residual <= opt.ritz_tol * mu_abs;
      if (!converged) {
        // A potential eigenvalue this close is not yet certain: the
        // clean radius must stay below its distance estimate.
        unconverged_limit = std::min(unconverged_limit, dist);
        continue;
      }
      const Complex lambda = theta + 1.0 / p.value;
      if (already_locked(lambda)) continue;
      locked.push_back({lambda, std::abs(lambda - theta)});
      lock_vector(p.vector);
      if (locked.back().distance <= rho * 1.0000001) ++new_in_disk;
    }

    std::sort(locked.begin(), locked.end(),
              [](const LockedEig& a, const LockedEig& b) {
                return a.distance < b.distance;
              });

    // Radius rules (paper Sec. III).
    rho = rho0;
    if (!locked.empty()) {
      if (locked.size() > opt.eigs_per_shift) {
        // Shrink: enclose exactly n_theta eigenvalues.
        const double inner = locked[opt.eigs_per_shift - 1].distance;
        const double outer = locked[opt.eigs_per_shift].distance;
        rho = std::min(rho, 0.5 * (inner + outer));
      } else if (locked.back().distance > rho) {
        // Expand to the farthest converging eigenvalue.
        rho = locked.back().distance * 1.0000001;
      }
    }
    // Certificate cap: nothing unseen may hide inside the disk.
    rho = std::min(rho, opt.radius_safety * unconverged_limit);

    if (restart + 1 >= opt.min_restarts && new_in_disk == 0) break;
  }

  result.radius = rho;
  for (const auto& le : locked) {
    if (le.distance <= rho * 1.0000001) {
      result.eigenvalues.push_back(le.lambda);
    }
  }
  return result;
}

}  // namespace phes::core
