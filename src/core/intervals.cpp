#include "phes/core/intervals.hpp"

#include <algorithm>
#include <cmath>

#include "phes/util/check.hpp"

namespace phes::core {

SeedPlan plan_seeds(double omega_min, double omega_max,
                    const la::RealVector& shifts,
                    const la::RealVector& radii, double min_gap) {
  util::check(radii.empty() || radii.size() == shifts.size(),
              "plan_seeds: radii must be empty or parallel to shifts");
  std::vector<std::size_t> order(shifts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return shifts[a] < shifts[b];
  });
  SeedPlan plan;
  for (const std::size_t i : order) {
    const double w = shifts[i];
    if (w <= omega_min || w >= omega_max) continue;
    if (!plan.shifts.empty() && w - plan.shifts.back() < min_gap) continue;
    plan.shifts.push_back(w);
    if (!radii.empty()) plan.radii.push_back(radii[i]);
  }
  return plan;
}

std::vector<TentativeInterval> seeded_partition(double omega_min,
                                                double omega_max,
                                                const SeedPlan& plan,
                                                std::size_t n_intervals,
                                                double min_width) {
  const la::RealVector& seeds = plan.shifts;
  util::check(omega_max > omega_min, "seeded_partition: empty band");
  util::check(min_width > 0.0, "seeded_partition: resolution must be > 0");
  util::check(!seeds.empty(), "seeded_partition: need at least one seed");
  util::check(plan.radii.empty() || plan.radii.size() == seeds.size(),
              "seeded_partition: radii must be empty or parallel");

  // One interval per seed, boundaries at midpoints between neighbours.
  std::vector<TentativeInterval> seeded(seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    auto& iv = seeded[i];
    iv.lo = i == 0 ? omega_min : 0.5 * (seeds[i - 1] + seeds[i]);
    iv.hi = i + 1 == seeds.size() ? omega_max
                                  : 0.5 * (seeds[i] + seeds[i + 1]);
    iv.shift = seeds[i];  // exact: prefetched cache keys must match
    if (!plan.radii.empty()) iv.rho0 = plan.radii[i];
  }

  // Split the widest intervals until the startup queue can feed every
  // thread.  A split keeps the seed's exact shift in its half; the new
  // half gets a centered shift.
  std::vector<TentativeInterval> fill;
  while (seeded.size() + fill.size() < n_intervals) {
    std::vector<TentativeInterval>* widest_vec = &seeded;
    std::size_t widest = 0;
    double width = 0.0;
    for (auto* vec : {&seeded, &fill}) {
      for (std::size_t i = 0; i < vec->size(); ++i) {
        const double w = (*vec)[i].hi - (*vec)[i].lo;
        if (w > width) {
          width = w;
          widest = i;
          widest_vec = vec;
        }
      }
    }
    if (width <= 8.0 * min_width) break;  // nothing left worth splitting
    TentativeInterval& iv = (*widest_vec)[widest];
    const double mid = 0.5 * (iv.lo + iv.hi);
    TentativeInterval other;
    if (iv.shift <= mid) {
      other.lo = mid;
      other.hi = iv.hi;
      iv.hi = mid;
    } else {
      other.lo = iv.lo;
      other.hi = mid;
      iv.lo = mid;
    }
    other.shift = 0.5 * (other.lo + other.hi);
    fill.push_back(other);
  }

  std::vector<TentativeInterval> all = std::move(seeded);
  all.insert(all.end(), fill.begin(), fill.end());
  return all;
}

IntervalScheduler::IntervalScheduler(double omega_min, double omega_max,
                                     std::size_t n_intervals,
                                     double min_interval_width)
    : omega_min_(omega_min),
      omega_max_(omega_max),
      min_width_(min_interval_width) {
  util::check(omega_max > omega_min, "IntervalScheduler: empty band");
  util::check(n_intervals >= 2, "IntervalScheduler: need >= 2 intervals");
  util::check(min_interval_width > 0.0,
              "IntervalScheduler: resolution must be positive");

  // Equal subdivision; shifts centered except at the band extrema
  // (paper Sec. IV-A).
  const double width = (omega_max - omega_min) /
                       static_cast<double>(n_intervals);
  std::vector<TentativeInterval> initial(n_intervals);
  for (std::size_t nu = 0; nu < n_intervals; ++nu) {
    auto& iv = initial[nu];
    iv.lo = omega_min + width * static_cast<double>(nu);
    iv.hi = (nu + 1 == n_intervals) ? omega_max : iv.lo + width;
    if (nu == 0) {
      iv.shift = iv.lo;
    } else if (nu + 1 == n_intervals) {
      iv.shift = iv.hi;
    } else {
      iv.shift = 0.5 * (iv.lo + iv.hi);
    }
    iv.id = next_id_++;
  }
  // Queue order per Eqs. 13-15: extrema first, then left to right.
  tentative_.push_back(initial.front());
  tentative_.push_back(initial.back());
  for (std::size_t nu = 1; nu + 1 < n_intervals; ++nu) {
    tentative_.push_back(initial[nu]);
  }
}

IntervalScheduler::IntervalScheduler(std::vector<TentativeInterval> intervals,
                                     double omega_min, double omega_max,
                                     double min_interval_width)
    : omega_min_(omega_min),
      omega_max_(omega_max),
      min_width_(min_interval_width) {
  util::check(min_interval_width > 0.0,
              "IntervalScheduler: resolution must be positive");
  for (auto& iv : intervals) {
    util::check(iv.lo <= iv.shift && iv.shift <= iv.hi,
                "IntervalScheduler: shift outside its interval");
    iv.id = next_id_++;
    tentative_.push_back(iv);
  }
}

std::optional<TentativeInterval> IntervalScheduler::acquire() {
  if (tentative_.empty()) return std::nullopt;
  // Intervals are pairwise disjoint and each holds exactly its own
  // shift, so the head of the queue always satisfies the freeness
  // condition (Eq. 20).
  TentativeInterval iv = tentative_.front();
  tentative_.pop_front();
  ++in_flight_;
  return iv;
}

void IntervalScheduler::complete(const TentativeInterval& interval,
                                 double rho,
                                 la::ComplexVector eigenvalues) {
  util::require(in_flight_ > 0, "IntervalScheduler::complete: not in flight");
  --in_flight_;
  util::check(rho > 0.0, "IntervalScheduler::complete: radius must be > 0");

  CompletedDisk disk;
  disk.center = interval.shift;
  disk.radius = rho;
  disk.eigenvalues = std::move(eigenvalues);
  completed_.push_back(std::move(disk));

  const double lo_cov = interval.shift - rho;  // covered range
  const double hi_cov = interval.shift + rho;

  // Split rule (Eqs. 25-28), generalized to off-center shifts: the
  // uncovered outer portions become new tentative intervals.  Portions
  // thinner than the resolution are dropped — they are covered up to
  // the solver's frequency tolerance.
  const auto spawn = [&](double lo, double hi) {
    if (hi - lo <= min_width_) return;
    TentativeInterval iv;
    iv.lo = lo;
    iv.hi = hi;
    iv.shift = 0.5 * (lo + hi);
    iv.id = next_id_++;
    tentative_.push_back(iv);
  };
  if (lo_cov > interval.lo) spawn(interval.lo, lo_cov);
  if (hi_cov < interval.hi) spawn(hi_cov, interval.hi);

  // Cover rule (Eq. 24): tentative shifts swallowed by the disk are
  // useless; delete their intervals' covered parts.  A partially
  // covered tentative interval is re-spawned as its uncovered remains
  // so band coverage is preserved.
  std::deque<TentativeInterval> kept;
  for (const auto& iv : tentative_) {
    const bool shift_swallowed = iv.shift >= lo_cov && iv.shift <= hi_cov;
    const bool overlaps = iv.hi > lo_cov && iv.lo < hi_cov;
    if (!shift_swallowed && !overlaps) {
      kept.push_back(iv);
      continue;
    }
    if (shift_swallowed) ++eliminated_;
    // Keep the uncovered remains (possibly both sides).
    if (iv.lo < lo_cov) {
      TentativeInterval left;
      left.lo = iv.lo;
      left.hi = std::min(iv.hi, lo_cov);
      if (left.hi - left.lo > min_width_) {
        const bool keeps_shift = !shift_swallowed && iv.shift < lo_cov;
        left.shift =
            keeps_shift ? iv.shift : 0.5 * (left.lo + left.hi);
        left.shift = std::clamp(left.shift, left.lo, left.hi);
        left.rho0 = keeps_shift ? iv.rho0 : 0.0;
        left.id = next_id_++;
        kept.push_back(left);
      }
    }
    if (iv.hi > hi_cov) {
      TentativeInterval right;
      right.lo = std::max(iv.lo, hi_cov);
      right.hi = iv.hi;
      if (right.hi - right.lo > min_width_) {
        const bool keeps_shift = !shift_swallowed && iv.shift > hi_cov;
        right.shift =
            keeps_shift ? iv.shift : 0.5 * (right.lo + right.hi);
        right.shift = std::clamp(right.shift, right.lo, right.hi);
        right.rho0 = keeps_shift ? iv.rho0 : 0.0;
        right.id = next_id_++;
        kept.push_back(right);
      }
    }
  }
  tentative_ = std::move(kept);
}

la::ComplexVector IntervalScheduler::all_eigenvalues() const {
  la::ComplexVector all;
  for (const auto& d : completed_) {
    all.insert(all.end(), d.eigenvalues.begin(), d.eigenvalues.end());
  }
  return all;
}

}  // namespace phes::core
