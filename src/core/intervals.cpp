#include "phes/core/intervals.hpp"

#include <algorithm>
#include <cmath>

#include "phes/util/check.hpp"

namespace phes::core {

IntervalScheduler::IntervalScheduler(double omega_min, double omega_max,
                                     std::size_t n_intervals,
                                     double min_interval_width)
    : omega_min_(omega_min),
      omega_max_(omega_max),
      min_width_(min_interval_width) {
  util::check(omega_max > omega_min, "IntervalScheduler: empty band");
  util::check(n_intervals >= 2, "IntervalScheduler: need >= 2 intervals");
  util::check(min_interval_width > 0.0,
              "IntervalScheduler: resolution must be positive");

  // Equal subdivision; shifts centered except at the band extrema
  // (paper Sec. IV-A).
  const double width = (omega_max - omega_min) /
                       static_cast<double>(n_intervals);
  std::vector<TentativeInterval> initial(n_intervals);
  for (std::size_t nu = 0; nu < n_intervals; ++nu) {
    auto& iv = initial[nu];
    iv.lo = omega_min + width * static_cast<double>(nu);
    iv.hi = (nu + 1 == n_intervals) ? omega_max : iv.lo + width;
    if (nu == 0) {
      iv.shift = iv.lo;
    } else if (nu + 1 == n_intervals) {
      iv.shift = iv.hi;
    } else {
      iv.shift = 0.5 * (iv.lo + iv.hi);
    }
    iv.id = next_id_++;
  }
  // Queue order per Eqs. 13-15: extrema first, then left to right.
  tentative_.push_back(initial.front());
  tentative_.push_back(initial.back());
  for (std::size_t nu = 1; nu + 1 < n_intervals; ++nu) {
    tentative_.push_back(initial[nu]);
  }
}

IntervalScheduler::IntervalScheduler(std::vector<TentativeInterval> intervals,
                                     double omega_min, double omega_max,
                                     double min_interval_width)
    : omega_min_(omega_min),
      omega_max_(omega_max),
      min_width_(min_interval_width) {
  util::check(min_interval_width > 0.0,
              "IntervalScheduler: resolution must be positive");
  for (auto& iv : intervals) {
    util::check(iv.lo <= iv.shift && iv.shift <= iv.hi,
                "IntervalScheduler: shift outside its interval");
    iv.id = next_id_++;
    tentative_.push_back(iv);
  }
}

std::optional<TentativeInterval> IntervalScheduler::acquire() {
  if (tentative_.empty()) return std::nullopt;
  // Intervals are pairwise disjoint and each holds exactly its own
  // shift, so the head of the queue always satisfies the freeness
  // condition (Eq. 20).
  TentativeInterval iv = tentative_.front();
  tentative_.pop_front();
  ++in_flight_;
  return iv;
}

void IntervalScheduler::complete(const TentativeInterval& interval,
                                 double rho,
                                 la::ComplexVector eigenvalues) {
  util::require(in_flight_ > 0, "IntervalScheduler::complete: not in flight");
  --in_flight_;
  util::check(rho > 0.0, "IntervalScheduler::complete: radius must be > 0");

  CompletedDisk disk;
  disk.center = interval.shift;
  disk.radius = rho;
  disk.eigenvalues = std::move(eigenvalues);
  completed_.push_back(std::move(disk));

  const double lo_cov = interval.shift - rho;  // covered range
  const double hi_cov = interval.shift + rho;

  // Split rule (Eqs. 25-28), generalized to off-center shifts: the
  // uncovered outer portions become new tentative intervals.  Portions
  // thinner than the resolution are dropped — they are covered up to
  // the solver's frequency tolerance.
  const auto spawn = [&](double lo, double hi) {
    if (hi - lo <= min_width_) return;
    TentativeInterval iv;
    iv.lo = lo;
    iv.hi = hi;
    iv.shift = 0.5 * (lo + hi);
    iv.id = next_id_++;
    tentative_.push_back(iv);
  };
  if (lo_cov > interval.lo) spawn(interval.lo, lo_cov);
  if (hi_cov < interval.hi) spawn(hi_cov, interval.hi);

  // Cover rule (Eq. 24): tentative shifts swallowed by the disk are
  // useless; delete their intervals' covered parts.  A partially
  // covered tentative interval is re-spawned as its uncovered remains
  // so band coverage is preserved.
  std::deque<TentativeInterval> kept;
  for (const auto& iv : tentative_) {
    const bool shift_swallowed = iv.shift >= lo_cov && iv.shift <= hi_cov;
    const bool overlaps = iv.hi > lo_cov && iv.lo < hi_cov;
    if (!shift_swallowed && !overlaps) {
      kept.push_back(iv);
      continue;
    }
    if (shift_swallowed) ++eliminated_;
    // Keep the uncovered remains (possibly both sides).
    if (iv.lo < lo_cov) {
      TentativeInterval left;
      left.lo = iv.lo;
      left.hi = std::min(iv.hi, lo_cov);
      if (left.hi - left.lo > min_width_) {
        left.shift = (!shift_swallowed && iv.shift < lo_cov)
                         ? iv.shift
                         : 0.5 * (left.lo + left.hi);
        left.shift = std::clamp(left.shift, left.lo, left.hi);
        left.id = next_id_++;
        kept.push_back(left);
      }
    }
    if (iv.hi > hi_cov) {
      TentativeInterval right;
      right.lo = std::max(iv.lo, hi_cov);
      right.hi = iv.hi;
      if (right.hi - right.lo > min_width_) {
        right.shift = (!shift_swallowed && iv.shift > hi_cov)
                          ? iv.shift
                          : 0.5 * (right.lo + right.hi);
        right.shift = std::clamp(right.shift, right.lo, right.hi);
        right.id = next_id_++;
        kept.push_back(right);
      }
    }
  }
  tentative_ = std::move(kept);
}

la::ComplexVector IntervalScheduler::all_eigenvalues() const {
  la::ComplexVector all;
  for (const auto& d : completed_) {
    all.insert(all.end(), d.eigenvalues.begin(), d.eigenvalues.end());
  }
  return all;
}

}  // namespace phes::core
