#include "phes/engine/session_pool.hpp"

#include <cstring>
#include <utility>

#include "phes/util/check.hpp"

namespace phes::engine {

namespace {

// FNV-1a, 64-bit.
struct Fnv1a {
  std::uint64_t state = 14695981039346656037ull;
  void mix_bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state ^= p[i];
      state *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t v) noexcept { mix_bytes(&v, sizeof v); }
  void mix(double v) noexcept {
    // Hash the representation: bit-equal models hash equal, and the
    // pool confirms any match with an exact comparison anyway.
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }
};

}  // namespace

std::uint64_t model_hash(const macromodel::SimoRealization& r) {
  Fnv1a h;
  h.mix(static_cast<std::uint64_t>(r.order()));
  h.mix(static_cast<std::uint64_t>(r.ports()));
  for (const auto& blk : r.blocks()) {
    h.mix(static_cast<std::uint64_t>(blk.state));
    h.mix(static_cast<std::uint64_t>(blk.column));
    h.mix(static_cast<std::uint64_t>(blk.is_pair ? 1 : 0));
    h.mix(blk.alpha);
    h.mix(blk.beta);
  }
  h.mix_bytes(r.c().data(), r.c().size() * sizeof(double));
  h.mix_bytes(r.d().data(), r.d().size() * sizeof(double));
  return h.state;
}

bool same_realization(const macromodel::SimoRealization& a,
                      const macromodel::SimoRealization& b) {
  if (a.order() != b.order() || a.ports() != b.ports() ||
      a.blocks().size() != b.blocks().size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    const auto& x = a.blocks()[i];
    const auto& y = b.blocks()[i];
    if (x.state != y.state || x.column != y.column ||
        x.is_pair != y.is_pair || x.alpha != y.alpha || x.beta != y.beta) {
      return false;
    }
  }
  const auto bits_equal = [](const la::RealMatrix& m,
                             const la::RealMatrix& n) {
    return m.rows() == n.rows() && m.cols() == n.cols() &&
           std::memcmp(m.data(), n.data(), m.size() * sizeof(double)) == 0;
  };
  return bits_equal(a.c(), b.c()) && bits_equal(a.d(), b.d());
}

// ---- SessionLease -----------------------------------------------------

SessionLease::SessionLease(SessionLease&& other) noexcept
    : pool_(other.pool_), entry_(other.entry_), reused_(other.reused_) {
  other.pool_ = nullptr;
  other.entry_ = nullptr;
}

SessionLease& SessionLease::operator=(SessionLease&& other) noexcept {
  if (this != &other) {
    release();
    pool_ = other.pool_;
    entry_ = other.entry_;
    reused_ = other.reused_;
    other.pool_ = nullptr;
    other.entry_ = nullptr;
  }
  return *this;
}

SessionLease::~SessionLease() { release(); }

SolverSession& SessionLease::session() const {
  util::check(entry_ != nullptr, "SessionLease: no session held");
  return *static_cast<SessionPool::Entry*>(entry_)->session;
}

void SessionLease::release() {
  if (entry_ != nullptr && pool_ != nullptr) {
    pool_->give_back(static_cast<SessionPool::Entry*>(entry_));
  }
  pool_ = nullptr;
  entry_ = nullptr;
}

// ---- SessionPool ------------------------------------------------------

SessionPool::SessionPool(SessionPoolOptions options) : options_(options) {}

SessionPool::~SessionPool() = default;

SessionLease SessionPool::checkout(macromodel::SimoRealization realization) {
  const std::uint64_t hash = model_hash(realization);

  std::unique_ptr<Entry> entry;
  bool reused = false;
  {
    util::MutexLock lock(mutex_);
    ++checkouts_;
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      if ((*it)->hash != hash) continue;
      if (!same_realization((*it)->session->realization(), realization)) {
        ++collisions_;
        continue;
      }
      entry = std::move(*it);
      idle_.erase(it);
      idle_bytes_ -= entry->bytes;
      ++pool_hits_;
      reused = true;
      break;
    }
    if (entry == nullptr) ++creations_;
    ++leased_;
  }

  if (entry == nullptr) {
    // Construct outside the lock: a fresh session copies the model's
    // matrices and allocates its cache.
    entry = std::make_unique<Entry>();
    entry->hash = hash;
    entry->baseline_c = realization.c();
    entry->session = std::make_unique<SolverSession>(std::move(realization),
                                                     options_.session);
    entry->clean_revision = entry->session->revision();
  }

  SessionLease lease;
  lease.pool_ = this;
  lease.entry_ = entry.release();
  lease.reused_ = reused;
  return lease;
}

void SessionPool::give_back(Entry* raw) {
  std::unique_ptr<Entry> entry(raw);

  // Revision guard: a job that perturbed the residues (enforcement)
  // must not leak its perturbed model to the next job over this hash.
  // The restore runs outside the pool lock (it walks a p x n matrix and
  // purges the cache).
  bool restored = false;
  if (options_.reset_residues &&
      entry->session->revision() != entry->clean_revision) {
    entry->session->update_residues(entry->baseline_c);
    entry->clean_revision = entry->session->revision();
    restored = true;
  }
  if (options_.reset_warm_start) entry->session->clear_warm_start();
  entry->bytes = entry->session->approx_memory_bytes();

  util::MutexLock lock(mutex_);
  ++returns_;
  if (restored) ++restores_;
  --leased_;
  idle_bytes_ += entry->bytes;
  idle_.push_front(std::move(entry));
  evict_over_budget_locked();
}

void SessionPool::evict_over_budget_locked() {
  while (idle_.size() > options_.max_idle_sessions ||
         (idle_bytes_ > options_.memory_budget_bytes && !idle_.empty())) {
    idle_bytes_ -= idle_.back()->bytes;
    idle_.pop_back();
    ++evictions_;
  }
}

void SessionPool::clear_idle() {
  util::MutexLock lock(mutex_);
  evictions_ += idle_.size();
  idle_.clear();
  idle_bytes_ = 0;
}

SessionPoolStats SessionPool::stats() const {
  util::MutexLock lock(mutex_);
  SessionPoolStats s;
  s.checkouts = checkouts_;
  s.pool_hits = pool_hits_;
  s.creations = creations_;
  s.returns = returns_;
  s.restores = restores_;
  s.evictions = evictions_;
  s.collisions = collisions_;
  s.idle_sessions = idle_.size();
  s.leased_sessions = leased_;
  s.idle_bytes = idle_bytes_;
  return s;
}

}  // namespace phes::engine
