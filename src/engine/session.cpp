#include "phes/engine/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "phes/la/blas.hpp"
#include "phes/util/check.hpp"

namespace phes::engine {

SolverSession::SolverSession(macromodel::SimoRealization realization,
                             SessionOptions options)
    : realization_(std::move(realization)),
      options_(options),
      cache_(options.cache_capacity) {}

SolverSession::SolverSession(const macromodel::PoleResidueModel& model,
                             SessionOptions options)
    : SolverSession(macromodel::SimoRealization(model), options) {}

void SolverSession::update_residues(const la::RealMatrix& c) {
  util::check(c.rows() == realization_.c().rows() &&
                  c.cols() == realization_.c().cols(),
              "SolverSession::update_residues: C shape mismatch");
  // Track how far C has drifted since the band edge was last actually
  // estimated; solve() re-estimates once the drift is no longer small.
  const double c_norm = la::frobenius_norm(realization_.c());
  if (c_norm > 0.0) {
    const la::RealMatrix diff = c - realization_.c();
    residue_drift_ += la::frobenius_norm(diff) / c_norm;
  }
  realization_.c() = c;
  ++revision_;
  // Cached operators read C at apply time: everything older is invalid.
  cache_.invalidate_before(revision_);
}

core::SolverResult SolverSession::solve(const core::SolverOptions& opt) {
  // Snapshot counters so the result carries per-solve deltas.
  const CacheStats before = cache_.stats();
  const std::size_t builds_before = factorizations_.load();

  const std::uint64_t revision = revision_;
  const la::KernelBackend backend = opt.kernel;
  core::SolveContext ctx;
  ctx.factory = [this, revision, backend](la::Complex theta) {
    return cache_.acquire(
        revision, theta,
        [&] {
          factorizations_.fetch_add(1);
          return std::make_shared<const hamiltonian::SmwShiftInvertOp>(
              realization_, theta, backend);
        },
        backend);
  };

  core::WarmStartSeeds seeds;
  const bool warm = options_.warm_start && warm_.valid;
  if (warm) {
    if (warm_.revision == revision_ && options_.confirmation_resolve) {
      // Unchanged model: disks replayed with their certified radius
      // (rho0 > 0) already carry the explicit-restart insurance.
      ctx.confirm_seeded = true;
    }
    // The band only transfers when this solve searches a default band
    // (no explicit upper limit), the record's edge itself came from a
    // default-band search over the same lower edge, AND the residues
    // have not drifted enough to move the spectral radius materially
    // since the edge was last estimated (the |lambda|max estimate
    // carries a 1.05 safety factor).
    if (opt.omega_max <= opt.omega_min && warm_.default_band &&
        opt.omega_min == warm_.omega_min && residue_drift_ < 0.05) {
      seeds.band_hint = warm_.omega_max;
    }
    // Same revision: re-solve the identical model — the previous disk
    // plan (centers AND certified radii) is proven and the
    // factorizations are still resident.  New revision: the crossings
    // are where the perturbed eigenvalues still cluster, but the disks
    // must be re-derived.
    if (warm_.revision == revision_) {
      seeds.shifts = warm_.shift_centers;
      seeds.radii = warm_.shift_radii;
    } else {
      // Crossings arrive in clusters (the two edges of a narrow
      // violation band hug its peak); one seed disk covers its whole
      // cluster, so thin them to cluster representatives — redundant
      // seeds cost a full Arnoldi run each before the cover rule can
      // drop them.
      const double band_guess =
          std::max(seeds.band_hint, warm_.omega_max) - opt.omega_min;
      seeds.shifts = core::plan_seeds(opt.omega_min,
                                      opt.omega_min + band_guess * 1.01,
                                      warm_.crossings, {},
                                      0.02 * band_guess)
                         .shifts;
    }
    ctx.seeds = &seeds;

    const double band_hi =
        opt.omega_max > opt.omega_min ? opt.omega_max : seeds.band_hint;
    if (options_.prefetch_seeds && band_hi > opt.omega_min) {
      // Pre-build the factorizations the scheduler will ask for first.
      // planned_seeds is the solver's own filter, so the prefetched
      // cache keys match the scheduler's requests bitwise.
      const core::SeedPlan kept =
          core::planned_seeds(opt, opt.omega_min, band_hi, seeds);
      // Prefetch is best-effort: a build failure of any kind (singular
      // shift, allocation, precondition) is left for the solve proper
      // to surface — never let it escape a worker thread.
      const auto prefetch_one = [&](double w) noexcept {
        try {
          (void)ctx.factory(la::Complex(0.0, w));
        } catch (...) {
        }
      };
      // Factorizations are the dominant per-shift setup cost; build
      // them with the solve's thread budget, not serially.
      const std::size_t workers =
          std::min<std::size_t>(opt.threads, kept.shifts.size());
      if (workers <= 1) {
        for (double w : kept.shifts) prefetch_one(w);
      } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t t = 0; t < workers; ++t) {
          pool.emplace_back([&] {
            for (;;) {
              const std::size_t i = next.fetch_add(1);
              if (i >= kept.shifts.size()) return;
              prefetch_one(kept.shifts[i]);
            }
          });
        }
        for (auto& th : pool) th.join();
      }
    }
  }

  core::ParallelHamiltonianEigensolver solver(realization_);
  core::SolverResult result = solver.solve(opt, ctx);

  const CacheStats after = cache_.stats();
  result.cache_hits = after.hits - before.hits;
  result.cache_misses = after.misses - before.misses;
  result.factorizations += factorizations_.load() - builds_before;

  // A fresh |lambda|max estimate ran: the band edge is current again.
  if (result.lambda_max_matvecs > 0) residue_drift_ = 0.0;

  ++solves_;
  if (result.warm_started) ++warm_solves_;

  // Record this outcome for the next solve (survives residue updates).
  warm_.valid = true;
  warm_.revision = revision_;
  warm_.omega_min = result.omega_min;
  warm_.omega_max = result.omega_max;
  warm_.default_band = opt.omega_max <= opt.omega_min;
  warm_.crossings = result.crossings;
  warm_.shift_centers.clear();
  warm_.shift_radii.clear();
  warm_.shift_centers.reserve(result.disks.size());
  warm_.shift_radii.reserve(result.disks.size());
  std::vector<std::size_t> order(result.disks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.disks[a].center < result.disks[b].center;
  });
  for (const std::size_t i : order) {
    warm_.shift_centers.push_back(result.disks[i].center);
    warm_.shift_radii.push_back(result.disks[i].radius);
  }

  return result;
}

std::size_t SolverSession::approx_memory_bytes() const {
  const std::size_t n = realization_.order();
  const std::size_t p = realization_.ports();
  // Realization: C (p x n), D (p x p), pole blocks.
  std::size_t bytes = (p * n + p * p) * sizeof(double) +
                      realization_.blocks().size() * sizeof(macromodel::SimoBlock);
  // Each cached operator holds the LU of the 2p x 2p SMW kernel (plus
  // pivots, ignored here).
  const std::size_t per_op = 4 * p * p * sizeof(la::Complex);
  bytes += cache_.stats().entries * per_op;
  // Warm-start record vectors.
  bytes += (warm_.crossings.size() + warm_.shift_centers.size() +
            warm_.shift_radii.size()) *
           sizeof(double);
  return bytes;
}

SessionStats SolverSession::stats() const {
  SessionStats s;
  s.cache = cache_.stats();
  s.revision = revision_;
  s.solves = solves_;
  s.warm_solves = warm_solves_;
  s.factorizations = factorizations_.load();
  return s;
}

}  // namespace phes::engine
