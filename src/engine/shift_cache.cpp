#include "phes/engine/shift_cache.hpp"

#include "phes/util/check.hpp"

namespace phes::engine {

ShiftFactorizationCache::ShiftFactorizationCache(std::size_t capacity)
    : capacity_(capacity) {
  util::check(capacity >= 1,
              "ShiftFactorizationCache: capacity must be >= 1");
}

ShiftFactorizationCache::OpPtr ShiftFactorizationCache::acquire(
    std::uint64_t revision, la::Complex theta, const Builder& build,
    la::KernelBackend backend) {
  const Key key{revision, theta.real(), theta.imag(),
                static_cast<int>(backend)};
  {
    util::MutexLock lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.op;
    }
    ++misses_;
  }

  // Build unlocked: factorizations of different shifts proceed in
  // parallel.  May throw (singular shift) — nothing is cached then.
  OpPtr op = build();
  util::check(op != nullptr,
              "ShiftFactorizationCache: builder returned null");

  util::MutexLock lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Another thread built the same key while we were; keep the first.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.op;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{op, lru_.begin()});
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  return op;
}

void ShiftFactorizationCache::invalidate_before(std::uint64_t revision) {
  util::MutexLock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.revision < revision) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShiftFactorizationCache::clear() {
  util::MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
}

bool ShiftFactorizationCache::contains(std::uint64_t revision,
                                       la::Complex theta,
                                       la::KernelBackend backend) const {
  util::MutexLock lock(mutex_);
  return entries_.count(Key{revision, theta.real(), theta.imag(),
                            static_cast<int>(backend)}) > 0;
}

CacheStats ShiftFactorizationCache::stats() const {
  util::MutexLock lock(mutex_);
  return CacheStats{hits_, misses_, evictions_, entries_.size()};
}

}  // namespace phes::engine
