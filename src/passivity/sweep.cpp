#include "phes/passivity/sweep.hpp"

#include <cmath>

#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"

namespace phes::passivity {

SweepResult sampling_passivity_check(
    const macromodel::SimoRealization& realization,
    const SweepOptions& opt) {
  util::check(opt.omega_max > opt.omega_min,
              "sampling_passivity_check: empty band");
  util::check(opt.initial_grid >= 2,
              "sampling_passivity_check: need >= 2 grid points");

  auto sigma_at = [&](double w) {
    return la::complex_spectral_norm(realization.eval(w));
  };

  SweepResult res;
  const std::size_t n = opt.initial_grid;
  la::RealVector omega(n), sigma(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(n - 1);
    omega[i] = opt.omega_min + t * (opt.omega_max - opt.omega_min);
    sigma[i] = sigma_at(omega[i]);
    if (sigma[i] > res.worst_sigma) {
      res.worst_sigma = sigma[i];
      res.worst_omega = omega[i];
    }
  }

  for (std::size_t i = 0; i + 1 < n; ++i) {
    const bool lo_above = sigma[i] > opt.threshold;
    const bool hi_above = sigma[i + 1] > opt.threshold;
    if (lo_above == hi_above) continue;
    // Bisect the sign change of sigma_max - threshold.
    double a = omega[i], b = omega[i + 1];
    double fa = sigma[i];
    for (std::size_t level = 0; level < opt.refine_levels * 6; ++level) {
      const double mid = 0.5 * (a + b);
      const double fm = sigma_at(mid);
      res.worst_sigma = std::max(res.worst_sigma, fm);
      if ((fa > opt.threshold) == (fm > opt.threshold)) {
        a = mid;
        fa = fm;
      } else {
        b = mid;
      }
    }
    res.estimated_crossings.push_back(0.5 * (a + b));
  }

  res.passive = res.worst_sigma <= opt.threshold;
  return res;
}

}  // namespace phes::passivity
