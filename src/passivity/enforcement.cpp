#include "phes/passivity/enforcement.hpp"

#include <algorithm>
#include <cmath>

#include "phes/engine/session.hpp"
#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"

namespace phes::passivity {

namespace {

using la::Complex;
using la::ComplexVector;
using la::RealMatrix;

// One linearized constraint <DeltaC, G> = target at a frequency.
struct Constraint {
  RealMatrix g;         // p x n gradient matrix
  double target = 0.0;  // desired delta sigma (negative)
};

// Builds the constraints at frequency w for all singular values above
// the ceiling.
void add_constraints_at(const macromodel::SimoRealization& r, double w,
                        double ceiling, std::vector<Constraint>* out) {
  const std::size_t p = r.ports();
  const std::size_t n = r.order();
  const la::ComplexSvdResult svd = la::complex_svd(r.eval(w));
  for (std::size_t i = 0; i < p; ++i) {
    if (svd.sigma[i] <= ceiling) break;  // sigma is descending
    const ComplexVector u = svd.u.col(i);
    const ComplexVector v = svd.v.col(i);
    // z = Phi(jw) v, so that delta sigma = Re(u^H DeltaC z).
    ComplexVector z(n);
    r.resolvent_b(Complex(0.0, w), v, z);
    Constraint c;
    c.g = RealMatrix(p, n);
    for (std::size_t row = 0; row < p; ++row) {
      const Complex ui = std::conj(u[row]);
      for (std::size_t col = 0; col < n; ++col) {
        c.g(row, col) = (ui * z[col]).real();
      }
    }
    c.target = ceiling - svd.sigma[i];  // negative: push below ceiling
    out->push_back(std::move(c));
  }
}

}  // namespace

EnforcementResult enforce_passivity(engine::SolverSession& session,
                                    const EnforcementOptions& opt) {
  util::check(opt.margin > 0.0 && opt.margin < 0.5,
              "enforce_passivity: margin must lie in (0, 0.5)");
  {
    const auto sigma_d =
        la::real_singular_values(session.realization().d());
    util::check(sigma_d.empty() || sigma_d.front() < 1.0 - opt.margin,
                "enforce_passivity: requires sigma_max(D) < 1 - margin");
  }

  EnforcementResult result;
  // Scratch copy for candidate-step evaluation; its C is kept in sync
  // with the session (which owns the authoritative model).
  macromodel::SimoRealization realization = session.realization();
  const RealMatrix c_initial = realization.c();
  const double c_initial_norm = la::frobenius_norm(c_initial);
  const double ceiling = 1.0 - opt.margin;

  const auto record_cost = [&result](EnforcementIterate& it,
                                     const core::SolverResult& solver) {
    it.solver_matvecs = solver.total_matvecs;
    it.cache_hits = solver.cache_hits;
    it.cache_misses = solver.cache_misses;
    it.warm_started = solver.warm_started;
    ++result.characterizations;
    result.total_matvecs += solver.total_matvecs;
    result.cache_hits += solver.cache_hits;
    result.cache_misses += solver.cache_misses;
  };

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    const PassivityReport report =
        characterize_passivity(session, opt.solver);
    EnforcementIterate it;
    it.violation_bands = report.bands.size();
    for (const auto& band : report.bands) {
      it.worst_sigma = std::max(it.worst_sigma, band.sigma_peak);
    }
    record_cost(it, report.solver);

    if (report.passive) {
      result.success = true;
      result.iterations = iter;
      result.history.push_back(it);
      break;
    }

    // Collect constraints: the peak of each band plus a few interior
    // samples (wide bands need more than one touch point).
    std::vector<Constraint> constraints;
    for (const auto& band : report.bands) {
      add_constraints_at(realization, band.omega_peak, ceiling,
                         &constraints);
      for (std::size_t s = 0; s < opt.extra_samples_per_band; ++s) {
        const double t = (static_cast<double>(s) + 1.0) /
                         (static_cast<double>(opt.extra_samples_per_band) +
                          1.0);
        const double w = band.omega_lo + t * (band.omega_hi - band.omega_lo);
        add_constraints_at(realization, w, ceiling, &constraints);
      }
    }
    if (constraints.empty()) {
      // Crossings exist but every sampled sigma is already below the
      // ceiling: grazing violations; declare as converged as we can get.
      result.iterations = iter;
      result.history.push_back(it);
      break;
    }

    // Near-parallel constraints (adjacent samples of one narrow band)
    // make the dual Gram system numerically singular and the dual
    // variables explode.  Deduplicate by Gram-Schmidt on vec(G):
    // constraints whose gradient is nearly in the span of the kept ones
    // are dropped.
    std::vector<Constraint> kept;
    for (auto& c : constraints) {
      RealMatrix g = c.g;
      const double norm0 = la::frobenius_norm(g);
      if (norm0 == 0.0) continue;
      for (const auto& k : kept) {
        double proj = 0.0;
        const double k_norm_sq = la::frobenius_norm(k.g);
        for (std::size_t row = 0; row < g.rows(); ++row) {
          const double* gr = g.row_ptr(row);
          const double* kr = k.g.row_ptr(row);
          for (std::size_t col = 0; col < g.cols(); ++col) {
            proj += gr[col] * kr[col];
          }
        }
        proj /= (k_norm_sq * k_norm_sq);
        for (std::size_t row = 0; row < g.rows(); ++row) {
          double* gr = g.row_ptr(row);
          const double* kr = k.g.row_ptr(row);
          for (std::size_t col = 0; col < g.cols(); ++col) {
            gr[col] -= proj * kr[col];
          }
        }
      }
      if (la::frobenius_norm(g) > 1e-4 * norm0) kept.push_back(c);
    }
    if (kept.empty()) kept.push_back(constraints.front());

    // Minimum-norm DeltaC: DeltaC = sum_j mu_j G_j with
    // (Gram + ridge I) mu = target.
    const std::size_t m = kept.size();
    RealMatrix gram(m, m);
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t b = a; b < m; ++b) {
        double dot = 0.0;
        for (std::size_t row = 0; row < kept[a].g.rows(); ++row) {
          const double* ga = kept[a].g.row_ptr(row);
          const double* gb = kept[b].g.row_ptr(row);
          for (std::size_t col = 0; col < kept[a].g.cols(); ++col) {
            dot += ga[col] * gb[col];
          }
        }
        gram(a, b) = dot;
        gram(b, a) = dot;
      }
    }
    double diag_max = 0.0;
    for (std::size_t a = 0; a < m; ++a) diag_max = std::max(diag_max, gram(a, a));
    const double ridge = std::max(opt.ridge, 1e-8) * std::max(1.0, diag_max);
    for (std::size_t a = 0; a < m; ++a) gram(a, a) += ridge;
    la::RealVector rhs(m);
    for (std::size_t a = 0; a < m; ++a) rhs[a] = kept[a].target;
    const la::RealVector mu = la::lu_solve(gram, rhs);

    // Assemble the step.
    RealMatrix& c = realization.c();
    RealMatrix delta(c.rows(), c.cols());
    for (std::size_t a = 0; a < m; ++a) {
      for (std::size_t row = 0; row < delta.rows(); ++row) {
        const double* g = kept[a].g.row_ptr(row);
        double* drow = delta.row_ptr(row);
        for (std::size_t col = 0; col < delta.cols(); ++col) {
          drow[col] += mu[a] * g[col];
        }
      }
    }
    // Trust region: the linearization is local; never move C by more
    // than a fraction of its own size in one step.
    const double c_norm = std::max(la::frobenius_norm(c), 1e-300);
    double step_norm = la::frobenius_norm(delta);
    const double max_step = 0.1 * c_norm;
    if (step_norm > max_step) {
      delta *= max_step / step_norm;
      step_norm = max_step;
    }

    // Backtracking on the sampled violation level: a full step should
    // drive the peaks to the ceiling; accept any step that makes real
    // progress on the worst peak, and only shrink when the (local)
    // linearization genuinely overshot.
    auto worst_at_constraints = [&]() {
      double worst = 0.0;
      for (const auto& band : report.bands) {
        worst = std::max(worst, la::complex_spectral_norm(
                                    realization.eval(band.omega_peak)));
      }
      return worst;
    };
    const double before = worst_at_constraints();
    const RealMatrix c_backup = c;
    double scale_step = 1.0;
    for (int halving = 0; halving < 4; ++halving) {
      c = c_backup;
      RealMatrix scaled = delta;
      scaled *= scale_step;
      c += scaled;
      const double after = worst_at_constraints();
      // Progress test: recover at least a quarter of the predicted
      // reduction (before -> ceiling).
      if (after <= before - 0.25 * scale_step * (before - ceiling)) break;
      scale_step *= 0.5;
    }
    // If even the smallest scale failed the test, the last (smallest)
    // step stays applied: slow progress beats stalling.

    // Commit the accepted step: bump the session's model revision
    // (invalidating factorizations, keeping the warm-start seeds).
    session.update_residues(realization.c());

    it.delta_c_norm = step_norm * scale_step;
    result.history.push_back(it);
    result.iterations = iter + 1;
  }

  if (!result.success && result.iterations < opt.max_iterations) {
    // Loop ended via the grazing-violation break; verify once more.
    // Same revision as the round that broke out, so the factorization
    // cache serves this confirmation almost for free.
    const PassivityReport final_report =
        characterize_passivity(session, opt.solver);
    EnforcementIterate confirm;
    record_cost(confirm, final_report.solver);
    result.success = final_report.passive;
  }

  const RealMatrix diff = session.realization().c() - c_initial;
  result.relative_model_change =
      c_initial_norm > 0.0 ? la::frobenius_norm(diff) / c_initial_norm : 0.0;
  return result;
}

EnforcementResult enforce_passivity(macromodel::SimoRealization& realization,
                                    const EnforcementOptions& opt) {
  engine::SolverSession session{macromodel::SimoRealization(realization)};
  EnforcementResult result = enforce_passivity(session, opt);
  realization.c() = session.realization().c();
  return result;
}

}  // namespace phes::passivity
