#include "phes/passivity/characterization.hpp"

#include <algorithm>
#include <cmath>

#include "phes/engine/session.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"

namespace phes::passivity {

namespace {

double sigma_max_at(const macromodel::SimoRealization& r, double omega) {
  return la::complex_spectral_norm(r.eval(omega));
}

// Golden-section search for the maximum of sigma_max on [lo, hi].
double golden_peak(const macromodel::SimoRealization& r, double lo,
                   double hi, double* peak_sigma) {
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = sigma_max_at(r, x1);
  double f2 = sigma_max_at(r, x2);
  for (int it = 0; it < 40 && (b - a) > 1e-10 * std::max(1.0, hi); ++it) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = sigma_max_at(r, x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = sigma_max_at(r, x1);
    }
  }
  const double x = 0.5 * (a + b);
  *peak_sigma = sigma_max_at(r, x);
  return x;
}

}  // namespace

std::vector<ViolationBand> classify_bands(
    const macromodel::SimoRealization& realization,
    const la::RealVector& crossings, std::size_t samples_per_band) {
  std::vector<ViolationBand> bands;
  if (crossings.empty()) return bands;
  util::check(samples_per_band >= 2, "classify_bands: need >= 2 samples");

  // Segment boundaries: [0, w1], [w1, w2], ..., [wk, 1.5 wk].
  // Beyond the last crossing sigma_max tends to sigma_max(D) < 1, so the
  // unbounded tail is compliant by construction; the extra segment
  // guards against a peak just above the last crossing.
  std::vector<double> edges;
  edges.push_back(0.0);
  edges.insert(edges.end(), crossings.begin(), crossings.end());
  edges.push_back(crossings.back() * 1.5 + 1e-12);

  for (std::size_t s = 0; s + 1 < edges.size(); ++s) {
    const double lo = edges[s], hi = edges[s + 1];
    if (hi - lo <= 1e-14 * std::max(1.0, hi)) continue;
    // Classify by the worst of a coarse scan (a single midpoint sample
    // can miss a multi-hump band interior).
    double coarse_peak = 0.0, coarse_at = 0.5 * (lo + hi);
    for (std::size_t i = 0; i < samples_per_band; ++i) {
      const double t = (static_cast<double>(i) + 0.5) /
                       static_cast<double>(samples_per_band);
      const double w = lo + t * (hi - lo);
      const double sigma = sigma_max_at(realization, w);
      if (sigma > coarse_peak) {
        coarse_peak = sigma;
        coarse_at = w;
      }
    }
    if (coarse_peak <= 1.0) continue;  // compliant segment

    ViolationBand band;
    band.omega_lo = lo;
    band.omega_hi = hi;
    // Refine the peak within one coarse cell around the best sample.
    const double cell = (hi - lo) / static_cast<double>(samples_per_band);
    const double ref_lo = std::max(lo, coarse_at - cell);
    const double ref_hi = std::min(hi, coarse_at + cell);
    band.omega_peak = golden_peak(realization, ref_lo, ref_hi,
                                  &band.sigma_peak);
    if (band.sigma_peak < coarse_peak) {
      band.omega_peak = coarse_at;
      band.sigma_peak = coarse_peak;
    }
    bands.push_back(band);
  }
  return bands;
}

PassivityReport characterize_passivity(
    engine::SolverSession& session,
    const core::SolverOptions& solver_options) {
  PassivityReport report;
  report.solver = session.solve(solver_options);
  report.crossings = report.solver.crossings;
  report.bands = classify_bands(session.realization(), report.crossings);
  report.passive = report.bands.empty();
  return report;
}

PassivityReport characterize_passivity(
    const macromodel::SimoRealization& realization,
    const core::SolverOptions& solver_options) {
  engine::SolverSession session{macromodel::SimoRealization(realization)};
  return characterize_passivity(session, solver_options);
}

}  // namespace phes::passivity
