#include "phes/io/touchstone.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <numbers>
#include <ostream>
#include <sstream>
#include <vector>

#include "phes/util/check.hpp"

namespace phes::io {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kDegToRad = std::numbers::pi / 180.0;

/// Far above any physical interconnect, small enough that p*p complex
/// entries can never wrap a size_t allocation.
constexpr std::size_t kMaxPorts = 65536;

/// dB floor written for exactly-zero entries (20*log10(0) = -inf would
/// make the writer emit a file its own reader rejects).
constexpr double kZeroDb = -400.0;

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("touchstone: line " + std::to_string(line) + ": " +
                           message);
}

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// Strict double parse: the whole token must be a finite number.
double parse_number(const std::string& token, std::size_t line) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    fail(line, "expected a number, got '" + token + "'");
  }
  if (!std::isfinite(value)) {
    fail(line, "non-finite value '" + token + "'");
  }
  return value;
}

/// Line-aware tokenizer: strips '!' comments, remembers the line each
/// token came from, and exposes the raw line for option-line handling.
class Tokenizer {
 public:
  explicit Tokenizer(std::istream& is) : is_(is) {}

  /// Next data token, or false at end of input.  Option lines (leading
  /// '#') are dispatched to `on_option` as whole lines.
  template <typename OptionHandler>
  bool next(std::string& token, OptionHandler&& on_option) {
    while (true) {
      if (pos_ < tokens_.size()) {
        token = tokens_[pos_++];
        return true;
      }
      std::string raw;
      if (!std::getline(is_, raw)) return false;
      ++line_;
      if (const auto bang = raw.find('!'); bang != std::string::npos) {
        raw.erase(bang);
      }
      std::istringstream ls(raw);
      std::string first;
      if (!(ls >> first)) continue;  // blank / comment-only line
      if (first[0] == '#') {
        on_option(raw, line_);
        continue;
      }
      tokens_.clear();
      pos_ = 0;
      tokens_.push_back(first);
      std::string t;
      while (ls >> t) tokens_.push_back(t);
    }
  }

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::istream& is_;
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
  std::size_t line_ = 0;
};

double unit_scale(const std::string& unit_upper, std::size_t line) {
  if (unit_upper == "HZ") return 1.0;
  if (unit_upper == "KHZ") return 1e3;
  if (unit_upper == "MHZ") return 1e6;
  if (unit_upper == "GHZ") return 1e9;
  fail(line, "unknown frequency unit '" + unit_upper + "'");
}

void parse_option_line(const std::string& raw, std::size_t line,
                       TouchstoneMetadata& meta, bool& seen) {
  if (seen) fail(line, "duplicate option line");
  seen = true;
  std::istringstream ls(raw);
  std::string tok;
  ls >> tok;  // consume '#' (possibly glued to the first field)
  if (tok.size() > 1) tok.erase(0, 1); else if (!(ls >> tok)) return;
  do {
    const std::string t = upper(tok);
    if (t == "HZ" || t == "KHZ" || t == "MHZ" || t == "GHZ") {
      meta.frequency_scale = unit_scale(t, line);
      meta.unit = t == "HZ" ? "Hz" : t == "KHZ" ? "kHz"
                                   : t == "MHZ" ? "MHz" : "GHz";
    } else if (t == "S") {
      // scattering parameters: the only supported type
    } else if (t == "Y" || t == "Z" || t == "G" || t == "H") {
      fail(line, "unsupported parameter type '" + t +
                     "' (only scattering 'S' data is accepted)");
    } else if (t == "RI") {
      meta.format = TouchstoneFormat::kRI;
    } else if (t == "MA") {
      meta.format = TouchstoneFormat::kMA;
    } else if (t == "DB") {
      meta.format = TouchstoneFormat::kDB;
    } else if (t == "R") {
      if (!(ls >> tok)) fail(line, "option 'R' missing its resistance value");
      meta.reference_resistance = parse_number(tok, line);
    } else if (t.size() > 2 && t.ends_with("HZ")) {
      fail(line, "unknown frequency unit '" + t + "'");
    } else {
      fail(line, "unknown option token '" + tok + "'");
    }
  } while (ls >> tok);
}

la::Complex decode_pair(TouchstoneFormat format, double a, double b) {
  switch (format) {
    case TouchstoneFormat::kRI:
      return {a, b};
    case TouchstoneFormat::kMA:
      return std::polar(a, b * kDegToRad);
    case TouchstoneFormat::kDB:
      return std::polar(std::pow(10.0, a / 20.0), b * kDegToRad);
  }
  return {};
}

void encode_pair(TouchstoneFormat format, la::Complex value, std::ostream& os) {
  switch (format) {
    case TouchstoneFormat::kRI:
      os << value.real() << ' ' << value.imag();
      return;
    case TouchstoneFormat::kMA:
      os << std::abs(value) << ' ' << std::arg(value) / kDegToRad;
      return;
    case TouchstoneFormat::kDB: {
      const double mag = std::abs(value);
      os << (mag > 0.0 ? 20.0 * std::log10(mag) : kZeroDb) << ' '
         << std::arg(value) / kDegToRad;
      return;
    }
  }
}

/// Matrix slot of the v-th data pair of a record (the .s2p quirk:
/// 2-port files are column-major, everything else row-major).
std::pair<std::size_t, std::size_t> pair_slot(std::size_t v,
                                              std::size_t ports) {
  return ports == 2 ? std::make_pair(v % 2, v / 2)
                    : std::make_pair(v / ports, v % ports);
}

}  // namespace

const char* format_name(TouchstoneFormat format) noexcept {
  switch (format) {
    case TouchstoneFormat::kRI: return "RI";
    case TouchstoneFormat::kMA: return "MA";
    case TouchstoneFormat::kDB: return "DB";
  }
  return "?";
}

bool is_touchstone_path(const std::string& path) noexcept {
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = upper(path.substr(dot + 1));
  if (ext.size() < 3 || ext.front() != 'S' || ext.back() != 'P') {
    return false;
  }
  for (std::size_t i = 1; i + 1 < ext.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(ext[i])) == 0) return false;
  }
  return true;
}

std::size_t ports_from_extension(const std::string& path) {
  util::require(is_touchstone_path(path),
                "touchstone: '" + path + "' is not a .sNp file");
  const auto dot = path.rfind('.');
  const std::string digits = path.substr(dot + 2, path.size() - dot - 3);
  errno = 0;
  const unsigned long ports = std::strtoul(digits.c_str(), nullptr, 10);
  util::require(errno != ERANGE && ports <= kMaxPorts,
                "touchstone: '" + path + "' declares more than " +
                    std::to_string(kMaxPorts) + " ports");
  util::require(ports >= 1,
                "touchstone: '" + path + "' declares zero ports");
  return ports;
}

TouchstoneData load_touchstone(std::istream& is, std::size_t ports) {
  util::check(ports >= 1 && ports <= kMaxPorts,
              "load_touchstone: ports must be in [1, " +
                  std::to_string(kMaxPorts) + "]");
  TouchstoneData out;
  bool option_seen = false;
  bool data_seen = false;
  auto on_option = [&](const std::string& raw, std::size_t line) {
    // The spec puts the option line before the data; accepting one
    // mid-stream would silently re-interpret records already parsed.
    if (data_seen) {
      fail(line, "option line after data records");
    }
    parse_option_line(raw, line, out.metadata, option_seen);
  };

  Tokenizer tok(is);
  const std::size_t values_per_record = 2 * ports * ports;
  std::string token;
  double previous_freq = -1.0;
  while (tok.next(token, on_option)) {
    const std::size_t record_line = tok.line();
    data_seen = true;
    const double freq = parse_number(token, record_line);
    if (freq < 0.0) fail(record_line, "negative frequency");
    if (ports == 2 && !out.samples.h.empty() && freq < previous_freq) {
      break;  // 2-port noise-parameter section: frequency restarts lower
    }
    if (freq <= previous_freq) {
      fail(record_line, "frequencies must be strictly increasing");
    }
    previous_freq = freq;

    la::ComplexMatrix h(ports, ports);
    for (std::size_t v = 0; v < values_per_record; v += 2) {
      std::string a_tok, b_tok;
      if (!tok.next(a_tok, on_option) || !tok.next(b_tok, on_option)) {
        fail(tok.line(), "truncated record: expected " +
                             std::to_string(values_per_record) +
                             " values after the frequency");
      }
      const double a = parse_number(a_tok, tok.line());
      const double b = parse_number(b_tok, tok.line());
      const auto [row, col] = pair_slot(v / 2, ports);
      h(row, col) = decode_pair(out.metadata.format, a, b);
    }
    out.samples.omega.push_back(kTwoPi * freq *
                                out.metadata.frequency_scale);
    out.samples.h.push_back(std::move(h));
  }
  if (out.samples.h.empty()) {
    fail(tok.line(), "no data records found");
  }
  out.samples.check_consistency();
  return out;
}

TouchstoneData load_touchstone_file(const std::string& path) {
  const std::size_t ports = ports_from_extension(path);
  std::ifstream is(path);
  util::require(is.is_open(), "touchstone: cannot open " + path);
  try {
    return load_touchstone(is, ports);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void save_touchstone(const macromodel::FrequencySamples& samples,
                     std::ostream& os, const TouchstoneMetadata& metadata) {
  samples.check_consistency();
  util::check(samples.count() > 0, "save_touchstone: no samples");
  const double scale = unit_scale(upper(metadata.unit), 0);
  const std::size_t p = samples.ports();

  os << "! " << p << "-port scattering data (phes export)\n";
  os << "# " << metadata.unit << " S " << format_name(metadata.format)
     << " R " << metadata.reference_resistance << '\n';
  os << std::setprecision(17);
  for (std::size_t k = 0; k < samples.count(); ++k) {
    os << samples.omega[k] / (kTwoPi * scale);
    for (std::size_t v = 0; v < p * p; ++v) {
      const auto [row, col] = pair_slot(v, p);
      os << ' ';
      encode_pair(metadata.format, samples.h[k](row, col), os);
    }
    os << '\n';
  }
  util::require(os.good(), "save_touchstone: stream write failed");
}

void save_touchstone_file(const macromodel::FrequencySamples& samples,
                          const std::string& path,
                          const TouchstoneMetadata& metadata) {
  const std::size_t ports = ports_from_extension(path);
  util::check(ports == samples.ports(),
              "save_touchstone_file: extension of '" + path +
                  "' contradicts the sample port count");
  std::ofstream os(path);
  util::require(os.is_open(), "touchstone: cannot open " + path);
  save_touchstone(samples, os, metadata);
}

}  // namespace phes::io
