#include "phes/macromodel/simo_realization.hpp"

#include <algorithm>
#include <cmath>

namespace phes::macromodel {

SimoRealization::SimoRealization(const PoleResidueModel& model)
    : d_(model.d()) {
  const std::size_t p = model.ports();
  order_ = model.order();
  c_ = RealMatrix(p, order_);

  std::size_t state = 0;
  for (std::size_t k = 0; k < p; ++k) {
    const auto& col = model.columns()[k];
    for (const auto& t : col.real_terms) {
      SimoBlock blk;
      blk.state = state;
      blk.column = k;
      blk.is_pair = false;
      blk.alpha = t.pole;
      blocks_.push_back(blk);
      for (std::size_t i = 0; i < p; ++i) c_(i, state) = t.residue[i];
      state += 1;
    }
    for (const auto& t : col.complex_terms) {
      SimoBlock blk;
      blk.state = state;
      blk.column = k;
      blk.is_pair = true;
      blk.alpha = t.pole.real();
      blk.beta = t.pole.imag();
      blocks_.push_back(blk);
      // Real realization of r/(s-l) + r*/(s-l*) with b = (1, 0)^T:
      // C columns are [2 Re r, 2 Im r].
      for (std::size_t i = 0; i < p; ++i) {
        c_(i, state) = 2.0 * t.residue[i].real();
        c_(i, state + 1) = 2.0 * t.residue[i].imag();
      }
      state += 2;
    }
  }
}

double SimoRealization::max_pole_magnitude() const noexcept {
  double m = 0.0;
  for (const auto& blk : blocks_) {
    m = std::max(m, std::hypot(blk.alpha, blk.beta));
  }
  return m;
}

void SimoRealization::solve_a_minus(Complex s, std::span<const Complex> x,
                                    std::span<Complex> y) const {
  util::check(x.size() == order_ && y.size() == order_,
              "SimoRealization::solve_a_minus: size mismatch");
  for (const auto& blk : blocks_) {
    if (blk.is_pair) {
      // Solve [[alpha-s, beta], [-beta, alpha-s]] y = x in closed form.
      const Complex g = Complex(blk.alpha, 0.0) - s;
      const Complex det = g * g + blk.beta * blk.beta;
      const Complex x1 = x[blk.state], x2 = x[blk.state + 1];
      y[blk.state] = (g * x1 - blk.beta * x2) / det;
      y[blk.state + 1] = (blk.beta * x1 + g * x2) / det;
    } else {
      y[blk.state] = x[blk.state] / (Complex(blk.alpha, 0.0) - s);
    }
  }
}

void SimoRealization::solve_at_minus(Complex s, std::span<const Complex> x,
                                     std::span<Complex> y) const {
  util::check(x.size() == order_ && y.size() == order_,
              "SimoRealization::solve_at_minus: size mismatch");
  for (const auto& blk : blocks_) {
    if (blk.is_pair) {
      // A^T block is [[alpha, -beta], [beta, alpha]].
      const Complex g = Complex(blk.alpha, 0.0) - s;
      const Complex det = g * g + blk.beta * blk.beta;
      const Complex x1 = x[blk.state], x2 = x[blk.state + 1];
      y[blk.state] = (g * x1 + blk.beta * x2) / det;
      y[blk.state + 1] = (-blk.beta * x1 + g * x2) / det;
    } else {
      y[blk.state] = x[blk.state] / (Complex(blk.alpha, 0.0) - s);
    }
  }
}

void SimoRealization::apply_c(std::span<const Complex> x,
                              std::span<Complex> y) const {
  util::check(x.size() == order_ && y.size() == ports(),
              "SimoRealization::apply_c: size mismatch");
  const std::size_t p = ports();
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = c_.row_ptr(i);
    Complex acc{};
    for (std::size_t j = 0; j < order_; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

void SimoRealization::apply_ct(std::span<const Complex> y,
                               std::span<Complex> x) const {
  util::check(y.size() == ports() && x.size() == order_,
              "SimoRealization::apply_ct: size mismatch");
  const std::size_t p = ports();
  for (auto& v : x) v = Complex{};
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = c_.row_ptr(i);
    const Complex yi = y[i];
    for (std::size_t j = 0; j < order_; ++j) x[j] += row[j] * yi;
  }
}

ComplexMatrix SimoRealization::eval(Complex s) const {
  const std::size_t p = ports();
  ComplexMatrix h(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t k = 0; k < p; ++k) h(i, k) = Complex(d_(i, k), 0.0);
  }
  // Per block: z = (sI - A_blk)^{-1} b_blk, then H(:, col) += C_blk z.
  for (const auto& blk : blocks_) {
    if (blk.is_pair) {
      const Complex g = s - blk.alpha;
      const Complex det = g * g + blk.beta * blk.beta;
      const Complex z1 = g / det;
      const Complex z2 = -blk.beta / det;
      for (std::size_t i = 0; i < p; ++i) {
        h(i, blk.column) += c_(i, blk.state) * z1 + c_(i, blk.state + 1) * z2;
      }
    } else {
      const Complex z = 1.0 / (s - blk.alpha);
      for (std::size_t i = 0; i < p; ++i) {
        h(i, blk.column) += c_(i, blk.state) * z;
      }
    }
  }
  return h;
}

void SimoRealization::resolvent_b(Complex s, std::span<const Complex> v,
                                  std::span<Complex> z) const {
  util::check(v.size() == ports() && z.size() == order_,
              "SimoRealization::resolvent_b: size mismatch");
  for (const auto& blk : blocks_) {
    const Complex u = v[blk.column];
    if (blk.is_pair) {
      const Complex g = s - blk.alpha;
      const Complex det = g * g + blk.beta * blk.beta;
      z[blk.state] = g * u / det;
      z[blk.state + 1] = -blk.beta * u / det;
    } else {
      z[blk.state] = u / (s - blk.alpha);
    }
  }
}

StateSpaceModel SimoRealization::to_dense() const {
  const std::size_t n = order_, p = ports();
  StateSpaceModel ss;
  ss.a = RealMatrix(n, n);
  ss.b = RealMatrix(n, p);
  ss.c = c_;
  ss.d = d_;
  for (const auto& blk : blocks_) {
    if (blk.is_pair) {
      ss.a(blk.state, blk.state) = blk.alpha;
      ss.a(blk.state, blk.state + 1) = blk.beta;
      ss.a(blk.state + 1, blk.state) = -blk.beta;
      ss.a(blk.state + 1, blk.state + 1) = blk.alpha;
      ss.b(blk.state, blk.column) = 1.0;
    } else {
      ss.a(blk.state, blk.state) = blk.alpha;
      ss.b(blk.state, blk.column) = 1.0;
    }
  }
  return ss;
}

PoleResidueModel SimoRealization::to_pole_residue() const {
  const std::size_t p = ports();
  std::vector<PoleResidueColumn> columns(p);
  for (const auto& blk : blocks_) {
    if (blk.is_pair) {
      ComplexPoleTerm t;
      t.pole = Complex(blk.alpha, blk.beta);
      t.residue.resize(p);
      for (std::size_t i = 0; i < p; ++i) {
        t.residue[i] =
            Complex(0.5 * c_(i, blk.state), 0.5 * c_(i, blk.state + 1));
      }
      columns[blk.column].complex_terms.push_back(std::move(t));
    } else {
      RealPoleTerm t;
      t.pole = blk.alpha;
      t.residue.resize(p);
      for (std::size_t i = 0; i < p; ++i) t.residue[i] = c_(i, blk.state);
      columns[blk.column].real_terms.push_back(std::move(t));
    }
  }
  return PoleResidueModel(d_, std::move(columns));
}

}  // namespace phes::macromodel
