#include "phes/macromodel/gramians.hpp"

#include <algorithm>
#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/lyapunov.hpp"
#include "phes/la/schur.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"

namespace phes::macromodel {

la::RealMatrix controllability_gramian(const StateSpaceModel& model) {
  model.check_shapes();
  const la::RealMatrix bbt = la::gemm(model.b, la::transpose(model.b));
  return la::solve_lyapunov(model.a, bbt);
}

la::RealMatrix observability_gramian(const StateSpaceModel& model) {
  model.check_shapes();
  const la::RealMatrix ctc = la::gemm(la::transpose(model.c), model.c);
  return la::solve_lyapunov(la::transpose(model.a), ctc);
}

la::RealVector hankel_singular_values(const StateSpaceModel& model) {
  const la::RealMatrix pq =
      la::gemm(controllability_gramian(model), observability_gramian(model));
  const la::ComplexVector ev = la::real_eigenvalues(pq);
  la::RealVector hsv;
  hsv.reserve(ev.size());
  for (const auto& l : ev) {
    // P Q is similar to a PSD product; tiny negative / imaginary parts
    // are roundoff.
    hsv.push_back(std::sqrt(std::max(l.real(), 0.0)));
  }
  std::sort(hsv.begin(), hsv.end(), std::greater<>());
  return hsv;
}

double hankel_norm(const StateSpaceModel& model) {
  const auto hsv = hankel_singular_values(model);
  return hsv.empty() ? 0.0 : hsv.front();
}

double hinf_upper_bound(const StateSpaceModel& model) {
  const auto hsv = hankel_singular_values(model);
  double sum = 0.0;
  for (double s : hsv) sum += s;
  // The dynamic part is bounded by twice the HSV sum; D shifts the
  // whole response.
  const auto sigma_d = la::real_singular_values(model.d);
  const double d_norm = sigma_d.empty() ? 0.0 : sigma_d.front();
  return d_norm + 2.0 * sum;
}

double perturbation_hinf_bound(const SimoRealization& realization,
                               const la::RealMatrix& c_before) {
  util::check(c_before.rows() == realization.ports() &&
                  c_before.cols() == realization.order(),
              "perturbation_hinf_bound: C shape mismatch");
  StateSpaceModel error = realization.to_dense();
  error.c -= c_before;          // DeltaC
  error.d = la::RealMatrix(realization.ports(), realization.ports());
  return hinf_upper_bound(error);
}

}  // namespace phes::macromodel
