#include "phes/macromodel/pole_residue.hpp"

#include <algorithm>
#include <cmath>

#include "phes/util/check.hpp"

namespace phes::macromodel {

PoleResidueModel::PoleResidueModel(RealMatrix d,
                                   std::vector<PoleResidueColumn> columns)
    : d_(std::move(d)), columns_(std::move(columns)) {
  util::check(d_.is_square(), "PoleResidueModel: D must be square");
  util::check(d_.rows() == columns_.size(),
              "PoleResidueModel: one pole-residue column per port required");
  const std::size_t p = ports();
  for (const auto& col : columns_) {
    for (const auto& t : col.real_terms) {
      util::check(t.residue.size() == p,
                  "PoleResidueModel: residue dimension mismatch");
    }
    for (const auto& t : col.complex_terms) {
      util::check(t.residue.size() == p,
                  "PoleResidueModel: residue dimension mismatch");
      util::check(t.pole.imag() > 0.0,
                  "PoleResidueModel: complex poles stored with Im > 0");
    }
  }
}

std::size_t PoleResidueModel::order() const noexcept {
  std::size_t n = 0;
  for (const auto& col : columns_) n += col.order();
  return n;
}

ComplexMatrix PoleResidueModel::eval(Complex s) const {
  const std::size_t p = ports();
  ComplexMatrix h(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t k = 0; k < p; ++k) h(i, k) = Complex(d_(i, k), 0.0);
  }
  for (std::size_t k = 0; k < p; ++k) {
    const auto& col = columns_[k];
    for (const auto& t : col.real_terms) {
      const Complex factor = 1.0 / (s - Complex(t.pole, 0.0));
      for (std::size_t i = 0; i < p; ++i) h(i, k) += t.residue[i] * factor;
    }
    for (const auto& t : col.complex_terms) {
      const Complex f1 = 1.0 / (s - t.pole);
      const Complex f2 = 1.0 / (s - std::conj(t.pole));
      for (std::size_t i = 0; i < p; ++i) {
        h(i, k) += t.residue[i] * f1 + std::conj(t.residue[i]) * f2;
      }
    }
  }
  return h;
}

ComplexMatrix PoleResidueModel::eval(double omega) const {
  return eval(Complex(0.0, omega));
}

bool PoleResidueModel::is_stable() const noexcept {
  for (const auto& col : columns_) {
    for (const auto& t : col.real_terms) {
      if (t.pole >= 0.0) return false;
    }
    for (const auto& t : col.complex_terms) {
      if (t.pole.real() >= 0.0) return false;
    }
  }
  return true;
}

double PoleResidueModel::max_pole_magnitude() const noexcept {
  double m = 0.0;
  for (const auto& col : columns_) {
    for (const auto& t : col.real_terms) m = std::max(m, std::abs(t.pole));
    for (const auto& t : col.complex_terms) m = std::max(m, std::abs(t.pole));
  }
  return m;
}

}  // namespace phes::macromodel
