#include "phes/macromodel/balanced_truncation.hpp"

#include <algorithm>
#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/la/svd.hpp"
#include "phes/macromodel/gramians.hpp"
#include "phes/util/check.hpp"

namespace phes::macromodel {

namespace {

// Symmetric PSD factor X = L L^T via eigen-decomposition (tolerant of
// tiny negative eigenvalues from roundoff).
la::RealMatrix psd_factor(const la::RealMatrix& x) {
  const auto eig = la::hermitian_eig(la::to_complex(x), true);
  const std::size_t n = x.rows();
  la::RealMatrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const double lambda = std::max(eig.values[j], 0.0);
    const double s = std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) {
      l(i, j) = eig.vectors(i, j).real() * s;
    }
  }
  return l;
}

}  // namespace

std::size_t order_for_tolerance(const la::RealVector& hsv,
                                double tolerance) {
  util::check(tolerance > 0.0, "order_for_tolerance: tolerance must be > 0");
  // Walk from the full order down while the discarded tail stays small.
  double tail = 0.0;
  std::size_t k = hsv.size();
  while (k > 0 && 2.0 * (tail + hsv[k - 1]) <= tolerance) {
    tail += hsv[k - 1];
    --k;
  }
  return k;
}

ReductionResult balanced_truncation(const StateSpaceModel& model,
                                    std::size_t target_order) {
  model.check_shapes();
  const std::size_t n = model.order();
  util::check(target_order >= 1 && target_order < n,
              "balanced_truncation: need 1 <= k < n");

  const la::RealMatrix p = controllability_gramian(model);
  const la::RealMatrix q = observability_gramian(model);
  const la::RealMatrix lp = psd_factor(p);
  const la::RealMatrix lq = psd_factor(q);

  // Lq^T Lp = U S V^T.
  const la::RealSvdResult svd = la::real_svd(la::gemm(la::transpose(lq), lp));
  const std::size_t k = target_order;
  util::require(svd.sigma[k - 1] > 1e-13 * std::max(svd.sigma[0], 1e-300),
                "balanced_truncation: requested order exceeds the "
                "numerical rank of the Hankel map");

  // T = Lp V S^{-1/2} (n x k), Tinv = S^{-1/2} U^T Lq^T (k x n).
  la::RealMatrix t(n, k), tinv(k, n);
  {
    const la::RealMatrix lpv = la::gemm(lp, svd.v);
    const la::RealMatrix utlq = la::gemm(la::transpose(svd.u),
                                         la::transpose(lq));
    for (std::size_t j = 0; j < k; ++j) {
      const double s = 1.0 / std::sqrt(svd.sigma[j]);
      for (std::size_t i = 0; i < n; ++i) {
        t(i, j) = lpv(i, j) * s;
        tinv(j, i) = utlq(j, i) * s;
      }
    }
  }

  ReductionResult res;
  res.reduced.a = la::gemm(tinv, la::gemm(model.a, t));
  res.reduced.b = la::gemm(tinv, model.b);
  res.reduced.c = la::gemm(model.c, t);
  res.reduced.d = model.d;
  res.hankel_sv = svd.sigma;
  for (std::size_t i = k; i < n; ++i) res.error_bound += svd.sigma[i];
  res.error_bound *= 2.0;
  return res;
}

}  // namespace phes::macromodel
