#include "phes/macromodel/samples.hpp"

#include <algorithm>
#include <cmath>

#include "phes/la/blas.hpp"
#include "phes/macromodel/pole_residue.hpp"
#include "phes/util/check.hpp"

namespace phes::macromodel {

void FrequencySamples::check_consistency() const {
  util::check(omega.size() == h.size(),
              "FrequencySamples: omega/h length mismatch");
  for (std::size_t k = 1; k < omega.size(); ++k) {
    util::check(omega[k] > omega[k - 1],
                "FrequencySamples: frequencies must increase strictly");
  }
  for (const auto& m : h) {
    util::check(m.rows() == ports() && m.cols() == ports(),
                "FrequencySamples: inconsistent matrix sizes");
  }
}

FrequencySamples sample_model(const PoleResidueModel& model, double omega_min,
                              double omega_max, std::size_t count) {
  util::check(count >= 2 && omega_max > omega_min && omega_min > 0.0,
              "sample_model: invalid grid");
  FrequencySamples out;
  out.omega.resize(count);
  out.h.reserve(count);
  const double log_lo = std::log(omega_min);
  const double log_hi = std::log(omega_max);
  for (std::size_t k = 0; k < count; ++k) {
    const double w = std::exp(log_lo + (log_hi - log_lo) *
                                           static_cast<double>(k) /
                                           static_cast<double>(count - 1));
    out.omega[k] = w;
    out.h.push_back(model.eval(w));
  }
  return out;
}

double max_relative_error(const PoleResidueModel& model,
                          const FrequencySamples& reference) {
  double worst = 0.0;
  double scale = 0.0;
  for (std::size_t k = 0; k < reference.count(); ++k) {
    const auto hm = model.eval(reference.omega[k]);
    double err = 0.0;
    for (std::size_t i = 0; i < hm.rows(); ++i) {
      for (std::size_t j = 0; j < hm.cols(); ++j) {
        err += std::norm(hm(i, j) - reference.h[k](i, j));
      }
    }
    worst = std::max(worst, std::sqrt(err));
    scale = std::max(scale, la::frobenius_norm(reference.h[k]));
  }
  return scale > 0.0 ? worst / scale : worst;
}

}  // namespace phes::macromodel
