#include "phes/macromodel/statespace.hpp"

#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/util/check.hpp"

namespace phes::macromodel {

void StateSpaceModel::check_shapes() const {
  util::check(a.is_square(), "StateSpaceModel: A must be square");
  util::check(d.is_square(), "StateSpaceModel: D must be square");
  util::check(b.rows() == a.rows() && b.cols() == d.cols(),
              "StateSpaceModel: B must be n x p");
  util::check(c.rows() == d.rows() && c.cols() == a.cols(),
              "StateSpaceModel: C must be p x n");
}

ComplexMatrix StateSpaceModel::eval(Complex s) const {
  const std::size_t n = order(), p = ports();
  // (sI - A) Z = B  column by column.
  ComplexMatrix shifted(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) shifted(i, j) = Complex(-a(i, j), 0.0);
    shifted(i, i) += s;
  }
  la::LuFactorization<Complex> lu(shifted);
  ComplexMatrix h(p, p);
  for (std::size_t k = 0; k < p; ++k) {
    la::ComplexVector bk(n);
    for (std::size_t i = 0; i < n; ++i) bk[i] = Complex(b(i, k), 0.0);
    const auto z = lu.solve(bk);
    for (std::size_t i = 0; i < p; ++i) {
      Complex acc(d(i, k), 0.0);
      for (std::size_t l = 0; l < n; ++l) acc += c(i, l) * z[l];
      h(i, k) = acc;
    }
  }
  return h;
}

}  // namespace phes::macromodel
