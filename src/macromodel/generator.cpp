#include "phes/macromodel/generator.hpp"

#include <algorithm>
#include <cmath>

#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"
#include "phes/util/rng.hpp"

namespace phes::macromodel {

namespace {

// Distributes `total` states over `parts` columns as evenly as possible.
std::vector<std::size_t> split_states(std::size_t total, std::size_t parts) {
  std::vector<std::size_t> out(parts, total / parts);
  for (std::size_t k = 0; k < total % parts; ++k) out[k] += 1;
  return out;
}

}  // namespace

PoleResidueModel make_synthetic_model(const SyntheticModelSpec& spec) {
  util::check(spec.ports > 0, "make_synthetic_model: ports must be > 0");
  util::check(spec.states >= 2 * spec.ports,
              "make_synthetic_model: need at least 2 states per port");
  util::check(spec.omega_max > spec.omega_min && spec.omega_min > 0.0,
              "make_synthetic_model: invalid band");
  util::check(spec.d_norm >= 0.0 && spec.d_norm < 1.0,
              "make_synthetic_model: d_norm must lie in [0, 1)");

  util::Rng rng(spec.seed);
  const std::size_t p = spec.ports;
  const auto column_orders = split_states(spec.states, p);

  // D: random diagonal-dominant direct coupling with sigma_max == d_norm.
  RealMatrix d(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) d(i, j) = 0.1 * rng.normal();
    d(i, i) = (rng.uniform() < 0.5 ? -1.0 : 1.0) * rng.uniform(0.5, 1.0);
  }
  if (spec.d_norm == 0.0) {
    d = RealMatrix(p, p);
  } else {
    const auto sigma = la::real_singular_values(d);
    d *= spec.d_norm / sigma.front();
  }

  const double log_lo = std::log(spec.omega_min);
  const double log_hi = std::log(spec.omega_max);

  std::vector<PoleResidueColumn> columns(p);
  for (std::size_t k = 0; k < p; ++k) {
    std::size_t remaining = column_orders[k];
    PoleResidueColumn& col = columns[k];
    // Lay poles log-uniformly with jitter so every column covers the
    // band — interconnect responses have resonances across decades.
    std::size_t slot = 0;
    const std::size_t approx_terms = std::max<std::size_t>(1, remaining / 2);
    while (remaining > 0) {
      const double frac =
          (static_cast<double>(slot) + rng.uniform(0.1, 0.9)) /
          static_cast<double>(approx_terms);
      const double omega0 =
          std::exp(log_lo + (log_hi - log_lo) * std::min(frac, 1.0));
      ++slot;

      const bool make_real =
          remaining == 1 || rng.uniform() < spec.real_pole_fraction;
      if (make_real) {
        RealPoleTerm t;
        t.pole = -omega0 * rng.uniform(0.5, 2.0);
        t.residue.resize(p);
        for (auto& r : t.residue) r = rng.normal() * omega0;
        col.real_terms.push_back(std::move(t));
        remaining -= 1;
      } else {
        const double zeta = rng.uniform(spec.min_damping, spec.max_damping);
        ComplexPoleTerm t;
        t.pole = Complex(-zeta * omega0,
                         omega0 * std::sqrt(1.0 - zeta * zeta));
        t.residue.resize(p);
        // Residue magnitude ~ zeta * omega0 keeps resonance peaks
        // |r| / (zeta omega0) comparable across the band.
        for (auto& r : t.residue) {
          r = Complex(rng.normal(), rng.normal()) * (zeta * omega0);
        }
        col.complex_terms.push_back(std::move(t));
        remaining -= 2;
      }
    }
  }

  PoleResidueModel model(std::move(d), std::move(columns));

  // Scale the residues so the sampled peak gain hits the target.  The
  // peak of sigma_max(H) decomposes as sigma(D + R(jw)) where only R
  // scales; a few fixed-point iterations of linear rescaling converge
  // well because sigma is monotone in the residue scale.
  const std::size_t grid = std::max<std::size_t>(spec.gain_tuning_grid, 16);
  auto sampled_peak = [&](const PoleResidueModel& m) {
    double peak = 0.0;
    for (std::size_t i = 0; i < grid; ++i) {
      const double w = std::exp(
          log_lo - 0.2 + (log_hi - log_lo + 0.4) * static_cast<double>(i) /
                             static_cast<double>(grid - 1));
      peak = std::max(peak, la::complex_spectral_norm(m.eval(w)));
    }
    return peak;
  };

  for (int pass = 0; pass < 4; ++pass) {
    const double peak = sampled_peak(model);
    // Only the dynamic part scales; remove the D floor conservatively.
    const double dyn_peak = std::max(peak - spec.d_norm, 1e-12);
    const double dyn_target = std::max(spec.target_peak_gain - spec.d_norm,
                                       1e-12);
    const double scale = dyn_target / dyn_peak;
    if (std::abs(scale - 1.0) < 5e-3) break;
    for (auto& col : model.columns()) {
      for (auto& t : col.real_terms) {
        for (auto& r : t.residue) r *= scale;
      }
      for (auto& t : col.complex_terms) {
        for (auto& r : t.residue) r *= scale;
      }
    }
  }
  return model;
}

}  // namespace phes::macromodel
