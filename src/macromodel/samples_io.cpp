#include "phes/macromodel/samples_io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <sstream>
#include <vector>

#include "phes/util/check.hpp"

namespace phes::macromodel {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("samples_io: line " + std::to_string(line) +
                           ": " + message);
}

/// Line-tracking whitespace tokenizer that skips '#' comment lines.
class Tokenizer {
 public:
  explicit Tokenizer(std::istream& is) : is_(is) {}

  /// Next token; throws with the current line number at end of input.
  std::string next(const char* expectation) {
    std::string token;
    while (true) {
      if (pos_ < tokens_.size()) return tokens_[pos_++];
      std::string raw;
      if (!std::getline(is_, raw)) {
        fail(line_, std::string("unexpected end of input (expected ") +
                        expectation + ")");
      }
      ++line_;
      std::istringstream ls(raw);
      std::string first;
      if (!(ls >> first) || first[0] == '#') continue;
      tokens_.clear();
      pos_ = 0;
      tokens_.push_back(first);
      while (ls >> token) {
        if (token[0] == '#') break;  // trailing same-line comment
        tokens_.push_back(token);
      }
    }
  }

  /// Strict finite double (the whole token must parse).
  double next_double(const char* expectation) {
    const std::string token = next(expectation);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      fail(line_, std::string("expected ") + expectation + ", got '" +
                      token + "'");
    }
    if (!std::isfinite(value)) {
      fail(line_, std::string("non-finite ") + expectation + " '" + token +
                      "'");
    }
    return value;
  }

  /// Strict non-negative integer, rejecting overflow and values beyond
  /// `max_value` (guards the downstream rows*cols allocations).
  std::size_t next_count(const char* expectation, std::size_t max_value) {
    const std::string token = next(expectation);
    char* end = nullptr;
    errno = 0;
    const unsigned long value = std::strtoul(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || token[0] == '-') {
      fail(line_, std::string("expected ") + expectation + ", got '" +
                      token + "'");
    }
    if (errno == ERANGE || value > max_value) {
      fail(line_, std::string(expectation) + " " + token +
                      " exceeds the supported maximum of " +
                      std::to_string(max_value));
    }
    return value;
  }

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::istream& is_;
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
  std::size_t line_ = 0;
};

/// Far above any physical interconnect, small enough that p*p complex
/// entries can never wrap a size_t allocation.
constexpr std::size_t kMaxPorts = 65536;
constexpr std::size_t kMaxPoints = 100'000'000;

}  // namespace

void save_samples(const FrequencySamples& samples, std::ostream& os) {
  samples.check_consistency();
  const std::size_t p = samples.ports();
  os << "# phes-samples v1\n";
  os << "ports " << p << '\n';
  os << "points " << samples.count() << '\n';
  os << std::setprecision(17);
  for (std::size_t k = 0; k < samples.count(); ++k) {
    os << "omega " << samples.omega[k] << '\n';
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const auto& h = samples.h[k](i, j);
        os << h.real() << ' ' << h.imag();
        os << (j + 1 < p ? ' ' : '\n');
      }
    }
  }
  util::require(os.good(), "save_samples: stream write failed");
}

FrequencySamples load_samples(std::istream& is) {
  Tokenizer tok(is);

  if (tok.next("'ports' header") != "ports") {
    fail(tok.line(), "expected 'ports' header");
  }
  const std::size_t p = tok.next_count("port count", kMaxPorts);
  if (p == 0) fail(tok.line(), "ports must be positive");
  if (tok.next("'points' header") != "points") {
    fail(tok.line(), "expected 'points' header");
  }
  const std::size_t count = tok.next_count("point count", kMaxPoints);
  if (count == 0) fail(tok.line(), "points must be positive");

  FrequencySamples out;
  out.omega.reserve(count);
  out.h.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    if (tok.next("'omega' record") != "omega") {
      fail(tok.line(), "expected 'omega' record " + std::to_string(k + 1) +
                           " of " + std::to_string(count));
    }
    const double omega = tok.next_double("frequency");
    if (!out.omega.empty() && omega <= out.omega.back()) {
      fail(tok.line(), "frequencies must be strictly increasing");
    }
    out.omega.push_back(omega);
    la::ComplexMatrix h(p, p);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const double re = tok.next_double("Re H entry");
        const double im = tok.next_double("Im H entry");
        h(i, j) = la::Complex(re, im);
      }
    }
    out.h.push_back(std::move(h));
  }
  out.check_consistency();
  return out;
}

void save_samples_file(const FrequencySamples& samples,
                       const std::string& path) {
  std::ofstream os(path);
  util::require(os.is_open(), "save_samples_file: cannot open " + path);
  save_samples(samples, os);
}

FrequencySamples load_samples_file(const std::string& path) {
  std::ifstream is(path);
  util::require(is.is_open(), "load_samples_file: cannot open " + path);
  try {
    return load_samples(is);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace phes::macromodel
