#include "phes/macromodel/samples_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "phes/util/check.hpp"

namespace phes::macromodel {

void save_samples(const FrequencySamples& samples, std::ostream& os) {
  samples.check_consistency();
  const std::size_t p = samples.ports();
  os << "# phes-samples v1\n";
  os << "ports " << p << '\n';
  os << "points " << samples.count() << '\n';
  os << std::setprecision(17);
  for (std::size_t k = 0; k < samples.count(); ++k) {
    os << "omega " << samples.omega[k] << '\n';
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const auto& h = samples.h[k](i, j);
        os << h.real() << ' ' << h.imag();
        os << (j + 1 < p ? ' ' : '\n');
      }
    }
  }
  util::require(os.good(), "save_samples: stream write failed");
}

FrequencySamples load_samples(std::istream& is) {
  auto next_token = [&is]() {
    std::string tok;
    while (is >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(is, rest);  // discard comment line
        continue;
      }
      return tok;
    }
    throw std::runtime_error("load_samples: unexpected end of input");
  };

  util::require(next_token() == "ports",
                "load_samples: expected 'ports' header");
  const std::size_t p = std::stoul(next_token());
  util::require(p > 0, "load_samples: ports must be positive");
  util::require(next_token() == "points",
                "load_samples: expected 'points' header");
  const std::size_t count = std::stoul(next_token());

  FrequencySamples out;
  out.omega.reserve(count);
  out.h.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    util::require(next_token() == "omega",
                  "load_samples: expected 'omega' record");
    out.omega.push_back(std::stod(next_token()));
    la::ComplexMatrix h(p, p);
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const double re = std::stod(next_token());
        const double im = std::stod(next_token());
        h(i, j) = la::Complex(re, im);
      }
    }
    out.h.push_back(std::move(h));
  }
  out.check_consistency();
  return out;
}

void save_samples_file(const FrequencySamples& samples,
                       const std::string& path) {
  std::ofstream os(path);
  util::require(os.is_open(), "save_samples_file: cannot open " + path);
  save_samples(samples, os);
}

FrequencySamples load_samples_file(const std::string& path) {
  std::ifstream is(path);
  util::require(is.is_open(), "load_samples_file: cannot open " + path);
  return load_samples(is);
}

}  // namespace phes::macromodel
