#include "phes/macromodel/transient.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/util/check.hpp"

namespace phes::macromodel {

namespace {

using la::RealMatrix;
using la::RealVector;

constexpr double kPi = 3.14159265358979323846;

// Real block-diagonal solve y = (I - h A)^{-1} x, O(n).
void solve_identity_minus_ha(const SimoRealization& r, double h,
                             std::span<const double> x,
                             std::span<double> y) {
  for (const auto& blk : r.blocks()) {
    if (blk.is_pair) {
      const double g = 1.0 - h * blk.alpha;
      const double hb = h * blk.beta;
      const double det = g * g + hb * hb;
      const double x1 = x[blk.state], x2 = x[blk.state + 1];
      // (I - hA) = [[g, -hb], [hb, g]]
      y[blk.state] = (g * x1 + hb * x2) / det;
      y[blk.state + 1] = (-hb * x1 + g * x2) / det;
    } else {
      y[blk.state] = x[blk.state] / (1.0 - h * blk.alpha);
    }
  }
}

// Real A x, B a, C x kernels on double vectors.
void apply_a_real(const SimoRealization& r, std::span<const double> x,
                  std::span<double> y) {
  for (const auto& blk : r.blocks()) {
    if (blk.is_pair) {
      const double x1 = x[blk.state], x2 = x[blk.state + 1];
      y[blk.state] = blk.alpha * x1 + blk.beta * x2;
      y[blk.state + 1] = -blk.beta * x1 + blk.alpha * x2;
    } else {
      y[blk.state] = blk.alpha * x[blk.state];
    }
  }
}

void apply_b_real(const SimoRealization& r, std::span<const double> u,
                  std::span<double> x) {
  std::fill(x.begin(), x.end(), 0.0);
  for (const auto& blk : r.blocks()) x[blk.state] = u[blk.column];
}

void apply_c_real(const SimoRealization& r, std::span<const double> x,
                  std::span<double> y) {
  const std::size_t p = r.ports(), n = r.order();
  for (std::size_t i = 0; i < p; ++i) {
    const double* row = r.c().row_ptr(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
}

// Shared trapezoidal core for the closed loop
//   dx/dt = A x + B a,  b = C x + D a,  a = Gamma b + c(t),
// Gamma = diag(gammas).  `source` fills c(t).
TransientResult run_trapezoidal(
    const SimoRealization& r, const RealVector& gammas, double dt,
    std::size_t steps, double blowup_factor, double pulse_span,
    const std::function<void(double, std::span<double>)>& source) {
  const std::size_t n = r.order(), p = r.ports();
  const double h = 0.5 * dt;

  // W = (I - Gamma D)^{-1}.
  RealMatrix iw = RealMatrix::identity(p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      iw(i, j) -= gammas[i] * r.d()(i, j);
    }
  }
  const la::LuFactorization<double> w_lu(iw);

  // SMW pieces for (I - hA - h B W Gamma C)^{-1}:
  //   P^{-1}B (n x p) and K = I - h (W Gamma C) P^{-1} B (p x p).
  RealMatrix pinv_b(n, p);
  {
    RealVector col(n), sol(n);
    for (std::size_t j = 0; j < p; ++j) {
      std::fill(col.begin(), col.end(), 0.0);
      for (const auto& blk : r.blocks()) {
        if (blk.column == j) col[blk.state] = 1.0;
      }
      solve_identity_minus_ha(r, h, col, sol);
      for (std::size_t i = 0; i < n; ++i) pinv_b(i, j) = sol[i];
    }
  }
  RealMatrix k = RealMatrix::identity(p);
  {
    // (W Gamma C) P^{-1} B column by column.
    RealVector tmp(n), cy(p);
    for (std::size_t j = 0; j < p; ++j) {
      for (std::size_t i = 0; i < n; ++i) tmp[i] = pinv_b(i, j);
      apply_c_real(r, tmp, cy);
      for (std::size_t i = 0; i < p; ++i) cy[i] *= gammas[i];
      const auto wcy = w_lu.solve(cy);
      for (std::size_t i = 0; i < p; ++i) k(i, j) -= h * wcy[i];
    }
  }
  const la::LuFactorization<double> k_lu(k);

  // Wave extraction at state x with source c: a = W(Gamma C x + c).
  RealVector cx(p), a(p), b(p), c(p);
  auto waves = [&](std::span<const double> x) {
    apply_c_real(r, x, cx);
    RealVector rhs(p);
    for (std::size_t i = 0; i < p; ++i) rhs[i] = gammas[i] * cx[i] + c[i];
    a = w_lu.solve(rhs);
    for (std::size_t i = 0; i < p; ++i) {
      double acc = cx[i];
      const double* drow = r.d().row_ptr(i);
      for (std::size_t j = 0; j < p; ++j) acc += drow[j] * a[j];
      b[i] = acc;
    }
  };

  // f(x, c) = A x + B a.
  RealVector ax(n), ba(n);
  auto rhs_field = [&](std::span<const double> x, RealVector& out) {
    waves(x);
    apply_a_real(r, x, ax);
    apply_b_real(r, a, ba);
    for (std::size_t i = 0; i < n; ++i) out[i] = ax[i] + ba[i];
  };

  TransientResult res;
  RealVector x(n, 0.0), fx(n), rhs(n), t0(n), y(n), q(p), z(p), corr(n);
  double pulse_peak_norm = 1e-30;

  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * dt;
    // Energy bookkeeping with the current waves.
    source(t, c);
    waves(x);
    res.incident_energy += dt * la::dot<double>(a, a);
    res.reflected_energy += dt * la::dot<double>(b, b);

    // Trapezoidal right-hand side: x + h f(x, c(t)) + h B_hat c(t+dt).
    rhs_field(x, fx);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = x[i] + h * fx[i];
    source(t + dt, c);
    {
      // B_hat c = B W c.
      const auto wc = w_lu.solve(c);
      apply_b_real(r, wc, ba);
      for (std::size_t i = 0; i < n; ++i) rhs[i] += h * ba[i];
    }

    // x_{k+1} = SMW solve of (I - hA - h B W Gamma C) x = rhs.
    solve_identity_minus_ha(r, h, rhs, t0);
    apply_c_real(r, t0, cx);
    for (std::size_t i = 0; i < p; ++i) cx[i] *= gammas[i];
    const auto wcx = w_lu.solve(cx);
    for (std::size_t i = 0; i < p; ++i) q[i] = wcx[i];
    const auto zz = k_lu.solve(q);
    RealVector bz(n);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      const double* row = pinv_b.row_ptr(i);
      for (std::size_t j = 0; j < p; ++j) acc += row[j] * zz[j];
      bz[i] = acc;
    }
    for (std::size_t i = 0; i < n; ++i) x[i] = t0[i] + h * bz[i];

    const double norm = la::nrm2<double>(x);
    res.peak_state_norm = std::max(res.peak_state_norm, norm);
    if (t <= pulse_span) pulse_peak_norm = std::max(pulse_peak_norm, norm);
    res.steps_run = step + 1;
    if (norm > blowup_factor * pulse_peak_norm) {
      res.blew_up = true;
      break;
    }
  }
  res.final_state_norm = la::nrm2<double>(x);
  return res;
}

}  // namespace

TransientResult simulate_terminated(const SimoRealization& realization,
                                    const TransientOptions& opt) {
  util::check(opt.dt > 0.0 && opt.steps > 0,
              "simulate_terminated: invalid time grid");
  util::check(opt.pulse_width > 0.0,
              "simulate_terminated: pulse width must be positive");
  RealVector gammas = opt.termination_gammas;
  if (gammas.empty()) {
    gammas.assign(realization.ports(), opt.termination_gamma);
  }
  util::check(gammas.size() == realization.ports(),
              "simulate_terminated: one reflection coefficient per port");
  for (double g : gammas) {
    util::check(std::abs(g) <= 1.0,
                "simulate_terminated: |gamma| <= 1 required (passive load)");
  }

  const double tw = opt.pulse_width;
  auto source = [&](double t, std::span<double> c) {
    std::fill(c.begin(), c.end(), 0.0);
    if (t < tw) c[0] = 0.5 * (1.0 - std::cos(2.0 * kPi * t / tw));
  };
  return run_trapezoidal(realization, gammas, opt.dt, opt.steps,
                         opt.blowup_factor, tw, source);
}

EnergyGainResult measure_energy_gain(const SimoRealization& realization,
                                     const EnergyGainOptions& opt) {
  util::check(opt.omega > 0.0, "measure_energy_gain: omega must be > 0");
  util::check(opt.cycles >= 2 && opt.steps_per_cycle >= 16,
              "measure_energy_gain: need >= 2 cycles, >= 16 steps/cycle");
  const std::size_t p = realization.ports();
  la::ComplexVector v = opt.port_vector;
  if (v.empty()) {
    v.assign(p, la::Complex{});
    v[0] = la::Complex(1.0, 0.0);
  }
  util::check(v.size() == p, "measure_energy_gain: port vector size");

  const double period = 2.0 * kPi / opt.omega;
  const double dt = period / static_cast<double>(opt.steps_per_cycle);
  const std::size_t steps = opt.cycles * opt.steps_per_cycle;
  const double ramp = opt.ramp_fraction * static_cast<double>(steps) * dt;

  auto source = [&](double t, std::span<double> c) {
    double window = 1.0;
    if (t < ramp) window = 0.5 * (1.0 - std::cos(kPi * t / ramp));
    for (std::size_t i = 0; i < c.size(); ++i) {
      c[i] = window *
             (v[i] * std::exp(la::Complex(0.0, opt.omega * t))).real();
    }
  };
  // gamma = 0: matched loads, a == c.
  const RealVector matched(p, 0.0);
  const TransientResult tr =
      run_trapezoidal(realization, matched, dt, steps, 1e30, ramp, source);

  EnergyGainResult res;
  res.incident_energy = tr.incident_energy;
  res.reflected_energy = tr.reflected_energy;
  res.gain = tr.incident_energy > 0.0
                 ? tr.reflected_energy / tr.incident_energy
                 : 0.0;
  return res;
}

}  // namespace phes::macromodel
