#include "phes/pipeline/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace phes::pipeline {

namespace {

// Locale-independent shortest-ish double rendering (%.9g never emits
// commas and round-trips the magnitudes reported here).
std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

bool stage_ran(const PipelineResult& r, Stage stage) {
  return std::any_of(
      r.stage_timings.begin(), r.stage_timings.end(),
      [stage](const StageTiming& t) { return t.stage == stage; });
}

double stage_seconds(const PipelineResult& r, Stage stage) {
  for (const auto& t : r.stage_timings) {
    if (t.stage == stage) return t.seconds;
  }
  return 0.0;
}

std::size_t job_matvecs(const PipelineResult& r) {
  return r.initial_report.solver.total_matvecs +
         r.enforcement.total_matvecs +
         r.final_report.solver.total_matvecs;
}

constexpr Stage kAllStages[] = {Stage::kLoad,         Stage::kFit,
                                Stage::kRealize,      Stage::kCharacterize,
                                Stage::kEnforce,      Stage::kVerify};

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_job_json(const PipelineResult& r, std::ostream& os,
                    std::size_t indent) {
  const std::string pad(indent, ' ');
  const bool characterized = stage_ran(r, Stage::kCharacterize);
  const bool verified = stage_ran(r, Stage::kVerify);
  os << pad << "{\n";
  os << pad << "  \"name\": \"" << json_escape(r.name) << "\",\n";
  os << pad << "  \"id\": " << r.id << ",\n";
  os << pad << "  \"status\": \"" << json_escape(r.status()) << "\",\n";
  os << pad << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n";
  os << pad << "  \"completed\": " << (r.completed ? "true" : "false")
     << ",\n";
  os << pad << "  \"cancelled\": " << (r.cancelled ? "true" : "false")
     << ",\n";
  if (!r.ok) {
    os << pad << "  \"error\": \"" << json_escape(r.error) << "\",\n";
    os << pad << "  \"failed_stage\": \"" << stage_name(r.failed_stage)
       << "\",\n";
  }
  os << pad << "  \"samples\": " << r.sample_count << ",\n";
  os << pad << "  \"ports\": " << r.ports << ",\n";
  os << pad << "  \"order\": " << r.order << ",\n";
  os << pad << "  \"fit_rms\": " << fmt(r.fit_rms) << ",\n";
  os << pad << "  \"bands_initial\": "
     << (characterized ? std::to_string(r.initial_report.bands.size())
                       : std::string("null"))
     << ",\n";
  os << pad << "  \"bands_final\": "
     << (verified ? std::to_string(r.final_report.bands.size())
                  : std::string("null"))
     << ",\n";
  os << pad << "  \"certified_passive\": "
     << (r.certified_passive ? "true" : "false") << ",\n";
  os << pad << "  \"enforcement\": { \"run\": "
     << (r.enforcement_run ? "true" : "false")
     << ", \"iterations\": " << r.enforcement.iterations
     << ", \"characterizations\": " << r.enforcement.characterizations
     << ", \"relative_model_change\": "
     << fmt(r.enforcement.relative_model_change) << " },\n";
  os << pad << "  \"session\": { \"cache_hits\": " << r.session.cache.hits
     << ", \"cache_misses\": " << r.session.cache.misses
     << ", \"cache_evictions\": " << r.session.cache.evictions
     << ", \"factorizations\": " << r.session.factorizations
     << ", \"solves\": " << r.session.solves
     << ", \"warm_solves\": " << r.session.warm_solves
     << ", \"revision\": " << r.session.revision
     << ", \"reused\": " << (r.session_reused ? "true" : "false")
     << " },\n";
  os << pad << "  \"total_matvecs\": " << job_matvecs(r) << ",\n";
  os << pad << "  \"stage_seconds\": {";
  bool first = true;
  for (const Stage stage : kAllStages) {
    if (!stage_ran(r, stage)) continue;
    os << (first ? " " : ", ") << "\"" << stage_name(stage)
       << "\": " << fmt(stage_seconds(r, stage));
    first = false;
  }
  os << " },\n";
  os << pad << "  \"total_seconds\": " << fmt(r.total_seconds) << "\n";
  os << pad << "}";
}

void write_summary_json(const std::vector<PipelineResult>& results,
                        std::ostream& os) {
  os << "{\n  \"jobs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_job_json(results[i], os, 4);
  }
  os << "\n  ],\n";

  std::size_t succeeded = 0;
  std::size_t hits = 0, misses = 0, warm = 0;
  double seconds = 0.0;
  for (const auto& r : results) {
    if (r.ok) ++succeeded;
    hits += r.session.cache.hits;
    misses += r.session.cache.misses;
    warm += r.session.warm_solves;
    seconds += r.total_seconds;
  }
  os << "  \"summary\": { \"jobs\": " << results.size()
     << ", \"succeeded\": " << succeeded << ", \"cache_hits\": " << hits
     << ", \"cache_misses\": " << misses << ", \"warm_solves\": " << warm
     << ", \"total_seconds\": " << fmt(seconds) << " }\n}\n";
}

void write_summary_csv(const std::vector<PipelineResult>& results,
                       std::ostream& os) {
  os << "job,id,status,ok,cancelled,ports,order,fit_rms,bands_initial,"
        "bands_final,enforce_iterations,cache_hits,cache_misses,"
        "cache_evictions,factorizations,solves,warm_solves,"
        "session_reused,total_matvecs,"
        "seconds_load,seconds_fit,seconds_realize,seconds_characterize,"
        "seconds_enforce,seconds_verify,seconds_total\n";
  for (const auto& r : results) {
    const bool characterized = stage_ran(r, Stage::kCharacterize);
    const bool verified = stage_ran(r, Stage::kVerify);
    // Commas/quotes in job names (file paths) get RFC-4180 quoting.
    std::string name = r.name;
    if (name.find_first_of(",\"\n") != std::string::npos) {
      std::string quoted = "\"";
      for (const char c : name) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      name = quoted;
    }
    os << name << ',' << r.id << ',' << r.status() << ',' << (r.ok ? 1 : 0)
       << ',' << (r.cancelled ? 1 : 0) << ','
       << r.ports << ',' << r.order << ',' << fmt(r.fit_rms) << ','
       << (characterized ? std::to_string(r.initial_report.bands.size())
                         : std::string())
       << ','
       << (verified ? std::to_string(r.final_report.bands.size())
                    : std::string())
       << ',' << r.enforcement.iterations << ',' << r.session.cache.hits
       << ',' << r.session.cache.misses << ','
       << r.session.cache.evictions << ',' << r.session.factorizations
       << ',' << r.session.solves << ',' << r.session.warm_solves << ','
       << (r.session_reused ? 1 : 0) << ',' << job_matvecs(r);
    for (const Stage stage : kAllStages) {
      os << ',' << fmt(stage_seconds(r, stage));
    }
    os << ',' << fmt(r.total_seconds) << '\n';
  }
}

namespace {

template <typename Writer>
void write_file(const std::vector<PipelineResult>& results,
                const std::string& path, Writer writer, const char* what) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error(std::string("cannot open ") + what +
                             " summary file '" + path + "'");
  }
  writer(results, os);
  os.flush();
  if (!os) {
    throw std::runtime_error(std::string("failed writing ") + what +
                             " summary file '" + path + "'");
  }
}

}  // namespace

void write_summary_json_file(const std::vector<PipelineResult>& results,
                             const std::string& path) {
  write_file(results, path, &write_summary_json, "JSON");
}

void write_summary_csv_file(const std::vector<PipelineResult>& results,
                            const std::string& path) {
  write_file(results, path, &write_summary_csv, "CSV");
}

}  // namespace phes::pipeline
