#include "phes/pipeline/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "phes/util/json.hpp"

namespace phes::pipeline {

namespace {

// Locale-independent shortest-ish double rendering (%.9g never emits
// commas and round-trips the magnitudes reported here).
std::string fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

bool stage_ran(const PipelineResult& r, Stage stage) {
  return std::any_of(
      r.stage_timings.begin(), r.stage_timings.end(),
      [stage](const StageTiming& t) { return t.stage == stage; });
}

double stage_seconds(const PipelineResult& r, Stage stage) {
  for (const auto& t : r.stage_timings) {
    if (t.stage == stage) return t.seconds;
  }
  return 0.0;
}

std::size_t job_matvecs(const PipelineResult& r) {
  return r.initial_report.solver.total_matvecs +
         r.enforcement.total_matvecs +
         r.final_report.solver.total_matvecs;
}

constexpr Stage kAllStages[] = {Stage::kLoad,         Stage::kFit,
                                Stage::kRealize,      Stage::kCharacterize,
                                Stage::kEnforce,      Stage::kVerify};

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_job_json(const PipelineResult& r, std::ostream& os,
                    std::size_t indent) {
  const std::string pad(indent, ' ');
  const bool characterized = stage_ran(r, Stage::kCharacterize);
  const bool verified = stage_ran(r, Stage::kVerify);
  os << pad << "{\n";
  os << pad << "  \"name\": \"" << json_escape(r.name) << "\",\n";
  os << pad << "  \"id\": " << r.id << ",\n";
  os << pad << "  \"status\": \"" << json_escape(r.status()) << "\",\n";
  os << pad << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n";
  os << pad << "  \"completed\": " << (r.completed ? "true" : "false")
     << ",\n";
  os << pad << "  \"cancelled\": " << (r.cancelled ? "true" : "false")
     << ",\n";
  if (!r.ok) {
    os << pad << "  \"error\": \"" << json_escape(r.error) << "\",\n";
    os << pad << "  \"failed_stage\": \"" << stage_name(r.failed_stage)
       << "\",\n";
  }
  os << pad << "  \"samples\": " << r.sample_count << ",\n";
  os << pad << "  \"ports\": " << r.ports << ",\n";
  os << pad << "  \"order\": " << r.order << ",\n";
  os << pad << "  \"fit_rms\": " << fmt(r.fit_rms) << ",\n";
  os << pad << "  \"bands_initial\": "
     << (characterized ? std::to_string(r.initial_report.bands.size())
                       : std::string("null"))
     << ",\n";
  os << pad << "  \"bands_final\": "
     << (verified ? std::to_string(r.final_report.bands.size())
                  : std::string("null"))
     << ",\n";
  os << pad << "  \"certified_passive\": "
     << (r.certified_passive ? "true" : "false") << ",\n";
  os << pad << "  \"enforcement\": { \"run\": "
     << (r.enforcement_run ? "true" : "false")
     << ", \"iterations\": " << r.enforcement.iterations
     << ", \"characterizations\": " << r.enforcement.characterizations
     << ", \"relative_model_change\": "
     << fmt(r.enforcement.relative_model_change) << " },\n";
  os << pad << "  \"session\": { \"cache_hits\": " << r.session.cache.hits
     << ", \"cache_misses\": " << r.session.cache.misses
     << ", \"cache_evictions\": " << r.session.cache.evictions
     << ", \"factorizations\": " << r.session.factorizations
     << ", \"solves\": " << r.session.solves
     << ", \"warm_solves\": " << r.session.warm_solves
     << ", \"revision\": " << r.session.revision
     << ", \"reused\": " << (r.session_reused ? "true" : "false")
     << " },\n";
  os << pad << "  \"total_matvecs\": " << job_matvecs(r) << ",\n";
  os << pad << "  \"stage_seconds\": {";
  bool first = true;
  for (const Stage stage : kAllStages) {
    if (!stage_ran(r, stage)) continue;
    os << (first ? " " : ", ") << "\"" << stage_name(stage)
       << "\": " << fmt(stage_seconds(r, stage));
    first = false;
  }
  os << " },\n";
  os << pad << "  \"total_seconds\": " << fmt(r.total_seconds) << "\n";
  os << pad << "}";
}

PipelineResult read_job_json(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  if (doc.type() != util::JsonValue::Type::kObject) {
    throw std::runtime_error("read_job_json: not a JSON object");
  }
  PipelineResult r;
  r.name = doc.string_or("name", "");
  r.id = doc.uint_or("id", 0);
  r.ok = doc.bool_or("ok", false);
  r.completed = doc.bool_or("completed", false);
  r.cancelled = doc.bool_or("cancelled", false);
  if (!r.ok) {
    r.error = doc.string_or("error", "");
    if (const util::JsonValue* stage = doc.find("failed_stage")) {
      try {
        r.failed_stage = parse_stage(stage->as_string());
      } catch (const std::exception&) {
        // Forward compatibility: a record written by a future build may
        // name a stage this one does not know.  Keep the default rather
        // than failing the whole record.
      }
    }
  }
  r.sample_count = static_cast<std::size_t>(doc.uint_or("samples", 0));
  r.ports = static_cast<std::size_t>(doc.uint_or("ports", 0));
  r.order = static_cast<std::size_t>(doc.uint_or("order", 0));
  r.fit_rms = doc.number_or("fit_rms", 0.0);
  // Band lists survive only as counts: default-valued entries keep
  // `.size()` (all the writer reads) stable across the round trip.
  if (const util::JsonValue* bands = doc.find("bands_initial")) {
    if (!bands->is_null()) {
      r.initial_report.bands.resize(
          static_cast<std::size_t>(bands->as_uint()));
    }
  }
  if (const util::JsonValue* bands = doc.find("bands_final")) {
    if (!bands->is_null()) {
      r.final_report.bands.resize(
          static_cast<std::size_t>(bands->as_uint()));
    }
  }
  r.certified_passive = doc.bool_or("certified_passive", false);
  if (const util::JsonValue* enf = doc.find("enforcement")) {
    r.enforcement_run = enf->bool_or("run", false);
    r.enforcement.iterations =
        static_cast<std::size_t>(enf->uint_or("iterations", 0));
    r.enforcement.characterizations =
        static_cast<std::size_t>(enf->uint_or("characterizations", 0));
    r.enforcement.relative_model_change =
        enf->number_or("relative_model_change", 0.0);
  }
  if (const util::JsonValue* session = doc.find("session")) {
    r.session.cache.hits =
        static_cast<std::size_t>(session->uint_or("cache_hits", 0));
    r.session.cache.misses =
        static_cast<std::size_t>(session->uint_or("cache_misses", 0));
    r.session.cache.evictions =
        static_cast<std::size_t>(session->uint_or("cache_evictions", 0));
    r.session.factorizations =
        static_cast<std::size_t>(session->uint_or("factorizations", 0));
    r.session.solves =
        static_cast<std::size_t>(session->uint_or("solves", 0));
    r.session.warm_solves =
        static_cast<std::size_t>(session->uint_or("warm_solves", 0));
    r.session.revision =
        static_cast<std::size_t>(session->uint_or("revision", 0));
    r.session_reused = session->bool_or("reused", false);
  }
  // The serialized total is a sum over three solver runs; attributing
  // it all to the initial report keeps job_matvecs() stable.
  r.initial_report.solver.total_matvecs =
      static_cast<std::size_t>(doc.uint_or("total_matvecs", 0));
  // Stage timings: the writer emits stages in execution (enum) order,
  // so rebuilding in kAllStages order restores the original sequence.
  if (const util::JsonValue* stages = doc.find("stage_seconds")) {
    for (const Stage stage : kAllStages) {
      if (const util::JsonValue* sec = stages->find(stage_name(stage))) {
        r.stage_timings.push_back(StageTiming{stage, sec->as_number()});
      }
    }
  }
  r.total_seconds = doc.number_or("total_seconds", 0.0);
  return r;
}

std::string result_signature(const PipelineResult& r) {
  // Mirrors write_job_json's field rendering (same fmt(), same
  // stage-ran/null logic for band counts) over the deterministic subset
  // only: no id, no timings, no session counters, no matvec totals.
  const bool characterized = stage_ran(r, Stage::kCharacterize);
  const bool verified = stage_ran(r, Stage::kVerify);
  std::ostringstream os;
  os << "{\"name\": \"" << json_escape(r.name) << "\", \"status\": \""
     << json_escape(r.status()) << "\", \"ok\": " << (r.ok ? "true" : "false")
     << ", \"completed\": " << (r.completed ? "true" : "false")
     << ", \"cancelled\": " << (r.cancelled ? "true" : "false");
  if (!r.ok) {
    os << ", \"error\": \"" << json_escape(r.error) << "\", \"failed_stage\": \""
       << stage_name(r.failed_stage) << "\"";
  }
  os << ", \"samples\": " << r.sample_count << ", \"ports\": " << r.ports
     << ", \"order\": " << r.order << ", \"fit_rms\": " << fmt(r.fit_rms)
     << ", \"bands_initial\": "
     << (characterized ? std::to_string(r.initial_report.bands.size())
                       : std::string("null"))
     << ", \"bands_final\": "
     << (verified ? std::to_string(r.final_report.bands.size())
                  : std::string("null"))
     << ", \"certified_passive\": "
     << (r.certified_passive ? "true" : "false")
     << ", \"enforcement\": {\"run\": "
     << (r.enforcement_run ? "true" : "false")
     << ", \"iterations\": " << r.enforcement.iterations
     << ", \"characterizations\": " << r.enforcement.characterizations
     << ", \"relative_model_change\": "
     << fmt(r.enforcement.relative_model_change) << "}}";
  return os.str();
}

void write_summary_json(const std::vector<PipelineResult>& results,
                        std::ostream& os) {
  os << "{\n  \"jobs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_job_json(results[i], os, 4);
  }
  os << "\n  ],\n";

  std::size_t succeeded = 0;
  std::size_t hits = 0, misses = 0, warm = 0;
  double seconds = 0.0;
  for (const auto& r : results) {
    if (r.ok) ++succeeded;
    hits += r.session.cache.hits;
    misses += r.session.cache.misses;
    warm += r.session.warm_solves;
    seconds += r.total_seconds;
  }
  os << "  \"summary\": { \"jobs\": " << results.size()
     << ", \"succeeded\": " << succeeded << ", \"cache_hits\": " << hits
     << ", \"cache_misses\": " << misses << ", \"warm_solves\": " << warm
     << ", \"total_seconds\": " << fmt(seconds) << " }\n}\n";
}

void write_summary_csv(const std::vector<PipelineResult>& results,
                       std::ostream& os) {
  os << "job,id,status,ok,cancelled,ports,order,fit_rms,bands_initial,"
        "bands_final,enforce_iterations,cache_hits,cache_misses,"
        "cache_evictions,factorizations,solves,warm_solves,"
        "session_reused,total_matvecs,"
        "seconds_load,seconds_fit,seconds_realize,seconds_characterize,"
        "seconds_enforce,seconds_verify,seconds_total\n";
  for (const auto& r : results) {
    const bool characterized = stage_ran(r, Stage::kCharacterize);
    const bool verified = stage_ran(r, Stage::kVerify);
    // Commas/quotes in job names (file paths) get RFC-4180 quoting.
    std::string name = r.name;
    if (name.find_first_of(",\"\n") != std::string::npos) {
      std::string quoted = "\"";
      for (const char c : name) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      name = quoted;
    }
    os << name << ',' << r.id << ',' << r.status() << ',' << (r.ok ? 1 : 0)
       << ',' << (r.cancelled ? 1 : 0) << ','
       << r.ports << ',' << r.order << ',' << fmt(r.fit_rms) << ','
       << (characterized ? std::to_string(r.initial_report.bands.size())
                         : std::string())
       << ','
       << (verified ? std::to_string(r.final_report.bands.size())
                    : std::string())
       << ',' << r.enforcement.iterations << ',' << r.session.cache.hits
       << ',' << r.session.cache.misses << ','
       << r.session.cache.evictions << ',' << r.session.factorizations
       << ',' << r.session.solves << ',' << r.session.warm_solves << ','
       << (r.session_reused ? 1 : 0) << ',' << job_matvecs(r);
    for (const Stage stage : kAllStages) {
      os << ',' << fmt(stage_seconds(r, stage));
    }
    os << ',' << fmt(r.total_seconds) << '\n';
  }
}

namespace {

template <typename Writer>
void write_file(const std::vector<PipelineResult>& results,
                const std::string& path, Writer writer, const char* what) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error(std::string("cannot open ") + what +
                             " summary file '" + path + "'");
  }
  writer(results, os);
  os.flush();
  if (!os) {
    throw std::runtime_error(std::string("failed writing ") + what +
                             " summary file '" + path + "'");
  }
}

}  // namespace

void write_summary_json_file(const std::vector<PipelineResult>& results,
                             const std::string& path) {
  write_file(results, path, &write_summary_json, "JSON");
}

void write_summary_csv_file(const std::vector<PipelineResult>& results,
                            const std::string& path) {
  write_file(results, path, &write_summary_csv, "CSV");
}

}  // namespace phes::pipeline
