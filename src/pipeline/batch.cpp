#include "phes/pipeline/batch.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "phes/util/thread_pool.hpp"

namespace phes::pipeline {

namespace {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace

ParallelismPlan plan_parallelism(std::size_t total_threads,
                                 std::size_t job_count) {
  if (total_threads == 0) total_threads = hardware_threads();
  if (job_count == 0) job_count = 1;
  ParallelismPlan plan;
  plan.job_workers = std::min(total_threads, job_count);
  plan.solver_threads = std::max<std::size_t>(
      1, total_threads / plan.job_workers);
  return plan;
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {}

ParallelismPlan BatchRunner::plan_for(std::size_t job_count) const {
  ParallelismPlan plan = plan_parallelism(options_.total_threads, job_count);
  if (options_.job_workers > 0) plan.job_workers = options_.job_workers;
  if (options_.solver_threads > 0) {
    plan.solver_threads = options_.solver_threads;
  }
  return plan;
}

std::vector<PipelineResult> BatchRunner::run(
    std::vector<PipelineJob> jobs) const {
  return run_all(std::move(jobs)).results;
}

BatchOutcome BatchRunner::run_all(std::vector<PipelineJob> jobs) const {
  BatchOutcome outcome;
  outcome.results.resize(jobs.size());
  if (jobs.empty()) return outcome;
  auto& results = outcome.results;

  const ParallelismPlan plan = plan_for(jobs.size());
  for (auto& job : jobs) {
    job.options.solver.threads = plan.solver_threads;
  }

  // Shared across the batch's jobs: duplicate models check the previous
  // job's session (and its hot factorization cache) back out instead of
  // rebuilding.  Concurrent duplicates still get distinct sessions —
  // checkout is exclusive — so reuse shows up when duplicates
  // serialize, exactly like the job server.
  std::unique_ptr<engine::SessionPool> sessions;
  if (options_.share_sessions) {
    sessions = std::make_unique<engine::SessionPool>(options_.pool);
  }
  PipelineContext context;
  context.session_pool = sessions.get();

  util::ThreadPool pool(plan.job_workers);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool.submit([&jobs, &results, &context, i] {
      try {
        results[i] = run_pipeline(jobs[i], context);
      } catch (const std::exception& e) {
        // run_pipeline captures stage errors itself; this is the last
        // line of defence (allocation failure and the like).
        results[i].name = jobs[i].name.empty() ? jobs[i].input_path
                                               : jobs[i].name;
        results[i].ok = false;
        results[i].error = e.what();
      }
    });
  }
  pool.wait_idle();
  if (sessions != nullptr) outcome.pool = sessions->stats();
  return outcome;
}

util::Table summary_table(const std::vector<PipelineResult>& results,
                          const engine::SessionPoolStats* pool) {
  util::Table table({"job", "status", "ports", "order", "fit rms",
                     "bands", "after", "cache", "time [s]"});
  for (const auto& r : results) {
    const bool characterized =
        std::any_of(r.stage_timings.begin(), r.stage_timings.end(),
                    [](const StageTiming& t) {
                      return t.stage == Stage::kCharacterize;
                    });
    const bool verified =
        std::any_of(r.stage_timings.begin(), r.stage_timings.end(),
                    [](const StageTiming& t) {
                      return t.stage == Stage::kVerify;
                    });
    // Factorization reuse at a glance: hits/misses of the job's
    // session cache across characterize + enforce rounds + verify.
    const auto& cache = r.session.cache;
    table.add_row({
        r.name,
        r.status(),
        r.ports > 0 ? std::to_string(r.ports) : "-",
        r.order > 0 ? std::to_string(r.order) : "-",
        r.order > 0 ? util::format_double(r.fit_rms) : "-",
        characterized ? std::to_string(r.initial_report.bands.size()) : "-",
        verified ? std::to_string(r.final_report.bands.size()) : "-",
        characterized ? std::to_string(cache.hits) + "/" +
                            std::to_string(cache.misses)
                      : "-",
        util::format_double(r.total_seconds),
    });
  }
  if (pool != nullptr) {
    // Batch-level reuse at a glance: how many realize stages were
    // served by an already-pooled session, and the cache totals.
    std::size_t hits = 0;
    std::size_t misses = 0;
    double seconds = 0.0;
    for (const auto& r : results) {
      hits += r.session.cache.hits;
      misses += r.session.cache.misses;
      seconds += r.total_seconds;
    }
    table.add_row({
        "(session pool)",
        std::to_string(pool->pool_hits) + "/" +
            std::to_string(pool->checkouts) + " reused",
        "-",
        "-",
        "-",
        "-",
        "-",
        std::to_string(hits) + "/" + std::to_string(misses),
        util::format_double(seconds),
    });
  }
  return table;
}

std::size_t count_succeeded(const std::vector<PipelineResult>& results) {
  return static_cast<std::size_t>(
      std::count_if(results.begin(), results.end(),
                    [](const PipelineResult& r) { return r.ok; }));
}

}  // namespace phes::pipeline
