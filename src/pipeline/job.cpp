#include "phes/pipeline/job.hpp"

#include <cstdio>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "phes/engine/session_pool.hpp"
#include "phes/io/touchstone.hpp"
#include "phes/macromodel/samples_io.hpp"
#include "phes/macromodel/simo_realization.hpp"
#include "phes/pipeline/report.hpp"
#include "phes/util/check.hpp"
#include "phes/util/json.hpp"
#include "phes/util/timer.hpp"

namespace phes::pipeline {

namespace {

constexpr Stage kStages[] = {Stage::kLoad,         Stage::kFit,
                             Stage::kRealize,      Stage::kCharacterize,
                             Stage::kEnforce,      Stage::kVerify};

}  // namespace

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kLoad: return "load";
    case Stage::kFit: return "fit";
    case Stage::kRealize: return "realize";
    case Stage::kCharacterize: return "characterize";
    case Stage::kEnforce: return "enforce";
    case Stage::kVerify: return "verify";
  }
  return "?";
}

Stage parse_stage(const std::string& name) {
  for (Stage stage : kStages) {
    if (name == stage_name(stage)) return stage;
  }
  throw std::invalid_argument("unknown pipeline stage '" + name +
                              "' (expected load|fit|realize|characterize|"
                              "enforce|verify)");
}

std::string PipelineResult::status() const {
  if (cancelled) return std::string("cancelled@") + stage_name(failed_stage);
  if (!ok) return std::string("failed@") + stage_name(failed_stage);
  const Stage last = stage_timings.empty() ? Stage::kLoad
                                           : stage_timings.back().stage;
  if (last != Stage::kVerify) {
    return std::string("stopped@") + stage_name(last);
  }
  if (certified_passive) return enforcement_run ? "enforced" : "passive";
  return "not-passive";
}

namespace {

const char* input_format_name(InputFormat format) noexcept {
  switch (format) {
    case InputFormat::kAuto: return "auto";
    case InputFormat::kTouchstone: return "touchstone";
    case InputFormat::kSamples: return "samples";
  }
  return "auto";
}

// Unknown (future) format names degrade to kAuto rather than failing
// the spec: the load stage's ports-based dispatch is the safe default.
InputFormat parse_input_format(const std::string& name) noexcept {
  if (name == "touchstone") return InputFormat::kTouchstone;
  if (name == "samples") return InputFormat::kSamples;
  return InputFormat::kAuto;
}

}  // namespace

std::string input_content_hash(const PipelineJob& job) {
  // FNV-1a 64-bit over the inline payload when present, else the path:
  // two submissions of the same bytes (or the same file) share a hash,
  // which is all the replay filter's "model" key needs.
  const std::string& bytes =
      !job.input_text.empty() ? job.input_text : job.input_path;
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string write_job_spec_json(const PipelineJob& job) {
  if (job.input_path.empty() && job.input_text.empty()) return {};
  std::ostringstream os;
  os << "{\"spec_version\": 1, \"name\": \"" << json_escape(job.name)
     << "\"";
  // Dispatch order mirrors the load stage: inline text wins over a path.
  if (!job.input_text.empty()) {
    os << ", \"input_text\": \"" << json_escape(job.input_text) << "\"";
  } else {
    os << ", \"input_path\": \"" << json_escape(job.input_path) << "\"";
  }
  os << ", \"format\": \"" << input_format_name(job.input_format)
     << "\", \"ports\": " << job.input_ports << ", \"input_hash\": \""
     << input_content_hash(job) << "\"";
  // The option surface the submit protocol exposes (protocol.cpp's
  // job_options_from), under the same keys.  The kernel backend is
  // DELIBERATELY not recorded: it selects the compute substrate, not
  // the job's semantics, so a replayed spec inherits the serving
  // process's --kernel default — which is exactly what makes
  // `campaign replay --all` against a restarted server an A/B of the
  // two backends over identical stored traffic.
  os << ", \"options\": {\"poles\": " << job.options.fit.num_poles
     << ", \"vf_iters\": " << job.options.fit.iterations
     << ", \"warm_start\": "
     << (job.options.session.warm_start ? "true" : "false")
     << ", \"stop_after\": \"" << stage_name(job.options.stop_after)
     << "\"}}";
  return os.str();
}

PipelineJob read_job_spec_json(const std::string& text,
                               const JobOptions& defaults) {
  util::JsonValue doc = [&] {
    try {
      return util::JsonValue::parse(text);
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("job spec: ") + e.what());
    }
  }();
  if (doc.type() != util::JsonValue::Type::kObject) {
    throw std::runtime_error("job spec: not a JSON object");
  }
  PipelineJob job;
  job.name = doc.string_or("name", "");
  job.input_text = doc.string_or("input_text", "");
  job.input_path = doc.string_or("input_path", "");
  if (job.input_text.empty() && job.input_path.empty()) {
    throw std::runtime_error("job spec: no replayable input "
                             "(neither \"input_text\" nor \"input_path\")");
  }
  job.input_format = parse_input_format(doc.string_or("format", "auto"));
  job.input_ports = static_cast<std::size_t>(doc.uint_or("ports", 0));
  job.options = defaults;
  if (const util::JsonValue* options = doc.find("options")) {
    job.options.fit.num_poles = static_cast<std::size_t>(
        options->uint_or("poles", job.options.fit.num_poles));
    job.options.fit.iterations = static_cast<std::size_t>(
        options->uint_or("vf_iters", job.options.fit.iterations));
    job.options.session.warm_start =
        options->bool_or("warm_start", job.options.session.warm_start);
    if (const util::JsonValue* stop = options->find("stop_after")) {
      try {
        job.options.stop_after = parse_stage(stop->as_string());
      } catch (const std::exception&) {
        // Future stage name: keep the default rather than losing the
        // whole record.
      }
    }
  }
  return job;
}

macromodel::FrequencySamples load_input(const std::string& path) {
  if (io::is_touchstone_path(path)) {
    return io::load_touchstone_file(path).samples;
  }
  return macromodel::load_samples_file(path);
}

macromodel::FrequencySamples parse_input_text(const std::string& text,
                                              InputFormat format,
                                              std::size_t ports) {
  if (format == InputFormat::kAuto) {
    format = ports > 0 ? InputFormat::kTouchstone : InputFormat::kSamples;
  }
  std::istringstream is(text);
  if (format == InputFormat::kTouchstone) {
    util::require(ports > 0,
                  "inline Touchstone input needs a port count (no file "
                  "extension to infer it from)");
    return io::load_touchstone(is, ports).samples;
  }
  return macromodel::load_samples(is);
}

PipelineResult run_pipeline(const PipelineJob& job) {
  return run_pipeline(job, PipelineContext{});
}

namespace {

/// Per-job view of a (possibly shared, cumulative) session's counters.
engine::SessionStats stats_since(const engine::SessionStats& now,
                                 const engine::SessionStats& base) {
  engine::SessionStats d = now;
  d.cache.hits -= base.cache.hits;
  d.cache.misses -= base.cache.misses;
  d.cache.evictions -= base.cache.evictions;
  // `entries` and `revision` are gauges: keep the current values.
  d.solves -= base.solves;
  d.warm_solves -= base.warm_solves;
  d.factorizations -= base.factorizations;
  return d;
}

}  // namespace

PipelineResult run_pipeline(const PipelineJob& job,
                            const PipelineContext& context) {
  PipelineResult result;
  result.name = job.name.empty() ? job.input_path : job.name;
  result.id = job.id;

  const util::WallTimer total_timer;
  macromodel::FrequencySamples samples;
  vf::VectorFittingResult fit;
  // The solver session owns the realization and lives across the
  // characterize -> enforce -> verify stages, so factorizations and
  // warm-start seeds carry over; obtained in kRealize — either a
  // private session, or a lease from the cross-job pool.
  std::unique_ptr<engine::SolverSession> owned_session;
  engine::SessionLease lease;
  engine::SolverSession* session = nullptr;
  engine::SessionStats session_base;  ///< pooled counters at checkout

  // Runs `body` as `stage`, recording its wall time; returns false when
  // the job was cancelled, the stage threw (the pipeline stops), or the
  // stop-after mark is hit.
  auto run_stage = [&](Stage stage, auto&& body) -> bool {
    if (context.cancel != nullptr &&
        context.cancel->load(std::memory_order_acquire)) {
      result.ok = false;
      result.cancelled = true;
      result.failed_stage = stage;
      result.error = std::string("cancelled before ") + stage_name(stage);
      result.total_seconds = total_timer.seconds();
      return false;
    }
    if (context.on_stage_start) context.on_stage_start(stage);
    const double stage_start = total_timer.seconds();
    const util::WallTimer timer;
    try {
      body();
    } catch (const std::exception& e) {
      result.ok = false;
      result.failed_stage = stage;
      result.error = std::string(stage_name(stage)) + ": " + e.what();
      result.total_seconds = total_timer.seconds();
      return false;
    }
    result.stage_timings.push_back({stage, timer.seconds(), stage_start});
    if (stage == job.options.stop_after) {
      result.ok = true;
      result.completed = true;
      result.total_seconds = total_timer.seconds();
      return false;
    }
    return true;
  };

  // -- load ------------------------------------------------------------
  if (!run_stage(Stage::kLoad, [&] {
        samples = !job.input_text.empty()
                      ? parse_input_text(job.input_text, job.input_format,
                                         job.input_ports)
                  : !job.input_path.empty() ? load_input(job.input_path)
                                            : job.samples;
        samples.check_consistency();
        util::require(samples.count() > 0, "no frequency samples");
        result.sample_count = samples.count();
        result.ports = samples.ports();
      })) {
    return result;
  }

  // Stage bodies return early via run_stage; capture whatever session
  // statistics exist so partial runs still report their reuse.  Pooled
  // sessions carry counters from previous jobs, so report the delta.
  const auto stamp_session_stats = [&] {
    if (session != nullptr) {
      result.session = stats_since(session->stats(), session_base);
    }
  };

  // -- fit (vector fitting) --------------------------------------------
  if (!run_stage(Stage::kFit, [&] {
        auto fit_options = job.options.fit;
        if (fit_options.threads == 0) {
          // Compose with the batch parallelism plan: the per-job solver
          // thread budget doubles as the column-fit worker count.
          fit_options.threads = job.options.solver.threads;
        }
        fit = vf::vector_fit(samples, fit_options);
        result.fit_rms = fit.rms_error;
        result.fit_iterations = fit.iterations_used;
        result.order = fit.model.order();
        util::require(fit.model.is_stable(),
                      "vector fitting produced an unstable model");
      })) {
    return result;
  }

  // -- realize (structured SIMO state space) ---------------------------
  if (!run_stage(Stage::kRealize, [&] {
        macromodel::SimoRealization realization(fit.model);
        // A job that explicitly asks for cold solves gets a private
        // session: a pooled one is configured at pool level and could
        // hand this job another job's warm cache.
        if (context.session_pool != nullptr &&
            job.options.session.warm_start) {
          lease = context.session_pool->checkout(std::move(realization));
          session = &lease.session();
          result.session_reused = lease.reused();
          session_base = session->stats();
        } else {
          owned_session = std::make_unique<engine::SolverSession>(
              std::move(realization), job.options.session);
          session = owned_session.get();
        }
      })) {
    return result;
  }

  // -- characterize (parallel Hamiltonian eigensolver) -----------------
  if (!run_stage(Stage::kCharacterize, [&] {
        result.initial_report = passivity::characterize_passivity(
            *session, job.options.solver);
      })) {
    stamp_session_stats();
    return result;
  }

  // -- enforce (skipped when already passive) --------------------------
  if (!run_stage(Stage::kEnforce, [&] {
        if (result.initial_report.passive) return;
        result.enforcement_run = true;
        auto options = job.options.enforcement;
        options.solver = job.options.solver;
        result.enforcement =
            passivity::enforce_passivity(*session, options);
        util::require(result.enforcement.success,
                      "enforcement did not converge within " +
                          std::to_string(options.max_iterations) +
                          " iterations");
      })) {
    stamp_session_stats();
    return result;
  }

  // -- verify (independent re-characterization; warm-started, and on
  // the unchanged revision the factorization cache serves it) ----------
  if (!run_stage(Stage::kVerify, [&] {
        result.final_report = passivity::characterize_passivity(
            *session, job.options.solver);
        result.certified_passive = result.final_report.passive;
      })) {
    stamp_session_stats();
    return result;
  }
  stamp_session_stats();

  // Normally unreachable: stop_after == kVerify exits inside run_stage
  // above.  Guard anyway (e.g. an out-of-range stop_after cast).
  result.ok = true;
  result.completed = true;
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace phes::pipeline
