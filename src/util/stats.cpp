#include "phes/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace phes::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

RunningStats summarize(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s;
}

}  // namespace phes::util
