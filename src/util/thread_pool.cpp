#include "phes/util/thread_pool.hpp"

#include <utility>

namespace phes::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || in_flight_ != 0) idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace phes::util
