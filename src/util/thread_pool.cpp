#include "phes/util/thread_pool.hpp"

#include <utility>

namespace phes::util {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace phes::util
