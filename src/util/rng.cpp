#include "phes/util/rng.hpp"

#include <cmath>

namespace phes::util {

double Rng::normal() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u = 0.0, v = 0.0, s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return u * factor;
}

}  // namespace phes::util
