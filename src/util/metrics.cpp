#include "phes/util/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "phes/util/json.hpp"

namespace phes::obs {

namespace {

/// Locale-independent, round-trippable double formatting (snapshot
/// serialization must survive a JSON round trip bit-for-bit enough for
/// byte-stable re-serialization).
std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Shorter form for Prometheus `le` labels (bucket bounds are
/// human-chosen round numbers; %g keeps them readable).
std::string fmt_bound(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string json_key(const std::string& name) {
  // Metric names are [a-zA-Z0-9_:] by convention; no escaping needed,
  // but quote defensively anyway.
  std::string out = "\"";
  for (char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

// ---- Histogram --------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : bounds_(std::move(bounds)), enabled_(enabled) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::runtime_error(
        "Histogram: bucket bounds must be non-empty and strictly "
        "increasing");
  }
  counts_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double value) noexcept {
#ifndef PHES_DISABLE_METRICS
  if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
    return;
  }
  // Bucket i holds observations with value <= bounds[i] (the Prometheus
  // `le` convention); lower_bound finds the first bound >= value.
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
#else
  (void)value;
#endif
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> Histogram::default_latency_bounds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
          0.1,  0.25,   0.5,  1.0,  2.5,    5.0,  10.0, 30.0,   60.0};
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (bounds != other.bounds) {
    throw std::runtime_error(
        "HistogramSnapshot::merge: bucket layouts differ");
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
}

// ---- MetricsSnapshot --------------------------------------------------

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ", ") << json_key(name) << ": " << value;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "" : ", ") << json_key(name) << ": " << value;
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    os << (first ? "" : ", ") << json_key(name) << ": {\"bounds\": [";
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      os << (i == 0 ? "" : ", ") << fmt_double(hist.bounds[i]);
    }
    os << "], \"counts\": [";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      os << (i == 0 ? "" : ", ") << hist.counts[i];
    }
    os << "], \"count\": " << hist.count
       << ", \"sum\": " << fmt_double(hist.sum) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

MetricsSnapshot MetricsSnapshot::from_json(const util::JsonValue& v) {
  MetricsSnapshot s;
  if (const util::JsonValue* counters = v.find("counters")) {
    for (const auto& [name, value] : counters->members()) {
      s.counters[name] = value.as_uint();
    }
  }
  if (const util::JsonValue* gauges = v.find("gauges")) {
    for (const auto& [name, value] : gauges->members()) {
      s.gauges[name] = static_cast<std::int64_t>(value.as_number());
    }
  }
  if (const util::JsonValue* histograms = v.find("histograms")) {
    for (const auto& [name, value] : histograms->members()) {
      HistogramSnapshot h;
      if (const util::JsonValue* bounds = value.find("bounds")) {
        for (const auto& b : bounds->items()) {
          h.bounds.push_back(b.as_number());
        }
      }
      if (const util::JsonValue* counts = value.find("counts")) {
        for (const auto& c : counts->items()) {
          h.counts.push_back(c.as_uint());
        }
      }
      h.count = value.uint_or("count", 0);
      h.sum = value.number_or("sum", 0.0);
      s.histograms.emplace(name, std::move(h));
    }
  }
  return s;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << "# TYPE " << name << " counter\n" << name << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    os << "# TYPE " << name << " gauge\n" << name << " " << value << "\n";
  }
  for (const auto& [name, hist] : histograms) {
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.counts[i];
      os << name << "_bucket{le=\"" << fmt_bound(hist.bounds[i]) << "\"} "
         << cumulative << "\n";
    }
    cumulative += hist.counts.empty() ? 0 : hist.counts.back();
    os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << name << "_sum " << fmt_double(hist.sum) << "\n";
    os << name << "_count " << hist.count << "\n";
  }
  return os.str();
}

// ---- MetricsRegistry --------------------------------------------------

MetricsRegistry::Shard& MetricsRegistry::shard_for(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Shard& shard = shard_for(name);
  util::MutexLock lock(shard.mutex);
  auto& slot = shard.counters[name];
  if (!slot) slot = std::make_unique<Counter>(&enabled_);
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Shard& shard = shard_for(name);
  util::MutexLock lock(shard.mutex);
  auto& slot = shard.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>(&enabled_);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, Histogram::default_latency_bounds());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  Shard& shard = shard_for(name);
  util::MutexLock lock(shard.mutex);
  auto& slot = shard.histograms[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds), &enabled_);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    for (const auto& [name, c] : shard.counters) {
      s.counters[name] = c->value();
    }
    for (const auto& [name, g] : shard.gauges) {
      s.gauges[name] = g->value();
    }
    for (const auto& [name, h] : shard.histograms) {
      s.histograms.emplace(name, h->snapshot());
    }
  }
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace phes::obs
