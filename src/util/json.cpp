#include "phes/util/json.hpp"

#include <cctype>
#include <cmath>
#include <stdexcept>

namespace phes::util {

struct JsonValue::Parser {
  /// Nesting bound: parse_value recurses per '['/'{', and a server
  /// must answer a hostile deeply-nested line with an error response,
  /// not a stack overflow.  The documents parsed here nest 2-3 levels.
  static constexpr std::size_t kMaxDepth = 64;

  const std::string& text;
  std::size_t pos = 0;
  std::size_t depth = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos) + ": " + what);
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text[pos] + "'");
    }
    ++pos;
  }

  bool consume_literal(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos + i >= text.size() || text[pos + i] != lit[i]) return false;
      ++i;
    }
    pos += i;
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += 10u + (h - 'a');
            else if (h >= 'A' && h <= 'F') code += 10u + (h - 'A');
            else fail("bad \\u escape digit");
          }
          // Minimal UTF-8 encoding (surrogate pairs unsupported: the
          // documents' strings are paths/names, and the writer only
          // emits \u for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      v.type_ = Type::kNull;
    } else if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      v.type_ = Type::kBool;
      v.bool_ = true;
    } else if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      v.type_ = Type::kBool;
      v.bool_ = false;
    } else if (c == '"') {
      v.type_ = Type::kString;
      v.string_ = parse_string();
    } else if (c == '[') {
      ++pos;
      if (++depth > kMaxDepth) fail("nesting too deep");
      v.type_ = Type::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos;
      } else {
        for (;;) {
          v.items_.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos;
            continue;
          }
          expect(']');
          break;
        }
      }
      --depth;
    } else if (c == '{') {
      ++pos;
      if (++depth > kMaxDepth) fail("nesting too deep");
      v.type_ = Type::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos;
      } else {
        for (;;) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.members_.emplace_back(std::move(key), parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos;
            continue;
          }
          expect('}');
          break;
        }
      }
      --depth;
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      const std::size_t start = pos;
      if (peek() == '-') ++pos;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
              text[pos] == '+' || text[pos] == '-')) {
        ++pos;
      }
      const std::string num = text.substr(start, pos - start);
      try {
        std::size_t used = 0;
        v.number_ = std::stod(num, &used);
        if (used != num.size()) fail("bad number '" + num + "'");
      } catch (const std::exception&) {
        fail("bad number '" + num + "'");
      }
      v.type_ = Type::kNumber;
    } else {
      fail(std::string("unexpected character '") + c + "'");
    }
    return v;
  }
};

JsonValue JsonValue::parse(const std::string& text) {
  Parser parser{text};
  JsonValue v = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) parser.fail("trailing content");
  return v;
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JSON: not a number");
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  const double n = as_number();
  if (n < 0.0 || std::floor(n) != n) {
    throw std::runtime_error("JSON: not a non-negative integer");
  }
  return static_cast<std::uint64_t>(n);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("JSON: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) throw std::runtime_error("JSON: not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) throw std::runtime_error("JSON: not an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::uint64_t JsonValue::uint_or(const std::string& key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_uint();
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

}  // namespace phes::util
