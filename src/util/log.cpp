#include "phes/util/log.hpp"

#include <cstdio>

#include "phes/util/sync.hpp"

namespace phes::util {

namespace {

/// One process-wide mutex: stderr is one stream, so one capability.
Mutex& log_mutex() {
  static Mutex mu;
  return mu;
}

}  // namespace

void log_line(const std::string& component, const std::string& message) {
  // Compose outside the lock; hold it only for the single write.
  std::string line;
  line.reserve(component.size() + message.size() + 4);
  line += '[';
  line += component;
  line += "] ";
  line += message;
  line += '\n';
  MutexLock lock(log_mutex());
  (void)!std::fwrite(line.data(), 1, line.size(), stderr);
  (void)std::fflush(stderr);
}

}  // namespace phes::util
