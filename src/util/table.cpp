#include "phes/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace phes::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double value, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << value;
  return ss.str();
}

}  // namespace phes::util
