#include "phes/hamiltonian/analysis.hpp"

#include <algorithm>
#include <cmath>

namespace phes::hamiltonian {

RealVector extract_imaginary_frequencies(const ComplexVector& spectrum,
                                         double tol_rel, double scale) {
  RealVector freqs;
  for (const Complex& lambda : spectrum) {
    const double mag = std::max(std::abs(lambda), scale);
    if (std::abs(lambda.real()) <= tol_rel * mag && lambda.imag() >= 0.0) {
      freqs.push_back(lambda.imag());
    }
  }
  std::sort(freqs.begin(), freqs.end());
  // Collapse near-duplicates (conjugate partners land at the same w;
  // clustered Ritz copies may differ in the last digits).
  RealVector unique;
  for (double w : freqs) {
    if (unique.empty() ||
        w - unique.back() > tol_rel * std::max(scale, unique.back())) {
      unique.push_back(w);
    }
  }
  return unique;
}

bool has_hamiltonian_symmetry(const ComplexVector& spectrum, double tol) {
  for (const Complex& lambda : spectrum) {
    const Complex mirror = -std::conj(lambda);
    double best = 1e300;
    for (const Complex& other : spectrum) {
      best = std::min(best, std::abs(other - mirror));
    }
    if (best > tol * std::max(1.0, std::abs(lambda))) return false;
  }
  return true;
}

}  // namespace phes::hamiltonian
