#include "phes/hamiltonian/dense.hpp"

#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"

namespace phes::hamiltonian {

RealMatrix build_scattering_hamiltonian(
    const macromodel::StateSpaceModel& model) {
  model.check_shapes();
  const std::size_t n = model.order(), p = model.ports();
  const RealMatrix& a = model.a;
  const RealMatrix& b = model.b;
  const RealMatrix& c = model.c;
  const RealMatrix& d = model.d;

  {
    const auto sigma_d = la::real_singular_values(d);
    util::check(sigma_d.empty() || sigma_d.front() < 1.0,
                "build_scattering_hamiltonian: requires sigma_max(D) < 1 "
                "(strict asymptotic passivity, paper Eq. 4)");
  }

  // R = D^T D - I, S = D D^T - I.
  RealMatrix r = la::gemm(la::transpose(d), d);
  RealMatrix s = la::gemm(d, la::transpose(d));
  for (std::size_t i = 0; i < p; ++i) {
    r(i, i) -= 1.0;
    s(i, i) -= 1.0;
  }
  const RealMatrix r_inv = la::lu_inverse(r);
  const RealMatrix s_inv = la::lu_inverse(s);

  const RealMatrix br = la::gemm(b, r_inv);           // B R^{-1}
  const RealMatrix cts = la::gemm(la::transpose(c), s_inv);  // C^T S^{-1}

  RealMatrix m(2 * n, 2 * n);
  // (1,1) = A - B R^{-1} D^T C
  m.set_block(0, 0, model.a - la::gemm(br, la::gemm(la::transpose(d), c)));
  // (1,2) = -B R^{-1} B^T
  m.set_block(0, n, la::gemm(br, la::transpose(b)) * -1.0);
  // (2,1) = C^T S^{-1} C
  m.set_block(n, 0, la::gemm(cts, c));
  // (2,2) = -A^T + C^T D R^{-1} B^T
  m.set_block(
      n, n,
      la::gemm(la::gemm(la::transpose(c), la::gemm(d, r_inv)),
               la::transpose(b)) -
          la::transpose(a));
  return m;
}

RealMatrix build_immittance_hamiltonian(
    const macromodel::StateSpaceModel& model) {
  model.check_shapes();
  const std::size_t n = model.order();
  RealMatrix q = model.d + la::transpose(model.d);
  const RealMatrix q_inv = la::lu_inverse(q);  // throws when singular

  const RealMatrix bq = la::gemm(model.b, q_inv);
  const RealMatrix ctq = la::gemm(la::transpose(model.c), q_inv);

  RealMatrix m(2 * n, 2 * n);
  m.set_block(0, 0, model.a - la::gemm(bq, model.c));
  m.set_block(0, n, la::gemm(bq, la::transpose(model.b)) * -1.0);
  m.set_block(n, 0, la::gemm(ctq, model.c));
  m.set_block(n, n, la::gemm(ctq, la::transpose(model.b)) -
                        la::transpose(model.a));
  return m;
}

}  // namespace phes::hamiltonian
