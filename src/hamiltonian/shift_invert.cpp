#include "phes/hamiltonian/shift_invert.hpp"

#include <vector>

#include "phes/util/check.hpp"

namespace phes::hamiltonian {

SmwShiftInvertOp::SmwShiftInvertOp(
    const macromodel::SimoRealization& realization, Complex theta,
    la::KernelBackend backend)
    : realization_(realization), theta_(theta), backend_(backend) {
  const std::size_t p = realization_.ports();
  // H(theta) and H(-theta): O(n p^2) worth of structured evaluations
  // (each eval is O(n p); entries land in p x p matrices).
  const la::ComplexMatrix h_pos = realization_.eval(theta);
  const la::ComplexMatrix h_neg = realization_.eval(-theta);

  // K = [ -H(theta)  -I ;  I  H(-theta)^T ].
  la::ComplexMatrix k(2 * p, 2 * p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      k(i, j) = -h_pos(i, j);
      k(p + i, p + j) = h_neg(j, i);
    }
    k(i, p + i) = Complex(-1.0, 0.0);
    k(p + i, i) = Complex(1.0, 0.0);
  }
  k_lu_ = std::make_unique<la::LuFactorization<Complex>>(std::move(k));

  if (backend_ == la::KernelBackend::kTuned) {
    // Freeze the resolvent multipliers at theta.  For a pair block
    // [[alpha, beta], [-beta, alpha]]:
    //   (A - theta I)^{-1}:       g = alpha - theta, det = g^2 + beta^2,
    //                             c11 =  g / det,  c12 = -beta / det;
    //   -(A^T + theta I)^{-1}:    g' = alpha + theta, det = g'^2 + beta^2,
    //                             c11 = -g' / det, c12 = -beta / det
    // (the second folds solve_at_minus(-theta) plus the negation into
    // the same uniform 2x2 form).  Singles keep only c11.
    const auto& blocks = realization_.blocks();
    p_table_.reserve(blocks.size());
    q_table_.reserve(blocks.size());
    for (const auto& blk : blocks) {
      TableBlock pb{blk.state, blk.is_pair, {}, {}};
      TableBlock qb{blk.state, blk.is_pair, {}, {}};
      if (blk.is_pair) {
        const Complex g = Complex(blk.alpha, 0.0) - theta_;
        const Complex det = g * g + blk.beta * blk.beta;
        pb.c11 = g / det;
        pb.c12 = -blk.beta / det;
        const Complex gq = Complex(blk.alpha, 0.0) + theta_;
        const Complex detq = gq * gq + blk.beta * blk.beta;
        qb.c11 = -gq / detq;
        qb.c12 = -blk.beta / detq;
      } else {
        pb.c11 = 1.0 / (Complex(blk.alpha, 0.0) - theta_);
        qb.c11 = -1.0 / (Complex(blk.alpha, 0.0) + theta_);
      }
      p_table_.push_back(pb);
      q_table_.push_back(qb);
    }
  }
}

void SmwShiftInvertOp::apply(std::span<const Complex> x,
                             std::span<Complex> y) const {
  if (backend_ == la::KernelBackend::kReference) {
    apply_reference(x, y);
  } else {
    apply_tuned(x, y);
  }
}

void SmwShiftInvertOp::apply_reference(std::span<const Complex> x,
                                       std::span<Complex> y) const {
  const std::size_t n = realization_.order();
  const std::size_t p = realization_.ports();
  util::check(x.size() == 2 * n && y.size() == 2 * n,
              "SmwShiftInvertOp::apply: size mismatch");

  // G x with G = blkdiag((A - theta I)^{-1}, -(A^T + theta I)^{-1}).
  la::ComplexVector g1(n), g2(n);
  realization_.solve_a_minus(theta_, x.subspan(0, n), g1);
  realization_.solve_at_minus(-theta_, x.subspan(n, n), g2);
  for (auto& v : g2) v = -v;

  // w = V G x = [C g1; B^T g2].
  la::ComplexVector w(2 * p);
  {
    la::ComplexVector w1(p), w2(p);
    realization_.apply_c(g1, w1);
    realization_.apply_bt<Complex>(g2, w2);
    for (std::size_t i = 0; i < p; ++i) {
      w[i] = w1[i];
      w[p + i] = w2[i];
    }
  }

  // z = K^{-1} w.
  const la::ComplexVector z = k_lu_->solve(w);

  // U z = [B z1; C^T z2], then G (U z).
  la::ComplexVector u1(n), u2(n);
  {
    la::ComplexVector z1(z.begin(), z.begin() + static_cast<long>(p));
    la::ComplexVector z2(z.begin() + static_cast<long>(p), z.end());
    la::ComplexVector bz(n), ctz(n);
    realization_.apply_b<Complex>(z1, bz);
    realization_.apply_ct(z2, ctz);
    realization_.solve_a_minus(theta_, bz, u1);
    realization_.solve_at_minus(-theta_, ctz, u2);
    for (auto& v : u2) v = -v;
  }

  // y = G x - G U K^{-1} V G x.
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = g1[i] - u1[i];
    y[n + i] = g2[i] - u2[i];
  }
}

namespace {

/// Apply a frozen resolvent table:  y = T x  block by block.
template <typename Table>
void apply_table(const Table& table, std::span<const la::Complex> x,
                 la::Complex* y) {
  for (const auto& blk : table) {
    const std::size_t s = blk.state;
    if (blk.is_pair) {
      const la::Complex x1 = x[s], x2 = x[s + 1];
      y[s] = blk.c11 * x1 + blk.c12 * x2;
      y[s + 1] = -blk.c12 * x1 + blk.c11 * x2;
    } else {
      y[s] = blk.c11 * x[s];
    }
  }
}

}  // namespace

// Tuned path.  Same math as apply_reference; the per-block complex
// divisions of the two resolvent halves are replaced by the multiplier
// tables frozen in the constructor (one table application = a handful
// of fused multiply-adds per block, no divides), and the dense C / C^T
// products run on split real/imag planes.
void SmwShiftInvertOp::apply_tuned(std::span<const Complex> x,
                                   std::span<Complex> y) const {
  const std::size_t n = realization_.order();
  const std::size_t p = realization_.ports();
  util::check(x.size() == 2 * n && y.size() == 2 * n,
              "SmwShiftInvertOp::apply: size mismatch");

  thread_local la::ComplexVector g1, g2, w, bz, ctz, u1, u2;
  thread_local std::vector<double> planes;
  g1.resize(n);
  g2.resize(n);
  w.resize(2 * p);
  bz.resize(n);
  ctz.resize(n);
  u1.resize(n);
  u2.resize(n);
  planes.resize(2 * n + 2 * p);
  double* re = planes.data();
  double* im = re + n;
  double* pre = im + n;
  double* pim = pre + p;

  // G x: frozen tables, no divisions.
  apply_table(p_table_, x.subspan(0, n), g1.data());
  apply_table(q_table_, x.subspan(n, n), g2.data());

  // w = [C g1; B^T g2]: split-plane gemv for C, block scatter for B^T.
  const double* c = realization_.c().row_ptr(0);
  la::kernels::split_planes(g1.data(), n, re, im);
  la::kernels::gemv_planes(c, p, n, re, im, pre, pim);
  for (std::size_t i = 0; i < p; ++i) {
    w[i] = Complex(pre[i], pim[i]);
    w[p + i] = Complex{};
  }
  for (const auto& blk : realization_.blocks()) {
    w[p + blk.column] += g2[blk.state];
  }

  // z = K^{-1} w  (2p x 2p complex LU, unchanged).
  const la::ComplexVector z = k_lu_->solve(w);

  // U z = [B z1; C^T z2], then G (U z) through the same tables.
  for (std::size_t i = 0; i < n; ++i) bz[i] = Complex{};
  for (const auto& blk : realization_.blocks()) {
    bz[blk.state] = z[blk.column];
  }
  la::kernels::split_planes(z.data() + p, p, pre, pim);
  la::kernels::gemv_t_planes(c, p, n, pre, pim, re, im);
  la::kernels::merge_planes(re, im, n, ctz.data());
  apply_table(p_table_, {bz.data(), n}, u1.data());
  apply_table(q_table_, {ctz.data(), n}, u2.data());

  // y = G x - G U K^{-1} V G x.
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = g1[i] - u1[i];
    y[n + i] = g2[i] - u2[i];
  }
}

}  // namespace phes::hamiltonian
