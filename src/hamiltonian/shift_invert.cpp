#include "phes/hamiltonian/shift_invert.hpp"

#include "phes/util/check.hpp"

namespace phes::hamiltonian {

SmwShiftInvertOp::SmwShiftInvertOp(
    const macromodel::SimoRealization& realization, Complex theta)
    : realization_(realization), theta_(theta) {
  const std::size_t p = realization_.ports();
  // H(theta) and H(-theta): O(n p^2) worth of structured evaluations
  // (each eval is O(n p); entries land in p x p matrices).
  const la::ComplexMatrix h_pos = realization_.eval(theta);
  const la::ComplexMatrix h_neg = realization_.eval(-theta);

  // K = [ -H(theta)  -I ;  I  H(-theta)^T ].
  la::ComplexMatrix k(2 * p, 2 * p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      k(i, j) = -h_pos(i, j);
      k(p + i, p + j) = h_neg(j, i);
    }
    k(i, p + i) = Complex(-1.0, 0.0);
    k(p + i, i) = Complex(1.0, 0.0);
  }
  k_lu_ = std::make_unique<la::LuFactorization<Complex>>(std::move(k));
}

void SmwShiftInvertOp::apply(std::span<const Complex> x,
                             std::span<Complex> y) const {
  const std::size_t n = realization_.order();
  const std::size_t p = realization_.ports();
  util::check(x.size() == 2 * n && y.size() == 2 * n,
              "SmwShiftInvertOp::apply: size mismatch");

  // G x with G = blkdiag((A - theta I)^{-1}, -(A^T + theta I)^{-1}).
  la::ComplexVector g1(n), g2(n);
  realization_.solve_a_minus(theta_, x.subspan(0, n), g1);
  realization_.solve_at_minus(-theta_, x.subspan(n, n), g2);
  for (auto& v : g2) v = -v;

  // w = V G x = [C g1; B^T g2].
  la::ComplexVector w(2 * p);
  {
    la::ComplexVector w1(p), w2(p);
    realization_.apply_c(g1, w1);
    realization_.apply_bt<Complex>(g2, w2);
    for (std::size_t i = 0; i < p; ++i) {
      w[i] = w1[i];
      w[p + i] = w2[i];
    }
  }

  // z = K^{-1} w.
  const la::ComplexVector z = k_lu_->solve(w);

  // U z = [B z1; C^T z2], then G (U z).
  la::ComplexVector u1(n), u2(n);
  {
    la::ComplexVector z1(z.begin(), z.begin() + static_cast<long>(p));
    la::ComplexVector z2(z.begin() + static_cast<long>(p), z.end());
    la::ComplexVector bz(n), ctz(n);
    realization_.apply_b<Complex>(z1, bz);
    realization_.apply_ct(z2, ctz);
    realization_.solve_a_minus(theta_, bz, u1);
    realization_.solve_at_minus(-theta_, ctz, u2);
    for (auto& v : u2) v = -v;
  }

  // y = G x - G U K^{-1} V G x.
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = g1[i] - u1[i];
    y[n + i] = g2[i] - u2[i];
  }
}

}  // namespace phes::hamiltonian
