#include "phes/hamiltonian/implicit_op.hpp"

#include "phes/la/blas.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"

namespace phes::hamiltonian {

namespace {

// Builds R = D^T D - I or S = D D^T - I.
la::RealMatrix gram_minus_identity(const la::RealMatrix& d, bool transpose_first) {
  la::RealMatrix g = transpose_first ? la::gemm(la::transpose(d), d)
                                     : la::gemm(d, la::transpose(d));
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) -= 1.0;
  return g;
}

// Solve with a real LU against a complex right-hand side by splitting
// real and imaginary parts.
la::ComplexVector solve_real_lu(const la::LuFactorization<double>& lu,
                                std::span<const la::Complex> rhs) {
  la::RealVector re(rhs.size()), im(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    re[i] = rhs[i].real();
    im[i] = rhs[i].imag();
  }
  const auto xre = lu.solve(re);
  const auto xim = lu.solve(im);
  la::ComplexVector x(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    x[i] = la::Complex(xre[i], xim[i]);
  }
  return x;
}

}  // namespace

ImplicitHamiltonianOp::ImplicitHamiltonianOp(
    const macromodel::SimoRealization& realization)
    : realization_(realization),
      r_lu_(gram_minus_identity(realization.d(), true)),
      s_lu_(gram_minus_identity(realization.d(), false)),
      d_(realization.d()) {
  const auto sigma_d = la::real_singular_values(d_);
  util::check(sigma_d.empty() || sigma_d.front() < 1.0,
              "ImplicitHamiltonianOp: requires sigma_max(D) < 1");
}

void ImplicitHamiltonianOp::apply(std::span<const Complex> x,
                                  std::span<Complex> y) const {
  const std::size_t n = realization_.order();
  const std::size_t p = realization_.ports();
  util::check(x.size() == 2 * n && y.size() == 2 * n,
              "ImplicitHamiltonianOp::apply: size mismatch");
  const auto x1 = x.subspan(0, n);
  const auto x2 = x.subspan(n, n);
  auto y1 = y.subspan(0, n);
  auto y2 = y.subspan(n, n);

  // u = C x1, v = B^T x2 (p-vectors).
  la::ComplexVector u(p), v(p);
  realization_.apply_c(x1, u);
  realization_.apply_bt<Complex>(x2, v);

  // t = R^{-1} (D^T u + v).
  la::ComplexVector dtu(p, Complex{});
  for (std::size_t i = 0; i < p; ++i) {
    Complex acc{};
    for (std::size_t j = 0; j < p; ++j) acc += d_(j, i) * u[j];  // D^T u
    dtu[i] = acc + v[i];
  }
  const auto t = solve_real_lu(r_lu_, dtu);

  // y1 = A x1 - B t.
  realization_.apply_a<Complex>(x1, y1);
  la::ComplexVector bt(n);
  realization_.apply_b<Complex>(t, bt);
  for (std::size_t i = 0; i < n; ++i) y1[i] -= bt[i];

  // w = S^{-1} u + D R^{-1} v;  y2 = C^T w - A^T x2.
  const auto s_inv_u = solve_real_lu(s_lu_, u);
  const auto r_inv_v = solve_real_lu(r_lu_, v);
  la::ComplexVector w(p);
  for (std::size_t i = 0; i < p; ++i) {
    Complex acc{};
    for (std::size_t j = 0; j < p; ++j) acc += d_(i, j) * r_inv_v[j];
    w[i] = s_inv_u[i] + acc;
  }
  la::ComplexVector ctw(n);
  realization_.apply_ct(w, ctw);
  la::ComplexVector atx2(n);
  realization_.apply_at<Complex>(x2, atx2);
  for (std::size_t i = 0; i < n; ++i) y2[i] = ctw[i] - atx2[i];
}

}  // namespace phes::hamiltonian
