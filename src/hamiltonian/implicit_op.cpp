#include "phes/hamiltonian/implicit_op.hpp"

#include <vector>

#include "phes/la/blas.hpp"
#include "phes/la/svd.hpp"
#include "phes/util/check.hpp"

namespace phes::hamiltonian {

namespace {

// Builds R = D^T D - I or S = D D^T - I.
la::RealMatrix gram_minus_identity(const la::RealMatrix& d, bool transpose_first) {
  la::RealMatrix g = transpose_first ? la::gemm(la::transpose(d), d)
                                     : la::gemm(d, la::transpose(d));
  for (std::size_t i = 0; i < g.rows(); ++i) g(i, i) -= 1.0;
  return g;
}

// Solve with a real LU against a complex right-hand side by splitting
// real and imaginary parts (reference path: two independent solves).
la::ComplexVector solve_real_lu(const la::LuFactorization<double>& lu,
                                std::span<const la::Complex> rhs) {
  la::RealVector re(rhs.size()), im(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    re[i] = rhs[i].real();
    im[i] = rhs[i].imag();
  }
  const auto xre = lu.solve(re);
  const auto xim = lu.solve(im);
  la::ComplexVector x(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    x[i] = la::Complex(xre[i], xim[i]);
  }
  return x;
}

}  // namespace

ImplicitHamiltonianOp::ImplicitHamiltonianOp(
    const macromodel::SimoRealization& realization,
    la::KernelBackend backend)
    : realization_(realization),
      r_lu_(gram_minus_identity(realization.d(), true)),
      s_lu_(gram_minus_identity(realization.d(), false)),
      d_(realization.d()),
      backend_(backend) {
  const auto sigma_d = la::real_singular_values(d_);
  util::check(sigma_d.empty() || sigma_d.front() < 1.0,
              "ImplicitHamiltonianOp: requires sigma_max(D) < 1");
}

void ImplicitHamiltonianOp::apply(std::span<const Complex> x,
                                  std::span<Complex> y) const {
  if (backend_ == la::KernelBackend::kReference) {
    apply_reference(x, y);
  } else {
    apply_tuned(x, y);
  }
}

void ImplicitHamiltonianOp::apply_reference(std::span<const Complex> x,
                                            std::span<Complex> y) const {
  const std::size_t n = realization_.order();
  const std::size_t p = realization_.ports();
  util::check(x.size() == 2 * n && y.size() == 2 * n,
              "ImplicitHamiltonianOp::apply: size mismatch");
  const auto x1 = x.subspan(0, n);
  const auto x2 = x.subspan(n, n);
  auto y1 = y.subspan(0, n);
  auto y2 = y.subspan(n, n);

  // u = C x1, v = B^T x2 (p-vectors).
  la::ComplexVector u(p), v(p);
  realization_.apply_c(x1, u);
  realization_.apply_bt<Complex>(x2, v);

  // t = R^{-1} (D^T u + v).
  la::ComplexVector dtu(p, Complex{});
  for (std::size_t i = 0; i < p; ++i) {
    Complex acc{};
    for (std::size_t j = 0; j < p; ++j) acc += d_(j, i) * u[j];  // D^T u
    dtu[i] = acc + v[i];
  }
  const auto t = solve_real_lu(r_lu_, dtu);

  // y1 = A x1 - B t.
  realization_.apply_a<Complex>(x1, y1);
  la::ComplexVector bt(n);
  realization_.apply_b<Complex>(t, bt);
  for (std::size_t i = 0; i < n; ++i) y1[i] -= bt[i];

  // w = S^{-1} u + D R^{-1} v;  y2 = C^T w - A^T x2.
  const auto s_inv_u = solve_real_lu(s_lu_, u);
  const auto r_inv_v = solve_real_lu(r_lu_, v);
  la::ComplexVector w(p);
  for (std::size_t i = 0; i < p; ++i) {
    Complex acc{};
    for (std::size_t j = 0; j < p; ++j) acc += d_(i, j) * r_inv_v[j];
    w[i] = s_inv_u[i] + acc;
  }
  la::ComplexVector ctw(n);
  realization_.apply_ct(w, ctw);
  la::ComplexVector atx2(n);
  realization_.apply_at<Complex>(x2, atx2);
  for (std::size_t i = 0; i < n; ++i) y2[i] = ctw[i] - atx2[i];
}

// Tuned path.  Same math as apply_reference, restructured around the
// J-symmetry of the Hamiltonian halves:
//   - the dense C / C^T products run on split real/imag planes
//     (contiguous double loops instead of interleaved complex);
//   - R^{-1} is applied ONCE to the 4-plane block [D^T u + v | v] and
//     S^{-1} once to [u] via the fused multi-RHS LU solve, instead of
//     six independent triangular-solve passes;
//   - the A x1 and A^T x2 block traversals (and the B t subtraction)
//     are fused into one sweep over the pole blocks shared by y1/y2.
void ImplicitHamiltonianOp::apply_tuned(std::span<const Complex> x,
                                        std::span<Complex> y) const {
  const std::size_t n = realization_.order();
  const std::size_t p = realization_.ports();
  util::check(x.size() == 2 * n && y.size() == 2 * n,
              "ImplicitHamiltonianOp::apply: size mismatch");
  const auto x1 = x.subspan(0, n);
  const auto x2 = x.subspan(n, n);
  auto y1 = y.subspan(0, n);
  auto y2 = y.subspan(n, n);

  // Per-thread scratch: the operator is shared const across solver
  // threads, and the planes would otherwise cost six allocations per
  // apply.
  thread_local std::vector<double> plane_scratch;
  thread_local std::vector<double> port_scratch;
  plane_scratch.resize(4 * n);
  port_scratch.resize(8 * p);
  double* x1re = plane_scratch.data();
  double* x1im = x1re + n;
  double* ctwre = x1im + n;
  double* ctwim = ctwre + n;
  double* ure = port_scratch.data();
  double* uim = ure + p;
  double* vre = uim + p;
  double* vim = vre + p;
  double* dture = vim + p;
  double* dtuim = dture + p;
  double* wre = dtuim + p;
  double* wim = wre + p;

  const double* c = realization_.c().row_ptr(0);
  const double* d = d_.row_ptr(0);

  // u = C x1 on split planes; v = B^T x2 (block scatter, O(n)).
  la::kernels::split_planes(x1.data(), n, x1re, x1im);
  la::kernels::gemv_planes(c, p, n, x1re, x1im, ure, uim);
  for (std::size_t i = 0; i < p; ++i) {
    vre[i] = 0.0;
    vim[i] = 0.0;
  }
  for (const auto& blk : realization_.blocks()) {
    vre[blk.column] += x2[blk.state].real();
    vim[blk.column] += x2[blk.state].imag();
  }

  // dtu = D^T u + v.
  la::kernels::gemv_t_planes(d, p, p, ure, uim, dture, dtuim);
  for (std::size_t i = 0; i < p; ++i) {
    dture[i] += vre[i];
    dtuim[i] += vim[i];
  }

  // One fused solve each:  R^{-1} [dtu | v]  and  S^{-1} [u], four and
  // two real planes per LU sweep.
  la::RealMatrix r_rhs(p, 4);
  la::RealMatrix s_rhs(p, 2);
  for (std::size_t i = 0; i < p; ++i) {
    double* rr = r_rhs.row_ptr(i);
    rr[0] = dture[i];
    rr[1] = dtuim[i];
    rr[2] = vre[i];
    rr[3] = vim[i];
    double* sr = s_rhs.row_ptr(i);
    sr[0] = ure[i];
    sr[1] = uim[i];
  }
  const la::RealMatrix r_sol = r_lu_.solve_many(r_rhs);   // [t | R^{-1}v]
  const la::RealMatrix s_sol = s_lu_.solve_many(s_rhs);   // S^{-1}u

  // w = S^{-1} u + D R^{-1} v.
  for (std::size_t i = 0; i < p; ++i) {
    vre[i] = r_sol(i, 2);  // reuse the v planes for R^{-1} v
    vim[i] = r_sol(i, 3);
  }
  la::kernels::gemv_planes(d, p, p, vre, vim, wre, wim);
  for (std::size_t i = 0; i < p; ++i) {
    wre[i] += s_sol(i, 0);
    wim[i] += s_sol(i, 1);
  }

  // ctw = C^T w on split planes.
  la::kernels::gemv_t_planes(c, p, n, wre, wim, ctwre, ctwim);

  // Fused block sweep:  y1 = A x1 - B t,  y2 = C^T w - A^T x2.
  for (const auto& blk : realization_.blocks()) {
    const std::size_t s = blk.state;
    const Complex t_col(r_sol(blk.column, 0), r_sol(blk.column, 1));
    if (blk.is_pair) {
      const Complex xa = x1[s], xb = x1[s + 1];
      y1[s] = blk.alpha * xa + blk.beta * xb - t_col;
      y1[s + 1] = -blk.beta * xa + blk.alpha * xb;
      const Complex za = x2[s], zb = x2[s + 1];
      y2[s] = Complex(ctwre[s], ctwim[s]) -
              (blk.alpha * za - blk.beta * zb);
      y2[s + 1] = Complex(ctwre[s + 1], ctwim[s + 1]) -
                  (blk.beta * za + blk.alpha * zb);
    } else {
      y1[s] = blk.alpha * x1[s] - t_col;
      y2[s] = Complex(ctwre[s], ctwim[s]) - blk.alpha * x2[s];
    }
  }
}

}  // namespace phes::hamiltonian
