#include "phes/server/protocol.hpp"

#include <sstream>
#include <stdexcept>

#include "phes/io/touchstone.hpp"
#include "phes/la/kernels.hpp"
#include "phes/pipeline/report.hpp"
#include "phes/server/server.hpp"

namespace phes::server {

// ---- Response composition ---------------------------------------------

std::string json_quote(const std::string& text) {
  // Built by append rather than operator+ chaining: GCC 12's -Wrestrict
  // false-positives on the temporary chain under -Werror.
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  out += pipeline::json_escape(text);
  out += '"';
  return out;
}

std::string single_line_json(const std::string& pretty) {
  std::string out;
  out.reserve(pretty.size());
  for (std::size_t i = 0; i < pretty.size(); ++i) {
    if (pretty[i] == '\n') {
      while (i + 1 < pretty.size() && pretty[i + 1] == ' ') ++i;
      continue;
    }
    out += pretty[i];
  }
  return out;
}

namespace {

std::string error_response(const std::string& message) {
  return "{\"ok\": false, \"error\": " + json_quote(message) + "}";
}

/// The compact record used by `status` responses.
std::string record_json(const JobSummary& record) {
  std::ostringstream os;
  os << "{\"id\": " << record.id << ", \"name\": "
     << json_quote(record.name) << ", \"state\": \""
     << job_state_name(record.state) << "\"";
  if (record.stage_known) {
    os << ", \"stage\": \"" << pipeline::stage_name(record.stage) << "\"";
  }
  if (is_terminal(record.state)) {
    os << ", \"status\": " << json_quote(record.status);
  }
  return os.str() + "}";
}

/// Apply a request's "options" object over the serve-side defaults —
/// shared by the path and inline submission ops.
pipeline::JobOptions job_options_from(const JobServer& server,
                                      const JsonValue& request) {
  pipeline::JobOptions result = server.options().job_defaults;
  if (const JsonValue* options = request.find("options")) {
    result.fit.num_poles = static_cast<std::size_t>(
        options->uint_or("poles", result.fit.num_poles));
    result.fit.iterations = static_cast<std::size_t>(
        options->uint_or("vf_iters", result.fit.iterations));
    result.session.warm_start =
        options->bool_or("warm_start", result.session.warm_start);
    if (const JsonValue* stop = options->find("stop_after")) {
      result.stop_after = pipeline::parse_stage(stop->as_string());
    }
    if (const JsonValue* kernel = options->find("kernel")) {
      // "tuned" | "reference"; parse errors surface as the op's error
      // response through the handler's catch block.
      result.solver.kernel = la::parse_kernel_backend(kernel->as_string());
    }
  }
  return result;
}

std::string submit_ack(const char* op, std::uint64_t id) {
  return std::string("{\"ok\": true, \"op\": \"") + op +
         "\", \"id\": " + std::to_string(id) + "}";
}

std::string handle_submit(JobServer& server, const JsonValue& request) {
  const std::string path = request.string_or("path", "");
  if (path.empty()) {
    return error_response("submit: missing \"path\"");
  }
  pipeline::PipelineJob job;
  job.input_path = path;
  job.name = request.string_or("name", "");
  job.options = job_options_from(server, request);
  const std::uint64_t id = server.submit(std::move(job));
  return submit_ack("submit", id);
}

/// Inline submission: the request carries the input file's contents.
///   {"op":"submit_inline","payload":"<text>","format":"touchstone",
///    "ports":2,"name":"m","options":{...}}
/// `format` is "touchstone" (needs "ports", or a "filename" hint whose
/// ".sNp" extension provides it) or "samples"; omitted, it is inferred
/// from ports/filename.  The payload is parsed inside the job's load
/// stage by the same readers the path route uses, so results are
/// bit-identical to submitting the file by path.
std::string handle_submit_inline(JobServer& server,
                                 const JsonValue& request) {
  const JsonValue* payload = request.find("payload");
  if (payload == nullptr) {
    return error_response("submit_inline: missing \"payload\"");
  }
  pipeline::PipelineJob job;
  job.input_text = payload->as_string();
  if (job.input_text.empty()) {
    return error_response("submit_inline: empty \"payload\"");
  }
  const std::string filename = request.string_or("filename", "");
  job.name = request.string_or("name", filename.empty() ? "inline"
                                                        : filename);
  job.input_ports =
      static_cast<std::size_t>(request.uint_or("ports", 0));
  const std::string format = request.string_or("format", "");
  if (format == "touchstone") {
    job.input_format = pipeline::InputFormat::kTouchstone;
  } else if (format == "samples") {
    job.input_format = pipeline::InputFormat::kSamples;
  } else if (!format.empty()) {
    return error_response("submit_inline: unknown format '" + format +
                          "' (expected touchstone|samples)");
  }
  // A filename hint supplies what the path route reads off the disk
  // name: the Touchstone port count (and the format, when unstated).
  if (!filename.empty() && io::is_touchstone_path(filename)) {
    if (job.input_format == pipeline::InputFormat::kAuto) {
      job.input_format = pipeline::InputFormat::kTouchstone;
    }
    if (job.input_ports == 0) {
      job.input_ports = io::ports_from_extension(filename);
    }
  }
  if (job.input_format == pipeline::InputFormat::kTouchstone &&
      job.input_ports == 0) {
    return error_response(
        "submit_inline: Touchstone payload needs \"ports\" (or a "
        "\"filename\" with a .sNp extension)");
  }
  job.options = job_options_from(server, request);
  const std::uint64_t id = server.submit(std::move(job));
  return submit_ack("submit_inline", id);
}

std::string handle_status(JobServer& server, const JsonValue& request) {
  if (const JsonValue* id_value = request.find("id")) {
    const std::uint64_t id = id_value->as_uint();
    const auto record = server.job_summary(id);
    if (!record) {
      return error_response("status: unknown job id " + std::to_string(id));
    }
    return "{\"ok\": true, \"job\": " + record_json(*record) + "}";
  }
  std::string out = "{\"ok\": true, \"jobs\": [";
  bool first = true;
  for (const auto& record : server.job_summaries()) {
    if (!first) out += ", ";
    out += record_json(record);
    first = false;
  }
  return out + "]}";
}

std::string handle_result(JobServer& server, const JsonValue& request) {
  const JsonValue* id_value = request.find("id");
  if (id_value == nullptr) return error_response("result: missing \"id\"");
  const std::uint64_t id = id_value->as_uint();
  const auto record = server.status(id);
  if (!record) {
    return error_response("result: unknown job id " + std::to_string(id));
  }
  if (!is_terminal(record->state)) {
    return "{\"ok\": true, \"id\": " + std::to_string(id) +
           ", \"state\": \"" + job_state_name(record->state) +
           "\", \"job\": null}";
  }
  std::ostringstream job_json;
  pipeline::write_job_json(record->result, job_json);
  return "{\"ok\": true, \"id\": " + std::to_string(id) +
         ", \"state\": \"" + job_state_name(record->state) +
         "\", \"job\": " + single_line_json(job_json.str()) + "}";
}

std::string handle_cancel(JobServer& server, const JsonValue& request) {
  const JsonValue* id_value = request.find("id");
  if (id_value == nullptr) return error_response("cancel: missing \"id\"");
  const std::uint64_t id = id_value->as_uint();
  const bool cancelled = server.cancel(id);
  return "{\"ok\": true, \"id\": " + std::to_string(id) +
         ", \"cancelled\": " + (cancelled ? "true" : "false") + "}";
}

std::string campaign_skips_json(const std::vector<CampaignSkip>& skips) {
  std::string out = "[";
  for (std::size_t i = 0; i < skips.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{\"source\": " + std::to_string(skips[i].source_id) +
           ", \"reason\": " + json_quote(skips[i].reason) + "}";
  }
  return out + "]";
}

/// {"op":"replay","id":7}  or  {"op":"replay","all":true} narrowed by
/// the optional "state"/"model"/"from"/"to" filters.  Starts a tracked
/// campaign; the ack lists what was admitted and what was skipped.
std::string handle_replay(JobServer& server, const JsonValue& request) {
  ReplayFilter filter;
  if (const JsonValue* id_value = request.find("id")) {
    filter.id = id_value->as_uint();
  } else if (!request.bool_or("all", false)) {
    return error_response("replay: need \"id\" or \"all\": true");
  }
  filter.state = request.string_or("state", "");
  filter.model = request.string_or("model", "");
  filter.min_id = request.uint_or("from", 0);
  filter.max_id = request.uint_or("to", 0);
  const CampaignRunner::StartResult started =
      server.campaigns().start(filter);
  std::ostringstream os;
  os << "{\"ok\": true, \"op\": \"replay\", \"campaign\": "
     << started.campaign_id << ", \"replayed\": " << started.entries.size()
     << ", \"skipped\": " << started.skipped.size() << ", \"jobs\": [";
  for (std::size_t i = 0; i < started.entries.size(); ++i) {
    if (i > 0) os << ", ";
    os << "{\"source\": " << started.entries[i].source_id
       << ", \"id\": " << started.entries[i].replay_id << "}";
  }
  os << "], \"skips\": " << campaign_skips_json(started.skipped) << "}";
  return os.str();
}

std::string handle_resubmit(JobServer& server, const JsonValue& request) {
  const JsonValue* id_value = request.find("id");
  if (id_value == nullptr) {
    return error_response("resubmit: missing \"id\"");
  }
  const std::uint64_t source = id_value->as_uint();
  const std::uint64_t id = server.campaigns().resubmit(source);
  return "{\"ok\": true, \"op\": \"resubmit\", \"id\": " +
         std::to_string(id) + ", \"source\": " + std::to_string(source) +
         "}";
}

std::string handle_campaign(JobServer& server, const JsonValue& request) {
  const JsonValue* id_value = request.find("id");
  if (id_value == nullptr) {
    return error_response("campaign: missing \"id\"");
  }
  const std::uint64_t id = id_value->as_uint();
  const auto status = server.campaigns().status(id);
  if (!status) {
    return error_response("campaign: unknown campaign id " +
                          std::to_string(id));
  }
  std::ostringstream os;
  os << "{\"ok\": true, \"op\": \"campaign\", \"campaign\": " << status->id
     << ", \"done\": " << (status->done ? "true" : "false")
     << ", \"total\": " << status->total
     << ", \"completed\": " << status->completed
     << ", \"skipped\": " << status->skipped.size()
     << ", \"deltas\": {\"identical\": " << status->identical
     << ", \"numeric\": " << status->numeric
     << ", \"state\": " << status->state_changed << "}, \"jobs\": [";
  for (std::size_t i = 0; i < status->entries.size(); ++i) {
    const CampaignEntry& entry = status->entries[i];
    if (i > 0) os << ", ";
    os << "{\"source\": " << entry.source_id << ", \"id\": "
       << entry.replay_id << ", \"name\": " << json_quote(entry.name)
       << ", \"before\": " << json_quote(entry.status_before)
       << ", \"after\": "
       << (entry.delta.empty() ? std::string("null")
                               : json_quote(entry.status_after))
       << ", \"delta\": "
       << (entry.delta.empty() ? std::string("null")
                               : json_quote(entry.delta))
       << "}";
  }
  os << "], \"skips\": " << campaign_skips_json(status->skipped) << "}";
  return os.str();
}

std::string handle_stats(JobServer& server,
                         const TransportSnapshotFn& snapshot) {
  const ServerStats stats = server.stats();
  std::ostringstream os;
  os << "{\"ok\": true, \"submitted\": " << stats.submitted
     << ", \"workers\": " << stats.workers
     << ", \"solver_threads\": " << stats.solver_threads;
  os << ", \"queue\": {\"size\": " << stats.queue.size
     << ", \"capacity\": " << stats.queue.capacity
     << ", \"pushed\": " << stats.queue.pushed
     << ", \"popped\": " << stats.queue.popped
     << ", \"removed\": " << stats.queue.removed
     << ", \"push_waits\": " << stats.queue.push_waits
     << ", \"peak_size\": " << stats.queue.peak_size << "}";
  os << ", \"session_pool\": {\"checkouts\": " << stats.pool.checkouts
     << ", \"pool_hits\": " << stats.pool.pool_hits
     << ", \"creations\": " << stats.pool.creations
     << ", \"restores\": " << stats.pool.restores
     << ", \"evictions\": " << stats.pool.evictions
     << ", \"idle_sessions\": " << stats.pool.idle_sessions
     << ", \"leased_sessions\": " << stats.pool.leased_sessions
     << ", \"idle_bytes\": " << stats.pool.idle_bytes << "}";
  os << ", \"store\": {\"durable\": "
     << (stats.storage.durable ? "true" : "false")
     << ", \"records\": " << stats.storage.records
     << ", \"bytes\": " << stats.storage.bytes
     << ", \"evicted\": " << stats.storage.evicted
     << ", \"recovered\": " << stats.storage.recovered
     << ", \"lost\": " << stats.storage.lost << "}";
  if (snapshot) {
    const TransportSnapshot t = snapshot();
    os << ", \"transport\": {\"accepted\": " << t.accepted
       << ", \"open_connections\": " << t.open_connections
       << ", \"requests\": " << t.requests
       << ", \"inline_requests\": " << t.inline_requests
       << ", \"dispatched\": " << t.dispatched
       << ", \"rejected\": " << t.rejected
       << ", \"oversized_lines\": " << t.oversized_lines
       << ", \"auth_failures\": " << t.auth_failures << "}";
    os << ", \"dispatch\": {\"workers\": " << t.dispatch_workers
       << ", \"queue_depth\": " << t.dispatch_queue_depth
       << ", \"peak_depth\": " << t.dispatch_peak_depth
       << ", \"completed\": " << t.dispatch_completed << "}";
  }
  os << ", \"jobs\": {";
  for (std::size_t i = 0; i < stats.states.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\""
       << job_state_name(static_cast<JobState>(i))
       << "\": " << stats.states[i];
  }
  os << "}}";
  return os.str();
}

std::string handle_metrics(JobServer& server) {
  // The full registry dump: every layer's counters/gauges/histograms
  // in one object (the client's --prom mode converts it to Prometheus
  // text exposition locally).
  return "{\"ok\": true, \"metrics\": " +
         server.metrics_snapshot().to_json() + "}";
}

std::string handle_trace(JobServer& server, const JsonValue& request) {
  const JsonValue* id_value = request.find("id");
  if (id_value == nullptr) return error_response("trace: missing \"id\"");
  const std::uint64_t id = id_value->as_uint();
  if (const auto trace = server.trace(id)) {
    return "{\"ok\": true, \"trace\": " + trace->to_json() + "}";
  }
  // Distinguish "not finished yet" from "ran before the ring/process
  // rolled over" so clients know whether retrying can ever succeed.
  const auto record = server.job_summary(id);
  if (!record) {
    return error_response("trace: unknown job id " + std::to_string(id));
  }
  if (!is_terminal(record->state)) {
    return error_response("trace: job " + std::to_string(id) +
                          " has not finished (state " +
                          job_state_name(record->state) + ")");
  }
  return error_response("trace: no trace retained for job " +
                        std::to_string(id) +
                        " (evicted from the trace ring, or the job "
                        "finished in a previous server process)");
}

}  // namespace

RequestOutcome handle_request(JobServer& server, const std::string& line,
                              const TransportSnapshotFn& snapshot) {
  try {
    return handle_request(server, JsonValue::parse(line), snapshot);
  } catch (const std::exception& e) {
    RequestOutcome outcome;
    outcome.response = error_response(e.what());
    return outcome;
  }
}

RequestOutcome handle_request(JobServer& server, const JsonValue& request,
                              const TransportSnapshotFn& snapshot) {
  RequestOutcome outcome;
  try {
    const std::string op = request.string_or("op", "");
    if (op == "ping") {
      outcome.response = "{\"ok\": true, \"op\": \"ping\"}";
    } else if (op == "submit") {
      outcome.response = handle_submit(server, request);
    } else if (op == "submit_inline") {
      outcome.response = handle_submit_inline(server, request);
    } else if (op == "auth") {
      // Unauthenticated transports accept (and ignore) the handshake so
      // a client configured with a token works against either listener;
      // authenticated ones intercept it before handle_request.
      outcome.response = "{\"ok\": true, \"op\": \"auth\"}";
    } else if (op == "status") {
      outcome.response = handle_status(server, request);
    } else if (op == "result") {
      outcome.response = handle_result(server, request);
    } else if (op == "cancel") {
      outcome.response = handle_cancel(server, request);
    } else if (op == "replay") {
      outcome.response = handle_replay(server, request);
    } else if (op == "resubmit") {
      outcome.response = handle_resubmit(server, request);
    } else if (op == "campaign") {
      outcome.response = handle_campaign(server, request);
    } else if (op == "stats") {
      outcome.response = handle_stats(server, snapshot);
    } else if (op == "metrics") {
      outcome.response = handle_metrics(server);
    } else if (op == "trace") {
      outcome.response = handle_trace(server, request);
    } else if (op == "shutdown") {
      outcome.shutdown_requested = true;
      outcome.drain = request.bool_or("drain", true);
      outcome.response = std::string("{\"ok\": true, \"op\": \"shutdown\", "
                                     "\"drain\": ") +
                         (outcome.drain ? "true" : "false") + "}";
    } else if (op.empty()) {
      outcome.response = error_response("missing \"op\"");
    } else {
      outcome.response = error_response("unknown op '" + op + "'");
    }
  } catch (const std::exception& e) {
    outcome.response = error_response(e.what());
  }
  return outcome;
}

}  // namespace phes::server
