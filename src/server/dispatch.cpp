#include "phes/server/dispatch.hpp"

#include <algorithm>
#include <utility>

#include "phes/util/timer.hpp"

namespace phes::server {

DispatchPool::DispatchPool(std::size_t workers, std::size_t queue_capacity,
                           Handler handler, Completion on_complete,
                           obs::MetricsRegistry* registry)
    : capacity_(std::max<std::size_t>(1, queue_capacity)),
      handler_(std::move(handler)),
      on_complete_(std::move(on_complete)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  submitted_ = &registry->counter("phes_dispatch_submitted_total");
  completed_ = &registry->counter("phes_dispatch_completed_total");
  rejected_ = &registry->counter("phes_dispatch_rejected_total");
  depth_ = &registry->gauge("phes_dispatch_queue_depth");
  queue_wait_ = &registry->histogram("phes_dispatch_queue_wait_seconds");
  handle_time_ = &registry->histogram("phes_dispatch_handle_seconds");
  const std::size_t count = std::max<std::size_t>(1, workers);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DispatchPool::~DispatchPool() { stop(); }

bool DispatchPool::try_submit(std::uint64_t conn_token, std::string line) {
  {
    util::MutexLock lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) {
      rejected_->add();
      return false;
    }
    queue_.push_back(Task{conn_token, std::move(line),
                          std::chrono::steady_clock::now()});
    submitted_->add();
    depth_->set(static_cast<std::int64_t>(queue_.size()));
    peak_depth_ = std::max(peak_depth_, queue_.size());
  }
  work_available_.notify_one();
  return true;
}

void DispatchPool::worker_loop() {
  for (;;) {
    Task task;
    {
      util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (stopping_) return;  // queued tasks are dropped on stop
      task = std::move(queue_.front());
      queue_.pop_front();
      depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    queue_wait_->observe(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() -
                             task.enqueued_at)
                             .count());
    const util::WallTimer handle_timer;
    RequestOutcome outcome = handler_(task.line);
    handle_time_->observe(handle_timer.seconds());
    completed_->add();
    on_complete_(task.conn_token, std::move(outcome));
  }
}

void DispatchPool::stop() {
  {
    util::MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    queue_.clear();
    depth_->set(0);
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

DispatchStats DispatchPool::stats() const {
  util::MutexLock lock(mutex_);
  DispatchStats s;
  s.workers = workers_.size();
  s.queue_depth = queue_.size();
  s.peak_depth = peak_depth_;
  s.submitted = static_cast<std::size_t>(submitted_->value());
  s.completed = static_cast<std::size_t>(completed_->value());
  s.rejected = static_cast<std::size_t>(rejected_->value());
  return s;
}

}  // namespace phes::server
