#include "phes/server/dispatch.hpp"

#include <algorithm>
#include <utility>

namespace phes::server {

DispatchPool::DispatchPool(std::size_t workers, std::size_t queue_capacity,
                           Handler handler, Completion on_complete)
    : capacity_(std::max<std::size_t>(1, queue_capacity)),
      handler_(std::move(handler)),
      on_complete_(std::move(on_complete)) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DispatchPool::~DispatchPool() { stop(); }

bool DispatchPool::try_submit(std::uint64_t conn_token, std::string line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    queue_.push_back(Task{conn_token, std::move(line)});
    ++submitted_;
    peak_depth_ = std::max(peak_depth_, queue_.size());
  }
  work_available_.notify_one();
  return true;
}

void DispatchPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // queued tasks are dropped on stop
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RequestOutcome outcome = handler_(task.line);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++completed_;
    }
    on_complete_(task.conn_token, std::move(outcome));
  }
}

void DispatchPool::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    queue_.clear();
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

DispatchStats DispatchPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  DispatchStats s;
  s.workers = workers_.size();
  s.queue_depth = queue_.size();
  s.peak_depth = peak_depth_;
  s.submitted = submitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  return s;
}

}  // namespace phes::server
