#include "phes/server/job_queue.hpp"

#include <algorithm>
#include <utility>

#include "phes/util/check.hpp"
#include "phes/util/timer.hpp"

namespace phes::server {

JobQueue::JobQueue(std::size_t capacity, obs::MetricsRegistry* registry)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  pushed_ = &registry->counter("phes_queue_pushed_total");
  popped_ = &registry->counter("phes_queue_popped_total");
  removed_ = &registry->counter("phes_queue_removed_total");
  push_waits_ = &registry->counter("phes_queue_push_waits_total");
  depth_ = &registry->gauge("phes_queue_depth");
  admission_wait_ =
      &registry->histogram("phes_queue_admission_wait_seconds");
}

bool JobQueue::push(QueuedJob item) {
  bool admitted = false;
  {
    util::MutexLock lock(mutex_);
    const bool blocked = queue_.size() >= capacity_ && !closed_;
    if (blocked) push_waits_->add();
    const util::WallTimer wait_timer;
    while (!closed_ && queue_.size() >= capacity_) {
      space_available_.wait(mutex_);
    }
    // The admission-wait histogram records every push (a fast admit is
    // a near-zero observation), so its quantiles reflect what a
    // submitter actually experiences, not just the congested minority.
    admission_wait_->observe(wait_timer.seconds());
    if (!closed_) {
      queue_.push_back(std::move(item));
      pushed_->add();
      depth_->set(static_cast<std::int64_t>(queue_.size()));
      peak_size_ = std::max(peak_size_, queue_.size());
      admitted = true;
    }
  }
  if (admitted) work_available_.notify_one();
  return admitted;
}

std::optional<QueuedJob> JobQueue::pop() {
  std::optional<QueuedJob> item;
  {
    util::MutexLock lock(mutex_);
    while (!closed_ && queue_.empty()) work_available_.wait(mutex_);
    if (queue_.empty()) return std::nullopt;  // closed and drained
    item = std::move(queue_.front());
    queue_.pop_front();
    popped_->add();
    depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  space_available_.notify_one();
  return item;
}

bool JobQueue::remove(std::uint64_t id) {
  {
    util::MutexLock lock(mutex_);
    const auto it =
        std::find_if(queue_.begin(), queue_.end(),
                     [id](const QueuedJob& q) { return q.id == id; });
    if (it == queue_.end()) return false;
    queue_.erase(it);
    removed_->add();
    depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  space_available_.notify_one();
  return true;
}

std::vector<QueuedJob> JobQueue::drain() {
  std::vector<QueuedJob> out;
  {
    util::MutexLock lock(mutex_);
    out.reserve(queue_.size());
    for (auto& q : queue_) out.push_back(std::move(q));
    removed_->add(queue_.size());
    queue_.clear();
    depth_->set(0);
  }
  space_available_.notify_all();
  return out;
}

void JobQueue::close() {
  {
    util::MutexLock lock(mutex_);
    closed_ = true;
  }
  space_available_.notify_all();
  work_available_.notify_all();
}

std::size_t JobQueue::size() const {
  util::MutexLock lock(mutex_);
  return queue_.size();
}

bool JobQueue::closed() const {
  util::MutexLock lock(mutex_);
  return closed_;
}

JobQueue::Stats JobQueue::stats() const {
  util::MutexLock lock(mutex_);
  Stats s;
  s.pushed = pushed_->value();
  s.popped = popped_->value();
  s.removed = removed_->value();
  s.push_waits = push_waits_->value();
  s.peak_size = peak_size_;
  s.size = queue_.size();
  s.capacity = capacity_;
  s.closed = closed_;
  return s;
}

}  // namespace phes::server
