#include "phes/server/job_queue.hpp"

#include <algorithm>
#include <utility>

#include "phes/util/check.hpp"

namespace phes::server {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

bool JobQueue::push(QueuedJob item) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.size() >= capacity_ && !closed_) ++push_waits_;
  space_available_.wait(
      lock, [&] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  queue_.push_back(std::move(item));
  ++pushed_;
  peak_size_ = std::max(peak_size_, queue_.size());
  lock.unlock();
  work_available_.notify_one();
  return true;
}

std::optional<QueuedJob> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  work_available_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return std::nullopt;  // closed and drained
  QueuedJob item = std::move(queue_.front());
  queue_.pop_front();
  ++popped_;
  lock.unlock();
  space_available_.notify_one();
  return item;
}

bool JobQueue::remove(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [id](const QueuedJob& q) { return q.id == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  ++removed_;
  lock.unlock();
  space_available_.notify_one();
  return true;
}

std::vector<QueuedJob> JobQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<QueuedJob> out;
  out.reserve(queue_.size());
  for (auto& q : queue_) out.push_back(std::move(q));
  removed_ += queue_.size();
  queue_.clear();
  lock.unlock();
  space_available_.notify_all();
  return out;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  space_available_.notify_all();
  work_available_.notify_all();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

JobQueue::Stats JobQueue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.pushed = pushed_;
  s.popped = popped_;
  s.removed = removed_;
  s.push_waits = push_waits_;
  s.peak_size = peak_size_;
  s.size = queue_.size();
  s.capacity = capacity_;
  s.closed = closed_;
  return s;
}

}  // namespace phes::server
