#include "phes/server/server.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "phes/pipeline/batch.hpp"
#include "phes/util/log.hpp"
#include "phes/util/timer.hpp"

namespace phes::server {

namespace {

std::unique_ptr<Storage> make_storage(const ServerOptions& options,
                                      obs::MetricsRegistry* registry) {
  if (options.data_dir.empty()) {
    return std::make_unique<MemoryStorage>(options.max_finished_records,
                                           registry);
  }
  DiskStorageOptions disk;
  disk.max_bytes = options.retain_bytes;
  disk.ttl_seconds = options.retain_ttl_seconds;
  return std::make_unique<DiskStorage>(options.data_dir, disk, registry);
}

pipeline::ParallelismPlan server_plan(const ServerOptions& options) {
  // The queue bound doubles as the expected concurrency level: with a
  // full queue the server behaves like a batch of `queue_capacity`
  // jobs, so split the hardware the same way BatchRunner would.
  pipeline::ParallelismPlan plan =
      pipeline::plan_parallelism(0, options.queue_capacity);
  if (options.workers > 0) plan.job_workers = options.workers;
  if (options.solver_threads > 0) {
    plan.solver_threads = options.solver_threads;
  }
  return plan;
}

}  // namespace

JobServer::JobServer(ServerOptions options)
    : JobServer(options, server_plan(options)) {}

JobServer::JobServer(ServerOptions options, pipeline::ParallelismPlan plan)
    : options_(std::move(options)),
      worker_count_(plan.job_workers),
      solver_threads_(plan.solver_threads),
      owned_registry_(options_.registry != nullptr
                          ? nullptr
                          : std::make_unique<obs::MetricsRegistry>()),
      registry_(options_.registry != nullptr ? options_.registry
                                             : owned_registry_.get()),
      traces_(options_.trace_capacity, options_.trace_file),
      queue_(options_.queue_capacity, registry_),
      store_(make_storage(options_, registry_)),
      session_pool_(options_.pool),
      campaigns_(*this, *registry_),
      pool_(worker_count_) {
  jobs_submitted_ = &registry_->counter("phes_jobs_submitted_total");
  jobs_done_ = &registry_->counter("phes_jobs_done_total");
  jobs_failed_ = &registry_->counter("phes_jobs_failed_total");
  jobs_cancelled_ = &registry_->counter("phes_jobs_cancelled_total");
  queue_wait_hist_ = &registry_->histogram("phes_job_queue_wait_seconds");
  job_total_hist_ = &registry_->histogram("phes_job_total_seconds");
  for (std::size_t i = 0; i < stage_hist_.size(); ++i) {
    stage_hist_[i] = &registry_->histogram(
        std::string("phes_stage_seconds_") +
        pipeline::stage_name(static_cast<pipeline::Stage>(i)));
  }
  // A durable store may have recovered records from a previous process
  // lifetime; new ids must continue above them, or a restart would
  // reissue an id that still names a stored result.
  next_id_.store(store_.max_seen_id() + 1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    pool_.submit([this] { worker_loop(); });
  }
}

JobServer::~JobServer() { shutdown(true); }

std::uint64_t JobServer::submit(pipeline::PipelineJob job) {
  if (!accepting()) {
    throw std::runtime_error("JobServer::submit: server is shutting down");
  }
  const std::uint64_t id = next_id_.fetch_add(1);
  job.id = id;
  const std::string name = job.name.empty() ? job.input_path : job.name;
  store_.add(id, name);
  // Persist the replayable input spec (empty for samples-direct jobs);
  // best-effort — a failed write costs replayability, not admission.
  store_.note_input(id, pipeline::write_job_spec_json(job));
  const auto flag = std::make_shared<std::atomic<bool>>(false);
  {
    util::MutexLock lock(flags_mutex_);
    cancel_flags_[id] = flag;
  }
  jobs_submitted_->add();
  // Backpressure: blocks while the queue is full.  The record already
  // exists, so clients polling `status` see the job as queued.
  if (!queue_.push(QueuedJob{id, std::move(job), util::unix_seconds(),
                             std::chrono::steady_clock::now()})) {
    // Shutdown closed the queue while we were blocked.
    store_.mark_cancelled(id);
    {
      util::MutexLock lock(flags_mutex_);
      cancel_flags_.erase(id);
    }
    notify_finished();
    throw std::runtime_error("JobServer::submit: server is shutting down");
  }
  // Close the submit/abort race: a submission that slipped past the
  // accepting() gate while shutdown(false) swept the cancel flags must
  // not run — self-flag so the worker cancels it at its first stage.
  if (aborting_.load(std::memory_order_acquire)) {
    flag->store(true, std::memory_order_release);
  }
  return id;
}

bool JobServer::cancel(std::uint64_t id) {
  // Still queued: pull it out before a worker sees it.
  if (queue_.remove(id)) {
    store_.mark_cancelled(id);
    {
      util::MutexLock lock(flags_mutex_);
      cancel_flags_.erase(id);
    }
    notify_finished();
    return true;
  }
  // Popped (or being popped): flag it so the pipeline stops at its next
  // stage boundary.  The flag also covers the pop/mark_running window.
  const auto state = store_.state(id);
  if (!state || is_terminal(*state)) return false;
  if (const auto flag = cancel_flag(id)) {
    flag->store(true, std::memory_order_release);
    return true;
  }
  return false;
}

std::shared_ptr<std::atomic<bool>> JobServer::cancel_flag(
    std::uint64_t id) const {
  util::MutexLock lock(flags_mutex_);
  const auto it = cancel_flags_.find(id);
  return it == cancel_flags_.end() ? nullptr : it->second;
}

std::optional<JobRecord> JobServer::status(std::uint64_t id) const {
  return store_.get(id);
}

std::vector<JobRecord> JobServer::jobs() const { return store_.all(); }

std::optional<ResultStore::JobSummary> JobServer::job_summary(
    std::uint64_t id) const {
  return store_.summary(id);
}

std::vector<ResultStore::JobSummary> JobServer::job_summaries() const {
  return store_.summaries();
}

std::optional<pipeline::PipelineResult> JobServer::result(
    std::uint64_t id) const {
  const auto record = store_.get(id);
  if (!record || !is_terminal(record->state)) return std::nullopt;
  return record->result;
}

bool JobServer::wait(std::uint64_t id, double timeout_seconds) {
  // Unknown ids (never submitted, or finished + evicted by the result
  // store's retention cap) must fail fast, not block forever.
  const auto finished_or_gone = [&] {
    const auto state = store_.state(id);
    return !state || is_terminal(*state);
  };
  {
    util::MutexLock lock(finished_mutex_);
    if (timeout_seconds <= 0.0) {
      finished_cv_.wait(finished_mutex_, finished_or_gone);
    } else if (!finished_cv_.wait_for(
                   finished_mutex_,
                   std::chrono::duration<double>(timeout_seconds),
                   finished_or_gone)) {
      return false;
    }
  }
  const auto state = store_.state(id);
  return state && is_terminal(*state);
}

void JobServer::shutdown(bool drain) {
  {
    util::MutexLock lock(shutdown_mutex_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  accepting_.store(false, std::memory_order_release);
  if (!drain) {
    // Abort: cancel the backlog and ask in-flight jobs to stop at
    // their next stage boundary.  `aborting_` is published first so a
    // submit racing past the accepting() gate self-flags (see submit).
    aborting_.store(true, std::memory_order_release);
    util::MutexLock lock(flags_mutex_);
    for (auto& item : queue_.drain()) {
      store_.mark_cancelled(item.id);
      // Drained jobs never reach run_one, so reap their flags here.
      cancel_flags_.erase(item.id);
    }
    for (auto& [id, flag] : cancel_flags_) {
      flag->store(true, std::memory_order_release);
    }
  }
  // Wake blocked producers/consumers; workers drain what remains (the
  // whole backlog when draining, nothing otherwise) and exit.
  queue_.close();
  pool_.wait_idle();
  notify_finished();
}

void JobServer::notify_finished() {
  { util::MutexLock lock(finished_mutex_); }
  finished_cv_.notify_all();
}

void JobServer::worker_loop() {
  while (auto item = queue_.pop()) {
    run_one(std::move(*item));
  }
}

void JobServer::run_one(QueuedJob item) {
  const std::uint64_t id = item.id;
  const double queue_wait_seconds =
      item.enqueued_at == std::chrono::steady_clock::time_point{}
          ? 0.0  // item was hand-built without timestamps (tests)
          : std::chrono::duration<double>(
                std::chrono::steady_clock::now() - item.enqueued_at)
                .count();
  const auto flag = cancel_flag(id);
  if (!store_.mark_running(id)) {
    // The record went terminal while queued (cancel race): drop it.
    {
      util::MutexLock lock(flags_mutex_);
      cancel_flags_.erase(id);
    }
    notify_finished();
    return;
  }

  pipeline::PipelineContext context;
  if (options_.share_sessions) context.session_pool = &session_pool_;
  context.cancel = flag.get();
  context.on_stage_start = [this, id](pipeline::Stage stage) {
    store_.set_stage(id, stage);
    if (stage_observer_) stage_observer_(id, stage);
  };

  item.job.options.solver.threads = solver_threads_;

  queue_wait_hist_->observe(queue_wait_seconds);
  const double started_unix = util::unix_seconds();

  pipeline::PipelineResult result;
  try {
    result = pipeline::run_pipeline(item.job, context);
  } catch (const std::exception& e) {
    // run_pipeline captures stage errors itself; this is the last line
    // of defence (allocation failure and the like).
    result.name = item.job.name.empty() ? item.job.input_path
                                        : item.job.name;
    result.id = id;
    result.ok = false;
    result.error = e.what();
  }

  // Worker-layer metrics + the per-job trace, assembled before the
  // result is moved into the store.
  for (const pipeline::StageTiming& timing : result.stage_timings) {
    stage_hist_[static_cast<std::size_t>(timing.stage)]->observe(
        timing.seconds);
  }
  job_total_hist_->observe(result.total_seconds);
  (result.cancelled ? jobs_cancelled_
   : result.ok      ? jobs_done_
                    : jobs_failed_)
      ->add();
  JobTrace trace = build_job_trace(result, item.submitted_unix,
                                   started_unix,
                                   queue_wait_seconds * 1e3);
  if (options_.slow_job_ms > 0.0 &&
      result.total_seconds * 1e3 >= options_.slow_job_ms) {
    log_slow_job(trace);
  }
  traces_.record(std::move(trace));

  store_.finish(id, std::move(result));
  {
    util::MutexLock lock(flags_mutex_);
    cancel_flags_.erase(id);
  }
  notify_finished();
}

void JobServer::log_slow_job(const JobTrace& trace) const {
  std::ostringstream os;
  os << "[slow-job] id=" << trace.id << " name='" << trace.name
     << "' status=" << trace.status << " total=" << trace.total_ms
     << "ms queue_wait=" << trace.queue_wait_ms << "ms stages:";
  for (const StageSpan& span : trace.spans) {
    os << ' ' << span.stage << '=' << span.duration_ms << "ms";
    if (span.matvecs > 0) {
      os << "(matvecs=" << span.matvecs
         << ",cache=" << span.cache_hits << '/' << span.cache_misses
         << ",fact=" << span.factorizations << ')';
    }
  }
  os << " session: solves=" << trace.solves << " warm=" << trace.warm_solves
     << " cache=" << trace.cache_hits << '/' << trace.cache_misses;
  util::log_line("slow-job", os.str());
}

ServerStats JobServer::stats() const {
  ServerStats s;
  s.submitted = static_cast<std::size_t>(jobs_submitted_->value());
  s.workers = worker_count_;
  s.solver_threads = solver_threads_;
  s.queue = queue_.stats();
  s.pool = session_pool_.stats();
  s.storage = store_.storage_stats();
  s.states = store_.state_counts();
  return s;
}

void JobServer::set_stage_observer(
    std::function<void(std::uint64_t, pipeline::Stage)> observer) {
  stage_observer_ = std::move(observer);
}

}  // namespace phes::server
