#include "phes/server/campaign.hpp"

#include <stdexcept>
#include <utility>

#include "phes/pipeline/report.hpp"
#include "phes/server/server.hpp"

namespace phes::server {

namespace {

const char kDeltaIdentical[] = "bit-identical";
const char kDeltaNumeric[] = "numerically-changed";
const char kDeltaState[] = "state-changed";

}  // namespace

CampaignRunner::CampaignRunner(JobServer& server,
                               obs::MetricsRegistry& registry)
    : server_(server) {
  started_ = &registry.counter("phes_campaign_started_total");
  completed_ = &registry.counter("phes_campaign_completed_total");
  replayed_ = &registry.counter("phes_campaign_replayed_total");
  skipped_ = &registry.counter("phes_campaign_skipped_total");
  delta_identical_ = &registry.counter("phes_campaign_delta_identical_total");
  delta_numeric_ = &registry.counter("phes_campaign_delta_numeric_total");
  delta_state_ = &registry.counter("phes_campaign_delta_state_total");
}

std::optional<pipeline::PipelineJob> CampaignRunner::rebuild(
    std::uint64_t source_id, std::string& reason) const {
  const auto spec = server_.stored_input(source_id);
  if (!spec) {
    reason = "no stored input";
    return std::nullopt;
  }
  try {
    return pipeline::read_job_spec_json(*spec,
                                        server_.options().job_defaults);
  } catch (const std::exception& e) {
    reason = std::string("unparsable input spec: ") + e.what();
    return std::nullopt;
  }
}

CampaignRunner::StartResult CampaignRunner::start(
    const ReplayFilter& filter) {
  // Resolve the filter to candidate ids.  The single-id form is strict
  // (the caller named the record, so a miss is an error); the filter
  // form quietly selects whatever matches.
  std::vector<std::uint64_t> candidates;
  if (filter.id) {
    const auto summary = server_.job_summary(*filter.id);
    if (!summary) {
      throw std::runtime_error("replay: unknown job id " +
                               std::to_string(*filter.id));
    }
    if (!is_terminal(summary->state)) {
      throw std::runtime_error("replay: job " + std::to_string(*filter.id) +
                               " has not finished (state " +
                               job_state_name(summary->state) + ")");
    }
    candidates.push_back(*filter.id);
  } else {
    for (const auto& summary : server_.job_summaries()) {
      if (!is_terminal(summary.state)) continue;
      if (!filter.state.empty() &&
          filter.state != job_state_name(summary.state)) {
        continue;
      }
      if (filter.min_id != 0 && summary.id < filter.min_id) continue;
      if (filter.max_id != 0 && summary.id > filter.max_id) continue;
      candidates.push_back(summary.id);
    }
  }

  StartResult out;
  std::vector<Tracked> tracked;
  const auto skip = [&](std::uint64_t source, std::string reason) {
    out.skipped.push_back(CampaignSkip{source, std::move(reason)});
    skipped_->add();
  };
  for (const std::uint64_t source : candidates) {
    std::string reason;
    auto job = rebuild(source, reason);
    if (!job) {
      skip(source, std::move(reason));
      continue;
    }
    // A model-hash mismatch means the filter did not select this
    // record — it is not a skip.
    if (!filter.model.empty() &&
        pipeline::input_content_hash(*job) != filter.model) {
      continue;
    }
    const auto record = server_.status(source);
    if (!record || !is_terminal(record->state)) {
      // Retention (or a restart race) took the record between the
      // summary scan and here.
      skip(source, "stored record no longer available");
      continue;
    }
    if (record->result.error.rfind(kUnreadableResultPrefix, 0) == 0) {
      // Corrupt/missing payload: there is no baseline to diff against.
      skip(source, record->result.error);
      continue;
    }
    Tracked t;
    t.entry.source_id = source;
    t.entry.name = record->name;
    t.entry.status_before = record->result.status();
    t.stored_signature = pipeline::result_signature(record->result);
    // Admission outside the campaign mutex: submit blocks on queue
    // backpressure, and a full queue must not wedge status() calls.
    try {
      t.entry.replay_id = server_.submit(std::move(*job));
    } catch (const std::exception& e) {
      skip(source, std::string("submit failed: ") + e.what());
      continue;
    }
    replayed_->add();
    tracked.push_back(std::move(t));
  }
  started_->add();

  util::MutexLock lock(mutex_);
  out.campaign_id = next_campaign_id_++;
  Campaign& campaign = campaigns_[out.campaign_id];
  campaign.tracked = std::move(tracked);
  campaign.skipped = out.skipped;
  out.entries.reserve(campaign.tracked.size());
  for (const Tracked& t : campaign.tracked) out.entries.push_back(t.entry);
  return out;
}

std::uint64_t CampaignRunner::resubmit(std::uint64_t source_id) {
  const auto summary = server_.job_summary(source_id);
  if (!summary) {
    throw std::runtime_error("resubmit: unknown job id " +
                             std::to_string(source_id));
  }
  if (!is_terminal(summary->state)) {
    throw std::runtime_error("resubmit: job " + std::to_string(source_id) +
                             " has not finished (state " +
                             job_state_name(summary->state) + ")");
  }
  std::string reason;
  auto job = rebuild(source_id, reason);
  if (!job) {
    throw std::runtime_error("resubmit: job " + std::to_string(source_id) +
                             ": " + reason);
  }
  return server_.submit(std::move(*job));
}

std::optional<CampaignStatus> CampaignRunner::status(
    std::uint64_t campaign_id) {
  util::MutexLock lock(mutex_);
  const auto it = campaigns_.find(campaign_id);
  if (it == campaigns_.end()) return std::nullopt;
  Campaign& campaign = it->second;

  // Lazy classification: entries are diffed the first time a status
  // poll sees their replayed job terminal, and each delta counter is
  // bumped exactly once per entry.
  for (Tracked& t : campaign.tracked) {
    if (t.classified) continue;
    const auto record = server_.status(t.entry.replay_id);
    if (!record || !is_terminal(record->state)) continue;
    t.entry.status_after = record->result.status();
    const std::string signature =
        pipeline::result_signature(record->result);
    if (signature == t.stored_signature) {
      t.entry.delta = kDeltaIdentical;
      delta_identical_->add();
    } else if (t.entry.status_after != t.entry.status_before) {
      t.entry.delta = kDeltaState;
      delta_state_->add();
    } else {
      t.entry.delta = kDeltaNumeric;
      delta_numeric_->add();
    }
    t.classified = true;
  }

  CampaignStatus s;
  s.id = campaign_id;
  s.total = campaign.tracked.size();
  s.entries.reserve(campaign.tracked.size());
  for (const Tracked& t : campaign.tracked) {
    if (t.classified) {
      ++s.completed;
      if (t.entry.delta == kDeltaIdentical) {
        ++s.identical;
      } else if (t.entry.delta == kDeltaNumeric) {
        ++s.numeric;
      } else {
        ++s.state_changed;
      }
    }
    s.entries.push_back(t.entry);
  }
  s.skipped = campaign.skipped;
  s.done = s.completed == s.total;
  if (s.done && !campaign.completed_counted) {
    campaign.completed_counted = true;
    completed_->add();
  }
  return s;
}

}  // namespace phes::server
