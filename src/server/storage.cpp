#include "phes/server/storage.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "phes/pipeline/report.hpp"
#include "phes/util/json.hpp"
#include "phes/util/log.hpp"
#include "phes/util/timer.hpp"

namespace phes::server {

namespace fs = std::filesystem;

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

namespace {

JobState parse_job_state(const std::string& name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  throw std::runtime_error("unknown job state '" + name + "'");
}

double unix_now() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Locale-independent double rendering for journal timestamps.
std::string fmt_unix(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", value);
  return buf;
}

}  // namespace

// ---- MemoryStorage ----------------------------------------------------

MemoryStorage::MemoryStorage(std::size_t max_finished,
                             obs::MetricsRegistry* registry)
    : max_finished_(std::max<std::size_t>(1, max_finished)) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  evicted_ = &registry->counter("phes_store_evicted_total");
  records_gauge_ = &registry->gauge("phes_store_records");
  put_hist_ = &registry->histogram("phes_store_put_seconds");
}

void MemoryStorage::put(const JobRecord& record) {
  const util::WallTimer timer;
  records_[record.id] = record;
  while (records_.size() > max_finished_) {
    inputs_.erase(records_.begin()->first);
    records_.erase(records_.begin());
    evicted_->add();
  }
  records_gauge_->set(static_cast<std::int64_t>(records_.size()));
  put_hist_->observe(timer.seconds());
}

void MemoryStorage::note_input(std::uint64_t id,
                               const std::string& spec_json) {
  inputs_[id] = spec_json;
}

std::optional<std::string> MemoryStorage::input(std::uint64_t id) const {
  const auto it = inputs_.find(id);
  if (it == inputs_.end()) return std::nullopt;
  return it->second;
}

std::optional<JobRecord> MemoryStorage::get(std::uint64_t id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::optional<JobState> MemoryStorage::state(std::uint64_t id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second.state;
}

namespace {

JobSummary summarize_record(const JobRecord& rec) {
  JobSummary s;
  s.id = rec.id;
  s.name = rec.name;
  s.state = rec.state;
  s.stage = rec.stage;
  s.stage_known = rec.stage_known;
  if (is_terminal(rec.state)) s.status = rec.result.status();
  return s;
}

}  // namespace

std::optional<JobSummary> MemoryStorage::summary(std::uint64_t id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return summarize_record(it->second);
}

std::vector<JobSummary> MemoryStorage::summaries() const {
  std::vector<JobSummary> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(summarize_record(rec));
  return out;
}

std::vector<JobRecord> MemoryStorage::all() const {
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  return out;
}

std::vector<std::size_t> MemoryStorage::state_counts() const {
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(JobState::kCancelled) + 1, 0);
  for (const auto& [id, rec] : records_) {
    ++counts[static_cast<std::size_t>(rec.state)];
  }
  return counts;
}

std::size_t MemoryStorage::size() const { return records_.size(); }

StorageStats MemoryStorage::stats() const {
  StorageStats s;
  s.durable = false;
  s.records = records_.size();
  s.evicted = static_cast<std::size_t>(evicted_->value());
  return s;
}

// ---- DiskStorage ------------------------------------------------------

DiskStorage::DiskStorage(std::string dir, DiskStorageOptions options,
                         obs::MetricsRegistry* registry)
    : dir_(std::move(dir)), options_(options) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  evicted_ = &registry->counter("phes_store_evicted_total");
  recovered_ = &registry->counter("phes_store_recovered_total");
  lost_ = &registry->counter("phes_store_lost_total");
  records_gauge_ = &registry->gauge("phes_store_records");
  bytes_gauge_ = &registry->gauge("phes_store_bytes");
  put_hist_ = &registry->histogram("phes_store_put_seconds");
  get_hist_ = &registry->histogram("phes_store_get_seconds");
  journal_hist_ = &registry->histogram("phes_store_journal_append_seconds");
  replay_hist_ = &registry->histogram("phes_store_replay_seconds");
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "jobs", ec);
  if (ec) {
    throw std::runtime_error("DiskStorage: cannot create '" + dir_ +
                             "/jobs': " + ec.message());
  }
  fs::create_directories(fs::path(dir_) / "inputs", ec);
  if (ec) {
    throw std::runtime_error("DiskStorage: cannot create '" + dir_ +
                             "/inputs': " + ec.message());
  }
  {
    const util::WallTimer replay_timer;
    recover();
    replay_hist_->observe(replay_timer.seconds());
  }
  compact_index();
  index_.open(fs::path(dir_) / "index.ndjson",
              std::ios::app | std::ios::binary);
  if (!index_) {
    throw std::runtime_error("DiskStorage: cannot append to '" + dir_ +
                             "/index.ndjson'");
  }
}

std::string DiskStorage::job_path(std::uint64_t id) const {
  return (fs::path(dir_) / "jobs" / ("job-" + std::to_string(id) + ".json"))
      .string();
}

std::string DiskStorage::input_path(std::uint64_t id) const {
  return (fs::path(dir_) / "inputs" /
          ("job-" + std::to_string(id) + ".json"))
      .string();
}

void DiskStorage::note_input(std::uint64_t id, const std::string& spec_json) {
  // Best-effort by contract: this runs inside the submit path, where a
  // full disk must cost the job its replayability, not its admission.
  std::ofstream out(input_path(id), std::ios::trunc | std::ios::binary);
  if (out) {
    out << spec_json << '\n';
    out.flush();
  }
  if (!out) {
    util::log_line("storage", "input spec write failed on '" +
                                  input_path(id) +
                                  "'; job will not be replayable");
  }
}

std::optional<std::string> DiskStorage::input(std::uint64_t id) const {
  std::ifstream in(input_path(id), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream contents;
  contents << in.rdbuf();
  std::string spec = contents.str();
  // Strip the trailing newline note_input appends.
  while (!spec.empty() && (spec.back() == '\n' || spec.back() == '\r')) {
    spec.pop_back();
  }
  if (spec.empty()) return std::nullopt;
  return spec;
}

void DiskStorage::append_event(const std::string& line) {
  const util::WallTimer timer;
  if (!index_) index_.clear();  // a past failure must not wedge appends
  index_ << line << '\n';
  // One flush per event: the journal must reflect the admission before
  // the submit ack can reach a client, else a crash loses the job
  // silently instead of marking it lost.
  index_.flush();
  // A failed append (disk full, quota) is survivable, not fatal: the
  // payload file is already on disk and recover() salvages it even
  // without its finish event — so warn, clear the stream, keep going.
  if (!index_) {
    util::log_line("storage", "journal append failed on '" + dir_ +
                                  "/index.ndjson'; continuing without "
                                  "the event");
    index_.clear();
  }
  journal_hist_->observe(timer.seconds());
}

void DiskStorage::note_admitted(std::uint64_t id, const std::string& name) {
  pending_[id] = name;
  max_seen_id_ = std::max(max_seen_id_, id);
  append_event("{\"event\": \"add\", \"id\": " + std::to_string(id) +
               ", \"name\": \"" + pipeline::json_escape(name) + "\"}");
}

void DiskStorage::write_record(const JobRecord& record,
                               double finished_unix) {
  std::ostringstream doc;
  pipeline::write_job_json(record.result, doc);
  const std::string payload = doc.str();
  {
    std::ofstream out(job_path(record.id),
                      std::ios::trunc | std::ios::binary);
    if (!out) {
      throw std::runtime_error("DiskStorage: cannot write '" +
                               job_path(record.id) + "'");
    }
    out << payload << '\n';
    out.flush();
    if (!out) {
      throw std::runtime_error("DiskStorage: failed writing '" +
                               job_path(record.id) + "'");
    }
  }

  Entry entry;
  entry.name = record.name;
  entry.state = record.state;
  entry.stage = record.stage;
  entry.stage_known = record.stage_known;
  entry.status = record.result.status();
  entry.bytes = payload.size() + 1;
  entry.finished_unix = finished_unix;

  const auto it = entries_.find(record.id);
  if (it != entries_.end()) total_bytes_ -= it->second.bytes;
  total_bytes_ += entry.bytes;
  entries_[record.id] = std::move(entry);
  pending_.erase(record.id);
  max_seen_id_ = std::max(max_seen_id_, record.id);
  records_gauge_->set(static_cast<std::int64_t>(entries_.size()));
  bytes_gauge_->set(static_cast<std::int64_t>(total_bytes_));
}

void DiskStorage::put(const JobRecord& record) {
  const util::WallTimer timer;
  const double now = unix_now();
  write_record(record, now);
  const Entry& entry = entries_[record.id];
  std::ostringstream ev;
  ev << "{\"event\": \"finish\", \"id\": " << record.id << ", \"name\": \""
     << pipeline::json_escape(entry.name) << "\", \"state\": \""
     << job_state_name(entry.state) << "\"";
  if (entry.stage_known) {
    ev << ", \"stage\": \"" << pipeline::stage_name(entry.stage) << "\"";
  }
  ev << ", \"status\": \"" << pipeline::json_escape(entry.status)
     << "\", \"bytes\": " << entry.bytes
     << ", \"unix_time\": " << fmt_unix(entry.finished_unix) << "}";
  append_event(ev.str());
  enforce_retention(now);
  put_hist_->observe(timer.seconds());
}

void DiskStorage::evict(std::uint64_t id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  total_bytes_ -= it->second.bytes;
  entries_.erase(it);
  evicted_->add();
  records_gauge_->set(static_cast<std::int64_t>(entries_.size()));
  bytes_gauge_->set(static_cast<std::int64_t>(total_bytes_));
  std::error_code ec;
  fs::remove(job_path(id), ec);  // best-effort; the journal is truth
  fs::remove(input_path(id), ec);
  append_event("{\"event\": \"evict\", \"id\": " + std::to_string(id) + "}");
}

void DiskStorage::enforce_retention(double now_unix) {
  if (options_.ttl_seconds > 0.0) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      const std::uint64_t id = it->first;
      const bool expired =
          now_unix - it->second.finished_unix > options_.ttl_seconds;
      ++it;  // evict() invalidates the current iterator
      if (expired) evict(id);
    }
  }
  if (options_.max_bytes > 0) {
    while (total_bytes_ > options_.max_bytes && !entries_.empty()) {
      evict(entries_.begin()->first);
    }
  }
}

void DiskStorage::recover() {
  const fs::path index_path = fs::path(dir_) / "index.ndjson";
  std::map<std::uint64_t, std::string> pending;
  {
    std::ifstream in(index_path, std::ios::binary);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      // Tolerate a torn tail line (crash mid-append): skip what does
      // not parse instead of refusing to start.
      try {
        const util::JsonValue ev = util::JsonValue::parse(line);
        const std::string event = ev.string_or("event", "");
        const std::uint64_t id = ev.uint_or("id", 0);
        if (id == 0) continue;
        max_seen_id_ = std::max(max_seen_id_, id);
        if (event == "add") {
          pending[id] = ev.string_or("name", "");
        } else if (event == "finish") {
          pending.erase(id);
          Entry entry;
          entry.name = ev.string_or("name", "");
          entry.state = parse_job_state(ev.string_or("state", "done"));
          if (const util::JsonValue* stage = ev.find("stage")) {
            entry.stage = pipeline::parse_stage(stage->as_string());
            entry.stage_known = true;
          }
          entry.status = ev.string_or("status", "");
          entry.bytes = static_cast<std::size_t>(ev.uint_or("bytes", 0));
          entry.finished_unix = ev.number_or("unix_time", 0.0);
          const auto it = entries_.find(id);
          if (it != entries_.end()) total_bytes_ -= it->second.bytes;
          total_bytes_ += entry.bytes;
          entries_[id] = std::move(entry);
        } else if (event == "evict") {
          const auto it = entries_.find(id);
          if (it != entries_.end()) {
            total_bytes_ -= it->second.bytes;
            entries_.erase(it);
          }
        }
      } catch (const std::exception&) {
        continue;
      }
    }
  }
  recovered_->add(entries_.size());
  records_gauge_->set(static_cast<std::int64_t>(entries_.size()));
  bytes_gauge_->set(static_cast<std::int64_t>(total_bytes_));

  // Jobs admitted but never finished died with the previous process.
  // First try to salvage: the payload may have been written even
  // though the finish event never made the journal (crash or failed
  // append between the two writes) — a readable payload must never be
  // overwritten with a synthetic failure.  Otherwise persist a
  // definitive lost record so `status`/`result` answer "failed: lost
  // in restart" rather than "unknown id" forever.
  for (const auto& [id, name] : pending) {
    JobRecord record;
    record.id = id;
    record.name = name;
    bool salvaged = false;
    if (std::ifstream in{job_path(id), std::ios::binary}) {
      std::ostringstream contents;
      contents << in.rdbuf();
      try {
        record.result = pipeline::read_job_json(contents.str());
        record.state = record.result.cancelled ? JobState::kCancelled
                       : record.result.ok      ? JobState::kDone
                                               : JobState::kFailed;
        salvaged = true;
        recovered_->add();
      } catch (const std::exception&) {
        record.result = pipeline::PipelineResult{};
      }
    }
    if (!salvaged) {
      record.state = JobState::kFailed;
      record.result.id = id;
      record.result.name = name;
      record.result.ok = false;
      record.result.error =
          "job lost in server restart (was queued or running)";
      record.result.failed_stage = pipeline::Stage::kLoad;
      lost_->add();
    }
    write_record(record, unix_now());
  }
  enforce_retention(unix_now());
}

void DiskStorage::compact_index() {
  // Rewrite the journal as one finish event per live record so it
  // cannot grow without bound across restarts; the rename is the
  // atomic cut-over.
  const fs::path index_path = fs::path(dir_) / "index.ndjson";
  const fs::path tmp_path = fs::path(dir_) / "index.ndjson.tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
    if (!out) {
      throw std::runtime_error("DiskStorage: cannot write '" +
                               tmp_path.string() + "'");
    }
    for (const auto& [id, entry] : entries_) {
      out << "{\"event\": \"finish\", \"id\": " << id << ", \"name\": \""
          << pipeline::json_escape(entry.name) << "\", \"state\": \""
          << job_state_name(entry.state) << "\"";
      if (entry.stage_known) {
        out << ", \"stage\": \"" << pipeline::stage_name(entry.stage)
            << "\"";
      }
      out << ", \"status\": \"" << pipeline::json_escape(entry.status)
          << "\", \"bytes\": " << entry.bytes
          << ", \"unix_time\": " << fmt_unix(entry.finished_unix) << "}\n";
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("DiskStorage: failed writing '" +
                               tmp_path.string() + "'");
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, index_path, ec);
  if (ec) {
    throw std::runtime_error("DiskStorage: cannot replace journal: " +
                             ec.message());
  }
}

std::optional<JobRecord> DiskStorage::get(std::uint64_t id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  const util::WallTimer timer;
  const Entry& entry = it->second;
  JobRecord record;
  record.id = id;
  record.name = entry.name;
  record.state = entry.state;
  record.stage = entry.stage;
  record.stage_known = entry.stage_known;
  std::ifstream in(job_path(id), std::ios::binary);
  if (in) {
    std::ostringstream contents;
    contents << in.rdbuf();
    try {
      record.result = pipeline::read_job_json(contents.str());
      get_hist_->observe(timer.seconds());
      return record;
    } catch (const std::exception&) {
      // fall through to the synthesized error record
    }
  }
  // The journal says the record exists but its payload is gone or
  // corrupt: serve a definitive failure rather than dropping the id.
  record.result.id = id;
  record.result.name = entry.name;
  record.result.ok = false;
  record.result.cancelled = entry.state == JobState::kCancelled;
  record.result.error = kUnreadableResultPrefix + job_path(id);
  get_hist_->observe(timer.seconds());
  return record;
}

std::optional<JobState> DiskStorage::state(std::uint64_t id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.state;
}

JobSummary DiskStorage::summarize(std::uint64_t id, const Entry& entry) {
  JobSummary s;
  s.id = id;
  s.name = entry.name;
  s.state = entry.state;
  s.stage = entry.stage;
  s.stage_known = entry.stage_known;
  s.status = entry.status;
  return s;
}

std::optional<JobSummary> DiskStorage::summary(std::uint64_t id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return summarize(id, it->second);
}

std::vector<JobSummary> DiskStorage::summaries() const {
  std::vector<JobSummary> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.push_back(summarize(id, entry));
  }
  return out;
}

std::vector<JobRecord> DiskStorage::all() const {
  std::vector<JobRecord> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (auto record = get(id)) out.push_back(std::move(*record));
  }
  return out;
}

std::vector<std::size_t> DiskStorage::state_counts() const {
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(JobState::kCancelled) + 1, 0);
  for (const auto& [id, entry] : entries_) {
    ++counts[static_cast<std::size_t>(entry.state)];
  }
  return counts;
}

std::size_t DiskStorage::size() const { return entries_.size(); }

StorageStats DiskStorage::stats() const {
  StorageStats s;
  s.durable = true;
  s.records = entries_.size();
  s.bytes = total_bytes_;
  s.evicted = static_cast<std::size_t>(evicted_->value());
  s.recovered = static_cast<std::size_t>(recovered_->value());
  s.lost = static_cast<std::size_t>(lost_->value());
  return s;
}

}  // namespace phes::server
