#include "phes/server/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "phes/server/protocol.hpp"
#include "phes/server/server.hpp"

namespace phes::server {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path '" + path +
                             "' is empty or too long for sockaddr_un");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Write all of `data` (+ '\n') to fd; false on any failure.
/// MSG_NOSIGNAL: a peer that disconnected before reading must produce
/// EPIPE (this connection ends), not a process-killing SIGPIPE.
bool write_line(int fd, const std::string& data) {
  std::string out = data;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read up to the next '\n' using `carry` as the cross-call buffer.
/// False on EOF/error before a full line arrived.
bool read_line(int fd, std::string& carry, std::string& line) {
  for (;;) {
    const std::size_t nl = carry.find('\n');
    if (nl != std::string::npos) {
      line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    carry.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace

// ---- SocketServer -----------------------------------------------------

SocketServer::SocketServer(JobServer& server, std::string socket_path)
    : server_(server), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  const sockaddr_un addr = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket()");
  // A leftover socket file from a crashed server would fail the bind;
  // probe it with a connect so a *live* server is never displaced.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    if (errno != EADDRINUSE) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind(" + path_ + ")");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    const bool alive =
        probe >= 0 &&
        ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0;
    if (probe >= 0) ::close(probe);
    if (alive) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("socket '" + path_ +
                               "' already has a live server");
    }
    ::unlink(path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw_errno("bind(" + path_ + ")");
    }
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    throw_errno("listen(" + path_ + ")");
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SocketServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed (stop()) or fatal: exit the loop
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    reap_finished_connections();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::make_unique<Connection>());
    Connection& connection = *connections_.back();
    connection.fd = fd;
    connection.thread =
        std::thread([this, &connection] { serve_connection(connection); });
  }
}

void SocketServer::serve_connection(Connection& connection) {
  const int fd = connection.fd;
  std::string carry;
  std::string line;
  while (read_line(fd, carry, line)) {
    const RequestOutcome outcome = handle_request(server_, line);
    if (!write_line(fd, outcome.response)) break;
    if (outcome.shutdown_requested) {
      // Ack already flushed; surface the request and stop reading so
      // the owner can tear the transport down.
      note_shutdown(outcome.drain);
      break;
    }
  }
  // Mark done BEFORE closing: once closed, the fd number can be
  // recycled for a new connection, and stop() must never shut a new
  // connection's fd down through this stale record.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection.fd = -1;
    connection.done.store(true, std::memory_order_release);
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void SocketServer::reap_finished_connections() {
  std::list<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void SocketServer::note_shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
    drain_ = drain;
  }
  shutdown_cv_.notify_all();
}

bool SocketServer::wait_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
  return drain_;
}

bool SocketServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  return shutdown_requested_;
}

void SocketServer::stop() {
  if (!started_) return;
  const bool already = stopping_.exchange(true);
  if (!already) {
    // Unblock accept(): shutdown+close the listening socket.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (accept_thread_.joinable()) accept_thread_.join();
    // Kick every live connection out of read(); done connections have
    // already invalidated their fd (set to -1 under the lock), so a
    // recycled descriptor number is never shut down by mistake.
    std::list<std::unique_ptr<Connection>> remaining;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (const auto& connection : connections_) {
        if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
      }
      remaining.swap(connections_);
    }
    for (auto& connection : remaining) {
      if (connection->thread.joinable()) connection->thread.join();
    }
    ::unlink(path_.c_str());
    note_shutdown(true);  // release wait_shutdown() on local stop
  }
}

// ---- Client -----------------------------------------------------------

Client::Client(const std::string& socket_path) {
  const sockaddr_un addr = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket()");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect(" + socket_path + ")");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::request(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  if (!write_line(fd_, line)) throw_errno("Client: write");
  std::string response;
  if (!read_line(fd_, buffer_, response)) {
    throw std::runtime_error("Client: server closed the connection");
  }
  return response;
}

std::string round_trip(const std::string& socket_path,
                       const std::string& line) {
  Client client(socket_path);
  return client.request(line);
}

}  // namespace phes::server
