#include "phes/server/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "net_util.hpp"
#include "phes/server/protocol.hpp"

namespace phes::server {

namespace {

using detail::throw_errno;

/// Write all of `data` (+ '\n') to fd; false on any failure.
/// MSG_NOSIGNAL: a peer that disconnected before reading must produce
/// EPIPE (this connection ends), not a process-killing SIGPIPE.
bool write_line(int fd, const std::string& data) {
  std::string out = data;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read up to the next '\n' using `carry` as the cross-call buffer.
/// False on EOF/error before a full line arrived.
bool read_line(int fd, std::string& carry, std::string& line) {
  for (;;) {
    const std::size_t nl = carry.find('\n');
    if (nl != std::string::npos) {
      line = carry.substr(0, nl);
      carry.erase(0, nl + 1);
      return true;
    }
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    carry.append(buf, static_cast<std::size_t>(n));
  }
}

int connect_unix(const std::string& path) {
  const sockaddr_un addr = detail::make_unix_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* info = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &info);
  if (rc != 0) {
    throw std::runtime_error("getaddrinfo(" + host +
                             "): " + ::gai_strerror(rc));
  }
  int fd = -1;
  int saved = ECONNREFUSED;
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    saved = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  if (fd < 0) {
    errno = saved;
    throw_errno("connect(tcp:" + host + ":" + std::to_string(port) + ")");
  }
  // Request/response over discrete lines: don't let Nagle delay a
  // request behind the previous response's ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("tcp:", 0) != 0) {
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = spec;
    return endpoint;
  }
  const std::size_t colon = spec.rfind(':');
  if (colon == 3 || colon == std::string::npos) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': expected tcp:HOST:PORT");
  }
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = spec.substr(4, colon - 4);
  const std::string port_text = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (endpoint.host.empty() || end == port_text.c_str() || *end != '\0' ||
      port == 0 || port > 65535) {
    throw std::invalid_argument("endpoint '" + spec +
                                "': expected tcp:HOST:PORT");
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

// ---- Client -----------------------------------------------------------

Client::Client(const std::string& socket_path) {
  fd_ = connect_unix(socket_path);
}

Client::Client(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    fd_ = connect_unix(endpoint.path);
    return;
  }
  fd_ = connect_tcp(endpoint.host, endpoint.port);
  if (endpoint.token.empty()) return;
  // Shared-token handshake: the server serves nothing before it.
  std::string response;
  try {
    response = request("{\"op\": \"auth\", \"token\": " +
                       json_quote(endpoint.token) + "}");
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  if (response.find("\"ok\": true") == std::string::npos) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("authentication rejected: " + response);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::request(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("Client: not connected");
  if (!write_line(fd_, line)) throw_errno("Client: write");
  std::string response;
  if (!read_line(fd_, buffer_, response)) {
    throw std::runtime_error("Client: server closed the connection");
  }
  return response;
}

std::string round_trip(const Endpoint& endpoint, const std::string& line) {
  Client client(endpoint);
  return client.request(line);
}

std::string round_trip(const std::string& socket_path,
                       const std::string& line) {
  Client client(socket_path);
  return client.request(line);
}

}  // namespace phes::server
