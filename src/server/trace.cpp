#include "phes/server/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "phes/pipeline/report.hpp"
#include "phes/util/json.hpp"
#include "phes/util/log.hpp"

namespace phes::server {

namespace {

/// Fixed-precision doubles so to_json round-trips byte-identically
/// through from_json (µs resolution on absolute timestamps and
/// millisecond durations is plenty for stage spans).
std::string fmt_fixed(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

double round_fixed(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return std::strtod(buf, nullptr);
}

std::string span_json(const StageSpan& span) {
  std::ostringstream os;
  os << "{\"stage\": \"" << pipeline::json_escape(span.stage)
     << "\", \"start_unix\": " << fmt_fixed(span.start_unix)
     << ", \"duration_ms\": " << fmt_fixed(span.duration_ms)
     << ", \"matvecs\": " << span.matvecs
     << ", \"factorizations\": " << span.factorizations
     << ", \"cache_hits\": " << span.cache_hits
     << ", \"cache_misses\": " << span.cache_misses << "}";
  return os.str();
}

}  // namespace

std::string JobTrace::to_json() const {
  std::ostringstream os;
  os << "{\"event\": \"job_trace\", \"id\": " << id << ", \"name\": \""
     << pipeline::json_escape(name) << "\", \"status\": \""
     << pipeline::json_escape(status)
     << "\", \"submitted_unix\": " << fmt_fixed(submitted_unix)
     << ", \"started_unix\": " << fmt_fixed(started_unix)
     << ", \"queue_wait_ms\": " << fmt_fixed(queue_wait_ms)
     << ", \"total_ms\": " << fmt_fixed(total_ms) << ", \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    os << (i == 0 ? "" : ", ") << span_json(spans[i]);
  }
  os << "], \"session\": {\"solves\": " << solves
     << ", \"warm_solves\": " << warm_solves
     << ", \"factorizations\": " << factorizations
     << ", \"cache_hits\": " << cache_hits
     << ", \"cache_misses\": " << cache_misses << "}}";
  return os.str();
}

JobTrace JobTrace::from_json(const util::JsonValue& v) {
  JobTrace t;
  t.id = v.uint_or("id", 0);
  t.name = v.string_or("name", "");
  t.status = v.string_or("status", "");
  t.submitted_unix = v.number_or("submitted_unix", 0.0);
  t.started_unix = v.number_or("started_unix", 0.0);
  t.queue_wait_ms = v.number_or("queue_wait_ms", 0.0);
  t.total_ms = v.number_or("total_ms", 0.0);
  if (const util::JsonValue* spans = v.find("spans")) {
    for (const util::JsonValue& item : spans->items()) {
      StageSpan span;
      span.stage = item.string_or("stage", "");
      span.start_unix = item.number_or("start_unix", 0.0);
      span.duration_ms = item.number_or("duration_ms", 0.0);
      span.matvecs = item.uint_or("matvecs", 0);
      span.factorizations = item.uint_or("factorizations", 0);
      span.cache_hits = item.uint_or("cache_hits", 0);
      span.cache_misses = item.uint_or("cache_misses", 0);
      t.spans.push_back(std::move(span));
    }
  }
  if (const util::JsonValue* session = v.find("session")) {
    t.solves = session->uint_or("solves", 0);
    t.warm_solves = session->uint_or("warm_solves", 0);
    t.factorizations = session->uint_or("factorizations", 0);
    t.cache_hits = session->uint_or("cache_hits", 0);
    t.cache_misses = session->uint_or("cache_misses", 0);
  }
  return t;
}

JobTrace build_job_trace(const pipeline::PipelineResult& result,
                         double submitted_unix, double started_unix,
                         double queue_wait_ms) {
  JobTrace t;
  t.id = result.id;
  t.name = result.name;
  t.status = result.status();
  t.submitted_unix = round_fixed(submitted_unix);
  t.started_unix = round_fixed(started_unix);
  t.queue_wait_ms = round_fixed(queue_wait_ms);
  t.total_ms = round_fixed(result.total_seconds * 1e3);
  for (const pipeline::StageTiming& timing : result.stage_timings) {
    StageSpan span;
    span.stage = pipeline::stage_name(timing.stage);
    span.start_unix = round_fixed(started_unix + timing.start_seconds);
    span.duration_ms = round_fixed(timing.seconds * 1e3);
    // The eigensolver stages carry their SolverResult's counters: the
    // characterize stage produced the initial report, verify the final
    // one.  (Enforce re-solves internally; its cost shows up in the
    // session totals below.)
    const core::SolverResult* solver = nullptr;
    if (timing.stage == pipeline::Stage::kCharacterize) {
      solver = &result.initial_report.solver;
    } else if (timing.stage == pipeline::Stage::kVerify) {
      solver = &result.final_report.solver;
    }
    if (solver != nullptr) {
      span.matvecs = solver->total_matvecs;
      span.factorizations = solver->factorizations;
      span.cache_hits = solver->cache_hits;
      span.cache_misses = solver->cache_misses;
    }
    t.spans.push_back(std::move(span));
  }
  t.solves = result.session.solves;
  t.warm_solves = result.session.warm_solves;
  t.factorizations = result.session.factorizations;
  t.cache_hits = result.session.cache.hits;
  t.cache_misses = result.session.cache.misses;
  return t;
}

TraceStore::TraceStore(std::size_t capacity, const std::string& trace_file)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  if (!trace_file.empty()) {
    file_.open(trace_file, std::ios::app);
    file_ok_ = file_.good();
    if (!file_ok_) {
      util::log_line("trace", "cannot open trace file '" + trace_file +
                                  "'; tracing to the in-memory ring only");
    }
  }
}

void TraceStore::record(JobTrace trace) {
  util::MutexLock lock(mutex_);
  if (file_ok_) {
    file_ << trace.to_json() << '\n';
    file_.flush();
    if (!file_.good()) {
      // Disk full / pipe gone: stop writing, keep serving the ring.
      util::log_line("trace",
                     "trace-file write failed; disabling the file sink");
      file_ok_ = false;
    }
  }
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::optional<JobTrace> TraceStore::get(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  // Newest-first: a re-run of a recovered id should win.
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->id == id) return *it;
  }
  return std::nullopt;
}

std::size_t TraceStore::size() const {
  util::MutexLock lock(mutex_);
  return ring_.size();
}

}  // namespace phes::server
