#pragma once
// Server-internal POSIX socket helpers shared by the client connector
// (socket.cpp) and the transport layer (transport.cpp).  Not installed:
// public headers stay free of <sys/un.h>.

#include <sys/un.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace phes::server::detail {

[[noreturn]] inline void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Validated sockaddr_un for `path`; throws when the path is empty or
/// too long to fit.
inline sockaddr_un make_unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path '" + path +
                             "' is empty or too long for sockaddr_un");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace phes::server::detail
