#include "phes/server/transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "net_util.hpp"
#include "phes/server/server.hpp"
#include "phes/util/timer.hpp"

namespace phes::server {

namespace {

using detail::make_unix_address;
using detail::throw_errno;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

/// Line bound for connections that have not authenticated yet: the
/// auth op is under 100 bytes, so nothing pre-auth may buffer the full
/// max_line_bytes — that would let a tokenless remote peer park MiBs
/// per connection.
constexpr std::size_t kPreAuthMaxLineBytes = 4096;

/// Lines at most this long are parsed on the loop thread to check for
/// a fast-path op; anything larger (inline submit payloads) goes to
/// the pool without a speculative parse.
constexpr std::size_t kFastPathMaxBytes = 4096;

/// Ops safe to answer inline on the loop: everything except the
/// submits and the replay ops, which admit jobs and can block on
/// admission backpressure.
bool is_fast_op(const JsonValue& request) {
  const std::string op = request.string_or("op", "");
  return op != "submit" && op != "submit_inline" && op != "replay" &&
         op != "resubmit";
}

}  // namespace

bool tokens_equal(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  unsigned char diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = static_cast<unsigned char>(
        diff | (static_cast<unsigned char>(a[i]) ^
                static_cast<unsigned char>(b[i])));
  }
  return diff == 0;
}

const std::string& Transport::auth_token() const noexcept {
  static const std::string empty;
  return empty;
}

// ---- UnixTransport ----------------------------------------------------

UnixTransport::UnixTransport(std::string path) : path_(std::move(path)) {}

int UnixTransport::open_listener() {
  const sockaddr_un addr = make_unix_address(path_);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  // A leftover socket file from a crashed server would fail the bind;
  // probe it with a connect so a *live* server is never displaced.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    if (errno != EADDRINUSE) {
      ::close(fd);
      throw_errno("bind(" + path_ + ")");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    const bool alive =
        probe >= 0 &&
        ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0;
    if (probe >= 0) ::close(probe);
    if (alive) {
      ::close(fd);
      throw std::runtime_error("socket '" + path_ +
                               "' already has a live server");
    }
    ::unlink(path_.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
        0) {
      ::close(fd);
      throw_errno("bind(" + path_ + ")");
    }
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    ::unlink(path_.c_str());
    throw_errno("listen(" + path_ + ")");
  }
  try {
    set_nonblocking(fd);
  } catch (...) {
    // Leaking a bound listener would wedge every same-path restart:
    // the liveness probe would find it "alive" forever.
    ::close(fd);
    ::unlink(path_.c_str());
    throw;
  }
  bound_ = true;
  return fd;
}

void UnixTransport::close_listener() {
  if (bound_) {
    ::unlink(path_.c_str());
    bound_ = false;
  }
}

std::string UnixTransport::endpoint() const { return "unix:" + path_; }

// ---- TcpTransport -----------------------------------------------------

TcpTransport::TcpTransport(std::string host, std::uint16_t port,
                           std::string token)
    : host_(std::move(host)), port_(port), token_(std::move(token)) {}

int TcpTransport::open_listener() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* info = nullptr;
  const std::string service = std::to_string(port_);
  const int rc = ::getaddrinfo(host_.empty() ? nullptr : host_.c_str(),
                               service.c_str(), &hints, &info);
  if (rc != 0) {
    throw std::runtime_error("getaddrinfo(" + host_ +
                             "): " + ::gai_strerror(rc));
  }
  int fd = -1;
  std::string error = "no usable address for '" + host_ + "'";
  for (addrinfo* ai = info; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      error = std::string("socket(): ") + std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 128) == 0) {
      break;
    }
    error = "bind/listen(" + endpoint() + "): " + std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(info);
  if (fd < 0) throw std::runtime_error(error);

  sockaddr_in bound_addr{};
  socklen_t len = sizeof bound_addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound_addr), &len) ==
      0) {
    bound_ = ntohs(bound_addr.sin_port);
  } else {
    bound_ = port_;
  }
  try {
    set_nonblocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

void TcpTransport::configure_connection(int fd) noexcept {
  // Request/response over discrete lines: never let Nagle hold a
  // response (or the tail of a partially-written one) for the ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

std::string TcpTransport::endpoint() const {
  return "tcp:" + host_ + ":" +
         std::to_string(bound_ != 0 ? bound_ : port_);
}

// ---- TransportServer --------------------------------------------------

TransportServer::TransportServer(
    JobServer& server, std::vector<std::unique_ptr<Transport>> transports,
    TransportLimits limits)
    : server_(server), transports_(std::move(transports)), limits_(limits) {
  if (transports_.empty()) {
    throw std::runtime_error("TransportServer: no transports");
  }
  resolve_instruments();
}

TransportServer::TransportServer(JobServer& server,
                                 std::unique_ptr<Transport> transport,
                                 TransportLimits limits)
    : server_(server), limits_(limits) {
  transports_.push_back(std::move(transport));
  resolve_instruments();
}

void TransportServer::resolve_instruments() {
  obs::MetricsRegistry& registry = server_.metrics_registry();
  accepted_ctr_ = &registry.counter("phes_transport_accepted_total");
  requests_ctr_ = &registry.counter("phes_transport_requests_total");
  inline_requests_ctr_ =
      &registry.counter("phes_transport_inline_requests_total");
  dispatched_ctr_ = &registry.counter("phes_transport_dispatched_total");
  rejected_ctr_ = &registry.counter("phes_transport_rejected_total");
  auth_failures_ctr_ =
      &registry.counter("phes_transport_auth_failures_total");
  oversized_ctr_ = &registry.counter("phes_transport_oversized_lines_total");
  open_connections_gauge_ =
      &registry.gauge("phes_transport_open_connections");
  accept_to_auth_hist_ =
      &registry.histogram("phes_transport_accept_to_auth_seconds");
  inline_handle_hist_ =
      &registry.histogram("phes_transport_inline_handle_seconds");
}

TransportServer::~TransportServer() { stop(); }

void TransportServer::start() {
  listen_fds_.clear();
  // Any failure below must release everything already acquired: a
  // half-started server would leak fds AND leave a bound unix socket
  // file whose leaked listener answers the next start()'s liveness
  // probe, wedging every retry on that path.
  try {
    for (const auto& transport : transports_) {
      listen_fds_.push_back(transport->open_listener());
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1()");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) throw_errno("eventfd()");
    reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
      throw_errno("epoll_ctl(wakeup)");
    }
    for (const int fd : listen_fds_) {
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
        throw_errno("epoll_ctl(listener)");
      }
    }
  } catch (...) {
    for (std::size_t i = 0; i < listen_fds_.size(); ++i) {
      ::close(listen_fds_[i]);
      transports_[i]->close_listener();
    }
    listen_fds_.clear();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (reserve_fd_ >= 0) ::close(reserve_fd_);
    epoll_fd_ = wake_fd_ = reserve_fd_ = -1;
    throw;
  }
  if (limits_.dispatch_workers > 0) {
    dispatch_pool_ = std::make_unique<DispatchPool>(
        limits_.dispatch_workers, limits_.dispatch_queue_capacity,
        [this](const std::string& line) {
          return handle_request(server_, line,
                                [this] { return snapshot(); });
        },
        [this](std::uint64_t token, RequestOutcome outcome) {
          {
            util::MutexLock lock(completions_mutex_);
            completions_.emplace_back(token, std::move(outcome));
          }
          notify_loop();
        },
        &server_.metrics_registry());
  }
  started_ = true;
  loop_thread_ = std::thread([this] { loop(); });
}

void TransportServer::stop() {
  if (!started_) return;
  if (!stopping_.exchange(true)) {
    // The only cross-thread poke: the loop owns every other resource.
    notify_loop();
    if (loop_thread_.joinable()) loop_thread_.join();
    // Join the pool before closing fds: workers may still push
    // completions and poke the (still-open) eventfd while finishing.
    if (dispatch_pool_) dispatch_pool_->stop();
    for (auto& [fd, conn] : connections_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    open_connections_gauge_->set(0);
    connections_.clear();
    token_to_fd_.clear();
    for (std::size_t i = 0; i < listen_fds_.size(); ++i) {
      ::close(listen_fds_[i]);
      transports_[i]->close_listener();
    }
    listen_fds_.clear();
    ::close(epoll_fd_);
    ::close(wake_fd_);
    if (reserve_fd_ >= 0) ::close(reserve_fd_);
    epoll_fd_ = wake_fd_ = reserve_fd_ = -1;
    note_shutdown(true);  // release wait_shutdown() on local stop
  }
}

void TransportServer::notify_loop() {
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) (void)!::write(wake_fd_, &one, sizeof one);
}

void TransportServer::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: stop() is tearing us down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        // Completions and stop() share the eventfd; drain the counter,
        // apply finished outcomes, and only exit when stop() asked.
        std::uint64_t count = 0;
        (void)!::read(wake_fd_, &count, sizeof count);
        if (stopping_.load(std::memory_order_acquire)) return;
        drain_completions();
        continue;
      }
      bool is_listener = false;
      for (std::size_t t = 0; t < listen_fds_.size(); ++t) {
        if (fd == listen_fds_[t]) {
          accept_ready(t);
          is_listener = true;
          break;
        }
      }
      if (is_listener) continue;
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this wake
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) write_ready(conn);
      if (connections_.count(fd) == 0) continue;  // closed by the flush
      if ((events[i].events & EPOLLIN) != 0) read_ready(conn);
    }
  }
}

void TransportServer::accept_ready(std::size_t listener_index) {
  for (;;) {
    const int fd = ::accept4(listen_fds_[listener_index], nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: the pending connection stays queued and the
        // level-triggered listener event would refire every epoll_wait
        // (a 100% CPU spin).  Shed it through the reserve descriptor:
        // free the reserve, accept+close the connection, re-arm.
        if (reserve_fd_ >= 0) {
          ::close(reserve_fd_);
          const int shed =
              ::accept(listen_fds_[listener_index], nullptr, nullptr);
          if (shed >= 0) ::close(shed);
          reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        }
        return;
      }
      return;  // EAGAIN (drained) or listener failure
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->token = ++next_token_;
    conn->transport = transports_[listener_index].get();
    conn->transport->configure_connection(fd);
    conn->authed = !conn->transport->requires_auth();
    conn->accepted_at = std::chrono::steady_clock::now();
    conn->armed_events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    token_to_fd_[conn->token] = fd;
    connections_.emplace(fd, std::move(conn));
    accepted_ctr_->add();
    open_connections_gauge_->add();
  }
}

void TransportServer::read_ready(Connection& conn) {
  const int fd = conn.fd;
  char buf[16384];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(fd);
      return;
    }
    if (n == 0) {  // peer closed; flush nothing, just drop
      close_connection(fd);
      return;
    }
    conn.in.append(buf, static_cast<std::size_t>(n));
    process_buffer(conn);
    if (connections_.count(fd) == 0) return;  // closed while processing
    if (conn.close_after_flush) break;        // stop reading more input
    if (conn.paused) break;  // flow control: resume after the backlog
  }
}

void TransportServer::process_buffer(Connection& conn) {
  const int fd = conn.fd;
  for (;;) {
    if (conn.paused) return;  // backlog bound hit; resumed by the drain
    // Recomputed per line: the limit widens once the auth line passed.
    const std::size_t max_line =
        conn.authed ? limits_.max_line_bytes : kPreAuthMaxLineBytes;
    if (conn.discarding) {
      // Drop the remainder of an oversized line; resume after its '\n'.
      const std::size_t nl = conn.in.find('\n');
      if (nl == std::string::npos) {
        conn.in.clear();
        return;
      }
      conn.in.erase(0, nl + 1);
      conn.discarding = false;
    }
    const std::size_t nl = conn.in.find('\n');
    if (nl == std::string::npos) {
      if (conn.in.size() > max_line) {
        // Flip to discard mode BEFORE reject_oversized: a write
        // failure inside it closes the connection and `conn` dangles.
        conn.in.clear();
        conn.discarding = true;
        reject_oversized(conn, max_line);
        if (connections_.count(fd) == 0) return;
        if (conn.close_after_flush) return;
        continue;  // keep scanning for the terminator of the long line
      }
      return;  // wait for more bytes (frame split across wakeups)
    }
    if (nl > max_line) {
      // The whole line arrived in one read, terminator included: still
      // over the bound, but nothing needs discarding.
      conn.in.erase(0, nl + 1);
      reject_oversized(conn, max_line);
      if (connections_.count(fd) == 0) return;
      if (conn.close_after_flush) return;
      continue;
    }
    std::string line = conn.in.substr(0, nl);
    conn.in.erase(0, nl + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    handle_line(conn, line);
    if (connections_.count(fd) == 0) return;  // closed by the handler
    if (conn.close_after_flush) return;       // no further requests
  }
}

void TransportServer::reject_oversized(Connection& conn,
                                       std::size_t max_line) {
  oversized_ctr_->add();
  if (!conn.authed) auth_failures_ctr_->add();
  // An unauthenticated peer flooding over-bound lines never reaches
  // the auth op: refuse and close, like any other pre-auth
  // misbehaviour.  Authenticated connections survive (the line was
  // discarded, framing is intact).
  if (!conn.authed) conn.close_after_flush = true;
  enqueue(conn, "{\"ok\": false, \"error\": \"request line exceeds " +
                    std::to_string(max_line) + " bytes\"}");
}

void TransportServer::handle_line(Connection& conn, const std::string& line) {
  if (!conn.authed) {
    // First line on an authenticated transport MUST be the auth op.
    bool ok = false;
    try {
      const JsonValue request = JsonValue::parse(line);
      ok = request.string_or("op", "") == "auth" &&
           tokens_equal(request.string_or("token", ""),
                        conn.transport->auth_token());
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok) {
      auth_failures_ctr_->add();
      // Close once the refusal is flushed (enqueue's write path honours
      // close_after_flush, or EPOLLOUT finishes the job later).
      conn.close_after_flush = true;
      enqueue(conn,
              "{\"ok\": false, \"error\": \"authentication required\"}");
      return;
    }
    conn.authed = true;
    accept_to_auth_hist_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      conn.accepted_at)
            .count());
    enqueue(conn, "{\"ok\": true, \"op\": \"auth\"}");
    return;
  }
  requests_ctr_->add();
  if (!dispatch_pool_) {
    // Inline mode (dispatch_workers == 0): a submit hitting a full
    // queue blocks the loop here until a worker frees a slot.
    handle_inline(conn, line);
    return;
  }
  // Fast path: cheap ops on an idle connection skip the pool — but
  // never overtake a queued request (per-connection response order).
  // The line is parsed once here and the document reused by the
  // handler; lines that do not parse are also answered inline (the
  // error response is immediate).
  const bool busy = conn.inflight || !conn.pending.empty();
  if (!busy && line.size() <= kFastPathMaxBytes) {
    bool parsed = false;
    JsonValue request;
    try {
      request = JsonValue::parse(line);
      parsed = true;
    } catch (const std::exception&) {
    }
    if (!parsed || is_fast_op(request)) {
      inline_requests_ctr_->add();
      const util::WallTimer inline_timer;
      RequestOutcome outcome =
          parsed ? handle_request(server_, request,
                                  [this] { return snapshot(); })
                 : handle_request(server_, line);
      inline_handle_hist_->observe(inline_timer.seconds());
      finish_outcome(conn, outcome);
      return;
    }
  }
  const int fd = conn.fd;  // conn may be destroyed inside the pump
  conn.pending.push_back(line);
  pump_dispatch(conn);
  if (connections_.count(fd) == 0) return;
  if (!conn.paused &&
      conn.pending.size() >= limits_.max_pipelined_requests) {
    conn.paused = true;  // park the read side; drain resumes it
    update_epoll(conn);
  }
}

void TransportServer::handle_inline(Connection& conn,
                                    const std::string& line) {
  finish_outcome(conn,
                 handle_request(server_, line, [this] { return snapshot(); }));
}

void TransportServer::finish_outcome(Connection& conn,
                                     const RequestOutcome& outcome) {
  const int fd = conn.fd;
  if (!outcome.shutdown_requested) {
    enqueue(conn, outcome.response);
    return;
  }
  // The ack must reach the peer before the owner (woken by
  // note_shutdown) tears the transport down; flush it now.
  conn.close_after_flush = true;
  enqueue(conn, outcome.response);
  if (connections_.count(fd) != 0) {
    flush_blocking(conn);
    if (connections_.count(fd) != 0) close_connection(fd);
  }
  note_shutdown(outcome.drain);
}

void TransportServer::pump_dispatch(Connection& conn) {
  // Saved before any enqueue(): a write failure (or out-buffer bound)
  // inside it destroys the Connection, and `conn` must not be touched
  // once connections_ no longer holds this fd.
  const int fd = conn.fd;
  while (!conn.inflight && !conn.pending.empty()) {
    if (dispatch_pool_->try_submit(conn.token, conn.pending.front())) {
      conn.pending.pop_front();
      conn.inflight = true;
      dispatched_ctr_->add();
      return;
    }
    // Pool queue full: answer in order rather than stalling the loop.
    conn.pending.pop_front();
    rejected_ctr_->add();
    enqueue(conn, "{\"ok\": false, \"error\": \"server overloaded: "
                  "dispatch queue full\"}");
    if (connections_.count(fd) == 0) return;  // conn destroyed
  }
}

void TransportServer::drain_completions() {
  std::deque<std::pair<std::uint64_t, RequestOutcome>> batch;
  {
    util::MutexLock lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (auto& [token, outcome] : batch) {
    Connection* conn = nullptr;
    const auto token_it = token_to_fd_.find(token);
    if (token_it != token_to_fd_.end()) {
      const auto it = connections_.find(token_it->second);
      if (it != connections_.end()) conn = it->second.get();
    }
    if (outcome.shutdown_requested) {
      // A shutdown op that queued behind a submit: honour it even if
      // the requesting connection is already gone.
      if (conn != nullptr) {
        conn->inflight = false;
        conn->close_after_flush = true;
        const int fd = conn->fd;
        enqueue(*conn, outcome.response);
        if (connections_.count(fd) != 0) {
          flush_blocking(*conn);
          if (connections_.count(fd) != 0) close_connection(fd);
        }
      }
      note_shutdown(outcome.drain);
      continue;
    }
    if (conn == nullptr) continue;  // connection closed mid-flight
    conn->inflight = false;
    const int fd = conn->fd;
    enqueue(*conn, outcome.response);
    if (connections_.count(fd) == 0) continue;
    pump_dispatch(*conn);
    if (connections_.count(fd) == 0) continue;
    if (conn->paused &&
        conn->pending.size() < limits_.max_pipelined_requests) {
      // Resume reading and frame whatever buffered while parked (no
      // EPOLLIN will fire for bytes already consumed off the socket).
      conn->paused = false;
      update_epoll(*conn);
      process_buffer(*conn);
    }
  }
}

void TransportServer::enqueue(Connection& conn,
                              const std::string& response_line) {
  const int fd = conn.fd;
  conn.out += response_line;
  conn.out += '\n';
  // Opportunistic write: most responses go out in one send, and only a
  // residue (partial write) arms EPOLLOUT.
  write_ready(conn);
  // Read-side backpressure: a peer that issues requests but never
  // drains its socket accumulates pending responses; past the bound it
  // is dropped (no point sending it an error it will not read).
  if (connections_.count(fd) != 0 &&
      conn.out.size() - conn.out_off > limits_.max_pending_out_bytes) {
    close_connection(fd);
  }
}

void TransportServer::write_ready(Connection& conn) {
  const int fd = conn.fd;
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(fd);
      return;
    }
    conn.out_off += static_cast<std::size_t>(n);
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      close_connection(fd);
      return;
    }
  }
  update_epoll(conn);
}

void TransportServer::flush_blocking(Connection& conn) {
  // Bounded: a peer that never drains its socket cannot wedge the loop
  // for more than ~5 s, and only on the shutdown path.
  for (int spin = 0; spin < 50 && conn.out_off < conn.out.size(); ++spin) {
    pollfd pfd{conn.fd, POLLOUT, 0};
    if (::poll(&pfd, 1, 100) < 0 && errno != EINTR) break;
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_off,
               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      close_connection(conn.fd);
      return;
    }
    conn.out_off += static_cast<std::size_t>(n);
  }
  if (conn.out_off >= conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  }
}

void TransportServer::update_epoll(Connection& conn) {
  const bool pending_out = conn.out_off < conn.out.size();
  const bool want_read = !conn.close_after_flush && !conn.paused;
  const auto desired = static_cast<std::uint32_t>(
      (want_read ? EPOLLIN : 0u) | (pending_out ? EPOLLOUT : 0u));
  if (desired == conn.armed_events) return;
  conn.armed_events = desired;
  epoll_event ev{};
  ev.events = desired;
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void TransportServer::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  token_to_fd_.erase(it->second->token);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  open_connections_gauge_->sub();
}

void TransportServer::note_shutdown(bool drain) {
  {
    util::MutexLock lock(shutdown_mutex_);
    if (shutdown_requested_) return;  // first request wins
    shutdown_requested_ = true;
    drain_ = drain;
  }
  shutdown_cv_.notify_all();
}

bool TransportServer::wait_shutdown() {
  util::MutexLock lock(shutdown_mutex_);
  while (!shutdown_requested_) shutdown_cv_.wait(shutdown_mutex_);
  return drain_;
}

bool TransportServer::shutdown_requested() const {
  util::MutexLock lock(shutdown_mutex_);
  return shutdown_requested_;
}

TransportStats TransportServer::stats() const {
  // A view over the registry-backed instruments: each field is one
  // relaxed atomic load (no cross-field consistency is promised, same
  // as the old mutex snapshot taken between loop iterations).
  TransportStats s;
  s.accepted = static_cast<std::size_t>(accepted_ctr_->value());
  s.open_connections =
      static_cast<std::size_t>(open_connections_gauge_->value());
  s.requests = static_cast<std::size_t>(requests_ctr_->value());
  s.inline_requests =
      static_cast<std::size_t>(inline_requests_ctr_->value());
  s.dispatched = static_cast<std::size_t>(dispatched_ctr_->value());
  s.rejected = static_cast<std::size_t>(rejected_ctr_->value());
  s.auth_failures = static_cast<std::size_t>(auth_failures_ctr_->value());
  s.oversized_lines = static_cast<std::size_t>(oversized_ctr_->value());
  return s;
}

DispatchStats TransportServer::dispatch_stats() const {
  return dispatch_pool_ ? dispatch_pool_->stats() : DispatchStats{};
}

TransportSnapshot TransportServer::snapshot() const {
  TransportSnapshot s;
  const TransportStats t = stats();
  s.accepted = t.accepted;
  s.open_connections = t.open_connections;
  s.requests = t.requests;
  s.inline_requests = t.inline_requests;
  s.dispatched = t.dispatched;
  s.rejected = t.rejected;
  s.oversized_lines = t.oversized_lines;
  s.auth_failures = t.auth_failures;
  if (dispatch_pool_) {
    const DispatchStats d = dispatch_pool_->stats();
    s.dispatch_workers = d.workers;
    s.dispatch_queue_depth = d.queue_depth;
    s.dispatch_peak_depth = d.peak_depth;
    s.dispatch_completed = d.completed;
  }
  return s;
}

}  // namespace phes::server
