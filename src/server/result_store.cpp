#include "phes/server/result_store.hpp"

#include <algorithm>
#include <utility>

namespace phes::server {

ResultStore::ResultStore(std::size_t max_finished)
    : storage_(std::make_unique<MemoryStorage>(max_finished)) {}

ResultStore::ResultStore(std::unique_ptr<Storage> storage)
    : storage_(std::move(storage)) {}

void ResultStore::add(std::uint64_t id, const std::string& name) {
  util::MutexLock lock(mutex_);
  JobRecord rec;
  rec.id = id;
  rec.name = name;
  rec.state = JobState::kQueued;
  records_[id] = std::move(rec);
  storage_->note_admitted(id, name);
}

void ResultStore::note_input(std::uint64_t id, const std::string& spec_json) {
  if (spec_json.empty()) return;  // nothing replayable to keep
  util::MutexLock lock(mutex_);
  storage_->note_input(id, spec_json);
}

std::optional<std::string> ResultStore::input(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  return storage_->input(id);
}

bool ResultStore::mark_running(std::uint64_t id) {
  util::MutexLock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.state != JobState::kQueued) {
    return false;
  }
  it->second.state = JobState::kRunning;
  return true;
}

void ResultStore::set_stage(std::uint64_t id, pipeline::Stage stage) {
  util::MutexLock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  it->second.stage = stage;
  it->second.stage_known = true;
}

void ResultStore::finish_locked(
    std::map<std::uint64_t, JobRecord>::iterator it, JobState state,
    pipeline::PipelineResult result) {
  JobRecord record = std::move(it->second);
  record.state = state;
  record.result = std::move(result);
  // put() before erase, and never let a backend failure escape: this
  // runs on worker threads with no catch above it, and a full disk
  // must cost durability of one record, not the whole process.  On
  // failure the terminal record stays in the live map — still served
  // by get()/status(), just not persisted and never evicted.
  try {
    storage_->put(record);
  } catch (const std::exception&) {
    it->second = std::move(record);
    return;
  }
  records_.erase(it);
}

void ResultStore::finish(std::uint64_t id, pipeline::PipelineResult result) {
  util::MutexLock lock(mutex_);
  const auto it = records_.find(id);
  // Absent from the live map: unknown id, or it already went terminal
  // (lost race with a queued-cancel) — either way, drop.  A terminal
  // record parked here by a storage failure is equally final.
  if (it == records_.end() || is_terminal(it->second.state)) return;
  const JobState state = result.cancelled ? JobState::kCancelled
                         : result.ok      ? JobState::kDone
                                          : JobState::kFailed;
  finish_locked(it, state, std::move(result));
}

bool ResultStore::mark_cancelled(std::uint64_t id) {
  util::MutexLock lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.state != JobState::kQueued) {
    return false;
  }
  // Synthesize a minimal cancelled result so `result` ops stay uniform.
  pipeline::PipelineResult result;
  result.name = it->second.name;
  result.id = id;
  result.ok = false;
  result.cancelled = true;
  result.failed_stage = pipeline::Stage::kLoad;
  result.error = "cancelled while queued";
  finish_locked(it, JobState::kCancelled, std::move(result));
  return true;
}

std::optional<JobRecord> ResultStore::get(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  const auto it = records_.find(id);
  if (it != records_.end()) return it->second;
  return storage_->get(id);
}

std::optional<JobState> ResultStore::state(std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  const auto it = records_.find(id);
  if (it != records_.end()) return it->second.state;
  return storage_->state(id);
}

namespace {

JobSummary summarize(const JobRecord& rec) {
  JobSummary s;
  s.id = rec.id;
  s.name = rec.name;
  s.state = rec.state;
  s.stage = rec.stage;
  s.stage_known = rec.stage_known;
  if (is_terminal(rec.state)) s.status = rec.result.status();
  return s;
}

}  // namespace

std::optional<ResultStore::JobSummary> ResultStore::summary(
    std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  const auto it = records_.find(id);
  if (it != records_.end()) return summarize(it->second);
  return storage_->summary(id);
}

std::vector<ResultStore::JobSummary> ResultStore::summaries() const {
  util::MutexLock lock(mutex_);
  // Merge the two ascending-id sequences (terminal ids and live ids
  // can interleave: job 3 may finish while job 2 still runs).
  std::vector<JobSummary> stored = storage_->summaries();
  std::vector<JobSummary> out;
  out.reserve(stored.size() + records_.size());
  auto live = records_.begin();
  auto done = stored.begin();
  while (live != records_.end() || done != stored.end()) {
    if (done == stored.end() ||
        (live != records_.end() && live->first < done->id)) {
      out.push_back(summarize(live->second));
      ++live;
    } else {
      out.push_back(std::move(*done));
      ++done;
    }
  }
  return out;
}

std::vector<JobRecord> ResultStore::all() const {
  util::MutexLock lock(mutex_);
  std::vector<JobRecord> stored = storage_->all();
  std::vector<JobRecord> out;
  out.reserve(stored.size() + records_.size());
  auto live = records_.begin();
  auto done = stored.begin();
  while (live != records_.end() || done != stored.end()) {
    if (done == stored.end() ||
        (live != records_.end() && live->first < done->id)) {
      out.push_back(live->second);
      ++live;
    } else {
      out.push_back(std::move(*done));
      ++done;
    }
  }
  return out;
}

std::vector<std::size_t> ResultStore::state_counts() const {
  util::MutexLock lock(mutex_);
  std::vector<std::size_t> counts = storage_->state_counts();
  for (const auto& [id, rec] : records_) {
    ++counts[static_cast<std::size_t>(rec.state)];
  }
  return counts;
}

std::size_t ResultStore::size() const {
  util::MutexLock lock(mutex_);
  return records_.size() + storage_->size();
}

StorageStats ResultStore::storage_stats() const {
  util::MutexLock lock(mutex_);
  return storage_->stats();
}

std::uint64_t ResultStore::max_seen_id() const {
  util::MutexLock lock(mutex_);
  std::uint64_t max_id = storage_->max_seen_id();
  if (!records_.empty()) max_id = std::max(max_id, records_.rbegin()->first);
  return max_id;
}

}  // namespace phes::server
