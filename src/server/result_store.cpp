#include "phes/server/result_store.hpp"

#include <algorithm>
#include <utility>

namespace phes::server {

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool is_terminal(JobState state) noexcept {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

ResultStore::ResultStore(std::size_t max_finished)
    : max_finished_(std::max<std::size_t>(1, max_finished)) {}

void ResultStore::add(std::uint64_t id, const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  JobRecord rec;
  rec.id = id;
  rec.name = name;
  rec.state = JobState::kQueued;
  records_[id] = std::move(rec);
}

bool ResultStore::mark_running(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.state != JobState::kQueued) {
    return false;
  }
  it->second.state = JobState::kRunning;
  return true;
}

void ResultStore::set_stage(std::uint64_t id, pipeline::Stage stage) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  it->second.stage = stage;
  it->second.stage_known = true;
}

void ResultStore::finish(std::uint64_t id, pipeline::PipelineResult result) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  auto& rec = it->second;
  if (is_terminal(rec.state)) return;  // lost race with a queued-cancel
  rec.state = result.cancelled ? JobState::kCancelled
              : result.ok      ? JobState::kDone
                               : JobState::kFailed;
  rec.result = std::move(result);
  ++finished_;
  evict_finished_locked();
}

bool ResultStore::mark_cancelled(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end() || it->second.state != JobState::kQueued) {
    return false;
  }
  auto& rec = it->second;
  rec.state = JobState::kCancelled;
  // Synthesize a minimal cancelled result so `result` ops stay uniform.
  rec.result.name = rec.name;
  rec.result.id = id;
  rec.result.ok = false;
  rec.result.cancelled = true;
  rec.result.failed_stage = pipeline::Stage::kLoad;
  rec.result.error = "cancelled while queued";
  ++finished_;
  evict_finished_locked();
  return true;
}

void ResultStore::evict_finished_locked() {
  if (finished_ <= max_finished_) return;
  for (auto it = records_.begin();
       it != records_.end() && finished_ > max_finished_;) {
    if (is_terminal(it->second.state)) {
      it = records_.erase(it);
      --finished_;
    } else {
      ++it;
    }
  }
}

std::optional<JobRecord> ResultStore::get(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::optional<JobState> ResultStore::state(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second.state;
}

namespace {

ResultStore::JobSummary summarize(const JobRecord& rec) {
  ResultStore::JobSummary s;
  s.id = rec.id;
  s.name = rec.name;
  s.state = rec.state;
  s.stage = rec.stage;
  s.stage_known = rec.stage_known;
  if (is_terminal(rec.state)) s.status = rec.result.status();
  return s;
}

}  // namespace

std::optional<ResultStore::JobSummary> ResultStore::summary(
    std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return summarize(it->second);
}

std::vector<ResultStore::JobSummary> ResultStore::summaries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobSummary> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(summarize(rec));
  return out;
}

std::vector<JobRecord> ResultStore::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  return out;
}

std::vector<std::size_t> ResultStore::state_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::size_t> counts(
      static_cast<std::size_t>(JobState::kCancelled) + 1, 0);
  for (const auto& [id, rec] : records_) {
    ++counts[static_cast<std::size_t>(rec.state)];
  }
  return counts;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

}  // namespace phes::server
