#include "phes/la/lyapunov.hpp"

#include <vector>

#include "phes/la/blas.hpp"
#include "phes/la/lu.hpp"
#include "phes/la/schur.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

namespace {

// Diagonal block partition of a quasi-triangular matrix: list of
// (start, size) with size 1 or 2.
std::vector<std::pair<std::size_t, std::size_t>> block_partition(
    const RealMatrix& t) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  const std::size_t n = t.rows();
  std::size_t i = 0;
  while (i < n) {
    const bool pair = (i + 1 < n) && t(i + 1, i) != 0.0;
    blocks.emplace_back(i, pair ? 2 : 1);
    i += pair ? 2 : 1;
  }
  return blocks;
}

}  // namespace

RealMatrix solve_lyapunov(const RealMatrix& a, const RealMatrix& q) {
  util::check(a.is_square() && q.is_square() && a.rows() == q.rows(),
              "solve_lyapunov: shape mismatch");
  const std::size_t n = a.rows();
  if (n == 0) return RealMatrix();

  // Schur form A = U T U^T; transformed equation T Y + Y T^T = -U^T Q U.
  const RealSchurResult schur = real_schur(a, /*accumulate_q=*/true);
  const RealMatrix& t = schur.t;
  const RealMatrix& u = schur.q;
  RealMatrix c = gemm(transpose(u), gemm(q, u));
  c *= -1.0;

  const auto blocks = block_partition(t);
  RealMatrix y(n, n);

  // Solve block (I, J):  T_II Y_IJ + Y_IJ T_JJ^T = C_IJ
  //                       - sum_{K>I} T_IK Y_KJ - sum_{K>J} Y_IK T_JK^T
  // (T upper quasi-triangular: T_IK != 0 for K >= I and (T^T)_KJ =
  // T_JK^T != 0 for K >= J).  Dependencies point down and to the right,
  // so iterate I bottom-up and J right-to-left.
  for (std::size_t jb = blocks.size(); jb-- > 0;) {
    const auto [j0, bj] = blocks[jb];
    for (std::size_t ib = blocks.size(); ib-- > 0;) {
      const auto [i0, bi] = blocks[ib];
      // RHS block.
      RealMatrix rhs(bi, bj);
      for (std::size_t r = 0; r < bi; ++r) {
        for (std::size_t s = 0; s < bj; ++s) rhs(r, s) = c(i0 + r, j0 + s);
      }
      // - sum_{K > I} T_IK Y_KJ
      for (std::size_t kb = ib + 1; kb < blocks.size(); ++kb) {
        const auto [k0, bk] = blocks[kb];
        for (std::size_t r = 0; r < bi; ++r) {
          for (std::size_t s = 0; s < bj; ++s) {
            double acc = 0.0;
            for (std::size_t k = 0; k < bk; ++k) {
              acc += t(i0 + r, k0 + k) * y(k0 + k, j0 + s);
            }
            rhs(r, s) -= acc;
          }
        }
      }
      // - sum_{K > J} Y_IK T_JK^T.
      for (std::size_t kb = jb + 1; kb < blocks.size(); ++kb) {
        const auto [k0, bk] = blocks[kb];
        for (std::size_t r = 0; r < bi; ++r) {
          for (std::size_t s = 0; s < bj; ++s) {
            double acc = 0.0;
            for (std::size_t k = 0; k < bk; ++k) {
              acc += y(i0 + r, k0 + k) * t(j0 + s, k0 + k);
            }
            rhs(r, s) -= acc;
          }
        }
      }
      // Small Kronecker system:
      //   (I_bj (x) T_II + T_JJ (x) I_bi) vec(Y_IJ) = vec(rhs),
      // with column-major vec.
      const std::size_t m = bi * bj;
      RealMatrix sys(m, m);
      for (std::size_t s = 0; s < bj; ++s) {
        for (std::size_t r = 0; r < bi; ++r) {
          const std::size_t row = s * bi + r;
          for (std::size_t k = 0; k < bi; ++k) {
            sys(row, s * bi + k) += t(i0 + r, i0 + k);
          }
          for (std::size_t k = 0; k < bj; ++k) {
            sys(row, k * bi + r) += t(j0 + s, j0 + k);
          }
        }
      }
      RealVector vec_rhs(m);
      for (std::size_t s = 0; s < bj; ++s) {
        for (std::size_t r = 0; r < bi; ++r) vec_rhs[s * bi + r] = rhs(r, s);
      }
      const RealVector sol = lu_solve(std::move(sys), vec_rhs);
      for (std::size_t s = 0; s < bj; ++s) {
        for (std::size_t r = 0; r < bi; ++r) {
          y(i0 + r, j0 + s) = sol[s * bi + r];
        }
      }
    }
  }

  // Back-transform X = U Y U^T and symmetrize (Q symmetric => X is).
  RealMatrix x = gemm(u, gemm(y, transpose(u)));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (x(i, j) + x(j, i));
      x(i, j) = avg;
      x(j, i) = avg;
    }
  }
  return x;
}

}  // namespace phes::la
