#include "phes/la/blas.hpp"

namespace phes::la {

ComplexVector gemv_real_complex(const RealMatrix& a,
                                std::span<const Complex> x) {
  util::check(a.cols() == x.size(), "gemv_real_complex: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  ComplexVector y(m, Complex{});
  // Row pairs share each load of x; per-row accumulation order is
  // unchanged (ascending j, one accumulator), so results stay
  // bit-identical to the plain row loop.
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const Real* r0 = a.row_ptr(i);
    const Real* r1 = a.row_ptr(i + 1);
    Complex acc0{}, acc1{};
    for (std::size_t j = 0; j < n; ++j) {
      const Complex xj = x[j];
      acc0 += r0[j] * xj;
      acc1 += r1[j] * xj;
    }
    y[i] = acc0;
    y[i + 1] = acc1;
  }
  if (i < m) {
    const Real* row = a.row_ptr(i);
    Complex acc{};
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

ComplexVector gemv_transposed_real_complex(const RealMatrix& a,
                                           std::span<const Complex> x) {
  util::check(a.rows() == x.size(),
              "gemv_transposed_real_complex: shape mismatch");
  const std::size_t m = a.rows(), n = a.cols();
  ComplexVector y(n, Complex{});
  // Row pairs halve the passes over y; the adds into each y[j] keep
  // ascending i order, so results stay bit-identical.
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const Real* r0 = a.row_ptr(i);
    const Real* r1 = a.row_ptr(i + 1);
    const Complex x0 = x[i];
    const Complex x1 = x[i + 1];
    for (std::size_t j = 0; j < n; ++j) {
      Complex acc = y[j];
      acc += r0[j] * x0;
      acc += r1[j] * x1;
      y[j] = acc;
    }
  }
  if (i < m) {
    const Real* row = a.row_ptr(i);
    const Complex xi = x[i];
    for (std::size_t j = 0; j < n; ++j) y[j] += row[j] * xi;
  }
  return y;
}

}  // namespace phes::la
