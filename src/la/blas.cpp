#include "phes/la/blas.hpp"

namespace phes::la {

ComplexVector gemv_real_complex(const RealMatrix& a,
                                std::span<const Complex> x) {
  util::check(a.cols() == x.size(), "gemv_real_complex: shape mismatch");
  ComplexVector y(a.rows(), Complex{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const Real* row = a.row_ptr(i);
    Complex acc{};
    for (std::size_t j = 0; j < a.cols(); ++j) acc += row[j] * x[j];
    y[i] = acc;
  }
  return y;
}

ComplexVector gemv_transposed_real_complex(const RealMatrix& a,
                                           std::span<const Complex> x) {
  util::check(a.rows() == x.size(),
              "gemv_transposed_real_complex: shape mismatch");
  ComplexVector y(a.cols(), Complex{});
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const Real* row = a.row_ptr(i);
    const Complex xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

}  // namespace phes::la
