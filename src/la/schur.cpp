#include "phes/la/schur.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "phes/la/blas.hpp"
#include "phes/la/hessenberg.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

namespace {

// Householder reflector for a 2- or 3-vector: returns (v, beta) with
// v[0] = 1 such that (I - beta v v^T) x = (+-||x||, 0, 0).
struct SmallReflector {
  double v1 = 0.0;
  double v2 = 0.0;  // unused for 2-vectors
  double beta = 0.0;
};

SmallReflector make_reflector(double x, double y, double z, bool use_z) {
  SmallReflector h;
  const double norm =
      std::sqrt(x * x + y * y + (use_z ? z * z : 0.0));
  if (norm == 0.0) return h;
  const double alpha = x >= 0.0 ? -norm : norm;
  const double v0 = x - alpha;
  if (v0 == 0.0) return h;
  h.v1 = y / v0;
  h.v2 = use_z ? z / v0 : 0.0;
  h.beta = -v0 / alpha;
  return h;
}

// One implicit Francis double-shift QR sweep on the active block
// [l, m] (inclusive) of the Hessenberg matrix h.  sum/prod are the sum
// and product of the two shifts.
void francis_step(RealMatrix& h, RealMatrix* q, std::size_t l, std::size_t m,
                  double sum, double prod) {
  const std::size_t n = h.rows();
  double x = h(l, l) * h(l, l) + h(l, l + 1) * h(l + 1, l) - sum * h(l, l) +
             prod;
  double y = h(l + 1, l) * (h(l, l) + h(l + 1, l + 1) - sum);
  double z = h(l + 1, l) * h(l + 2, l + 1);

  for (std::size_t k = l; k <= m - 1; ++k) {
    const bool use_z = (k + 2 <= m);
    const SmallReflector r = make_reflector(x, y, z, use_z);
    if (r.beta != 0.0) {
      // Left: rows k..k+2 (or k..k+1), columns from the bulge column.
      const std::size_t c0 = (k > l) ? k - 1 : l;
      for (std::size_t j = c0; j < n; ++j) {
        double s = h(k, j) + r.v1 * h(k + 1, j);
        if (use_z) s += r.v2 * h(k + 2, j);
        s *= r.beta;
        h(k, j) -= s;
        h(k + 1, j) -= s * r.v1;
        if (use_z) h(k + 2, j) -= s * r.v2;
      }
      // Right: columns k..k+2 (or k..k+1), rows up to the bulge row.
      const std::size_t r1 = std::min(k + 3, m);
      for (std::size_t i = 0; i <= r1; ++i) {
        double s = h(i, k) + r.v1 * h(i, k + 1);
        if (use_z) s += r.v2 * h(i, k + 2);
        s *= r.beta;
        h(i, k) -= s;
        h(i, k + 1) -= s * r.v1;
        if (use_z) h(i, k + 2) -= s * r.v2;
      }
      if (q != nullptr && !q->empty()) {
        for (std::size_t i = 0; i < n; ++i) {
          double s = (*q)(i, k) + r.v1 * (*q)(i, k + 1);
          if (use_z) s += r.v2 * (*q)(i, k + 2);
          s *= r.beta;
          (*q)(i, k) -= s;
          (*q)(i, k + 1) -= s * r.v1;
          if (use_z) (*q)(i, k + 2) -= s * r.v2;
        }
      }
      if (k > l) {
        // The reflector annihilated rows k+1(..k+2) of the bulge column
        // exactly; clear the floating-point residue so the matrix stays
        // strictly Hessenberg below the chase.
        h(k + 1, k - 1) = 0.0;
        if (use_z) h(k + 2, k - 1) = 0.0;
      }
    }
    // Next bulge column.
    if (k + 1 <= m - 1) {
      x = h(k + 1, k);
      y = (k + 2 <= m) ? h(k + 2, k) : 0.0;
      z = (k + 3 <= m) ? h(k + 3, k) : 0.0;
    }
  }
}

}  // namespace

ComplexVector quasi_triangular_eigenvalues(const RealMatrix& t) {
  const std::size_t n = t.rows();
  ComplexVector lambda;
  lambda.reserve(n);
  std::size_t i = 0;
  while (i < n) {
    const bool two_by_two = (i + 1 < n) && t(i + 1, i) != 0.0;
    if (!two_by_two) {
      lambda.emplace_back(t(i, i), 0.0);
      ++i;
      continue;
    }
    const double a = t(i, i), b = t(i, i + 1);
    const double c = t(i + 1, i), d = t(i + 1, i + 1);
    const double mean = 0.5 * (a + d);
    const double disc = 0.25 * (a - d) * (a - d) + b * c;
    if (disc >= 0.0) {
      const double sq = std::sqrt(disc);
      lambda.emplace_back(mean + sq, 0.0);
      lambda.emplace_back(mean - sq, 0.0);
    } else {
      const double sq = std::sqrt(-disc);
      lambda.emplace_back(mean, sq);
      lambda.emplace_back(mean, -sq);
    }
    i += 2;
  }
  return lambda;
}

RealSchurResult real_schur(RealMatrix a, bool accumulate_q) {
  util::check(a.is_square(), "real_schur: matrix must be square");
  const std::size_t n = a.rows();
  if (n == 0) return {RealMatrix(), RealMatrix(), {}};
  if (n == 1) {
    ComplexVector ev{Complex(a(0, 0), 0.0)};
    return {std::move(a), RealMatrix::identity(1), std::move(ev)};
  }

  auto [h, q] = hessenberg_reduce(std::move(a), accumulate_q);
  RealMatrix* qp = accumulate_q ? &q : nullptr;

  const double norm_scale = std::max(frobenius_norm(h), 1e-300);
  std::size_t m = n - 1;
  std::size_t iter = 0;
  std::size_t total_iter = 0;
  const std::size_t max_total = 50 * n;

  while (m > 0) {
    // Deflation scan: zero negligible subdiagonals, find active block.
    std::size_t l = m;
    while (l > 0) {
      const double sub = std::abs(h(l, l - 1));
      double ref = std::abs(h(l - 1, l - 1)) + std::abs(h(l, l));
      if (ref == 0.0) ref = norm_scale;
      if (sub <= kEps * ref) {
        h(l, l - 1) = 0.0;
        break;
      }
      --l;
    }

    if (l == m) {
      // 1x1 block converged.
      --m;
      iter = 0;
      continue;
    }
    if (l + 1 == m) {
      // 2x2 block converged (its eigenvalues are read off at the end).
      m = (m >= 2) ? m - 2 : 0;
      if (l == 0 && m == 0) break;
      iter = 0;
      continue;
    }

    ++iter;
    ++total_iter;
    util::require(total_iter < max_total,
                  "real_schur: QR iteration failed to converge");

    double sum, prod;
    if (iter % 11 == 10) {
      // Exceptional (ad hoc) shifts to break symmetry stalls.
      const double w = std::abs(h(m, m - 1)) + std::abs(h(m - 1, m - 2));
      sum = 1.5 * w;
      prod = w * w;
    } else {
      // Standard Francis shifts: eigenvalues of the trailing 2x2.
      sum = h(m - 1, m - 1) + h(m, m);
      prod = h(m - 1, m - 1) * h(m, m) - h(m - 1, m) * h(m, m - 1);
    }
    francis_step(h, qp, l, m, sum, prod);
  }

  ComplexVector ev = quasi_triangular_eigenvalues(h);
  return {std::move(h), std::move(q), std::move(ev)};
}

ComplexVector real_eigenvalues(RealMatrix a) {
  return real_schur(std::move(a), /*accumulate_q=*/false).eigenvalues;
}

}  // namespace phes::la
