#include "phes/la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "phes/la/blas.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

namespace {

constexpr int kMaxSweeps = 60;

// Sorts (sigma, columns of one or two matrices) descending by sigma.
template <typename T>
void sort_descending(RealVector& sigma, Matrix<T>* m1, Matrix<T>* m2) {
  const std::size_t n = sigma.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return sigma[a] > sigma[b]; });
  RealVector sorted_sigma(n);
  for (std::size_t k = 0; k < n; ++k) sorted_sigma[k] = sigma[order[k]];
  auto permute_cols = [&](Matrix<T>& m) {
    Matrix<T> out(m.rows(), m.cols());
    for (std::size_t k = 0; k < n; ++k) out.set_col(k, m.col(order[k]));
    m = std::move(out);
  };
  sigma = std::move(sorted_sigma);
  if (m1 != nullptr && !m1->empty()) permute_cols(*m1);
  if (m2 != nullptr && !m2->empty()) permute_cols(*m2);
}

}  // namespace

RealSvdResult real_svd(RealMatrix a) {
  util::check(a.rows() >= a.cols(), "real_svd: requires rows >= cols");
  const std::size_t m = a.rows(), n = a.cols();
  RealMatrix v = RealMatrix::identity(n);

  // One-sided Jacobi: orthogonalize pairs of columns of A; V accumulates
  // the rotations so that A_final = A_initial * V.
  const double tol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double max_cos = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          app += a(i, p) * a(i, p);
          aqq += a(i, q) * a(i, q);
          apq += a(i, p) * a(i, q);
        }
        if (app == 0.0 || aqq == 0.0) continue;
        const double cosine = std::abs(apq) / std::sqrt(app * aqq);
        max_cos = std::max(max_cos, cosine);
        if (cosine < tol) continue;
        // Jacobi rotation that zeroes the (p,q) entry of A^T A.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t_val =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t_val * t_val);
        const double s = c * t_val;
        for (std::size_t i = 0; i < m; ++i) {
          const double t1 = a(i, p), t2 = a(i, q);
          a(i, p) = c * t1 - s * t2;
          a(i, q) = s * t1 + c * t2;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double t1 = v(i, p), t2 = v(i, q);
          v(i, p) = c * t1 - s * t2;
          v(i, q) = s * t1 + c * t2;
        }
      }
    }
    if (max_cos < tol) break;
  }

  RealSvdResult res;
  res.sigma.resize(n);
  res.u = RealMatrix(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += a(i, j) * a(i, j);
    norm = std::sqrt(norm);
    res.sigma[j] = norm;
    if (norm > 0.0) {
      for (std::size_t i = 0; i < m; ++i) res.u(i, j) = a(i, j) / norm;
    }
  }
  res.v = std::move(v);
  sort_descending(res.sigma, &res.u, &res.v);
  return res;
}

RealVector real_singular_values(RealMatrix a) {
  if (a.rows() < a.cols()) a = transpose(a);
  return real_svd(std::move(a)).sigma;
}

HermitianEigResult hermitian_eig(ComplexMatrix a, bool want_vectors) {
  util::check(a.is_square(), "hermitian_eig: matrix must be square");
  const std::size_t n = a.rows();
  ComplexMatrix v =
      want_vectors ? ComplexMatrix::identity(n) : ComplexMatrix();

  // Two-sided Jacobi with complex rotations.  Pivot (p,q) is
  // annihilated by J = [[c, -s* e^{i phi}], [s e^{-i phi}, c]]-style
  // unitary built from the Hermitian 2x2 [[app, h],[conj(h), aqq]].
  const double tol = 1e-14;
  double off_ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) off_ref += std::norm(a(i, j));
  }
  off_ref = std::max(std::sqrt(off_ref), 1e-300);

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double max_off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const Complex h = a(p, q);
        const double ah = std::abs(h);
        max_off = std::max(max_off, ah);
        if (ah <= tol * off_ref) continue;
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        const Complex phase = h / ah;  // e^{i phi}
        // Real Jacobi angle for [[app, ah],[ah, aqq]].
        const double zeta = (aqq - app) / (2.0 * ah);
        const double t_val =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t_val * t_val);
        const double s = c * t_val;
        // Column rotation: [cp, cq] <- [c*cp - s*conj(phase)*cq,
        //                               s*phase*cp + c*cq]
        const Complex sp = s * phase;
        const Complex spc = s * std::conj(phase);
        for (std::size_t i = 0; i < n; ++i) {
          const Complex t1 = a(i, p), t2 = a(i, q);
          a(i, p) = c * t1 - spc * t2;
          a(i, q) = sp * t1 + c * t2;
        }
        for (std::size_t j = 0; j < n; ++j) {
          const Complex t1 = a(p, j), t2 = a(q, j);
          a(p, j) = c * t1 - sp * t2;
          a(q, j) = spc * t1 + c * t2;
        }
        if (want_vectors) {
          for (std::size_t i = 0; i < n; ++i) {
            const Complex t1 = v(i, p), t2 = v(i, q);
            v(i, p) = c * t1 - spc * t2;
            v(i, q) = sp * t1 + c * t2;
          }
        }
        // Force exact Hermitian structure at the pivot.
        a(p, q) = Complex{};
        a(q, p) = Complex{};
        a(p, p) = Complex(a(p, p).real(), 0.0);
        a(q, q) = Complex(a(q, q).real(), 0.0);
      }
    }
    if (max_off <= tol * off_ref) break;
  }

  HermitianEigResult res;
  res.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.values[i] = a(i, i).real();
  res.vectors = std::move(v);
  sort_descending(res.values, want_vectors ? &res.vectors : nullptr,
                  static_cast<ComplexMatrix*>(nullptr));
  return res;
}

RealVector complex_singular_values(const ComplexMatrix& a) {
  // sigma(A) = sqrt(eig(A^H A)); A^H A is Hermitian positive
  // semidefinite.
  const ComplexMatrix ata = gemm(adjoint(a), a);
  HermitianEigResult eig = hermitian_eig(ata, false);
  RealVector sigma(eig.values.size());
  for (std::size_t i = 0; i < sigma.size(); ++i) {
    sigma[i] = std::sqrt(std::max(eig.values[i], 0.0));
  }
  return sigma;
}

double complex_spectral_norm(const ComplexMatrix& a) {
  const RealVector sigma = complex_singular_values(a);
  return sigma.empty() ? 0.0 : sigma.front();
}

ComplexSvdResult complex_svd(const ComplexMatrix& a) {
  util::check(a.is_square(), "complex_svd: requires a square matrix");
  const std::size_t n = a.rows();
  const ComplexMatrix ata = gemm(adjoint(a), a);
  HermitianEigResult eig = hermitian_eig(ata, true);

  ComplexSvdResult res;
  res.sigma.resize(n);
  res.v = std::move(eig.vectors);
  res.u = ComplexMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    res.sigma[j] = std::sqrt(std::max(eig.values[j], 0.0));
    ComplexVector vj = res.v.col(j);
    ComplexVector uj = gemv(a, std::span<const Complex>(vj));
    const double nu = nrm2<Complex>(uj);
    if (nu > 0.0) {
      for (auto& x : uj) x /= nu;
    }
    res.u.set_col(j, uj);
  }
  return res;
}

}  // namespace phes::la
