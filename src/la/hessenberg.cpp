#include "phes/la/hessenberg.hpp"

#include <cmath>

#include "phes/util/check.hpp"

namespace phes::la {

HessenbergResult<Real> hessenberg_reduce(RealMatrix a, bool accumulate_q) {
  util::check(a.is_square(), "hessenberg_reduce: matrix must be square");
  const std::size_t n = a.rows();
  RealMatrix q = accumulate_q ? RealMatrix::identity(n) : RealMatrix();

  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Householder vector annihilating a(k+2.., k).
    double norm_x = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm_x += a(i, k) * a(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;
    const double alpha = a(k + 1, k) >= 0.0 ? -norm_x : norm_x;
    const double v0 = a(k + 1, k) - alpha;
    RealVector v(n - k - 1);
    v[0] = 1.0;
    for (std::size_t i = k + 2; i < n; ++i) v[i - k - 1] = a(i, k) / v0;
    const double beta = -v0 / alpha;  // 2 / v^T v with v[0] = 1

    // Left: rows k+1.., all columns from k.
    for (std::size_t j = k; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k + 1; i < n; ++i) s += v[i - k - 1] * a(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= s * v[i - k - 1];
    }
    // Right: cols k+1.., all rows.
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j - k - 1];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= s * v[j - k - 1];
    }
    if (accumulate_q) {
      for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (std::size_t j = k + 1; j < n; ++j) s += q(i, j) * v[j - k - 1];
        s *= beta;
        for (std::size_t j = k + 1; j < n; ++j) q(i, j) -= s * v[j - k - 1];
      }
    }
    // Zero out the annihilated entries explicitly.
    a(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = 0.0;
  }
  return {std::move(a), std::move(q)};
}

HessenbergResult<Complex> hessenberg_reduce(ComplexMatrix a,
                                            bool accumulate_q) {
  util::check(a.is_square(), "hessenberg_reduce: matrix must be square");
  const std::size_t n = a.rows();
  ComplexMatrix q = accumulate_q ? ComplexMatrix::identity(n)
                                 : ComplexMatrix();

  for (std::size_t k = 0; k + 2 < n; ++k) {
    double norm_x = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm_x += std::norm(a(i, k));
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;
    // alpha = -exp(i arg(x0)) * ||x||, so that v = x - alpha e1 is safe.
    const Complex x0 = a(k + 1, k);
    const Complex phase =
        std::abs(x0) > 0.0 ? x0 / std::abs(x0) : Complex(1.0, 0.0);
    const Complex alpha = -phase * norm_x;
    const Complex v0 = x0 - alpha;
    if (std::abs(v0) == 0.0) continue;
    ComplexVector v(n - k - 1);
    v[0] = Complex(1.0, 0.0);
    for (std::size_t i = k + 2; i < n; ++i) v[i - k - 1] = a(i, k) / v0;
    // beta = 2 / v^H v (real by construction of the Householder vector).
    double vhv = 0.0;
    for (const auto& vi : v) vhv += std::norm(vi);
    const double beta = 2.0 / vhv;

    // Left: A <- (I - beta v v^H) A on rows k+1.., columns k..
    for (std::size_t j = k; j < n; ++j) {
      Complex s{};
      for (std::size_t i = k + 1; i < n; ++i) {
        s += std::conj(v[i - k - 1]) * a(i, j);
      }
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= s * v[i - k - 1];
    }
    // Right: A <- A (I - beta v v^H) on cols k+1.., all rows.
    for (std::size_t i = 0; i < n; ++i) {
      Complex s{};
      for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j - k - 1];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) {
        a(i, j) -= s * std::conj(v[j - k - 1]);
      }
    }
    if (accumulate_q) {
      for (std::size_t i = 0; i < n; ++i) {
        Complex s{};
        for (std::size_t j = k + 1; j < n; ++j) s += q(i, j) * v[j - k - 1];
        s *= beta;
        for (std::size_t j = k + 1; j < n; ++j) {
          q(i, j) -= s * std::conj(v[j - k - 1]);
        }
      }
    }
    a(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) a(i, k) = Complex{};
  }
  return {std::move(a), std::move(q)};
}

}  // namespace phes::la
