#include "phes/la/qr.hpp"

#include <algorithm>
#include <cmath>

#include "phes/util/check.hpp"

namespace phes::la {

QrFactorization::QrFactorization(RealMatrix a) : qr_(std::move(a)) {
  util::check(qr_.rows() >= qr_.cols(),
              "QrFactorization: requires rows >= cols");
  const std::size_t m = qr_.rows(), n = qr_.cols();
  tau_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating qr_(k+1..m-1, k).
    double norm_x = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_x += qr_(i, k) * qr_(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm_x : norm_x;
    // v = x - alpha e1, normalized so v(k) = 1; store v below diagonal.
    const double vk = qr_(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= vk;
    tau_[k] = -vk / alpha;  // tau = 2 / (v^T v) given the normalization
    qr_(k, k) = alpha;

    // Apply (I - tau v v^T) to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

void QrFactorization::apply_qt(RealVector& b) const {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = b[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * b[i];
    s *= tau_[k];
    b[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) b[i] -= s * qr_(i, k);
  }
}

RealVector QrFactorization::solve(RealVector b) const {
  util::check(b.size() == qr_.rows(), "QrFactorization::solve: size mismatch");
  const std::size_t n = qr_.cols();
  apply_qt(b);
  RealVector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= qr_(ii, j) * x[j];
    util::require(qr_(ii, ii) != 0.0,
                  "QrFactorization::solve: rank-deficient system");
    x[ii] = acc / qr_(ii, ii);
  }
  return x;
}

RealMatrix QrFactorization::thin_q() const {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  // Accumulate Q by applying reflectors to the first n identity columns.
  RealMatrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    RealVector e(m, 0.0);
    e[j] = 1.0;
    // Apply H_{n-1} ... H_0 in reverse to get Q e_j.
    for (std::size_t kk = n; kk-- > 0;) {
      if (tau_[kk] == 0.0) continue;
      double s = e[kk];
      for (std::size_t i = kk + 1; i < m; ++i) s += qr_(i, kk) * e[i];
      s *= tau_[kk];
      e[kk] -= s;
      for (std::size_t i = kk + 1; i < m; ++i) e[i] -= s * qr_(i, kk);
    }
    q.set_col(j, e);
  }
  return q;
}

RealMatrix QrFactorization::r() const {
  const std::size_t n = qr_.cols();
  RealMatrix r(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

double QrFactorization::min_diag_r() const noexcept {
  double m = std::abs(qr_(0, 0));
  for (std::size_t i = 1; i < qr_.cols(); ++i) {
    m = std::min(m, std::abs(qr_(i, i)));
  }
  return m;
}

RealVector least_squares(RealMatrix a, RealVector b) {
  return QrFactorization(std::move(a)).solve(std::move(b));
}

}  // namespace phes::la
