#include "phes/la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "phes/la/blas.hpp"
#include "phes/la/hessenberg.hpp"
#include "phes/util/check.hpp"

namespace phes::la {

namespace {

// Complex Givens rotation (LAPACK zrotg convention):
// [ c        s ] [f]   [r]
// [-conj(s)  c ] [g] = [0],  c real >= 0.
struct Givens {
  double c = 1.0;
  Complex s{};
};

Givens make_givens(Complex f, Complex g) {
  Givens rot;
  const double af = std::abs(f), ag = std::abs(g);
  if (ag == 0.0) {
    rot.c = 1.0;
    rot.s = Complex{};
    return rot;
  }
  if (af == 0.0) {
    rot.c = 0.0;
    rot.s = std::conj(g) / ag;
    return rot;
  }
  const double d = std::hypot(af, ag);
  rot.c = af / d;
  rot.s = (f / af) * (std::conj(g) / d);
  return rot;
}

// Wilkinson shift: eigenvalue of the trailing 2x2 closest to t(m,m).
Complex wilkinson_shift(const ComplexMatrix& t, std::size_t m) {
  const Complex a = t(m - 1, m - 1), b = t(m - 1, m);
  const Complex c = t(m, m - 1), d = t(m, m);
  const Complex tr2 = 0.5 * (a + d);
  const Complex disc = std::sqrt(tr2 * tr2 - (a * d - b * c));
  const Complex l1 = tr2 + disc, l2 = tr2 - disc;
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

}  // namespace

ComplexEigResult hessenberg_eig(ComplexMatrix t, bool want_vectors) {
  util::check(t.is_square(), "hessenberg_eig: matrix must be square");
  const std::size_t n = t.rows();
  ComplexEigResult result;
  if (n == 0) return result;

  // Clear below-subdiagonal garbage so the iteration invariant holds.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j + 1 < i; ++j) t(i, j) = Complex{};
  }

  ComplexMatrix z =
      want_vectors ? ComplexMatrix::identity(n) : ComplexMatrix();
  const double norm_scale = std::max(frobenius_norm(t), 1e-300);

  if (n > 1) {
    std::size_t m = n - 1;
    std::size_t iter = 0, total_iter = 0;
    const std::size_t max_total = 60 * n;
    while (true) {
      // Deflation scan.
      std::size_t l = m;
      while (l > 0) {
        const double sub = std::abs(t(l, l - 1));
        double ref = std::abs(t(l - 1, l - 1)) + std::abs(t(l, l));
        if (ref == 0.0) ref = norm_scale;
        if (sub <= kEps * ref) {
          t(l, l - 1) = Complex{};
          break;
        }
        --l;
      }
      if (l == m) {
        if (m == 0) break;
        --m;
        iter = 0;
        continue;
      }

      ++iter;
      ++total_iter;
      util::require(total_iter < max_total,
                    "hessenberg_eig: QR iteration failed to converge");

      Complex mu;
      if (iter % 11 == 10) {
        // Exceptional shift.
        mu = t(m, m) + Complex(1.5 * std::abs(t(m, m - 1)), 0.0);
      } else {
        mu = wilkinson_shift(t, m);
      }

      // Implicit single-shift QR sweep on block [l, m] via Givens chase.
      Complex x = t(l, l) - mu;
      Complex y = t(l + 1, l);
      for (std::size_t k = l; k <= m - 1; ++k) {
        const Givens g = make_givens(x, y);
        // Left rotation on rows k, k+1.
        const std::size_t c0 = (k > l) ? k - 1 : l;
        for (std::size_t j = c0; j < n; ++j) {
          const Complex t1 = t(k, j), t2 = t(k + 1, j);
          t(k, j) = g.c * t1 + g.s * t2;
          t(k + 1, j) = -std::conj(g.s) * t1 + g.c * t2;
        }
        // Right rotation on columns k, k+1.
        const std::size_t r1 = std::min(k + 2, m);
        for (std::size_t i = 0; i <= r1; ++i) {
          const Complex t1 = t(i, k), t2 = t(i, k + 1);
          t(i, k) = g.c * t1 + std::conj(g.s) * t2;
          t(i, k + 1) = -g.s * t1 + g.c * t2;
        }
        if (want_vectors) {
          for (std::size_t i = 0; i < n; ++i) {
            const Complex t1 = z(i, k), t2 = z(i, k + 1);
            z(i, k) = g.c * t1 + std::conj(g.s) * t2;
            z(i, k + 1) = -g.s * t1 + g.c * t2;
          }
        }
        if (k > l) t(k + 1, k - 1) = Complex{};  // clear chased bulge residue
        if (k + 1 <= m - 1) {
          x = t(k + 1, k);
          y = t(k + 2, k);
        }
      }
    }
  }

  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = t(i, i);

  if (want_vectors) {
    // Back-substitution for eigenvectors of the triangular factor, then
    // rotate back through the accumulated Schur vectors.
    result.vectors = ComplexMatrix(n, n);
    const double small = kEps * norm_scale;
    for (std::size_t j = 0; j < n; ++j) {
      ComplexVector y_vec(n, Complex{});
      y_vec[j] = Complex(1.0, 0.0);
      const Complex lambda = t(j, j);
      for (std::size_t ii = j; ii-- > 0;) {
        Complex acc{};
        for (std::size_t k = ii + 1; k <= j; ++k) acc += t(ii, k) * y_vec[k];
        Complex denom = t(ii, ii) - lambda;
        if (std::abs(denom) < small) {
          denom = Complex(small, small);  // perturb repeated eigenvalue
        }
        y_vec[ii] = -acc / denom;
      }
      // v = Z y, normalized.
      ComplexVector v(n, Complex{});
      for (std::size_t i = 0; i < n; ++i) {
        Complex acc{};
        for (std::size_t k = 0; k <= j; ++k) acc += z(i, k) * y_vec[k];
        v[i] = acc;
      }
      const double nv = nrm2<Complex>(v);
      if (nv > 0.0) {
        for (auto& vi : v) vi /= nv;
      }
      result.vectors.set_col(j, v);
    }
  }
  return result;
}

ComplexEigResult complex_eig(ComplexMatrix a, bool want_vectors) {
  util::check(a.is_square(), "complex_eig: matrix must be square");
  if (!want_vectors) {
    auto [h, q] = hessenberg_reduce(std::move(a), false);
    return hessenberg_eig(std::move(h), false);
  }
  auto [h, q] = hessenberg_reduce(std::move(a), true);
  ComplexEigResult res = hessenberg_eig(std::move(h), true);
  // Map eigenvectors back through the Hessenberg similarity: v = Q v_h.
  ComplexMatrix mapped = gemm(q, res.vectors);
  // Renormalize columns.
  for (std::size_t j = 0; j < mapped.cols(); ++j) {
    auto v = mapped.col(j);
    const double nv = nrm2<Complex>(v);
    if (nv > 0.0) {
      for (auto& vi : v) vi /= nv;
    }
    mapped.set_col(j, v);
  }
  res.vectors = std::move(mapped);
  return res;
}

ComplexVector complex_eigenvalues(ComplexMatrix a) {
  return complex_eig(std::move(a), false).values;
}

}  // namespace phes::la
