#include "phes/la/kernels.hpp"

#include <stdexcept>

namespace phes::la {

KernelBackend parse_kernel_backend(const std::string& name) {
  if (name == "tuned") return KernelBackend::kTuned;
  if (name == "reference") return KernelBackend::kReference;
  throw std::invalid_argument("unknown kernel backend '" + name +
                              "' (expected tuned|reference)");
}

const char* kernel_backend_name(KernelBackend backend) noexcept {
  return backend == KernelBackend::kReference ? "reference" : "tuned";
}

namespace kernels {

namespace {

// One conj(v)*w dot product with four independent re/im accumulator
// pairs: the serial complex-add chain is the latency bottleneck of the
// reference Gram-Schmidt, and four chains keep the FMA pipes busy.
inline Complex dotc_one(const Complex* v, const Complex* w,
                        std::size_t dim) {
  double re0 = 0.0, im0 = 0.0, re1 = 0.0, im1 = 0.0;
  double re2 = 0.0, im2 = 0.0, re3 = 0.0, im3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const double vr0 = v[i].real(), vi0 = v[i].imag();
    const double wr0 = w[i].real(), wi0 = w[i].imag();
    re0 += vr0 * wr0 + vi0 * wi0;
    im0 += vr0 * wi0 - vi0 * wr0;
    const double vr1 = v[i + 1].real(), vi1 = v[i + 1].imag();
    const double wr1 = w[i + 1].real(), wi1 = w[i + 1].imag();
    re1 += vr1 * wr1 + vi1 * wi1;
    im1 += vr1 * wi1 - vi1 * wr1;
    const double vr2 = v[i + 2].real(), vi2 = v[i + 2].imag();
    const double wr2 = w[i + 2].real(), wi2 = w[i + 2].imag();
    re2 += vr2 * wr2 + vi2 * wi2;
    im2 += vr2 * wi2 - vi2 * wr2;
    const double vr3 = v[i + 3].real(), vi3 = v[i + 3].imag();
    const double wr3 = w[i + 3].real(), wi3 = w[i + 3].imag();
    re3 += vr3 * wr3 + vi3 * wi3;
    im3 += vr3 * wi3 - vi3 * wr3;
  }
  for (; i < dim; ++i) {
    const double vr = v[i].real(), vi = v[i].imag();
    const double wr = w[i].real(), wi = w[i].imag();
    re0 += vr * wr + vi * wi;
    im0 += vr * wi - vi * wr;
  }
  return {(re0 + re1) + (re2 + re3), (im0 + im1) + (im2 + im3)};
}

// proj[j..j+1] for a pair of rows sharing one pass over w.
inline void dotc_two(const Complex* v0, const Complex* v1, const Complex* w,
                     std::size_t dim, Complex* proj) {
  double re0 = 0.0, im0 = 0.0, re1 = 0.0, im1 = 0.0;
  double re2 = 0.0, im2 = 0.0, re3 = 0.0, im3 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= dim; i += 2) {
    const double wr0 = w[i].real(), wi0 = w[i].imag();
    const double wr1 = w[i + 1].real(), wi1 = w[i + 1].imag();
    double vr = v0[i].real(), vi = v0[i].imag();
    re0 += vr * wr0 + vi * wi0;
    im0 += vr * wi0 - vi * wr0;
    vr = v0[i + 1].real(), vi = v0[i + 1].imag();
    re1 += vr * wr1 + vi * wi1;
    im1 += vr * wi1 - vi * wr1;
    vr = v1[i].real(), vi = v1[i].imag();
    re2 += vr * wr0 + vi * wi0;
    im2 += vr * wi0 - vi * wr0;
    vr = v1[i + 1].real(), vi = v1[i + 1].imag();
    re3 += vr * wr1 + vi * wi1;
    im3 += vr * wi1 - vi * wr1;
  }
  for (; i < dim; ++i) {
    const double wr = w[i].real(), wi = w[i].imag();
    double vr = v0[i].real(), vi = v0[i].imag();
    re0 += vr * wr + vi * wi;
    im0 += vr * wi - vi * wr;
    vr = v1[i].real(), vi = v1[i].imag();
    re2 += vr * wr + vi * wi;
    im2 += vr * wi - vi * wr;
  }
  proj[0] = {re0 + re1, im0 + im1};
  proj[1] = {re2 + re3, im2 + im3};
}

// w -= c0 * v0 + c1 * v1 in one pass over w.
inline void axpy_two(const Complex* v0, Complex c0, const Complex* v1,
                     Complex c1, Complex* w, std::size_t dim) {
  const double c0r = c0.real(), c0i = c0.imag();
  const double c1r = c1.real(), c1i = c1.imag();
  for (std::size_t i = 0; i < dim; ++i) {
    const double v0r = v0[i].real(), v0i = v0[i].imag();
    const double v1r = v1[i].real(), v1i = v1[i].imag();
    const double wr = w[i].real() - (c0r * v0r - c0i * v0i) -
                      (c1r * v1r - c1i * v1i);
    const double wi = w[i].imag() - (c0r * v0i + c0i * v0r) -
                      (c1r * v1i + c1i * v1r);
    w[i] = {wr, wi};
  }
}

inline void axpy_one(const Complex* v, Complex c, Complex* w,
                     std::size_t dim) {
  const double cr = c.real(), ci = c.imag();
  for (std::size_t i = 0; i < dim; ++i) {
    const double vr = v[i].real(), vi = v[i].imag();
    w[i] = {w[i].real() - (cr * vr - ci * vi),
            w[i].imag() - (cr * vi + ci * vr)};
  }
}

}  // namespace

void dotc_rows(const Complex* rows, std::size_t stride, std::size_t count,
               const Complex* w, std::size_t dim, Complex* proj) {
  std::size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    dotc_two(rows + j * stride, rows + (j + 1) * stride, w, dim, proj + j);
  }
  if (j < count) proj[j] = dotc_one(rows + j * stride, w, dim);
}

void dotc_ptrs(const Complex* const* rows, std::size_t count,
               const Complex* w, std::size_t dim, Complex* proj) {
  std::size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    dotc_two(rows[j], rows[j + 1], w, dim, proj + j);
  }
  if (j < count) proj[j] = dotc_one(rows[j], w, dim);
}

void axpy_rows(const Complex* rows, std::size_t stride, std::size_t count,
               const Complex* coeffs, Complex* w, std::size_t dim) {
  std::size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    axpy_two(rows + j * stride, coeffs[j], rows + (j + 1) * stride,
             coeffs[j + 1], w, dim);
  }
  if (j < count) axpy_one(rows + j * stride, coeffs[j], w, dim);
}

void axpy_ptrs(const Complex* const* rows, std::size_t count,
               const Complex* coeffs, Complex* w, std::size_t dim) {
  std::size_t j = 0;
  for (; j + 2 <= count; j += 2) {
    axpy_two(rows[j], coeffs[j], rows[j + 1], coeffs[j + 1], w, dim);
  }
  if (j < count) axpy_one(rows[j], coeffs[j], w, dim);
}

void gemv_planes(const double* a, std::size_t m, std::size_t n,
                 const double* xre, const double* xim, double* yre,
                 double* yim) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = a + i * n;
    double r0 = 0.0, r1 = 0.0, m0 = 0.0, m1 = 0.0;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      r0 += row[j] * xre[j];
      m0 += row[j] * xim[j];
      r1 += row[j + 1] * xre[j + 1];
      m1 += row[j + 1] * xim[j + 1];
    }
    for (; j < n; ++j) {
      r0 += row[j] * xre[j];
      m0 += row[j] * xim[j];
    }
    yre[i] = r0 + r1;
    yim[i] = m0 + m1;
  }
}

void gemv_t_planes(const double* a, std::size_t m, std::size_t n,
                   const double* xre, const double* xim, double* yre,
                   double* yim) {
  for (std::size_t j = 0; j < n; ++j) {
    yre[j] = 0.0;
    yim[j] = 0.0;
  }
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* r0 = a + i * n;
    const double* r1 = r0 + n;
    const double xr0 = xre[i], xi0 = xim[i];
    const double xr1 = xre[i + 1], xi1 = xim[i + 1];
    for (std::size_t j = 0; j < n; ++j) {
      yre[j] += r0[j] * xr0 + r1[j] * xr1;
      yim[j] += r0[j] * xi0 + r1[j] * xi1;
    }
  }
  if (i < m) {
    const double* r0 = a + i * n;
    const double xr0 = xre[i], xi0 = xim[i];
    for (std::size_t j = 0; j < n; ++j) {
      yre[j] += r0[j] * xr0;
      yim[j] += r0[j] * xi0;
    }
  }
}

void split_planes(const Complex* x, std::size_t n, double* re, double* im) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
}

void merge_planes(const double* re, const double* im, std::size_t n,
                  Complex* x) {
  for (std::size_t i = 0; i < n; ++i) x[i] = {re[i], im[i]};
}

}  // namespace kernels

}  // namespace phes::la
