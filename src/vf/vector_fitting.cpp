#include "phes/vf/vector_fitting.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "phes/la/blas.hpp"
#include "phes/la/qr.hpp"
#include "phes/la/schur.hpp"
#include "phes/util/check.hpp"
#include "phes/util/sync.hpp"
#include "phes/util/thread_pool.hpp"

namespace phes::vf {

namespace {

using la::Complex;
using la::ComplexVector;
using la::RealMatrix;
using la::RealVector;

// Pole set during the iteration: reals (Im == 0) and pair
// representatives (Im > 0).  The basis size equals
// n_real + 2 * n_pairs.
struct PoleSet {
  std::vector<double> real_poles;
  std::vector<Complex> pair_poles;  // Im > 0

  [[nodiscard]] std::size_t basis_size() const noexcept {
    return real_poles.size() + 2 * pair_poles.size();
  }
};

// Initial poles: log-spaced weakly damped pairs over the band.
PoleSet initial_poles(std::size_t num_poles, double w_lo, double w_hi,
                      double damping) {
  PoleSet set;
  const std::size_t n_pairs = num_poles / 2;
  const double lo = std::max(w_lo, 1e-6 * w_hi);
  for (std::size_t i = 0; i < n_pairs; ++i) {
    const double t = n_pairs == 1
                         ? 0.5
                         : static_cast<double>(i) /
                               static_cast<double>(n_pairs - 1);
    const double beta = lo * std::pow(w_hi / lo, t);
    set.pair_poles.emplace_back(-damping * beta, beta);
  }
  if (num_poles % 2 == 1) {
    set.real_poles.push_back(-std::sqrt(lo * w_hi));
  }
  return set;
}

// Evaluates the partial-fraction basis at s = j*w into `phi`
// (basis_size complex values).  Layout: reals first, then for each
// pair the two functions [1/(s-a) + 1/(s-a*)], [j/(s-a) - j/(s-a*)].
void eval_basis(const PoleSet& poles, double w, ComplexVector& phi) {
  const Complex s(0.0, w);
  std::size_t b = 0;
  for (double a : poles.real_poles) phi[b++] = 1.0 / (s - a);
  for (const Complex& a : poles.pair_poles) {
    const Complex f1 = 1.0 / (s - a);
    const Complex f2 = 1.0 / (s - std::conj(a));
    phi[b++] = f1 + f2;
    phi[b++] = Complex(0.0, 1.0) * (f1 - f2);
  }
}

// Pole relocation: zeros of sigma(s) = 1 + sum r~_b phi_b(s), computed
// as eig(A_p - b_p c~^T) (vectfit3 formulation).
PoleSet relocate_poles(const PoleSet& poles, const RealVector& sigma_coeffs,
                       bool enforce_stability) {
  const std::size_t nb = poles.basis_size();
  RealMatrix a(nb, nb);
  RealVector b(nb, 0.0);
  std::size_t idx = 0;
  for (double p : poles.real_poles) {
    a(idx, idx) = p;
    b[idx] = 1.0;
    idx += 1;
  }
  for (const Complex& p : poles.pair_poles) {
    a(idx, idx) = p.real();
    a(idx, idx + 1) = p.imag();
    a(idx + 1, idx) = -p.imag();
    a(idx + 1, idx + 1) = p.real();
    b[idx] = 2.0;
    idx += 2;
  }
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) {
      a(i, j) -= b[i] * sigma_coeffs[j];
    }
  }
  const la::ComplexVector zeros = la::real_eigenvalues(std::move(a));

  PoleSet out;
  const double imag_tol = 1e-9;
  double scale = 0.0;
  for (const Complex& z : zeros) scale = std::max(scale, std::abs(z));
  for (const Complex& z : zeros) {
    Complex pole = z;
    if (enforce_stability && pole.real() >= 0.0) {
      pole = Complex(-std::max(pole.real(), 1e-12 * scale), pole.imag());
    }
    if (std::abs(pole.imag()) <= imag_tol * std::max(scale, 1.0)) {
      out.real_poles.push_back(pole.real());
    } else if (pole.imag() > 0.0) {
      out.pair_poles.push_back(pole);
    }
    // Negative-imag members are the implicit conjugates.
  }
  return out;
}

// Largest relative distance between matched poles of two sets (rough:
// compares sorted-by-imag lists; good enough as a stop criterion).
double pole_movement(const PoleSet& a, const PoleSet& b) {
  std::vector<Complex> pa, pb;
  for (double p : a.real_poles) pa.emplace_back(p, 0.0);
  for (const Complex& p : a.pair_poles) pa.push_back(p);
  for (double p : b.real_poles) pb.emplace_back(p, 0.0);
  for (const Complex& p : b.pair_poles) pb.push_back(p);
  if (pa.size() != pb.size()) return 1e300;
  double scale = 1e-300;
  for (const Complex& p : pa) scale = std::max(scale, std::abs(p));
  double worst = 0.0;
  for (const Complex& p : pa) {
    double best = 1e300;
    for (const Complex& q : pb) best = std::min(best, std::abs(p - q));
    worst = std::max(worst, best);
  }
  return worst / scale;
}

}  // namespace

VectorFittingResult vector_fit(const macromodel::FrequencySamples& samples,
                               const VectorFittingOptions& opt) {
  samples.check_consistency();
  const std::size_t p = samples.ports();
  const std::size_t k_samples = samples.count();
  util::check(p > 0, "vector_fit: empty samples");
  util::check(opt.num_poles >= 2, "vector_fit: need at least two poles");
  util::check(2 * k_samples >= opt.num_poles + 1,
              "vector_fit: need more samples than unknowns per output");
  util::check(opt.iterations >= 1, "vector_fit: need >= 1 iteration");

  const double w_lo = samples.omega.front();
  const double w_hi = samples.omega.back();

  RealMatrix d(p, p);
  std::vector<macromodel::PoleResidueColumn> columns(p);
  std::vector<double> column_rms(p, 0.0);
  std::vector<std::size_t> iterations_by_col(p, 0);

  // Columns are fitted independently (each owns its pole set, residues,
  // and the d column), so they run verbatim on worker threads.
  const auto fit_column = [&](std::size_t col) {
    std::size_t iterations_used = 0;
    PoleSet poles = initial_poles(opt.num_poles, w_lo, w_hi,
                                  opt.initial_pole_damping);

    // ---- sigma iterations: relocate poles -----------------------------
    for (std::size_t it = 0; it < opt.iterations; ++it) {
      const std::size_t nb = poles.basis_size();
      const std::size_t n_res = nb + 1;          // residues + d per output
      const std::size_t n_unknown = p * n_res + nb;
      RealMatrix a(2 * k_samples * p, n_unknown);
      RealVector rhs(2 * k_samples * p);

      ComplexVector phi(nb);
      for (std::size_t m = 0; m < k_samples; ++m) {
        eval_basis(poles, samples.omega[m], phi);
        for (std::size_t i = 0; i < p; ++i) {
          const Complex h = samples.h[m](i, col);
          const std::size_t row_re = 2 * (m * p + i);
          const std::size_t row_im = row_re + 1;
          const std::size_t base = i * n_res;
          for (std::size_t b = 0; b < nb; ++b) {
            a(row_re, base + b) = phi[b].real();
            a(row_im, base + b) = phi[b].imag();
            // sigma part: -H(s) * phi_b(s) (shared unknowns at tail).
            const Complex hp = -h * phi[b];
            a(row_re, p * n_res + b) = hp.real();
            a(row_im, p * n_res + b) = hp.imag();
          }
          a(row_re, base + nb) = 1.0;  // d term (real)
          a(row_im, base + nb) = 0.0;
          rhs[row_re] = h.real();
          rhs[row_im] = h.imag();
        }
      }
      const RealVector x = la::least_squares(std::move(a), std::move(rhs));
      RealVector sigma_coeffs(nb);
      for (std::size_t b = 0; b < nb; ++b) sigma_coeffs[b] = x[p * n_res + b];

      PoleSet new_poles =
          relocate_poles(poles, sigma_coeffs, opt.enforce_stability);
      if (new_poles.basis_size() != poles.basis_size()) {
        // Pole count drifted (conjugate-pair collapse); keep iterating
        // with whatever structure came back.
        poles = std::move(new_poles);
        iterations_used = std::max(iterations_used, it + 1);
        continue;
      }
      const double movement = pole_movement(poles, new_poles);
      poles = std::move(new_poles);
      iterations_used = std::max(iterations_used, it + 1);
      if (movement < opt.pole_tol) break;
    }

    // ---- final residue identification (sigma == 1) --------------------
    const std::size_t nb = poles.basis_size();
    RealMatrix basis(2 * k_samples, nb + 1);
    ComplexVector phi(nb);
    for (std::size_t m = 0; m < k_samples; ++m) {
      eval_basis(poles, samples.omega[m], phi);
      for (std::size_t b = 0; b < nb; ++b) {
        basis(2 * m, b) = phi[b].real();
        basis(2 * m + 1, b) = phi[b].imag();
      }
      basis(2 * m, nb) = 1.0;
      basis(2 * m + 1, nb) = 0.0;
    }
    const la::QrFactorization qr(basis);

    macromodel::PoleResidueColumn& out_col = columns[col];
    out_col.real_terms.clear();
    out_col.complex_terms.clear();
    for (double pole : poles.real_poles) {
      out_col.real_terms.push_back({pole, RealVector(p, 0.0)});
    }
    for (const Complex& pole : poles.pair_poles) {
      out_col.complex_terms.push_back({pole, ComplexVector(p, Complex{})});
    }

    double err_sq = 0.0, ref_sq = 0.0;
    std::vector<RealVector> solutions(p);
    for (std::size_t i = 0; i < p; ++i) {
      RealVector rhs(2 * k_samples);
      for (std::size_t m = 0; m < k_samples; ++m) {
        rhs[2 * m] = samples.h[m](i, col).real();
        rhs[2 * m + 1] = samples.h[m](i, col).imag();
      }
      solutions[i] = qr.solve(rhs);
      // Residue layout matches eval_basis: reals, then (x1, x2) pairs.
      std::size_t b = 0;
      for (auto& term : out_col.real_terms) term.residue[i] = solutions[i][b++];
      for (auto& term : out_col.complex_terms) {
        term.residue[i] = Complex(solutions[i][b], solutions[i][b + 1]);
        b += 2;
      }
      d(i, col) = solutions[i][nb];
      // Fit error accumulation.
      ComplexVector phi2(nb);
      for (std::size_t m = 0; m < k_samples; ++m) {
        eval_basis(poles, samples.omega[m], phi2);
        Complex fit(d(i, col), 0.0);
        for (std::size_t bb = 0; bb < nb; ++bb) {
          fit += solutions[i][bb] * phi2[bb];
        }
        err_sq += std::norm(fit - samples.h[m](i, col));
        ref_sq += std::norm(samples.h[m](i, col));
      }
    }
    column_rms[col] = ref_sq > 0.0 ? std::sqrt(err_sq / ref_sq)
                                   : std::sqrt(err_sq);
    iterations_by_col[col] = iterations_used;
  };

  const std::size_t workers = std::min<std::size_t>(
      std::max<std::size_t>(opt.threads, 1), p);
  if (workers <= 1) {
    for (std::size_t col = 0; col < p; ++col) fit_column(col);
  } else {
    util::ThreadPool pool(workers);
    util::Mutex error_mutex;
    std::exception_ptr first_error;
    for (std::size_t col = 0; col < p; ++col) {
      pool.submit([&, col] {
        try {
          fit_column(col);
        } catch (...) {
          util::MutexLock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    pool.wait_idle();
    if (first_error) std::rethrow_exception(first_error);
  }
  const std::size_t iterations_used =
      *std::max_element(iterations_by_col.begin(), iterations_by_col.end());

  VectorFittingResult result{
      macromodel::PoleResidueModel(std::move(d), std::move(columns)), 0.0,
      std::move(column_rms), iterations_used};
  double total = 0.0;
  for (double e : result.column_rms) total += e * e;
  result.rms_error = std::sqrt(total / static_cast<double>(p));
  return result;
}

}  // namespace phes::vf
