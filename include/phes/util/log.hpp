#pragma once
// Serialized stderr diagnostics.
//
// Worker threads (DiskStorage put/journal failures, TraceStore sink
// failures, slow-job breakdowns) all report to stderr; raw fprintf
// calls from concurrent workers interleave mid-line.  Every stderr
// diagnostic goes through log_line(), which formats the full line
// first and writes it under one process-wide util::Mutex, so lines
// from different threads never shear.
//
// This is intentionally not a logging framework: one level-free
// function, stderr only, no timestamps (the server's NDJSON trace file
// carries the structured record; this is for humans watching a
// terminal).

#include <string>

namespace phes::util {

/// Write "[component] message\n" to stderr atomically with respect to
/// every other log_line() caller.  Never throws; a write failure is
/// silently dropped (diagnostics must not take the process down).
void log_line(const std::string& component, const std::string& message);

}  // namespace phes::util
