#pragma once
// phes::obs — the unified observability layer: named counters, gauges,
// and fixed-bucket latency histograms behind a mutex-sharded
// MetricsRegistry.
//
// Design constraints (this feeds every layer of the serving stack):
//   - Allocation-free hot path: components look handles up ONCE
//     (registration takes a shard mutex) and then mutate plain atomics;
//     observe()/add() never allocate, never lock.
//   - Snapshot/merge: snapshot() produces a plain-data MetricsSnapshot
//     that can be serialized (JSON / Prometheus text exposition) and
//     merged across processes — the future fleet coordinator aggregates
//     N backend snapshots with MetricsSnapshot::merge.
//   - Kill switch: set_enabled(false) turns every instrument created by
//     the registry into a relaxed-load-and-return no-op, so the
//     overhead of observability can be measured (bench_metrics_overhead)
//     and disabled outright.  Note the stats-op counters are registry
//     views, so disabling the registry also freezes them.  Compiling
//     with -DPHES_DISABLE_METRICS removes the instrument bodies
//     entirely (perf builds; the stats ops then report zeros).
//
// Ownership: instruments are owned by their registry and live as long
// as it does; handles returned by counter()/gauge()/histogram() are
// stable for the registry's lifetime.  MetricsRegistry::global() is the
// process-wide default; the JobServer owns a registry per instance so
// tests running several servers in one process see isolated counters.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "phes/util/sync.hpp"

namespace phes::util {
class JsonValue;
}  // namespace phes::util

namespace phes::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  explicit Counter(const std::atomic<bool>* enabled) noexcept
      : enabled_(enabled) {}

  void add(std::uint64_t n = 1) noexcept {
#ifndef PHES_DISABLE_METRICS
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
  const std::atomic<bool>* enabled_ = nullptr;  ///< registry kill switch
};

/// Instantaneous level (queue depth, open connections); may go down.
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(const std::atomic<bool>* enabled) noexcept
      : enabled_(enabled) {}

  void set(std::int64_t v) noexcept {
#ifndef PHES_DISABLE_METRICS
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d = 1) noexcept {
#ifndef PHES_DISABLE_METRICS
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    value_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  void sub(std::int64_t d = 1) noexcept { add(-d); }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  const std::atomic<bool>* enabled_ = nullptr;
};

/// Plain-data view of a Histogram (or a merge of several).  `counts`
/// has bounds.size() + 1 entries: counts[i] is the number of
/// observations with value <= bounds[i] (and > bounds[i-1]); the last
/// entry is the +Inf overflow bucket.  Buckets are NOT cumulative here
/// — to_prometheus() accumulates them into the `le` convention.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Fold another snapshot in.  Bounds must match exactly (aggregating
  /// fleets must agree on bucket layout); throws std::runtime_error
  /// otherwise.
  void merge(const HistogramSnapshot& other);
};

/// Fixed-bucket histogram: upper bounds are chosen at registration and
/// never change, so observe() is a branch-free-ish binary search plus
/// three relaxed atomic updates — no locks, no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds,
                     const std::atomic<bool>* enabled = nullptr);

  void observe(double value) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  /// 100 µs .. 60 s, roughly logarithmic — wide enough to cover an
  /// inline ping and a multi-second enforcement job in one layout.
  [[nodiscard]] static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;  ///< ascending, strictly increasing
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< size+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  const std::atomic<bool>* enabled_ = nullptr;
};

/// Everything a registry knows, as plain data: serialize it, merge it,
/// ship it to a coordinator.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Fold another snapshot in: counters and gauges add, histograms
  /// merge bucket-wise (throws std::runtime_error on a bucket-layout
  /// mismatch for the same name).
  void merge(const MetricsSnapshot& other);

  /// One-line JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"bounds": [..], "counts": [..],
  ///                            "count": N, "sum": S}, ...}}
  [[nodiscard]] std::string to_json() const;
  /// Inverse of to_json (the client's --prom path and the coordinator's
  /// aggregation path both parse with util::JsonValue).
  [[nodiscard]] static MetricsSnapshot from_json(const util::JsonValue& v);

  /// Prometheus text exposition format (# TYPE comments, cumulative
  /// `le` buckets, _sum/_count series).
  [[nodiscard]] std::string to_prometheus() const;
};

/// Named-instrument registry.  Registration (name -> handle) is
/// sharded by name hash so concurrent first-touch registration from
/// many threads does not serialize on one mutex; lookups of an
/// existing name take only that shard's lock.  Mutating a handle takes
/// no lock at all.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create.  The returned reference is stable for the
  /// registry's lifetime.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// Histogram with the default latency bucket layout.
  [[nodiscard]] Histogram& histogram(const std::string& name);
  /// Histogram with explicit upper bounds (ascending).  If the name
  /// already exists the existing instrument is returned regardless of
  /// `bounds` — first registration wins.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Kill switch: false turns every instrument created by this
  /// registry into a no-op (one relaxed load on the hot path).
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Process-wide default registry for hosts that do not own one.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  static constexpr std::size_t kShards = 8;

  struct Shard {
    mutable util::Mutex mutex;
    /// Map structure is what the mutex protects; the instruments
    /// themselves are atomics, mutated without it.
    std::map<std::string, std::unique_ptr<Counter>> counters
        PHES_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Gauge>> gauges
        PHES_GUARDED_BY(mutex);
    std::map<std::string, std::unique_ptr<Histogram>> histograms
        PHES_GUARDED_BY(mutex);
  };

  [[nodiscard]] Shard& shard_for(const std::string& name) const;

  std::atomic<bool> enabled_{true};
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace phes::obs
