#pragma once
// Minimal immutable JSON document (parse + read-only access).
//
// Grown for the job server's NDJSON protocol and now shared with the
// pipeline's report reader (JSON job records round-tripped through the
// durable result storage), so it lives in util rather than server.
// It is a deliberately small parser for machine-written documents
// (objects/arrays/strings/doubles) — not a general serialization
// library.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace phes::util {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parse one JSON document; trailing non-whitespace or malformed
  /// input throws std::runtime_error with a character offset.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept {
    return type_ == Type::kNull;
  }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  /// Object members in document order (key/value pairs); throws on a
  /// non-object.  For documents with dynamic keys (e.g. a metrics
  /// snapshot's counter names) where find() cannot enumerate.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // Lookup with defaults, for optional fields.
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::uint64_t uint_or(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;

 private:
  struct Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;  ///< array elements
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< object
};

}  // namespace phes::util
