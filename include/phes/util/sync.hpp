#pragma once
// phes::util::sync — the annotated synchronization layer.
//
// Every mutex in this repository lives behind the wrappers in this
// file, so Clang's Thread Safety Analysis (-Wthread-safety) can prove
// lock discipline at compile time: each guarded field names its mutex
// with PHES_GUARDED_BY, each must-hold helper carries PHES_REQUIRES,
// and an unguarded access (or a lock left held on an exit path) is a
// build break, not a TSAN-someday finding.  The raw std primitives are
// off limits outside this header — tools/lint_invariants.py enforces
// that rule repo-wide.
//
// Off Clang the macros expand to nothing and the wrappers are
// zero-overhead shims over std::mutex / std::shared_mutex /
// std::condition_variable, so GCC builds are unchanged.
//
// Usage map (see README "Static analysis" for the full cheatsheet):
//   util::Mutex mu;                       // a capability
//   int x PHES_GUARDED_BY(mu);            // field readable only under mu
//   util::MutexLock lock(mu);             // scoped acquire/release
//   void helper() PHES_REQUIRES(mu);      // caller must hold mu
//   void api() PHES_EXCLUDES(mu);         // caller must NOT hold mu
//   util::CondVar cv; cv.wait(mu);        // wait with mu held
//
// Condition-variable predicates: prefer the explicit loop
//   while (!ready_) cv_.wait(mutex_);
// inside a function that holds the lock.  The predicate-taking
// overloads run the predicate with the lock held, but a *lambda*
// predicate is analyzed as its own function — start it with
// `mu.assert_held();` if it touches guarded fields, or the analysis
// (rightly) cannot see that the capability is held.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---- Clang Thread Safety Analysis attribute macros --------------------
//
// Names follow the canonical mutex.h from the Clang documentation; the
// PHES_ prefix keeps them greppable and collision-free.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PHES_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PHES_THREAD_ANNOTATION
#define PHES_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (lockable) type.
#define PHES_CAPABILITY(x) PHES_THREAD_ANNOTATION(capability(x))
/// Declares an RAII class whose lifetime acquires/releases a capability.
#define PHES_SCOPED_CAPABILITY PHES_THREAD_ANNOTATION(scoped_lockable)
/// Field readable/writable only while holding the named capability.
#define PHES_GUARDED_BY(x) PHES_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose *pointee* is guarded by the named capability.
#define PHES_PT_GUARDED_BY(x) PHES_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (exclusive) and holds it on return.
#define PHES_ACQUIRE(...) \
  PHES_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function acquires the capability in shared (reader) mode.
#define PHES_ACQUIRE_SHARED(...) \
  PHES_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the (exclusively held) capability.
#define PHES_RELEASE(...) \
  PHES_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function releases the shared-held capability.
#define PHES_RELEASE_SHARED(...) \
  PHES_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function releases the capability whichever mode it was acquired in
/// (scoped-guard destructors).
#define PHES_RELEASE_GENERIC(...) \
  PHES_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
/// Caller must hold the capability exclusively; callee does not change it.
#define PHES_REQUIRES(...) \
  PHES_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must hold the capability at least shared.
#define PHES_REQUIRES_SHARED(...) \
  PHES_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function tries to acquire; first arg is the success return value.
#define PHES_TRY_ACQUIRE(...) \
  PHES_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Shared-mode try-acquire; first arg is the success return value.
#define PHES_TRY_ACQUIRE_SHARED(...) \
  PHES_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define PHES_EXCLUDES(...) PHES_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (escape hatch for
/// lambdas and callbacks the analysis cannot follow).
#define PHES_ASSERT_CAPABILITY(x) \
  PHES_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the named capability.
#define PHES_RETURN_CAPABILITY(x) PHES_THREAD_ANNOTATION(lock_returned(x))
/// Opt a function out of the analysis entirely.  Use sparingly and
/// leave a comment saying why the contract cannot be expressed.
#define PHES_NO_THREAD_SAFETY_ANALYSIS \
  PHES_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace phes::util {

class CondVar;

/// Annotated exclusive mutex.  Identical layout and cost to the
/// std::mutex it wraps; the annotations are compile-time only.
class PHES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PHES_ACQUIRE() { m_.lock(); }
  void unlock() PHES_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() PHES_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  /// No-op whose annotation tells the analysis "the caller holds this
  /// mutex here" — for lambda predicates and callbacks invoked under a
  /// lock the analysis cannot see across.
  void assert_held() const PHES_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Annotated reader/writer mutex.
class PHES_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() PHES_ACQUIRE() { m_.lock(); }
  void unlock() PHES_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() PHES_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }
  void lock_shared() PHES_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() PHES_RELEASE_SHARED() { m_.unlock_shared(); }
  [[nodiscard]] bool try_lock_shared() PHES_TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

  void assert_held() const PHES_ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock over Mutex — the std::lock_guard of this
/// layer.  No unlock-before-destruction: restructure with a nested
/// scope instead (notify-after-unlock patterns become
/// `{ MutexLock lock(mu); ... } cv.notify_one();`).
class PHES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PHES_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PHES_RELEASE_GENERIC() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock over SharedMutex.
class PHES_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) PHES_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() PHES_RELEASE_GENERIC() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock over SharedMutex.
class PHES_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) PHES_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() PHES_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to util::Mutex.  Every wait names the mutex
/// it requires, so "waited without the lock" is a compile error under
/// the analysis instead of undefined behaviour at runtime.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, reacquire before returning.
  /// Spurious wakeups happen — always wait in a predicate loop.
  void wait(Mutex& mu) PHES_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release()
    // the adapter so scope exit does not double-unlock.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// `while (!pred()) wait(mu);` — pred runs with `mu` held.  A lambda
  /// predicate touching PHES_GUARDED_BY fields should open with
  /// `mu.assert_held();` (the analysis treats a lambda as a separate
  /// function and cannot otherwise see the held capability).
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) PHES_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  /// Timed wait; std::cv_status::timeout after `rel_time`.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel_time)
      PHES_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, rel_time);
    native.release();
    return status;
  }

  /// Timed predicate wait: returns pred()'s value at exit (false means
  /// the deadline passed with the predicate still false) — the
  /// std::condition_variable::wait_for(pred) contract.
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& rel_time,
                Predicate pred) PHES_REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() + rel_time;
    while (!pred()) {
      std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
      const std::cv_status status = cv_.wait_until(native, deadline);
      native.release();
      if (status == std::cv_status::timeout) return pred();
    }
    return true;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace phes::util
