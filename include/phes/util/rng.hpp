#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// The solver's reproducibility story (DESIGN.md §5) requires that every
// single-shift Arnoldi iteration draw its random start vectors from a
// stream keyed by (global seed, shift id), independent of which thread
// happens to execute it.  xoshiro256** seeded through SplitMix64 gives
// high-quality, cheap, dependency-free streams.

#include <array>
#include <cstdint>
#include <limits>

namespace phes::util {

/// SplitMix64: used to expand seeds and to hash stream keys.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG.  Satisfies the essentials of
/// UniformRandomBitGenerator so it can also feed <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed a stream; `stream` distinguishes independent streams sharing
  /// one global seed (e.g. one stream per shift id).
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept {
    SplitMix64 sm(seed ^ (0xa0761d6478bd642fULL * (stream + 1)));
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal deviate (Marsaglia polar method).
  double normal() noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept { return (*this)() % n; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace phes::util
