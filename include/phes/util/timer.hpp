#pragma once
// Monotonic timing for benchmark harnesses, solver diagnostics, and
// the observability layer's latency histograms.

#include <chrono>

namespace phes::util {

/// Monotonic stopwatch.  Explicitly pinned to steady_clock: these
/// durations feed latency histograms and trace spans, so they must be
/// immune to wall-clock adjustments (NTP steps, manual clock changes).
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "WallTimer requires a monotonic clock: timings feed "
                "metrics histograms and trace spans");

  WallTimer() noexcept : start_{Clock::now()} {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  Clock::time_point start_;
};

/// Seconds since the Unix epoch — deliberately system_clock, the one
/// place wall-clock time is wanted: absolute timestamps on trace spans
/// and log lines.  Never use this for durations; that is WallTimer's
/// job.
[[nodiscard]] inline double unix_seconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace phes::util
