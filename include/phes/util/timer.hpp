#pragma once
// Wall-clock timing for benchmark harnesses and solver diagnostics.

#include <chrono>

namespace phes::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_{Clock::now()} {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace phes::util
