#pragma once
// Run statistics for repeated-measurement experiments (paper Fig. 6
// reports mean +/- standard deviation over 20 independent runs).

#include <cstddef>
#include <span>

namespace phes::util {

/// Online accumulator (Welford) for mean / stddev / min / max.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: accumulate a whole span at once.
[[nodiscard]] RunningStats summarize(std::span<const double> xs) noexcept;

}  // namespace phes::util
