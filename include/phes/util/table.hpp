#pragma once
// Minimal fixed-width ASCII table printer for benchmark harnesses that
// regenerate the paper's tables (Table I, Fig. 6 series).

#include <iosfwd>
#include <string>
#include <vector>

namespace phes::util {

/// Collects rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `value` with `digits` significant fractional digits.
[[nodiscard]] std::string format_double(double value, int digits = 3);

}  // namespace phes::util
