#pragma once
// Fixed-size worker pool used by the dynamic shift scheduler (DESIGN.md).
//
// The paper assigns individual single-shift Arnoldi iterations to
// individual threads; the pool provides exactly that: T long-lived
// workers pulling tasks from a shared queue.  Tasks may themselves
// enqueue further tasks (the scheduler's split rule does), so shutdown
// waits for full quiescence, not just queue emptiness.

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "phes/util/sync.hpp"

namespace phes::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Safe to call from within a running task.
  void submit(std::function<void()> task) PHES_EXCLUDES(mutex_);

  /// Block until every submitted task (including tasks submitted by
  /// running tasks) has completed.
  void wait_idle() PHES_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop() PHES_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ PHES_GUARDED_BY(mutex_);
  std::size_t in_flight_ PHES_GUARDED_BY(mutex_) = 0;
  bool stopping_ PHES_GUARDED_BY(mutex_) = false;
};

}  // namespace phes::util
