#pragma once
// Fixed-size worker pool used by the dynamic shift scheduler (DESIGN.md).
//
// The paper assigns individual single-shift Arnoldi iterations to
// individual threads; the pool provides exactly that: T long-lived
// workers pulling tasks from a shared queue.  Tasks may themselves
// enqueue further tasks (the scheduler's split rule does), so shutdown
// waits for full quiescence, not just queue emptiness.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace phes::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Safe to call from within a running task.
  void submit(std::function<void()> task);

  /// Block until every submitted task (including tasks submitted by
  /// running tasks) has completed.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace phes::util
