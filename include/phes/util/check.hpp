#pragma once
// Precondition checking (C++ Core Guidelines I.6/E.x): public-interface
// violations throw; internal invariants use assert-like termination in
// debug builds only.

#include <stdexcept>
#include <string>

namespace phes::util {

/// Throws std::invalid_argument when `condition` is false.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

/// Throws std::runtime_error for failures detected mid-computation
/// (e.g. a factorization hitting an exactly singular pivot).
inline void require(bool condition, const std::string& message) {
  if (!condition) throw std::runtime_error(message);
}

}  // namespace phes::util
