#pragma once
// phes::server::JobServer — the long-lived service core over the batch
// pipeline.
//
// A bounded JobQueue (admission + backpressure) feeds a persistent
// util::ThreadPool of workers; each worker runs jobs through
// pipeline::run_pipeline with a PipelineContext that wires in
//  - the cross-job engine::SessionPool (jobs over the same model hash
//    share a SolverSession and its shift-factorization cache),
//  - a per-job cancellation flag (polled at stage boundaries), and
//  - a stage observer feeding the ResultStore's progress field.
// Finished results land in the ResultStore keyed by job id, retrievable
// via the NDJSON protocol (server/protocol.hpp) or in-process.
//
// Lifecycle: construct -> submit/cancel/status/result from any thread
// -> shutdown(drain) exactly once (the destructor drains gracefully if
// the caller did not).  Thread-safe throughout.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "phes/engine/session_pool.hpp"
#include "phes/pipeline/batch.hpp"
#include "phes/pipeline/job.hpp"
#include "phes/server/campaign.hpp"
#include "phes/server/job_queue.hpp"
#include "phes/server/result_store.hpp"
#include "phes/server/trace.hpp"
#include "phes/util/metrics.hpp"
#include "phes/util/sync.hpp"
#include "phes/util/thread_pool.hpp"

namespace phes::server {

struct ServerOptions {
  /// Queue bound; submit() blocks once this many jobs are waiting.
  std::size_t queue_capacity = 64;
  /// Concurrent pipeline workers; 0 derives a (workers x solver
  /// threads) split from the hardware via pipeline::plan_parallelism.
  std::size_t workers = 0;
  /// Solver threads handed to every job; 0 => from the same plan.
  std::size_t solver_threads = 0;
  /// Pool sessions across jobs by model content hash.
  bool share_sessions = true;
  engine::SessionPoolOptions pool{};
  /// Finished-record retention cap of the in-memory result store
  /// (ignored when data_dir selects the disk backend).
  std::size_t max_finished_records = 4096;
  /// Durable result storage: when non-empty, finished results spill to
  /// this directory as JSON records (server::DiskStorage) and are
  /// recovered on the next start — `status`/`result`/`wait` survive a
  /// restart, and the id sequence resumes above every recovered id.
  /// Jobs that were queued/running when the process died come back as
  /// failed ("lost in server restart").
  std::string data_dir;
  /// Disk retention: byte budget for stored records (0 = unbounded).
  std::size_t retain_bytes = 0;
  /// Disk retention: drop records older than this many seconds
  /// (0 = keep forever).
  double retain_ttl_seconds = 0.0;
  /// Base options applied to submissions that do not override them.
  pipeline::JobOptions job_defaults{};
  /// Metrics sink shared by every layer of this server (queue, workers,
  /// storage; the TransportServer and DispatchPool join it through
  /// metrics_registry()).  nullptr: the server owns a private registry,
  /// so several servers in one process keep isolated counters.  Must
  /// outlive the server when set.
  obs::MetricsRegistry* registry = nullptr;
  /// Per-job stage traces kept for the `trace <id>` protocol op.
  std::size_t trace_capacity = 512;
  /// When non-empty, every finished job appends one NDJSON trace event
  /// here (see server/trace.hpp); open failure is non-fatal.
  std::string trace_file;
  /// When > 0, any job whose pipeline run exceeds this many
  /// milliseconds gets its full stage breakdown logged to stderr.
  double slow_job_ms = 0.0;
};

struct ServerStats {
  std::size_t submitted = 0;
  std::size_t workers = 0;
  std::size_t solver_threads = 0;
  JobQueue::Stats queue;
  engine::SessionPoolStats pool;
  /// Result-storage backend counters (retention, recovery).
  StorageStats storage;
  /// Counts by JobState, indexed by static_cast<size_t>(state).
  std::vector<std::size_t> states;
};

class JobServer {
 public:
  explicit JobServer(ServerOptions options = {});
  /// Graceful: drains queued work, then joins the workers.
  ~JobServer();

  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Admit a job (id assigned here and returned; the record is visible
  /// via status() immediately).  Blocks while the queue is full.
  /// Throws std::runtime_error once shutdown has begun.
  std::uint64_t submit(pipeline::PipelineJob job);

  /// Cancel a job.  Queued: removed, never runs.  Running: its flag is
  /// set and the pipeline stops at the next stage boundary — a true
  /// return therefore means "cancellation requested", not "job did not
  /// complete": a job already inside its final stage still finishes,
  /// and the terminal record (done vs cancelled) is authoritative.
  /// False when the job is unknown or already finished.
  bool cancel(std::uint64_t id);

  [[nodiscard]] std::optional<JobRecord> status(std::uint64_t id) const;
  [[nodiscard]] std::vector<JobRecord> jobs() const;
  /// Status-poll views without the PipelineResult payload (what the
  /// protocol's status op serves).
  [[nodiscard]] std::optional<ResultStore::JobSummary> job_summary(
      std::uint64_t id) const;
  [[nodiscard]] std::vector<ResultStore::JobSummary> job_summaries() const;
  /// The full result once the job reached a terminal state.
  [[nodiscard]] std::optional<pipeline::PipelineResult> result(
      std::uint64_t id) const;

  /// Block until job `id` reaches a terminal state.  False on timeout
  /// (timeout_seconds <= 0 waits forever) or unknown id.
  bool wait(std::uint64_t id, double timeout_seconds = 0.0);

  /// Stop the server.  drain=true finishes everything already queued;
  /// drain=false cancels the backlog and asks in-flight jobs to stop at
  /// their next stage boundary.  Idempotent; submit() fails afterwards.
  void shutdown(bool drain = true);
  [[nodiscard]] bool accepting() const noexcept {
    return accepting_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerOptions& options() const noexcept {
    return options_;
  }

  /// The registry every layer of this server reports into (the
  /// server-owned one unless ServerOptions::registry was set).
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() const noexcept {
    return *registry_;
  }
  /// Full metrics dump — what the `metrics` protocol op serializes.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const {
    return registry_->snapshot();
  }
  /// Stage trace of a finished job, if it is still in the trace ring
  /// (jobs cancelled while queued never ran, so they have no trace).
  [[nodiscard]] std::optional<JobTrace> trace(std::uint64_t id) const {
    return traces_.get(id);
  }

  /// Campaign replay over the stored records (the replay/resubmit/
  /// campaign protocol ops).
  [[nodiscard]] CampaignRunner& campaigns() noexcept { return campaigns_; }
  /// The replayable input spec persisted for `id` at admission, when
  /// the storage backend kept one.
  [[nodiscard]] std::optional<std::string> stored_input(
      std::uint64_t id) const {
    return store_.input(id);
  }

  /// Test/diagnostics hook: invoked as (job id, stage) when any job
  /// starts a stage.  Set before jobs are submitted; runs on worker
  /// threads.
  void set_stage_observer(
      std::function<void(std::uint64_t, pipeline::Stage)> observer);

 private:
  /// Delegation target so the (workers x solver threads) plan is
  /// computed exactly once.
  JobServer(ServerOptions options, pipeline::ParallelismPlan plan);

  void worker_loop();
  void run_one(QueuedJob item);
  /// stderr breakdown for jobs slower than ServerOptions::slow_job_ms.
  void log_slow_job(const JobTrace& trace) const;
  /// Wakes wait()ers; takes finished_mutex_ briefly so a state change
  /// cannot slip between a waiter's predicate check and its block.
  void notify_finished() PHES_EXCLUDES(finished_mutex_);
  [[nodiscard]] std::shared_ptr<std::atomic<bool>> cancel_flag(
      std::uint64_t id) const PHES_EXCLUDES(flags_mutex_);

  ServerOptions options_;
  std::size_t worker_count_ = 1;
  std::size_t solver_threads_ = 1;

  /// Declared before queue_/store_: both register instruments in the
  /// registry during construction.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  TraceStore traces_;

  JobQueue queue_;
  ResultStore store_;
  engine::SessionPool session_pool_;
  /// Declared after store_: start() reads stored records, and the
  /// runner resolves its phes_campaign_* instruments from registry_.
  CampaignRunner campaigns_;

  // Worker-layer instruments (resolved once at construction).
  obs::Counter* jobs_submitted_ = nullptr;
  obs::Counter* jobs_done_ = nullptr;
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* jobs_cancelled_ = nullptr;
  obs::Histogram* queue_wait_hist_ = nullptr;
  obs::Histogram* job_total_hist_ = nullptr;
  /// One duration histogram per pipeline stage, indexed by Stage.
  std::array<obs::Histogram*, 6> stage_hist_{};

  mutable util::Mutex flags_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<std::atomic<bool>>>
      cancel_flags_ PHES_GUARDED_BY(flags_mutex_);

  std::function<void(std::uint64_t, pipeline::Stage)> stage_observer_;

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> accepting_{true};
  /// An aborting shutdown is in progress: submissions racing past the
  /// accepting() gate self-flag so none can slip in unflagged between
  /// the abort's cancel sweep and the queue close.
  std::atomic<bool> aborting_{false};
  util::Mutex shutdown_mutex_;
  bool shutdown_done_ PHES_GUARDED_BY(shutdown_mutex_) = false;

  /// Guards no data of its own: wait() predicates read the (internally
  /// synchronized) ResultStore.  The lock only closes the window
  /// between a waiter's predicate check and its block.
  mutable util::Mutex finished_mutex_;
  util::CondVar finished_cv_;

  /// Declared last: destroyed (joined) first, while queue/store live.
  util::ThreadPool pool_;
};

}  // namespace phes::server
