#pragma once
// Per-job stage tracing: one span per pipeline stage, assembled when a
// job finishes from the PipelineResult the stage machine already
// produces (stage timings, SolverResult counters, session deltas) plus
// the admission/start timestamps the server carries on the queue item.
//
// Traces answer the question the aggregate histograms cannot: "where
// did job 41's four seconds go?"  They are kept in a bounded in-memory
// ring (the `trace <id>` protocol op) and — when the server was started
// with --trace-file — appended as one NDJSON event per finished job,
// so a fleet's trace files can be concatenated and queried offline.
//
// Timestamps are wall-clock (util::unix_seconds) so spans from
// different hosts line up; durations are measured on steady_clock
// (util::WallTimer) so they survive wall-clock adjustments.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/util/sync.hpp"

namespace phes::util {
class JsonValue;
}  // namespace phes::util

namespace phes::server {

/// One executed pipeline stage.  Solver counters are attached to the
/// stages that drive the Hamiltonian eigensolver (characterize carries
/// the initial report's counters, verify the final report's); they are
/// zero elsewhere.
struct StageSpan {
  std::string stage;
  double start_unix = 0.0;  ///< wall-clock seconds when the stage began
  double duration_ms = 0.0;
  std::uint64_t matvecs = 0;
  std::uint64_t factorizations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// The full per-job record: queue wait, one span per executed stage in
/// execution order, and the job-lifetime session counters (cross-stage
/// cache behaviour, visible even when stages were skipped).
struct JobTrace {
  std::uint64_t id = 0;
  std::string name;
  std::string status;  ///< PipelineResult::status()
  double submitted_unix = 0.0;
  double started_unix = 0.0;  ///< a worker picked the job up
  double queue_wait_ms = 0.0;
  double total_ms = 0.0;
  std::vector<StageSpan> spans;
  std::uint64_t solves = 0;
  std::uint64_t warm_solves = 0;
  std::uint64_t factorizations = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  /// One-line JSON object (the NDJSON trace-file event and the
  /// `trace` op's payload).
  [[nodiscard]] std::string to_json() const;
  /// Inverse of to_json: to_json(from_json(parse(to_json(t)))) is
  /// byte-identical to to_json(t).
  [[nodiscard]] static JobTrace from_json(const util::JsonValue& v);
};

/// Assemble a trace from a finished pipeline run.  `submitted_unix`
/// and `started_unix` come from the server's queue bookkeeping;
/// `queue_wait_ms` is steady-clock-measured by the caller.
[[nodiscard]] JobTrace build_job_trace(
    const pipeline::PipelineResult& result, double submitted_unix,
    double started_unix, double queue_wait_ms);

/// Bounded ring of recent traces plus the optional NDJSON sink.
/// Thread-safe: workers record concurrently with protocol-side gets.
class TraceStore {
 public:
  /// A non-empty `trace_file` is opened in append mode; open failure
  /// is non-fatal (a warning on stderr — tracing must never take the
  /// server down).
  explicit TraceStore(std::size_t capacity = 512,
                      const std::string& trace_file = "");

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Keep the trace (evicting the oldest past capacity) and append it
  /// to the trace file when one is open.
  void record(JobTrace trace) PHES_EXCLUDES(mutex_);

  [[nodiscard]] std::optional<JobTrace> get(std::uint64_t id) const
      PHES_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const PHES_EXCLUDES(mutex_);
  [[nodiscard]] bool file_open() const PHES_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return file_ok_;
  }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::deque<JobTrace> ring_ PHES_GUARDED_BY(mutex_);  ///< oldest first
  std::ofstream file_ PHES_GUARDED_BY(mutex_);
  bool file_ok_ PHES_GUARDED_BY(mutex_) = false;
};

}  // namespace phes::server
