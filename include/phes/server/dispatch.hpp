#pragma once
// Off-loop protocol dispatch for the TransportServer.
//
// PR 4's epoll loop ran handle_request inline, so one submit blocked
// on a full admission queue stalled status polls on every connection.
// The DispatchPool moves request handling onto a small worker pool: the
// loop enqueues decoded frames (tagged with the connection's token),
// workers run the handler — which may block on admission backpressure —
// and hand the completed RequestOutcome to a completion callback (the
// transport re-queues it to the loop via its eventfd wakeup).
//
// Ordering: the pool itself is FIFO per submission order, and the
// transport preserves per-connection response order by keeping at most
// one request per connection in flight (later frames wait in the
// connection's pending queue).  The task queue is bounded; try_submit
// returns false when it is full (the transport answers "server
// overloaded" rather than stalling the loop).
//
// Shutdown: stop() drops queued tasks and joins the workers.  A worker
// blocked inside a submit finishes once the JobServer frees a slot or
// shuts down — the owner must keep the JobServer alive (running or
// shut down, either unblocks) until stop() returns.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "phes/server/protocol.hpp"
#include "phes/util/metrics.hpp"
#include "phes/util/sync.hpp"

namespace phes::server {

struct DispatchStats {
  std::size_t workers = 0;
  std::size_t queue_depth = 0;  ///< tasks waiting (not yet picked up)
  std::size_t peak_depth = 0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;  ///< try_submit refusals (queue full)
};

class DispatchPool {
 public:
  /// Runs one request line; may block (admission backpressure).
  using Handler = std::function<RequestOutcome(const std::string& line)>;
  /// Invoked from a worker thread with the finished outcome; must be
  /// cheap and non-blocking (the transport just queues + wakes).
  using Completion =
      std::function<void(std::uint64_t conn_token, RequestOutcome outcome)>;

  /// `registry` hosts the pool's counters and latency histograms
  /// (queue-wait, handle-time); nullptr gives the pool a private one.
  DispatchPool(std::size_t workers, std::size_t queue_capacity,
               Handler handler, Completion on_complete,
               obs::MetricsRegistry* registry = nullptr);
  ~DispatchPool();

  DispatchPool(const DispatchPool&) = delete;
  DispatchPool& operator=(const DispatchPool&) = delete;

  /// Enqueue one request.  False when the queue is full or the pool is
  /// stopping — never blocks (the caller is the event loop).
  bool try_submit(std::uint64_t conn_token, std::string line)
      PHES_EXCLUDES(mutex_);

  /// Drop queued tasks, join the workers (in-flight handlers finish).
  /// Idempotent.
  void stop() PHES_EXCLUDES(mutex_);

  [[nodiscard]] DispatchStats stats() const PHES_EXCLUDES(mutex_);

 private:
  struct Task {
    std::uint64_t conn_token = 0;
    std::string line;
    /// Submission instant (monotonic) — queue-wait histogram anchor.
    std::chrono::steady_clock::time_point enqueued_at{};
  };

  void worker_loop() PHES_EXCLUDES(mutex_);

  const std::size_t capacity_;
  Handler handler_;
  Completion on_complete_;

  mutable util::Mutex mutex_;
  util::CondVar work_available_;
  std::deque<Task> queue_ PHES_GUARDED_BY(mutex_);
  bool stopping_ PHES_GUARDED_BY(mutex_) = false;
  std::size_t peak_depth_ PHES_GUARDED_BY(mutex_) = 0;

  /// Registry-backed counters (the stats op reads the same values).
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* submitted_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Gauge* depth_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
  obs::Histogram* handle_time_ = nullptr;

  std::vector<std::thread> workers_;
};

}  // namespace phes::server
