#pragma once
// Replayable campaigns: the bridge from the durable result store back
// into the job queue.  A campaign resolves stored records — one id, a
// filter (terminal state, input-hash, id range), or everything — into
// fresh PipelineJobs rebuilt from their persisted input specs
// (pipeline::read_job_spec_json), admits them through the same
// JobServer::submit path as any client submission, and tracks the
// replayed ids to completion.  Each finished replay is classified
// against its stored baseline by comparing deterministic result
// signatures (pipeline::result_signature):
//
//   bit-identical        same signature — the determinism guarantee
//                        held (only timings/session counters differ)
//   numerically-changed  same terminal status, different numbers
//   state-changed        the status itself changed (e.g. a solver
//                        change flipped passive -> not-passive)
//
// Records that cannot be replayed (no stored input, unparsable spec,
// unreadable stored payload, admission failure) are skipped-and-counted
// in the campaign report — never fatal, never queued.
//
// Thread-safe: start/resubmit/status may run concurrently from protocol
// handlers.  Job admission happens OUTSIDE the campaign mutex (submit
// blocks on queue backpressure), so a slow replay cannot wedge status
// polls of other campaigns.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/util/metrics.hpp"
#include "phes/util/sync.hpp"

namespace phes::server {

class JobServer;

/// Selects stored records for replay.  All criteria are ANDed.
struct ReplayFilter {
  /// Replay exactly this stored job; the other criteria are ignored.
  std::optional<std::uint64_t> id;
  /// Terminal state filter ("done" | "failed" | "cancelled"); empty
  /// keeps every terminal state.
  std::string state;
  /// Input-content-hash filter (pipeline::input_content_hash of the
  /// rebuilt job); empty keeps every model.
  std::string model;
  /// Inclusive id range; 0 leaves that side unbounded.
  std::uint64_t min_id = 0;
  std::uint64_t max_id = 0;
};

/// One replayed job within a campaign.
struct CampaignEntry {
  std::uint64_t source_id = 0;  ///< the stored record replayed
  std::uint64_t replay_id = 0;  ///< the fresh job admitted for it
  std::string name;
  std::string status_before;  ///< the stored result's status()
  std::string status_after;   ///< set once the replay is classified
  /// "bit-identical" | "numerically-changed" | "state-changed"; empty
  /// until the replayed job reaches a terminal state.
  std::string delta;
};

/// A record the filter selected but the campaign could not replay.
struct CampaignSkip {
  std::uint64_t source_id = 0;
  std::string reason;
};

/// Point-in-time campaign progress (the `campaign <id>` protocol op).
struct CampaignStatus {
  std::uint64_t id = 0;
  bool done = false;          ///< every replayed job is classified
  std::size_t total = 0;      ///< jobs the campaign admitted
  std::size_t completed = 0;  ///< jobs classified so far
  std::size_t identical = 0;
  std::size_t numeric = 0;
  std::size_t state_changed = 0;
  std::vector<CampaignEntry> entries;
  std::vector<CampaignSkip> skipped;
};

class CampaignRunner {
 public:
  /// Campaign instruments (phes_campaign_*) are resolved once from
  /// `registry` — the owning server's, so they share its exposition.
  CampaignRunner(JobServer& server, obs::MetricsRegistry& registry);

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  /// What start() hands the protocol layer: the new campaign id plus
  /// the admitted/skipped breakdown (entries carry their replay ids).
  struct StartResult {
    std::uint64_t campaign_id = 0;
    std::vector<CampaignEntry> entries;
    std::vector<CampaignSkip> skipped;
  };

  /// Resolve `filter` against the store and admit one fresh job per
  /// replayable record.  Blocks on queue backpressure like any submit.
  /// Throws std::runtime_error when filter.id names an unknown or
  /// still-running job; per-record replay failures become skips.
  StartResult start(const ReplayFilter& filter);

  /// Re-admit one stored record without campaign tracking; returns the
  /// fresh job id.  Throws std::runtime_error when the record is
  /// unknown, not terminal, or cannot be rebuilt from its stored input.
  std::uint64_t resubmit(std::uint64_t source_id);

  /// Campaign progress; lazily classifies entries whose replayed job
  /// has reached a terminal state.  nullopt for an unknown campaign.
  [[nodiscard]] std::optional<CampaignStatus> status(
      std::uint64_t campaign_id) PHES_EXCLUDES(mutex_);

 private:
  struct Tracked {
    CampaignEntry entry;
    std::string stored_signature;  ///< baseline at start() time
    bool classified = false;
  };
  struct Campaign {
    std::vector<Tracked> tracked;
    std::vector<CampaignSkip> skipped;
    bool completed_counted = false;  ///< completed_total bumped once
  };

  /// Rebuild the stored job for `source_id`, or explain why not via
  /// `reason`.  Does not touch mutex_.
  [[nodiscard]] std::optional<pipeline::PipelineJob> rebuild(
      std::uint64_t source_id, std::string& reason) const;

  JobServer& server_;

  obs::Counter* started_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* replayed_ = nullptr;
  obs::Counter* skipped_ = nullptr;
  obs::Counter* delta_identical_ = nullptr;
  obs::Counter* delta_numeric_ = nullptr;
  obs::Counter* delta_state_ = nullptr;

  mutable util::Mutex mutex_;
  std::uint64_t next_campaign_id_ PHES_GUARDED_BY(mutex_) = 1;
  std::map<std::uint64_t, Campaign> campaigns_ PHES_GUARDED_BY(mutex_);
};

}  // namespace phes::server
