#pragma once
// Retained job records — the server's answer to "what happened to job
// N?" after the worker that ran it has moved on.
//
// Every submission gets a record at admission time; the record walks
// queued -> running -> {done, failed, cancelled} and keeps the full
// PipelineResult once the job finishes, so the `result` protocol op can
// return the same machine-readable report as the batch summary writer.
// Finished records are evicted oldest-first once the store exceeds its
// retention cap (a long-lived server must not grow without bound);
// queued/running records are never evicted.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"

namespace phes::server {

enum class JobState {
  kQueued = 0,
  kRunning,
  kDone,       ///< finished with ok (includes stopped-early jobs)
  kFailed,     ///< a stage failed
  kCancelled,  ///< cancelled while queued or at a stage boundary
};

[[nodiscard]] const char* job_state_name(JobState state) noexcept;
[[nodiscard]] bool is_terminal(JobState state) noexcept;

struct JobRecord {
  std::uint64_t id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  /// Last stage the pipeline started (meaningful once running).
  pipeline::Stage stage = pipeline::Stage::kLoad;
  bool stage_known = false;
  /// Full result, valid once the state is terminal (a queued-cancel
  /// leaves a synthesized cancelled result).
  pipeline::PipelineResult result;
};

class ResultStore {
 public:
  explicit ResultStore(std::size_t max_finished = 4096);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Admission: creates the queued record.
  void add(std::uint64_t id, const std::string& name);

  /// queued -> running.  False when the record is gone or not queued
  /// (e.g. it was cancelled while the worker popped it).
  bool mark_running(std::uint64_t id);

  /// Progress: the pipeline started `stage`.
  void set_stage(std::uint64_t id, pipeline::Stage stage);

  /// Terminal transition from a finished pipeline run; the state is
  /// derived from the result (cancelled / ok / failed).
  void finish(std::uint64_t id, pipeline::PipelineResult result);

  /// queued -> cancelled (the job never ran).  False unless queued.
  bool mark_cancelled(std::uint64_t id);

  [[nodiscard]] std::optional<JobRecord> get(std::uint64_t id) const;
  /// State-only lookup — no PipelineResult copy.  The hot path for
  /// wait predicates and status polls.
  [[nodiscard]] std::optional<JobState> state(std::uint64_t id) const;

  /// What a status poll needs, without the PipelineResult payload.
  struct JobSummary {
    std::uint64_t id = 0;
    std::string name;
    JobState state = JobState::kQueued;
    pipeline::Stage stage = pipeline::Stage::kLoad;
    bool stage_known = false;
    std::string status;  ///< PipelineResult::status(), terminal only
  };
  [[nodiscard]] std::optional<JobSummary> summary(std::uint64_t id) const;
  /// Summaries of all records, ascending id — the status-all op; a
  /// full all() would deep-copy every retained result per poll.
  [[nodiscard]] std::vector<JobSummary> summaries() const;

  /// All records, ascending id (full results; prefer summaries() for
  /// polling).
  [[nodiscard]] std::vector<JobRecord> all() const;

  /// Record counts by state, indexed by static_cast<size_t>(JobState).
  [[nodiscard]] std::vector<std::size_t> state_counts() const;
  [[nodiscard]] std::size_t size() const;

 private:
  void evict_finished_locked();

  const std::size_t max_finished_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, JobRecord> records_;
  std::size_t finished_ = 0;  ///< terminal records currently resident
};

}  // namespace phes::server
