#pragma once
// Retained job records — the server's answer to "what happened to job
// N?" after the worker that ran it has moved on.
//
// Every submission gets a record at admission time; the record walks
// queued -> running -> {done, failed, cancelled}.  Live (queued or
// running) records are kept in the store's own map and are never
// evicted; records reaching a terminal state are handed to a pluggable
// Storage backend (server/storage.hpp) that owns retention and — for
// DiskStorage — persistence and crash recovery, so the `result`
// protocol op can return the same machine-readable report as the batch
// summary writer even across a server restart.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/server/storage.hpp"
#include "phes/util/sync.hpp"

namespace phes::server {

class ResultStore {
 public:
  /// In-memory backend with a finished-record retention cap.
  explicit ResultStore(std::size_t max_finished = 4096);
  /// Custom backend (e.g. DiskStorage for a durable server).
  explicit ResultStore(std::unique_ptr<Storage> storage);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Admission: creates the queued record (journaled by durable
  /// backends so a crash marks the job lost rather than unknown).
  void add(std::uint64_t id, const std::string& name);

  /// Persist the job's replayable input spec (empty spec = job has no
  /// replayable input; ignored).  Best-effort, delegated to the backend.
  void note_input(std::uint64_t id, const std::string& spec_json);

  /// The stored input spec for `id`, when the backend kept one.
  [[nodiscard]] std::optional<std::string> input(std::uint64_t id) const;

  /// queued -> running.  False when the record is gone or not queued
  /// (e.g. it was cancelled while the worker popped it).
  bool mark_running(std::uint64_t id);

  /// Progress: the pipeline started `stage`.
  void set_stage(std::uint64_t id, pipeline::Stage stage);

  /// Terminal transition from a finished pipeline run; the state is
  /// derived from the result (cancelled / ok / failed).
  void finish(std::uint64_t id, pipeline::PipelineResult result);

  /// queued -> cancelled (the job never ran).  False unless queued.
  bool mark_cancelled(std::uint64_t id);

  [[nodiscard]] std::optional<JobRecord> get(std::uint64_t id) const;
  /// State-only lookup — no PipelineResult copy (and no payload read
  /// on a disk backend).  The hot path for wait predicates and status
  /// polls.
  [[nodiscard]] std::optional<JobState> state(std::uint64_t id) const;

  /// Kept as a nested name for existing callers; the struct itself
  /// lives next to Storage.
  using JobSummary = server::JobSummary;
  [[nodiscard]] std::optional<JobSummary> summary(std::uint64_t id) const;
  /// Summaries of all records, ascending id — the status-all op; a
  /// full all() would deep-copy every retained result per poll.
  [[nodiscard]] std::vector<JobSummary> summaries() const;

  /// All records, ascending id (full results; prefer summaries() for
  /// polling — on a disk backend this reads every stored payload).
  [[nodiscard]] std::vector<JobRecord> all() const;

  /// Record counts by state, indexed by static_cast<size_t>(JobState).
  [[nodiscard]] std::vector<std::size_t> state_counts() const;
  [[nodiscard]] std::size_t size() const;

  /// Backend retention/persistence counters (the stats op's "store").
  [[nodiscard]] StorageStats storage_stats() const;
  /// Highest id the backend recovered — the server resumes its id
  /// sequence above it.
  [[nodiscard]] std::uint64_t max_seen_id() const;

 private:
  /// Move a live record into the backend as `state` with `result`.
  void finish_locked(std::map<std::uint64_t, JobRecord>::iterator it,
                     JobState state, pipeline::PipelineResult result)
      PHES_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  /// The pointer is set once at construction; the Storage object it
  /// names is single-threaded and called only under mutex_.
  const std::unique_ptr<Storage> storage_ PHES_PT_GUARDED_BY(mutex_);
  /// Live queued/running records only; terminal records live in the
  /// backend.
  std::map<std::uint64_t, JobRecord> records_ PHES_GUARDED_BY(mutex_);
};

}  // namespace phes::server
