#pragma once
// Bounded multi-producer / multi-consumer job queue — the admission
// control of the job server.
//
// Capacity is a hard bound: push() blocks once the queue is full, so a
// fast client cannot queue unbounded work (backpressure propagates all
// the way to the submitting socket).  close() releases every blocked
// producer and consumer; producers get `false`, consumers drain what
// remains and then get nullopt.  remove() supports cancelling a job
// that has not been popped yet.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "phes/pipeline/job.hpp"

namespace phes::server {

/// One queued submission: the server-assigned id plus the job payload
/// (PipelineJob::id carries the same id into the result).
struct QueuedJob {
  std::uint64_t id = 0;
  pipeline::PipelineJob job;
};

class JobQueue {
 public:
  struct Stats {
    std::size_t pushed = 0;
    std::size_t popped = 0;
    std::size_t removed = 0;     ///< cancelled while queued
    std::size_t push_waits = 0;  ///< pushes that hit backpressure
    std::size_t peak_size = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
    bool closed = false;
  };

  /// Capacity must be at least 1.
  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Blocks while the queue is full.  Returns false (dropping `item`)
  /// when the queue is closed before space opens up.
  bool push(QueuedJob item);

  /// Blocks while the queue is empty.  Returns nullopt only after
  /// close() AND the backlog has drained.
  [[nodiscard]] std::optional<QueuedJob> pop();

  /// Remove a not-yet-popped job.  False when the id is absent (it was
  /// already popped, or never queued here).
  bool remove(std::uint64_t id);

  /// Remove and return everything still queued (an aborting shutdown
  /// uses this to mark the backlog cancelled).
  [[nodiscard]] std::vector<QueuedJob> drain();

  /// Reject future pushes and wake every waiter.  Idempotent.
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const;
  [[nodiscard]] Stats stats() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable space_available_;
  std::condition_variable work_available_;
  std::deque<QueuedJob> queue_;
  bool closed_ = false;
  std::size_t pushed_ = 0;
  std::size_t popped_ = 0;
  std::size_t removed_ = 0;
  std::size_t push_waits_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace phes::server
