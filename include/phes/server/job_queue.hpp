#pragma once
// Bounded multi-producer / multi-consumer job queue — the admission
// control of the job server.
//
// Capacity is a hard bound: push() blocks once the queue is full, so a
// fast client cannot queue unbounded work (backpressure propagates all
// the way to the submitting socket).  close() releases every blocked
// producer and consumer; producers get `false`, consumers drain what
// remains and then get nullopt.  remove() supports cancelling a job
// that has not been popped yet.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/util/metrics.hpp"
#include "phes/util/sync.hpp"

namespace phes::server {

/// One queued submission: the server-assigned id plus the job payload
/// (PipelineJob::id carries the same id into the result).
struct QueuedJob {
  std::uint64_t id = 0;
  pipeline::PipelineJob job;
  /// Admission wall-clock timestamp (trace events).
  double submitted_unix = 0.0;
  /// Admission instant on the monotonic clock — the anchor the worker
  /// measures queue wait against.
  std::chrono::steady_clock::time_point enqueued_at{};
};

class JobQueue {
 public:
  struct Stats {
    std::size_t pushed = 0;
    std::size_t popped = 0;
    std::size_t removed = 0;     ///< cancelled while queued
    std::size_t push_waits = 0;  ///< pushes that hit backpressure
    std::size_t peak_size = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
    bool closed = false;
  };

  /// Capacity must be at least 1.  Counters and the depth gauge live
  /// in `registry` (the owning server's); nullptr gives the queue a
  /// private registry so standalone queues stay isolated.
  explicit JobQueue(std::size_t capacity,
                    obs::MetricsRegistry* registry = nullptr);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Blocks while the queue is full.  Returns false (dropping `item`)
  /// when the queue is closed before space opens up.
  bool push(QueuedJob item) PHES_EXCLUDES(mutex_);

  /// Blocks while the queue is empty.  Returns nullopt only after
  /// close() AND the backlog has drained.
  [[nodiscard]] std::optional<QueuedJob> pop() PHES_EXCLUDES(mutex_);

  /// Remove a not-yet-popped job.  False when the id is absent (it was
  /// already popped, or never queued here).
  bool remove(std::uint64_t id) PHES_EXCLUDES(mutex_);

  /// Remove and return everything still queued (an aborting shutdown
  /// uses this to mark the backlog cancelled).
  [[nodiscard]] std::vector<QueuedJob> drain() PHES_EXCLUDES(mutex_);

  /// Reject future pushes and wake every waiter.  Idempotent.
  void close() PHES_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const PHES_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const PHES_EXCLUDES(mutex_);
  [[nodiscard]] Stats stats() const PHES_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  util::CondVar space_available_;
  util::CondVar work_available_;
  std::deque<QueuedJob> queue_ PHES_GUARDED_BY(mutex_);
  bool closed_ PHES_GUARDED_BY(mutex_) = false;
  /// Max-tracking needs the mutex anyway.
  std::size_t peak_size_ PHES_GUARDED_BY(mutex_) = 0;

  /// Stats counters are registry-backed (the stats op is a view over
  /// the metrics registry, not a parallel bookkeeping path).
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* pushed_ = nullptr;
  obs::Counter* popped_ = nullptr;
  obs::Counter* removed_ = nullptr;
  obs::Counter* push_waits_ = nullptr;
  obs::Gauge* depth_ = nullptr;
  obs::Histogram* admission_wait_ = nullptr;
};

}  // namespace phes::server
