#pragma once
// Pluggable terminal-record storage behind the server's ResultStore.
//
// The ResultStore keeps live (queued/running) records in memory and
// hands every record that reaches a terminal state to a Storage
// backend, which owns retention policy and — for durable backends —
// persistence and crash recovery:
//
//   MemoryStorage — the original in-process map; retention is a
//     record-count cap, oldest finished records evicted first.
//   DiskStorage   — spills each finished PipelineResult as the same
//     JSON record `phes_pipeline --summary-json` writes (one
//     jobs/job-<id>.json per record, via pipeline::write_job_json)
//     next to an append-only NDJSON index journal.  On startup the
//     journal is replayed: terminal records are recovered and served
//     again (`result` responses are byte-identical to the pre-restart
//     ones — see pipeline::read_job_json), and jobs that were still
//     queued or running when the process died are marked failed with a
//     "lost in server restart" error so clients polling them get a
//     definitive answer instead of an unknown id.  Retention is a byte
//     budget and/or TTL instead of a record count.
//
// Thread safety: a Storage is externally synchronized — every call is
// made under the owning ResultStore's mutex.  Construction (including
// DiskStorage recovery) happens before the store is shared.

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "phes/pipeline/job.hpp"
#include "phes/util/metrics.hpp"

namespace phes::server {

enum class JobState {
  kQueued = 0,
  kRunning,
  kDone,       ///< finished with ok (includes stopped-early jobs)
  kFailed,     ///< a stage failed (or the job was lost in a restart)
  kCancelled,  ///< cancelled while queued or at a stage boundary
};

[[nodiscard]] const char* job_state_name(JobState state) noexcept;
[[nodiscard]] bool is_terminal(JobState state) noexcept;

/// Error-message prefix of the placeholder result DiskStorage::get
/// synthesizes when a persisted payload is unreadable (corrupt or
/// missing job-N.json).  Campaign replay matches on it to skip-and-count
/// such records instead of replaying garbage.
inline constexpr const char kUnreadableResultPrefix[] =
    "stored result unreadable: ";

struct JobRecord {
  std::uint64_t id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  /// Last stage the pipeline started (meaningful once running).
  pipeline::Stage stage = pipeline::Stage::kLoad;
  bool stage_known = false;
  /// Full result, valid once the state is terminal (a queued-cancel
  /// leaves a synthesized cancelled result).
  pipeline::PipelineResult result;
};

/// What a status poll needs, without the PipelineResult payload.
struct JobSummary {
  std::uint64_t id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  pipeline::Stage stage = pipeline::Stage::kLoad;
  bool stage_known = false;
  std::string status;  ///< PipelineResult::status(), terminal only
};

struct StorageStats {
  bool durable = false;       ///< records survive a process restart
  std::size_t records = 0;    ///< terminal records retained
  std::size_t bytes = 0;      ///< persisted payload bytes (disk only)
  std::size_t evicted = 0;    ///< retention evictions, lifetime
  std::size_t recovered = 0;  ///< terminal records recovered at startup
  std::size_t lost = 0;       ///< non-terminal at crash, marked failed
};

/// Terminal-record backend.  Holds only records in a terminal state;
/// queued/running records live in the ResultStore's own map.
class Storage {
 public:
  virtual ~Storage() = default;

  /// A job was admitted.  Durable backends journal it so a crash
  /// surfaces the job as lost rather than unknown; default no-op.
  virtual void note_admitted(std::uint64_t /*id*/,
                             const std::string& /*name*/) {}

  /// Persist an admitted job's replayable input specification
  /// (pipeline::write_job_spec_json) so `replay`/`resubmit` can rebuild
  /// the job later.  Best-effort: failures are logged, never thrown —
  /// a job without a stored spec simply cannot be replayed.  Default
  /// no-op (backends that keep no inputs make every record
  /// unreplayable, which the campaign report surfaces as skips).
  virtual void note_input(std::uint64_t /*id*/,
                          const std::string& /*spec_json*/) {}

  /// The stored input spec for `id`, when one was persisted and still
  /// survives retention.
  [[nodiscard]] virtual std::optional<std::string> input(
      std::uint64_t /*id*/) const {
    return std::nullopt;
  }

  /// Store a terminal record and apply the backend's retention policy.
  virtual void put(const JobRecord& record) = 0;

  [[nodiscard]] virtual std::optional<JobRecord> get(
      std::uint64_t id) const = 0;
  [[nodiscard]] virtual std::optional<JobState> state(
      std::uint64_t id) const = 0;
  [[nodiscard]] virtual std::optional<JobSummary> summary(
      std::uint64_t id) const = 0;
  /// All retained summaries / records, ascending id.  all() may read
  /// every persisted payload — prefer summaries() for polling.
  [[nodiscard]] virtual std::vector<JobSummary> summaries() const = 0;
  [[nodiscard]] virtual std::vector<JobRecord> all() const = 0;

  /// Record counts indexed by static_cast<size_t>(JobState) — the
  /// stats-op hot path, so no per-record string materialization.
  [[nodiscard]] virtual std::vector<std::size_t> state_counts() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual StorageStats stats() const = 0;

  /// Highest job id this backend has ever seen (recovered ids
  /// included) — the server resumes its id sequence above it so a
  /// restart cannot reissue an id that still names a stored record.
  [[nodiscard]] virtual std::uint64_t max_seen_id() const { return 0; }
};

/// The original in-memory retention: keep at most `max_finished`
/// terminal records, evicting oldest-first.
class MemoryStorage final : public Storage {
 public:
  /// Retention counters live in `registry` (the owning server's);
  /// nullptr gives the backend a private registry.
  explicit MemoryStorage(std::size_t max_finished = 4096,
                         obs::MetricsRegistry* registry = nullptr);

  void note_input(std::uint64_t id, const std::string& spec_json) override;
  [[nodiscard]] std::optional<std::string> input(
      std::uint64_t id) const override;
  void put(const JobRecord& record) override;
  [[nodiscard]] std::optional<JobRecord> get(std::uint64_t id) const override;
  [[nodiscard]] std::optional<JobState> state(
      std::uint64_t id) const override;
  [[nodiscard]] std::optional<JobSummary> summary(
      std::uint64_t id) const override;
  [[nodiscard]] std::vector<JobSummary> summaries() const override;
  [[nodiscard]] std::vector<JobRecord> all() const override;
  [[nodiscard]] std::vector<std::size_t> state_counts() const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] StorageStats stats() const override;

 private:
  const std::size_t max_finished_;
  std::map<std::uint64_t, JobRecord> records_;
  /// Input specs, evicted alongside their records.
  std::map<std::uint64_t, std::string> inputs_;
  /// Registry-backed (StorageStats is a view over these).
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* evicted_ = nullptr;
  obs::Gauge* records_gauge_ = nullptr;
  obs::Histogram* put_hist_ = nullptr;
};

struct DiskStorageOptions {
  /// Byte budget for persisted job records; past it, oldest records
  /// are evicted (file unlinked, journal updated).  0 = unbounded.
  std::size_t max_bytes = 0;
  /// Records older than this (wall-clock seconds since they finished)
  /// are purged lazily on mutation/stats.  0 = no TTL.
  double ttl_seconds = 0.0;
};

/// Disk-backed storage under `dir`:
///   <dir>/index.ndjson      append-only journal (add/finish/evict
///                           events; compacted on startup)
///   <dir>/jobs/job-N.json   one write_job_json document per record
///   <dir>/inputs/job-N.json the job's replayable input spec
///                           (write_job_spec_json), written at
///                           admission and unlinked with the record
/// Construction creates the directories, replays the journal
/// (recovering served records and marking admitted-but-unfinished jobs
/// lost), and compacts the journal.  Throws std::runtime_error when
/// the directory cannot be created or written.
class DiskStorage final : public Storage {
 public:
  /// Journal/replay and put/get latency histograms plus retention
  /// counters live in `registry`; nullptr gives the backend a private
  /// registry (standalone construction in tests).
  explicit DiskStorage(std::string dir, DiskStorageOptions options = {},
                       obs::MetricsRegistry* registry = nullptr);

  void note_admitted(std::uint64_t id, const std::string& name) override;
  void note_input(std::uint64_t id, const std::string& spec_json) override;
  [[nodiscard]] std::optional<std::string> input(
      std::uint64_t id) const override;
  void put(const JobRecord& record) override;
  [[nodiscard]] std::optional<JobRecord> get(std::uint64_t id) const override;
  [[nodiscard]] std::optional<JobState> state(
      std::uint64_t id) const override;
  [[nodiscard]] std::optional<JobSummary> summary(
      std::uint64_t id) const override;
  [[nodiscard]] std::vector<JobSummary> summaries() const override;
  [[nodiscard]] std::vector<JobRecord> all() const override;
  [[nodiscard]] std::vector<std::size_t> state_counts() const override;
  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] StorageStats stats() const override;
  [[nodiscard]] std::uint64_t max_seen_id() const override {
    return max_seen_id_;
  }

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  /// Summary-level index entry; the payload stays on disk until get().
  struct Entry {
    std::string name;
    JobState state = JobState::kDone;
    pipeline::Stage stage = pipeline::Stage::kLoad;
    bool stage_known = false;
    std::string status;
    std::size_t bytes = 0;
    double finished_unix = 0.0;  ///< wall-clock seconds, TTL anchor
  };

  void recover();
  void compact_index();
  void append_event(const std::string& line);
  void write_record(const JobRecord& record, double finished_unix);
  void evict(std::uint64_t id);
  void enforce_retention(double now_unix);
  [[nodiscard]] std::string job_path(std::uint64_t id) const;
  [[nodiscard]] std::string input_path(std::uint64_t id) const;
  [[nodiscard]] static JobSummary summarize(std::uint64_t id,
                                            const Entry& entry);

  std::string dir_;
  DiskStorageOptions options_;
  std::ofstream index_;  ///< journal, append mode
  std::map<std::uint64_t, Entry> entries_;
  std::map<std::uint64_t, std::string> pending_;  ///< admitted, no finish
  std::uint64_t max_seen_id_ = 0;
  std::size_t total_bytes_ = 0;
  /// Registry-backed (StorageStats is a view over these).  Resolved in
  /// the constructor BEFORE recover() runs, so the recovery pass can
  /// publish its counters and replay latency directly.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* evicted_ = nullptr;
  obs::Counter* recovered_ = nullptr;
  obs::Counter* lost_ = nullptr;
  obs::Gauge* records_gauge_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Histogram* put_hist_ = nullptr;
  obs::Histogram* get_hist_ = nullptr;
  obs::Histogram* journal_hist_ = nullptr;
  obs::Histogram* replay_hist_ = nullptr;
};

}  // namespace phes::server
