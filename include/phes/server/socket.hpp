#pragma once
// Client side of the NDJSON protocol — a blocking connector over either
// transport (server side: server/transport.hpp).
//
// An Endpoint names where the server listens:
//   "/tmp/phes.sock"        AF_UNIX filesystem socket
//   "tcp:HOST:PORT"         TCP listener (HOST numeric or resolvable)
// TCP endpoints carry the shared auth token; Client performs the
// {"op":"auth"} handshake on connect and throws when the server
// refuses it.
//
// Client::request() sends one line and returns one response line;
// connections are persistent, so a client can issue many requests.

#include <cstdint>
#include <string>

namespace phes::server {

/// A parsed server address plus the TCP auth token.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< AF_UNIX socket path
  std::string host;  ///< TCP host
  std::uint16_t port = 0;
  /// Shared secret for the TCP auth handshake (empty => no auth op is
  /// sent; the server will refuse if it requires one).
  std::string token;
};

/// Parse "tcp:HOST:PORT" into a TCP endpoint; anything else is an
/// AF_UNIX path.  Throws std::invalid_argument on a malformed TCP spec.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Blocking NDJSON client over a persistent connection.
class Client {
 public:
  /// AF_UNIX convenience; connects immediately, throws on failure.
  explicit Client(const std::string& socket_path);
  /// Connect to either transport; performs the auth handshake on a TCP
  /// endpoint with a token.  Throws std::runtime_error on connect or
  /// auth failure.
  explicit Client(const Endpoint& endpoint);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (the '\n' is appended here) and return the
  /// response line.  Throws on I/O failure or server disconnect.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// One-shot convenience: connect (+auth), send `line`, return the
/// response.
[[nodiscard]] std::string round_trip(const Endpoint& endpoint,
                                     const std::string& line);
[[nodiscard]] std::string round_trip(const std::string& socket_path,
                                     const std::string& line);

}  // namespace phes::server
