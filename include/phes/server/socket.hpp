#pragma once
// Local-socket transport for the NDJSON protocol (POSIX AF_UNIX).
//
// SocketServer binds a filesystem socket, accepts connections on a
// dedicated thread, and serves each connection on its own thread: read
// one request line, run it through handle_request, write one response
// line, repeat until the peer disconnects.  A client's shutdown op is
// acknowledged on its connection first, then surfaced through
// wait_shutdown() so the owner (the `serve` subcommand, a test) can
// stop the JobServer and this transport in order.
//
// Client is the matching blocking connector: request() sends one line
// and returns one response line; connections are persistent, so a
// client can issue many requests.
//
// Scale note: thread-per-connection is right for the local-operator /
// test workloads this PR targets; a remote transport with an event
// loop is a ROADMAP follow-up.

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace phes::server {

class JobServer;

class SocketServer {
 public:
  /// Prepares (but does not bind) a server for `socket_path`.  The path
  /// must fit a sockaddr_un and must not be in use; a stale socket file
  /// from a dead process is replaced.
  SocketServer(JobServer& server, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen + start accepting.  Throws std::runtime_error on
  /// socket failures.
  void start();

  /// Stop accepting, close every live connection, join all transport
  /// threads, remove the socket file.  Idempotent.
  void stop();

  /// Block until a client requests shutdown (or stop() is called).
  /// Returns the requested drain mode (true when stopped locally).
  bool wait_shutdown();

  [[nodiscard]] bool shutdown_requested() const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& connection);
  void note_shutdown(bool drain);
  /// Join connections whose threads have finished (accept_loop calls
  /// this per accept so a long-lived server does not accumulate one
  /// zombie thread per past client).
  void reap_finished_connections();

  JobServer& server_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;

  mutable std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool drain_ = true;
};

/// Blocking NDJSON client over a persistent AF_UNIX connection.
class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line (the '\n' is appended here) and return the
  /// response line.  Throws on I/O failure or server disconnect.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// One-shot convenience: connect, send `line`, return the response.
[[nodiscard]] std::string round_trip(const std::string& socket_path,
                                     const std::string& line);

}  // namespace phes::server
