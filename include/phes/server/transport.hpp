#pragma once
// Pluggable transport layer for the NDJSON job-server protocol.
//
// A Transport owns one listening endpoint and its per-connection
// policy; two implementations exist:
//   UnixTransport — the original AF_UNIX filesystem socket (stale-file
//     probe, unlink on close, no authentication: filesystem permissions
//     are the access control).
//   TcpTransport  — an AF_INET listener for remote clients.  Every
//     connection must authenticate before any other op: the first line
//     must be {"op":"auth","token":"..."} matching the shared token, or
//     the connection is refused.  Plain TCP — run it on a trusted
//     network or behind a TLS terminator (see README).
//
// TransportServer drives any number of transports from a single
// epoll-based event loop thread: sockets are non-blocking, every
// connection carries its own read/write buffers, and frames are
// newline-delimited JSON lines reassembled across partial reads (a
// frame split over many epoll wakeups is handled, as is a response
// split over many partial writes).  A line that grows past
// TransportLimits::max_line_bytes without a terminator gets one error
// response and the rest of that line is discarded — the connection
// survives.
//
// Request handling runs OFF the loop thread on a small DispatchPool
// (server/dispatch.hpp): the loop frames a line, hands it to the pool,
// and keeps serving every other connection; the completed response is
// re-queued to the loop through the eventfd wakeup and written from
// the loop thread (workers never touch sockets).  A submit blocked on
// a full admission queue therefore stalls only its own connection (and
// one pool worker) — status/stats/ping stay live.  Two refinements:
//   - fast path: cheap ops (ping/status/result/cancel/stats/auth/
//     shutdown) on a connection with nothing in flight are answered
//     inline on the loop — no pool round-trip;
//   - per-connection ordering: at most one request per connection is
//     in the pool at a time; later frames wait in the connection's
//     pending queue, and a connection that pipelines past
//     max_pipelined_requests has its read interest parked until the
//     backlog drains (flow control, not disconnect).
// dispatch_workers = 0 restores the PR 4 inline-handling behavior.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phes/server/dispatch.hpp"
#include "phes/server/protocol.hpp"
#include "phes/util/metrics.hpp"
#include "phes/util/sync.hpp"

namespace phes::server {

class JobServer;

/// One listening endpoint plus its per-connection policy.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Bind + listen; returns the (non-blocking) listening fd.  Throws
  /// std::runtime_error on socket failures.
  [[nodiscard]] virtual int open_listener() = 0;

  /// Release endpoint resources after the listening fd was closed
  /// (e.g. unlink the AF_UNIX socket file).
  virtual void close_listener() {}

  /// Connections must authenticate (auth op, shared token) before any
  /// other request is served.
  [[nodiscard]] virtual bool requires_auth() const noexcept { return false; }

  /// Per-connection socket configuration applied right after accept
  /// (e.g. TCP_NODELAY); best-effort, must not throw.
  virtual void configure_connection(int /*fd*/) noexcept {}

  /// The shared secret the auth handshake compares against; empty when
  /// requires_auth() is false.
  [[nodiscard]] virtual const std::string& auth_token() const noexcept;

  /// Human-readable endpoint for logs ("unix:/tmp/x.sock", "tcp:h:p").
  [[nodiscard]] virtual std::string endpoint() const = 0;
};

/// AF_UNIX filesystem socket.  A stale socket file left by a dead
/// process is probed (connect) and replaced; a live server on the same
/// path is never displaced.
class UnixTransport final : public Transport {
 public:
  explicit UnixTransport(std::string path);

  [[nodiscard]] int open_listener() override;
  void close_listener() override;
  [[nodiscard]] std::string endpoint() const override;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  bool bound_ = false;
};

/// AF_INET listener with a shared-token auth handshake.  `port` 0
/// binds an ephemeral port; bound_port() reports the actual one after
/// open_listener().
class TcpTransport final : public Transport {
 public:
  TcpTransport(std::string host, std::uint16_t port, std::string token);

  [[nodiscard]] int open_listener() override;
  void configure_connection(int fd) noexcept override;
  [[nodiscard]] bool requires_auth() const noexcept override {
    return !token_.empty();
  }
  [[nodiscard]] const std::string& auth_token() const noexcept override {
    return token_;
  }
  [[nodiscard]] std::string endpoint() const override;
  [[nodiscard]] std::uint16_t bound_port() const noexcept { return bound_; }

 private:
  std::string host_;
  std::uint16_t port_ = 0;
  std::uint16_t bound_ = 0;
  std::string token_;
};

struct TransportLimits {
  /// Hard bound on one NDJSON request line.  A connection exceeding it
  /// gets an error response and the oversized line is discarded; the
  /// connection stays up.  Sized for inline Touchstone payloads.
  /// Connections that have not passed the auth handshake yet are held
  /// to a fixed 4 KiB bound instead (the auth op is tiny) and are
  /// closed outright on exceeding it, so a tokenless remote peer
  /// cannot park megabytes of buffer.
  std::size_t max_line_bytes = 8u << 20;
  /// Bound on a connection's pending (unsendable) response bytes.  A
  /// peer that keeps issuing requests without reading responses would
  /// otherwise grow the out-buffer without limit — the blocking-write
  /// backpressure of the old thread-per-connection model, restored as
  /// a hard cap: past it the connection is dropped.
  std::size_t max_pending_out_bytes = 16u << 20;
  /// Off-loop protocol handlers.  Sizing: each worker can absorb one
  /// submit blocked on admission backpressure while the loop keeps
  /// polling; 2 is enough for liveness, more only helps when many
  /// connections block on submits at once.  0 = handle every request
  /// inline on the loop (the PR 4 behavior: one blocked submit stalls
  /// every connection).
  std::size_t dispatch_workers = 2;
  /// Bound on the dispatch pool's task queue; with per-connection
  /// single-flight this only fills when more than this many
  /// connections have a request in flight — excess requests get a
  /// "server overloaded" error instead of stalling the loop.
  std::size_t dispatch_queue_capacity = 1024;
  /// Frames a connection may pipeline ahead of its in-flight request
  /// before the loop parks its read interest (resumed as the backlog
  /// drains) — bounds per-connection memory without disconnecting.
  std::size_t max_pipelined_requests = 128;
};

struct TransportStats {
  std::size_t accepted = 0;       ///< connections accepted (all time)
  std::size_t open_connections = 0;
  std::size_t requests = 0;       ///< lines handled (inline + pooled)
  std::size_t inline_requests = 0;  ///< answered on the loop fast path
  std::size_t dispatched = 0;       ///< handed to the dispatch pool
  std::size_t rejected = 0;         ///< dispatch-overload refusals
  std::size_t auth_failures = 0;  ///< bad/missing token, pre-auth ops
  std::size_t oversized_lines = 0;
};

/// Single-threaded epoll event loop serving the NDJSON protocol over
/// any set of transports, with request handling on a DispatchPool.
/// Lifecycle mirrors the old SocketServer: construct -> start() ->
/// (clients) -> wait_shutdown()/stop().
class TransportServer {
 public:
  TransportServer(JobServer& server,
                  std::vector<std::unique_ptr<Transport>> transports,
                  TransportLimits limits = {});
  /// Single-transport convenience.
  TransportServer(JobServer& server, std::unique_ptr<Transport> transport,
                  TransportLimits limits = {});
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Open every listener and start the event-loop thread (plus the
  /// dispatch pool).  Throws std::runtime_error on socket failures (no
  /// thread is left behind).
  void start();

  /// Stop the loop, join the dispatch pool, close every listener and
  /// connection, join the thread.  Idempotent.  A dispatch worker
  /// blocked inside a submit unblocks once the JobServer frees a slot
  /// or shuts down — keep the JobServer alive until stop() returns.
  void stop();

  /// Block until a client requests shutdown (or stop() is called).
  /// Returns the requested drain mode (true when stopped locally).
  bool wait_shutdown() PHES_EXCLUDES(shutdown_mutex_);
  [[nodiscard]] bool shutdown_requested() const
      PHES_EXCLUDES(shutdown_mutex_);

  [[nodiscard]] TransportStats stats() const;
  /// Dispatch-pool counters (all zero when dispatch_workers == 0).
  [[nodiscard]] DispatchStats dispatch_stats() const;
  /// Combined view the protocol's stats op reports.
  [[nodiscard]] TransportSnapshot snapshot() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Transport>>& transports()
      const noexcept {
    return transports_;
  }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t token = 0;   ///< stable id (fds are reused by the OS)
    Transport* transport = nullptr;
    bool authed = false;       ///< true immediately when no auth needed
    /// Accept time — feeds the accept-to-auth latency histogram when
    /// the transport requires the auth handshake.
    std::chrono::steady_clock::time_point accepted_at{};
    std::string in;            ///< bytes carried across partial reads
    std::string out;           ///< response bytes pending write
    std::size_t out_off = 0;   ///< sent prefix of `out`
    bool discarding = false;   ///< dropping an oversized line
    bool close_after_flush = false;
    std::uint32_t armed_events = 0;  ///< epoll interest currently set
    // Off-loop dispatch state (loop-thread-owned).
    std::deque<std::string> pending;  ///< frames behind the in-flight one
    bool inflight = false;     ///< one request in the pool
    bool paused = false;       ///< read interest parked (flow control)
  };

  void loop();
  void accept_ready(std::size_t listener_index);
  void read_ready(Connection& conn);
  void write_ready(Connection& conn);
  /// Frame + dispatch everything complete in conn.in.
  void process_buffer(Connection& conn);
  void handle_line(Connection& conn, const std::string& line);
  /// Run one request inline on the loop thread and answer it
  /// (including the shutdown ack/flush/close sequence).
  void handle_inline(Connection& conn, const std::string& line);
  /// Answer a finished outcome on the loop thread (shutdown included).
  void finish_outcome(Connection& conn, const RequestOutcome& outcome);
  /// Feed the connection's pending frames to the pool (one in flight).
  void pump_dispatch(Connection& conn);
  /// Apply finished pool outcomes queued by the completion callback.
  void drain_completions() PHES_EXCLUDES(completions_mutex_);
  void enqueue(Connection& conn, const std::string& response_line);
  /// Answer an over-bound request line (error response; pre-auth
  /// connections are additionally closed).  The caller has already
  /// adjusted conn.in / conn.discarding.
  void reject_oversized(Connection& conn, std::size_t max_line);
  /// Flush conn.out with a bounded poll loop (shutdown-ack path only:
  /// the ack must reach the peer before the owner tears us down).
  void flush_blocking(Connection& conn);
  void update_epoll(Connection& conn);
  void close_connection(int fd);
  void note_shutdown(bool drain) PHES_EXCLUDES(shutdown_mutex_);
  /// Kick the loop out of epoll_wait (completion arrived / stop()).
  void notify_loop();
  /// Resolve the instrument handles from the JobServer's registry
  /// (construction only).
  void resolve_instruments();

  JobServer& server_;
  std::vector<std::unique_ptr<Transport>> transports_;
  TransportLimits limits_;

  std::vector<int> listen_fds_;  ///< parallel to transports_
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: stop() and completions kick the loop
  /// Reserve descriptor sacrificed to accept+close a pending
  /// connection under EMFILE/ENFILE (else the level-triggered listener
  /// event busy-spins the loop).
  int reserve_fd_ = -1;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Owned by the loop thread between start() and join.
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::unordered_map<std::uint64_t, int> token_to_fd_;
  std::uint64_t next_token_ = 0;

  std::unique_ptr<DispatchPool> dispatch_pool_;  ///< null when inline
  util::Mutex completions_mutex_;
  std::deque<std::pair<std::uint64_t, RequestOutcome>> completions_
      PHES_GUARDED_BY(completions_mutex_);

  // Transport-layer instruments, resolved once at construction from the
  // JobServer's registry; TransportStats is a view over these (every
  // field is a single atomic, so no stats mutex is needed).
  obs::Counter* accepted_ctr_ = nullptr;
  obs::Counter* requests_ctr_ = nullptr;
  obs::Counter* inline_requests_ctr_ = nullptr;
  obs::Counter* dispatched_ctr_ = nullptr;
  obs::Counter* rejected_ctr_ = nullptr;
  obs::Counter* auth_failures_ctr_ = nullptr;
  obs::Counter* oversized_ctr_ = nullptr;
  obs::Gauge* open_connections_gauge_ = nullptr;
  obs::Histogram* accept_to_auth_hist_ = nullptr;
  obs::Histogram* inline_handle_hist_ = nullptr;

  mutable util::Mutex shutdown_mutex_;
  util::CondVar shutdown_cv_;
  bool shutdown_requested_ PHES_GUARDED_BY(shutdown_mutex_) = false;
  bool drain_ PHES_GUARDED_BY(shutdown_mutex_) = true;
};

/// Constant-time token comparison (length leaks, contents do not).
[[nodiscard]] bool tokens_equal(const std::string& a, const std::string& b);

}  // namespace phes::server
