#pragma once
// The job server's wire protocol: newline-delimited JSON.
//
// One request object per line, one response object per line.  Ops:
//
//   {"op":"ping"}
//   {"op":"auth","token":"..."}   (first line on a TCP connection;
//                                  accepted as a no-op elsewhere)
//   {"op":"submit","path":"m.s2p","name":"m",
//    "options":{"poles":12,"vf_iters":12,"stop_after":"verify",
//               "warm_start":true}}
//   {"op":"submit_inline","payload":"<file contents>","ports":2,
//    "format":"touchstone","filename":"m.s2p","name":"m",
//    "options":{...}}             (no shared filesystem needed; the
//                                  payload is parsed by the job's load
//                                  stage via io::load_touchstone /
//                                  macromodel::load_samples)
//   {"op":"status","id":7}      or {"op":"status"} for all jobs
//   {"op":"result","id":7}
//   {"op":"cancel","id":7}
//   {"op":"replay","id":7}      or {"op":"replay","all":true,
//    "state":"done","model":"<hash>","from":3,"to":9}
//                               (rebuild stored records as fresh jobs;
//                                starts a tracked campaign)
//   {"op":"resubmit","id":7}    (one stored record, untracked)
//   {"op":"campaign","id":1}    (campaign progress + per-job deltas)
//   {"op":"stats"}
//   {"op":"metrics"}            (full obs::MetricsRegistry dump)
//   {"op":"trace","id":7}       (per-stage spans of a finished job)
//   {"op":"shutdown","drain":true}
//
// Every response carries "ok"; failures add "error".  `result` embeds
// the same per-job record as `phes_pipeline --summary-json`, flattened
// to one line.  A cancel ack ("cancelled": true) means the request was
// accepted — a job already inside its final stage still completes, and
// the terminal state reported by status/result is authoritative.
// `stats` reports queue/session-pool/job counters, the result
// storage's retention counters, and — when served through a
// TransportServer — the transport and dispatch-pool counters; all of
// them are views over the same obs::MetricsRegistry the `metrics` op
// dumps in full (see README "Observability" for the name reference).
// `replay` resolves stored records (one id, or `all` narrowed by the
// optional state/model/from/to filters) back into fresh jobs through
// the normal admission path and answers with a campaign id plus the
// replayed/skipped breakdown; `campaign` reports that campaign's
// progress, classifying each finished replay against its stored
// baseline (bit-identical / numerically-changed / state-changed — see
// server/campaign.hpp).  `resubmit` re-admits one stored record with
// no tracking.
// `trace` returns the server/trace.hpp JobTrace of a finished job —
// one span per pipeline stage with durations and solver counters —
// while it remains in the in-memory trace ring
// (ServerOptions::trace_capacity); the error message distinguishes
// a job that has not finished from one whose trace was evicted.
//
// The JSON parser used here is util::JsonValue (util/json.hpp), shared
// with the pipeline's report reader; `JsonValue` stays available under
// this namespace for existing callers.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "phes/util/json.hpp"

namespace phes::server {

class JobServer;

using JsonValue = util::JsonValue;

/// JSON string helpers used when composing response lines.
[[nodiscard]] std::string json_quote(const std::string& text);
/// Collapse a pretty-printed JSON document to a single NDJSON-safe
/// line (strips the formatting newlines and their indentation; string
/// literals are unaffected because the escaper never emits raw
/// newlines).
[[nodiscard]] std::string single_line_json(const std::string& pretty);

/// Outcome of one protocol request.
struct RequestOutcome {
  std::string response;  ///< one JSON line, no trailing '\n'
  /// The request was a shutdown op: the transport should acknowledge,
  /// then stop accepting and have its owner shut the server down.
  bool shutdown_requested = false;
  bool drain = true;  ///< shutdown mode requested
};

/// Transport-side counters the stats op folds into its response when
/// the request is served through a TransportServer (the protocol layer
/// itself has no transport to ask).
struct TransportSnapshot {
  std::size_t accepted = 0;          ///< connections accepted (all time)
  std::size_t open_connections = 0;
  std::size_t requests = 0;          ///< lines handled (inline + pooled)
  std::size_t inline_requests = 0;   ///< served on the loop fast path
  std::size_t dispatched = 0;        ///< handed to the dispatch pool
  std::size_t rejected = 0;          ///< dispatch-overload rejections
  std::size_t oversized_lines = 0;
  std::size_t auth_failures = 0;
  std::size_t dispatch_workers = 0;  ///< 0 => inline handling (no pool)
  std::size_t dispatch_queue_depth = 0;
  std::size_t dispatch_peak_depth = 0;
  std::size_t dispatch_completed = 0;
};

/// Provider the transport passes so `stats` can report live counters.
using TransportSnapshotFn = std::function<TransportSnapshot()>;

/// Execute one NDJSON request line against `server`.  Never throws:
/// parse and dispatch errors come back as {"ok":false,...} responses.
/// The shutdown op only reports the request — the caller decides when
/// to invoke JobServer::shutdown (typically after flushing the ack).
/// `snapshot`, when provided, feeds the stats op's transport section.
[[nodiscard]] RequestOutcome handle_request(
    JobServer& server, const std::string& line,
    const TransportSnapshotFn& snapshot = nullptr);

/// Already-parsed variant for callers that needed the document anyway
/// (the transport's fast path peeks at the op before deciding where to
/// run the request — no point parsing the same line twice).
[[nodiscard]] RequestOutcome handle_request(
    JobServer& server, const JsonValue& request,
    const TransportSnapshotFn& snapshot = nullptr);

}  // namespace phes::server
