#pragma once
// The job server's wire protocol: newline-delimited JSON.
//
// One request object per line, one response object per line.  Ops:
//
//   {"op":"ping"}
//   {"op":"auth","token":"..."}   (first line on a TCP connection;
//                                  accepted as a no-op elsewhere)
//   {"op":"submit","path":"m.s2p","name":"m",
//    "options":{"poles":12,"vf_iters":12,"stop_after":"verify",
//               "warm_start":true}}
//   {"op":"submit_inline","payload":"<file contents>","ports":2,
//    "format":"touchstone","filename":"m.s2p","name":"m",
//    "options":{...}}             (no shared filesystem needed; the
//                                  payload is parsed by the job's load
//                                  stage via io::load_touchstone /
//                                  macromodel::load_samples)
//   {"op":"status","id":7}      or {"op":"status"} for all jobs
//   {"op":"result","id":7}
//   {"op":"cancel","id":7}
//   {"op":"stats"}
//   {"op":"shutdown","drain":true}
//
// Every response carries "ok"; failures add "error".  `result` embeds
// the same per-job record as `phes_pipeline --summary-json`, flattened
// to one line.  A cancel ack ("cancelled": true) means the request was
// accepted — a job already inside its final stage still completes, and
// the terminal state reported by status/result is authoritative.  The JSON support here is a deliberately small parser
// for this protocol (objects/arrays/strings/doubles) — not a general
// serialization library.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace phes::server {

class JobServer;

/// Minimal immutable JSON document (parse + read-only access).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parse one JSON document; trailing non-whitespace or malformed
  /// input throws std::runtime_error with a character offset.
  [[nodiscard]] static JsonValue parse(const std::string& text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept {
    return type_ == Type::kNull;
  }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  // Lookup with defaults, for optional request fields.
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::uint64_t uint_or(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;

 private:
  struct Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;  ///< array elements
  std::vector<std::pair<std::string, JsonValue>> members_;  ///< object
};

/// JSON string helpers used when composing response lines.
[[nodiscard]] std::string json_quote(const std::string& text);
/// Collapse a pretty-printed JSON document to a single NDJSON-safe
/// line (strips the formatting newlines and their indentation; string
/// literals are unaffected because the escaper never emits raw
/// newlines).
[[nodiscard]] std::string single_line_json(const std::string& pretty);

/// Outcome of one protocol request.
struct RequestOutcome {
  std::string response;  ///< one JSON line, no trailing '\n'
  /// The request was a shutdown op: the transport should acknowledge,
  /// then stop accepting and have its owner shut the server down.
  bool shutdown_requested = false;
  bool drain = true;  ///< shutdown mode requested
};

/// Execute one NDJSON request line against `server`.  Never throws:
/// parse and dispatch errors come back as {"ok":false,...} responses.
/// The shutdown op only reports the request — the caller decides when
/// to invoke JobServer::shutdown (typically after flushing the ack).
[[nodiscard]] RequestOutcome handle_request(JobServer& server,
                                            const std::string& line);

}  // namespace phes::server
