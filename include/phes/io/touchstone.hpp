#pragma once
// Touchstone (.sNp) reader/writer — the industry-standard interchange
// format for tabulated scattering parameters (the paper's input data:
// "frequency samples of the scattering matrix ... via electromagnetic
// simulation or direct measurement", Sec. II).
//
// Supported subset (Touchstone 1.x):
//   - option line  "# <unit> S <format> R <z0>"  with unit in
//     {Hz, kHz, MHz, GHz}, format in {RI, MA, DB}; fields are optional
//     and case-insensitive, defaults are GHz / S / MA / R 50
//   - '!' comments (full-line and trailing) and blank lines
//   - free line wrapping of data records (one record = frequency plus
//     2 p^2 values, split over any number of lines)
//   - the 2-port column-major quirk: .s2p data is ordered
//     S11 S21 S12 S22, every other port count is row-major
//   - the trailing 2-port noise-parameter section (detected by the
//     frequency dropping back) is skipped
//
// Frequencies are converted to angular rad/s on load (omega = 2 pi f)
// and back to the requested unit on save, so the rest of the library
// only ever sees `macromodel::FrequencySamples`.
//
// Only the scattering parameter type 'S' is accepted: passivity of Y/Z
// immittance data is a positive-realness question, not the bounded-
// realness test this library implements.
//
// All parse errors throw std::runtime_error with a "<line N>:" prefix.

#include <cstddef>
#include <iosfwd>
#include <string>

#include "phes/macromodel/samples.hpp"

namespace phes::io {

/// Number format of the complex data pairs.
enum class TouchstoneFormat {
  kRI,  ///< real, imaginary
  kMA,  ///< magnitude, angle (degrees)
  kDB,  ///< 20 log10(magnitude) dB, angle (degrees)
};

[[nodiscard]] const char* format_name(TouchstoneFormat format) noexcept;

/// Contents of the option line (plus write-time formatting knobs).
struct TouchstoneMetadata {
  TouchstoneFormat format = TouchstoneFormat::kMA;
  std::string unit = "GHz";          ///< Hz | kHz | MHz | GHz
  double frequency_scale = 1e9;      ///< Hz per file frequency unit
  double reference_resistance = 50;  ///< the R field, ohms
};

/// A parsed Touchstone file: samples (omega in rad/s) plus the metadata
/// needed to write an equivalent file back.
struct TouchstoneData {
  macromodel::FrequencySamples samples;
  TouchstoneMetadata metadata;
};

/// True when `path` ends in a ".sNp" / ".snp" Touchstone extension
/// (any digit count, case-insensitive).  The single extension check
/// shared by the pipeline's input dispatch and the batch file scan.
[[nodiscard]] bool is_touchstone_path(const std::string& path) noexcept;

/// Port count from a ".sNp" / ".snp" extension (e.g. "a.s2p" -> 2).
/// Throws std::runtime_error when the extension is absent, N < 1, or
/// N is implausibly large.
[[nodiscard]] std::size_t ports_from_extension(const std::string& path);

/// Parse a Touchstone stream with a known port count.
[[nodiscard]] TouchstoneData load_touchstone(std::istream& is,
                                             std::size_t ports);

/// Parse a Touchstone file, inferring the port count from the extension.
[[nodiscard]] TouchstoneData load_touchstone_file(const std::string& path);

/// Serialize samples as Touchstone data.  Throws on inconsistent
/// samples or an unknown metadata unit.
void save_touchstone(const macromodel::FrequencySamples& samples,
                     std::ostream& os,
                     const TouchstoneMetadata& metadata = {});

/// File wrapper; refuses a ".sNp" extension whose N contradicts the
/// sample port count.
void save_touchstone_file(const macromodel::FrequencySamples& samples,
                          const std::string& path,
                          const TouchstoneMetadata& metadata = {});

}  // namespace phes::io
