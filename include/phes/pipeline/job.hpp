#pragma once
// The end-to-end passivity pipeline of paper Sec. II, as one runnable
// stage machine:
//
//   load -> fit (vector fitting) -> realize (SIMO state space)
//        -> characterize (parallel Hamiltonian eigensolver)
//        -> enforce (iterative residue perturbation, skipped when the
//           model is already passive) -> verify (re-characterization)
//
// Each stage is timed, and a throwing stage is captured as a structured
// failure on the result instead of escaping mid-batch — the contract
// BatchRunner (pipeline/batch.hpp) relies on to keep one bad input from
// killing N-1 good jobs.

#include <cstddef>
#include <string>
#include <vector>

#include "phes/core/solver.hpp"
#include "phes/engine/session.hpp"
#include "phes/macromodel/samples.hpp"
#include "phes/passivity/characterization.hpp"
#include "phes/passivity/enforcement.hpp"
#include "phes/vf/vector_fitting.hpp"

namespace phes::pipeline {

/// Pipeline stages in execution order.
enum class Stage {
  kLoad = 0,
  kFit,
  kRealize,
  kCharacterize,
  kEnforce,
  kVerify,
};

[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// Parse a stage name ("load", "fit", ...).  Throws std::invalid_argument
/// on an unknown name.
[[nodiscard]] Stage parse_stage(const std::string& name);

/// Per-job knobs (stage options plus early-stop control).
struct JobOptions {
  vf::VectorFittingOptions fit{};
  core::SolverOptions solver{};
  passivity::EnforcementOptions enforcement{};
  /// Solver-session tuning (factorization cache, warm starts).  One
  /// session is created per job and threaded through characterize ->
  /// enforce -> verify.
  engine::SessionOptions session{};
  /// Run stages up to and including this one, then stop.
  Stage stop_after = Stage::kVerify;
};

/// One pipeline invocation: a named input plus its options.  The input
/// is either a file path (Touchstone ".sNp" or phes-samples text,
/// dispatched on extension) or in-memory samples.
struct PipelineJob {
  std::string name;        ///< label for reports (defaults to the path)
  std::string input_path;  ///< empty => use `samples`
  macromodel::FrequencySamples samples;
  JobOptions options{};
};

/// Wall-clock record of one completed stage.
struct StageTiming {
  Stage stage = Stage::kLoad;
  double seconds = 0.0;
};

/// Structured outcome of one job.
struct PipelineResult {
  std::string name;

  bool ok = false;         ///< no stage threw
  bool completed = false;  ///< reached options.stop_after
  std::string error;       ///< failure message when !ok
  Stage failed_stage = Stage::kLoad;  ///< meaningful when !ok

  std::vector<StageTiming> stage_timings;  ///< completed stages, in order
  double total_seconds = 0.0;

  // Stage products (populated up to the last completed stage).
  std::size_t sample_count = 0;
  std::size_t ports = 0;
  std::size_t order = 0;      ///< dynamic order n of the fitted model
  double fit_rms = 0.0;
  std::size_t fit_iterations = 0;

  passivity::PassivityReport initial_report;  ///< characterize output
  bool enforcement_run = false;  ///< false when already passive
  passivity::EnforcementResult enforcement;
  passivity::PassivityReport final_report;  ///< verify output

  /// True when the verify stage re-certified the (possibly perturbed)
  /// model as passive.
  bool certified_passive = false;

  /// Solver-session reuse statistics for the whole job (factorization
  /// cache hits/misses, warm-started solves, operators built).
  engine::SessionStats session;

  /// Compact status: "passive" | "enforced" | "not-passive" |
  /// "stopped@<stage>" | "failed@<stage>".
  [[nodiscard]] std::string status() const;
};

/// Load a samples file, dispatching on extension: ".sNp"/".snp" is
/// parsed as Touchstone, anything else as the phes-samples text format.
[[nodiscard]] macromodel::FrequencySamples load_input(
    const std::string& path);

/// Run one job through the stage machine.  Never throws on bad input or
/// numerical failure — such errors come back on the result.  (Only
/// allocation failure and similar catastrophes propagate.)
[[nodiscard]] PipelineResult run_pipeline(const PipelineJob& job);

}  // namespace phes::pipeline
